//! Two applications sharing one scarce fast tier — for real this time.
//!
//! The paper's opening motivation (§1): on servers, multiple applications
//! compete for the high-performance memory, so placement must maximise
//! gain *per byte* globally, not per application. Earlier revisions of
//! this example faked co-tenancy by loading both graphs into a single
//! runtime; now the multi-tenant scheduler does it properly: each tenant
//! has its own registry, profiler and configuration, the machine tags
//! every byte with its owner, and one server-wide optimize round
//! arbitrates the shared fast tier across both tenants' candidate
//! regions. A seeded arrival stream then interleaves query quanta and
//! reports per-tenant latency percentiles.
//!
//! Run with: `cargo run -p atmem-bench --release --example shared_server`

use atmem::{AtmemConfig, MigrationConfig, Result};
use atmem_apps::{serve_protocols, App, TenantSpec};
use atmem_graph::Dataset;
use atmem_hms::Platform;

fn main() -> Result<()> {
    // A fast tier far smaller than the combined working set.
    let platform = Platform::nvm_dram().with_capacities(6 * 1024 * 1024, 512 * 1024 * 1024);

    // Tenant 0: PageRank on a hub-heavy graph (hot accumulator prefix),
    // querying often. Tenant 1: BFS on a milder graph, querying rarely.
    let skewed = Dataset::Twitter.build_small(3);
    let mild = Dataset::Pokec.build_small(1);
    let tenants = [
        TenantSpec {
            csr: &skewed,
            app: App::PageRank,
            config: AtmemConfig::default(),
            arrival_seed: 0xA11CE,
            queries: 4,
            mean_gap_ns: 2_000_000.0,
        },
        TenantSpec {
            csr: &mild,
            app: App::Bfs,
            config: AtmemConfig::default(),
            arrival_seed: 0xB0B,
            queries: 2,
            mean_gap_ns: 8_000_000.0,
        },
    ];

    let report = serve_protocols(platform, MigrationConfig::default(), &tenants)?;

    println!(
        "server optimize round: {:.2} MiB promoted across tenants \
         ({:.2} MiB of selection dropped for budget)\n",
        report.round.promotion.bytes_moved as f64 / (1 << 20) as f64,
        report.round.dropped_bytes as f64 / (1 << 20) as f64,
    );
    for (i, t) in report.tenants.iter().enumerate() {
        println!(
            "tenant {i} ({:>8}): {:5.1}% of {:6.2} MiB fast | promoted {:5.2} MiB | \
             {} queries, p50 {:8.3} ms, p99 {:8.3} ms",
            t.app.to_string(),
            t.fast_data_ratio * 100.0,
            t.total_bytes as f64 / (1 << 20) as f64,
            t.bytes_promoted as f64 / (1 << 20) as f64,
            t.queries,
            t.p50_latency.as_ns() / 1e6,
            t.p99_latency.as_ns() / 1e6,
        );
    }
    assert!(
        report.audit.is_empty(),
        "audit violations: {:?}",
        report.audit
    );
    for t in &report.tenants {
        assert_eq!(
            t.fast_bytes + t.slow_bytes,
            t.total_bytes,
            "per-tenant byte conservation"
        );
    }
    println!(
        "\naudit clean after every quantum; each tenant's bytes conserved.\n\
         the shared round gives each tenant fast memory in proportion to\n\
         measured gain per byte — not an even split."
    );
    Ok(())
}
