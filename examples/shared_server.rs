//! Two applications sharing one scarce fast tier.
//!
//! The paper's opening motivation (§1): on servers, multiple applications
//! compete for the high-performance memory, so placement must maximise
//! gain *per byte* globally, not per application. This example co-runs
//! PageRank (on a skewed graph) and BFS (on a milder one) inside one
//! runtime with a fast tier that holds only a fraction of their combined
//! working set, and shows the analyzer's Eq. 4–5 global ranking splitting
//! the budget by measured heat rather than evenly.
//!
//! Run with: `cargo run -p atmem-bench --release --example shared_server`

use atmem::{Atmem, AtmemConfig, ResidencyReport, Result};
use atmem_apps::{App, HmsGraph, MemCtx};
use atmem_graph::Dataset;
use atmem_hms::Platform;

fn main() -> Result<()> {
    // A fast tier far smaller than the combined working set.
    let platform = Platform::nvm_dram().with_capacities(6 * 1024 * 1024, 512 * 1024 * 1024);
    let mut rt = Atmem::new(platform, AtmemConfig::default())?;

    // Tenant A: PageRank on a hub-heavy graph (hot accumulator prefix).
    let skewed = Dataset::Twitter.build_small(3);
    let graph_a = HmsGraph::load(&mut rt, &skewed)?;
    let mut tenant_a = App::PageRank.instantiate(&mut rt, graph_a)?;

    // Tenant B: BFS on a milder graph (flatter heat).
    let mild = Dataset::Pokec.build_small(1);
    let graph_b = HmsGraph::load(&mut rt, &mild)?;
    let mut tenant_b = App::Bfs.instantiate(&mut rt, graph_b)?;

    println!(
        "fast tier: {} MiB; combined registered data: {:.1} MiB\n",
        rt.machine().capacity(atmem_hms::TierId::FAST) / (1 << 20),
        rt.registry().total_bytes() as f64 / (1 << 20) as f64
    );

    // Profile both tenants in one session (as a server-wide profiler
    // would), then optimize globally.
    tenant_a.reset(&mut rt);
    tenant_b.reset(&mut rt);
    rt.profiling_start()?;
    tenant_a.run_iteration(&mut MemCtx::bulk(rt.machine_mut()));
    tenant_b.run_iteration(&mut MemCtx::bulk(rt.machine_mut()));
    rt.profiling_stop()?;

    let t0 = rt.now();
    tenant_a.reset(&mut rt);
    tenant_a.run_iteration(&mut MemCtx::bulk(rt.machine_mut()));
    let a_before = rt.now().as_ns() - t0.as_ns();
    let t1 = rt.now();
    tenant_b.reset(&mut rt);
    tenant_b.run_iteration(&mut MemCtx::bulk(rt.machine_mut()));
    let b_before = rt.now().as_ns() - t1.as_ns();

    let report = rt.optimize()?;
    println!(
        "optimize moved {:.2} MiB ({} regions; {:.2} MiB of selection dropped for budget)\n",
        report.migration.bytes_moved as f64 / (1 << 20) as f64,
        report.migration.regions,
        report.plan.dropped_bytes as f64 / (1 << 20) as f64,
    );
    println!("{}", ResidencyReport::collect(&rt));

    let t2 = rt.now();
    tenant_a.reset(&mut rt);
    tenant_a.run_iteration(&mut MemCtx::bulk(rt.machine_mut()));
    let a_after = rt.now().as_ns() - t2.as_ns();
    let t3 = rt.now();
    tenant_b.reset(&mut rt);
    tenant_b.run_iteration(&mut MemCtx::bulk(rt.machine_mut()));
    let b_after = rt.now().as_ns() - t3.as_ns();

    println!(
        "tenant A (PR, skewed): {:.2} ms -> {:.2} ms ({:.2}x)",
        a_before / 1e6,
        a_after / 1e6,
        a_before / a_after
    );
    println!(
        "tenant B (BFS, mild) : {:.2} ms -> {:.2} ms ({:.2}x)",
        b_before / 1e6,
        b_after / 1e6,
        b_before / b_after
    );
    println!(
        "\nthe global Eq. 4-5 ranking gives each tenant fast memory in proportion\n\
         to measured gain per byte — not an even split."
    );
    Ok(())
}
