//! `mbind` system service vs ATMem's multi-stage multi-threaded migration.
//!
//! Reproduces the Table 4 comparison in miniature: migrate the same region
//! with both mechanisms and report migration time plus the TLB misses a
//! following scan suffers (the `mbind` splintering effect).
//!
//! Run with: `cargo run -p atmem-bench --release --example migration_comparison`

use atmem::migrate::plan::{MigrationPlan, PlannedRegion};
use atmem::migrate::staged::execute_plan;
use atmem::MigrationConfig;
use atmem_hms::{Machine, Placement, Platform, TierId, VirtRange};

const REGION_BYTES: usize = 16 * 1024 * 1024;

/// Scans the region once and returns the TLB misses of the scan.
fn scan_tlb_misses(m: &mut Machine, range: VirtRange) -> u64 {
    m.flush_caches();
    let before = m.stats().tlb_misses;
    let words = range.len as u64 / 8;
    for i in (0..words).step_by(512) {
        let _ = m.read::<u64>(range.start.add(i * 8)).expect("mapped");
    }
    m.stats().tlb_misses - before
}

fn setup() -> (Machine, VirtRange) {
    let mut m = Machine::new(Platform::nvm_dram());
    let r = m.alloc(REGION_BYTES, Placement::Slow).expect("alloc");
    for i in 0..(REGION_BYTES / 8) as u64 {
        m.poke::<u64>(r.start.add(i * 8), i).expect("mapped");
    }
    (m, VirtRange::new(r.start, REGION_BYTES))
}

fn main() -> atmem::Result<()> {
    println!(
        "migrating {} MiB from NVM to DRAM\n",
        REGION_BYTES / (1 << 20)
    );

    // System service.
    let (mut m1, range1) = setup();
    let report = m1.migrate_mbind(range1, TierId::FAST)?;
    let mbind_tlb = scan_tlb_misses(&mut m1, range1);
    println!(
        "mbind : {:>10}   mappings after: {:>5}   scan TLB misses: {}",
        report.time, report.mappings_after, mbind_tlb
    );

    // ATMem staged migration.
    let (mut m2, range2) = setup();
    let plan = MigrationPlan {
        regions: vec![PlannedRegion {
            object: atmem::ObjectId::from_index(0),
            range: range2,
            priority: 1.0,
            dst: None,
        }],
        total_bytes: REGION_BYTES,
        dropped_bytes: 0,
    };
    let config = MigrationConfig {
        max_region_bytes: REGION_BYTES,
        ..MigrationConfig::default()
    };
    let outcome = execute_plan(&mut m2, &plan, &config, TierId::FAST)?;
    let atmem_tlb = scan_tlb_misses(&mut m2, range2);
    let mappings = m2.mappings_in(range2).len();
    println!(
        "atmem : {:>10}   mappings after: {:>5}   scan TLB misses: {}",
        outcome.time, mappings, atmem_tlb
    );

    println!(
        "\nspeedup {:.2}x, TLB miss reduction {:.2}x",
        report.time.as_ns() / outcome.time.as_ns(),
        mbind_tlb as f64 / atmem_tlb.max(1) as f64
    );

    // Both mechanisms must preserve every byte.
    for i in (0..(REGION_BYTES / 8) as u64).step_by(4097) {
        assert_eq!(m1.peek::<u64>(range1.start.add(i * 8))?, i);
        assert_eq!(m2.peek::<u64>(range2.start.add(i * 8))?, i);
    }
    println!("data verified identical under both mechanisms");
    Ok(())
}
