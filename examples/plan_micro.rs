//! Micro-benchmark isolating the plan tier's replay ceiling.
//!
//! Times a pure random gather and a pure sequential sweep through the
//! window engine and through a pre-compiled plan, with no kernel logic in
//! between. The gap between the two paths is exactly the per-element
//! mapping-lookup, translation-key and bounds work the plan hoists into
//! compile time; everything else (the per-line TLB walk and LLC probe) is
//! paid identically by both sides under the bit-identity contract. This is
//! the number that bounds the end-to-end `steady_iteration` speedups in
//! the kernels bench — run it when those gates move to tell "the plan tier
//! regressed" apart from "the kernel around it changed".

use atmem_hms::{Machine, MemPort, Placement, Platform, TrackedVec, VirtRange};
use std::time::Instant;

fn main() {
    let mut m = Machine::new(Platform::testing());
    let n = 1 << 20;
    let v = TrackedVec::<f64>::new(&mut m, n, Placement::Slow).unwrap();
    v.fill(&mut m, 1.0);
    // random gather indices
    let idx: Vec<u32> = (0..n as u64)
        .map(|j| {
            let mut x = j.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            x ^= x >> 31;
            (x % n as u64) as u32
        })
        .collect();
    let mut out = vec![0.0f64; n];
    // window path
    let t = Instant::now();
    for _ in 0..5 {
        v.gather(&mut m, &idx, &mut out);
    }
    let wt = t.elapsed();
    // plan path
    let plan = m
        .compile_window::<f64>(v.range().start, n as u64, &idx)
        .unwrap();
    let t = Instant::now();
    for _ in 0..5 {
        m.run_plan_gather::<f64>(&plan, &mut out);
    }
    let pt = t.elapsed();
    println!(
        "gather  window {:?}  plan {:?}  speedup {:.2}x",
        wt,
        pt,
        wt.as_secs_f64() / pt.as_secs_f64()
    );

    // sequential sweep
    let mut buf = vec![0.0f64; n];
    let t = Instant::now();
    for _ in 0..5 {
        v.read_slice(&mut m, 0, &mut buf);
    }
    let wt = t.elapsed();
    let splan = m
        .compile_sweep(VirtRange::new(v.range().start, n * 8), 8)
        .unwrap();
    let t = Instant::now();
    for _ in 0..5 {
        m.run_plan_sweep(&splan, false);
    }
    let pt = t.elapsed();
    println!(
        "sweep   window {:?}  plan {:?}  speedup {:.2}x (plan side excludes data copy)",
        wt,
        pt,
        wt.as_secs_f64() / pt.as_secs_f64()
    );
}
