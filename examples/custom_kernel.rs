//! Writing your own kernel against the ATMem API.
//!
//! Implements a tiny "degree-weighted triangle counting sweep" kernel from
//! scratch using the `Kernel` trait, runs it under the paper's protocol on
//! the simulated KNL (MCDRAM-DRAM) testbed, and compares baseline vs ATMem.
//!
//! Run with: `cargo run -p atmem-bench --release --example custom_kernel`

use atmem::{Atmem, AtmemConfig, PlacementPolicy, Result};
use atmem_apps::{HmsGraph, Kernel};
use atmem_graph::Dataset;
use atmem_hms::{Platform, TrackedVec};

/// A wedge-counting kernel: for every vertex, counts length-2 paths through
/// it, weighting by the endpoints' degrees. Irregular reads of the
/// degree array, driven by the neighbour distribution — a natural fit for
/// fine-grained placement.
#[derive(Debug)]
struct WedgeCount {
    graph: HmsGraph,
    degree: TrackedVec<u32>,
    wedges: TrackedVec<f64>,
}

impl WedgeCount {
    fn new(rt: &mut Atmem, graph: HmsGraph) -> Result<Self> {
        let n = graph.num_vertices();
        let degree = rt.malloc::<u32>(n, "wedge.degree")?;
        let wedges = rt.malloc::<f64>(n, "wedge.count")?;
        // Precompute degrees (unaccounted setup).
        for v in 0..n {
            let (s, e) = graph.edge_bounds(rt.machine_mut(), v);
            degree.poke(rt.machine_mut(), v, (e - s) as u32);
        }
        Ok(WedgeCount {
            graph,
            degree,
            wedges,
        })
    }
}

impl Kernel for WedgeCount {
    fn name(&self) -> &'static str {
        "Wedge"
    }

    fn reset(&mut self, rt: &mut Atmem) {
        self.wedges.fill(rt.machine_mut(), 0.0);
    }

    fn run_iteration(&mut self, rt: &mut Atmem) {
        let m = rt.machine_mut();
        for v in 0..self.graph.num_vertices() {
            let (s, e) = self.graph.edge_bounds(m, v);
            let mut acc = 0.0;
            for edge in s..e {
                let u = self.graph.neighbor(m, edge) as usize;
                acc += self.degree.get(m, u) as f64;
            }
            self.wedges.set(m, v, acc);
        }
    }

    fn checksum(&self, rt: &mut Atmem) -> f64 {
        let m = rt.machine_mut();
        (0..self.graph.num_vertices())
            .map(|v| self.wedges.peek(m, v))
            .sum()
    }
}

fn run(placement: PlacementPolicy, optimize: bool) -> Result<(f64, f64, f64)> {
    let csr = Dataset::Friendster.build_small(3); // 64 Ki vertices
    let config = AtmemConfig::default().with_placement(placement);
    let mut rt = Atmem::new(Platform::mcdram_dram(), config)?;
    let graph = HmsGraph::load(&mut rt, &csr)?;
    let mut kernel = WedgeCount::new(&mut rt, graph)?;

    kernel.reset(&mut rt);
    if optimize {
        rt.profiling_start()?;
    }
    kernel.run_iteration(&mut rt);
    if optimize {
        rt.profiling_stop()?;
        rt.optimize()?;
    }
    kernel.reset(&mut rt);
    let t = rt.now();
    kernel.run_iteration(&mut rt);
    let iter2 = rt.now().as_ns() - t.as_ns();
    Ok((iter2, rt.fast_data_ratio(), kernel.checksum(&mut rt)))
}

fn main() -> Result<()> {
    println!("custom wedge-count kernel on the simulated KNL testbed\n");
    let (base_ns, base_ratio, base_sum) = run(PlacementPolicy::AllSlow, false)?;
    let (atm_ns, atm_ratio, atm_sum) = run(PlacementPolicy::AllSlow, true)?;
    assert_eq!(base_sum, atm_sum, "placement must not change results");
    println!(
        "baseline (all-DRAM): {:.3} ms  ({:.1}% data on MCDRAM)",
        base_ns / 1e6,
        base_ratio * 100.0
    );
    println!(
        "atmem              : {:.3} ms  ({:.1}% data on MCDRAM)",
        atm_ns / 1e6,
        atm_ratio * 100.0
    );
    println!("speedup            : {:.2}x", base_ns / atm_ns);
    Ok(())
}
