//! Writing your own kernel against the ATMem API.
//!
//! Implements a tiny "degree-weighted triangle counting sweep" kernel from
//! scratch using the `Kernel` trait, runs it under the paper's protocol on
//! the simulated KNL (MCDRAM-DRAM) testbed, and compares baseline vs ATMem.
//!
//! Run with: `cargo run -p atmem-bench --release --example custom_kernel`

use atmem::{Atmem, AtmemConfig, PlacementPolicy, Result};
use atmem_apps::{HmsGraph, Kernel, MemCtx};
use atmem_graph::Dataset;
use atmem_hms::{Platform, TrackedVec};

/// A wedge-counting kernel: for every vertex, counts length-2 paths through
/// it, weighting by the endpoints' degrees. Irregular reads of the
/// degree array, driven by the neighbour distribution — a natural fit for
/// fine-grained placement.
#[derive(Debug)]
struct WedgeCount {
    graph: HmsGraph,
    degree: TrackedVec<u32>,
    wedges: TrackedVec<f64>,
}

impl WedgeCount {
    fn new(rt: &mut Atmem, graph: HmsGraph) -> Result<Self> {
        let n = graph.num_vertices();
        let degree = rt.malloc::<u32>(n, "wedge.degree")?;
        let wedges = rt.malloc::<f64>(n, "wedge.count")?;
        // Precompute degrees (unaccounted setup).
        let mut ctx = MemCtx::bulk(rt.machine_mut());
        for v in 0..n {
            let (s, e) = graph.edge_bounds(&mut ctx, v);
            degree.poke(ctx.machine(), v, (e - s) as u32);
        }
        Ok(WedgeCount {
            graph,
            degree,
            wedges,
        })
    }
}

impl Kernel for WedgeCount {
    fn name(&self) -> &'static str {
        "Wedge"
    }

    fn reset(&mut self, rt: &mut Atmem) {
        self.wedges.fill(rt.machine_mut(), 0.0);
    }

    fn run_iteration(&mut self, ctx: &mut MemCtx) {
        let mut nbrs: Vec<u32> = Vec::new();
        let mut degs: Vec<u32> = Vec::new();
        for v in 0..self.graph.num_vertices() {
            let (s, e) = self.graph.edge_bounds(ctx, v);
            // Each row is one sequential neighbour run plus one irregular
            // degree window — the window engine batches the latter.
            nbrs.resize((e - s) as usize, 0);
            self.graph.neighbor_run(ctx, s, &mut nbrs);
            degs.resize(nbrs.len(), 0);
            ctx.gather(&self.degree, &nbrs, &mut degs);
            let acc: f64 = degs.iter().map(|&d| d as f64).sum();
            ctx.set(&self.wedges, v, acc);
        }
    }

    fn checksum(&self, rt: &mut Atmem) -> f64 {
        let m = rt.machine_mut();
        (0..self.graph.num_vertices())
            .map(|v| self.wedges.peek(m, v))
            .sum()
    }
}

fn run(placement: PlacementPolicy, optimize: bool) -> Result<(f64, f64, f64)> {
    let csr = Dataset::Friendster.build_small(3); // 64 Ki vertices
    let config = AtmemConfig::default().with_placement(placement);
    let mut rt = Atmem::new(Platform::mcdram_dram(), config)?;
    let graph = HmsGraph::load(&mut rt, &csr)?;
    let mut kernel = WedgeCount::new(&mut rt, graph)?;

    kernel.reset(&mut rt);
    if optimize {
        rt.profiling_start()?;
    }
    kernel.run_iteration(&mut MemCtx::bulk(rt.machine_mut()));
    if optimize {
        rt.profiling_stop()?;
        rt.optimize()?;
    }
    kernel.reset(&mut rt);
    let t = rt.now();
    kernel.run_iteration(&mut MemCtx::bulk(rt.machine_mut()));
    let iter2 = rt.now().as_ns() - t.as_ns();
    Ok((iter2, rt.fast_data_ratio(), kernel.checksum(&mut rt)))
}

fn main() -> Result<()> {
    println!("custom wedge-count kernel on the simulated KNL testbed\n");
    let (base_ns, base_ratio, base_sum) = run(PlacementPolicy::AllSlow, false)?;
    let (atm_ns, atm_ratio, atm_sum) = run(PlacementPolicy::AllSlow, true)?;
    assert_eq!(base_sum, atm_sum, "placement must not change results");
    println!(
        "baseline (all-DRAM): {:.3} ms  ({:.1}% data on MCDRAM)",
        base_ns / 1e6,
        base_ratio * 100.0
    );
    println!(
        "atmem              : {:.3} ms  ({:.1}% data on MCDRAM)",
        atm_ns / 1e6,
        atm_ratio * 100.0
    );
    println!("speedup            : {:.2}x", base_ns / atm_ns);
    Ok(())
}
