//! PageRank on a scaled Twitter-like graph under four placements.
//!
//! Reproduces, in miniature, the comparison of the paper's Figures 5/6:
//! all-slow baseline vs ATMem vs preferred-fill vs all-fast ideal, printing
//! the second-iteration time and the data ratio each placement uses.
//!
//! Run with: `cargo run -p atmem-bench --release --example pagerank_placement`

use atmem::AtmemConfig;
use atmem_apps::{run_protocol, App, Mode};
use atmem_graph::Dataset;
use atmem_hms::Platform;

fn main() -> atmem::Result<()> {
    let csr = Dataset::Twitter.build_small(4); // 16 Ki vertices, heavy skew
    println!(
        "PageRank on twitter stand-in: {} vertices, {} edges, {:.1} MiB",
        csr.num_vertices(),
        csr.num_edges(),
        csr.simulated_footprint() as f64 / (1 << 20) as f64
    );
    println!("platform: simulated Optane NVM-DRAM testbed\n");
    println!(
        "{:<10} {:>14} {:>12} {:>10}",
        "placement", "iter2 (ms)", "data ratio", "speedup"
    );

    let mut baseline_ns = None;
    for mode in [Mode::Baseline, Mode::Atmem, Mode::Preferred, Mode::Ideal] {
        let r = run_protocol(
            Platform::nvm_dram(),
            AtmemConfig::default(),
            &csr,
            App::PageRank,
            mode,
        )?;
        let ns = r.second_iter.as_ns();
        let base = *baseline_ns.get_or_insert(ns);
        println!(
            "{:<10} {:>14.3} {:>11.1}% {:>9.2}x",
            mode.name(),
            ns / 1e6,
            r.data_ratio * 100.0,
            base / ns
        );
    }
    println!("\nATMem approaches the all-DRAM ideal with a fraction of the data migrated.");
    Ok(())
}
