//! ATMem vs an AutoNUMA-style OS-tiering baseline on a three-tier machine.
//!
//! Both policies run the same profiled PageRank workload on the
//! HBM-DRAM-CXL platform for a few profile→optimize rounds. ATMem's
//! analyzer promotes its critical chunks straight to the hottest tier
//! with headroom; the AutoNUMA baseline only ever promotes a hot page one
//! hop hotter per round and pays `mbind`'s remap costs, so it climbs the
//! tier ladder slowly — the gap in hot-tier data ratio at the same
//! fast-tier budget is the point of the comparison.
//!
//! Run with: `cargo run -p atmem-bench --release --example ntier_comparison`

use atmem::{Atmem, AtmemConfig, OptimizePolicy};
use atmem_apps::{App, HmsGraph, MemCtx};
use atmem_graph::{Csr, Dataset};
use atmem_hms::Platform;

const ROUNDS: usize = 3;

struct PolicyRun {
    /// Hot-tier (tier 0) data ratio after each optimize round.
    ratios: Vec<f64>,
    /// Per-tier residency after the final round, hottest first.
    residency: Vec<f64>,
    /// Simulated time of the final measured iteration, in ms.
    final_iter_ms: f64,
}

fn run_policy(platform: &Platform, csr: &Csr, policy: OptimizePolicy) -> atmem::Result<PolicyRun> {
    let config = AtmemConfig::default().with_policy(policy);
    let mut rt = Atmem::new(platform.clone(), config)?;
    let graph = HmsGraph::load(&mut rt, csr)?;
    let mut kernel = App::PageRank.instantiate(&mut rt, graph)?;

    let mut ratios = Vec::new();
    for _ in 0..ROUNDS {
        kernel.reset(&mut rt);
        rt.profiling_start()?;
        kernel.run_iteration(&mut MemCtx::bulk(rt.machine_mut()));
        rt.profiling_stop()?;
        let report = rt.optimize()?;
        ratios.push(report.data_ratio);
    }

    kernel.reset(&mut rt);
    let t0 = rt.now();
    kernel.run_iteration(&mut MemCtx::bulk(rt.machine_mut()));
    let final_iter_ms = (rt.now().as_ns() - t0.as_ns()) / 1e6;

    let audit = rt.machine_mut().audit();
    assert!(audit.is_empty(), "audit violations: {audit:?}");
    Ok(PolicyRun {
        ratios,
        residency: rt.data_ratio_vector(),
        final_iter_ms,
    })
}

fn main() -> atmem::Result<()> {
    // Shrink the hot tier so it cannot hold the whole working set: both
    // policies compete under the same binding fast-tier budget.
    let platform = Platform::hbm_dram_cxl().with_tier_capacities(&[256 << 10, 4 << 20, 64 << 20]);
    let csr = Dataset::Twitter.build_small(4);
    println!(
        "PageRank on {} ({} vertices, {} edges, {:.1} MiB) — platform {}\n",
        Dataset::Twitter.name(),
        csr.num_vertices(),
        csr.num_edges(),
        csr.simulated_footprint() as f64 / (1 << 20) as f64,
        platform.name,
    );

    let atmem = run_policy(&platform, &csr, OptimizePolicy::Atmem)?;
    let autonuma = run_policy(&platform, &csr, OptimizePolicy::Autonuma)?;

    let fmt_vec = |v: &[f64]| {
        v.iter()
            .map(|r| format!("{:.1}%", r * 100.0))
            .collect::<Vec<_>>()
            .join(" / ")
    };
    for (name, run) in [("atmem", &atmem), ("autonuma", &autonuma)] {
        println!(
            "{name:<9} hot-tier ratio per round: {}   residency: [{}]   final iter: {:.3} ms",
            fmt_vec(&run.ratios),
            fmt_vec(&run.residency),
            run.final_iter_ms,
        );
    }

    let atmem_hot = *atmem.ratios.last().unwrap();
    let autonuma_hot = *autonuma.ratios.last().unwrap();
    println!(
        "\natmem holds {:.1}% of the data on the hot tier vs autonuma's {:.1}% \
         at the same budget ({:.2}x final-iteration speedup)",
        atmem_hot * 100.0,
        autonuma_hot * 100.0,
        autonuma.final_iter_ms / atmem.final_iter_ms,
    );
    assert!(
        atmem_hot > autonuma_hot,
        "atmem must beat the OS-tiering baseline on hot-tier data ratio"
    );
    assert!(
        atmem.final_iter_ms <= autonuma.final_iter_ms,
        "atmem must not be slower than the OS-tiering baseline"
    );
    Ok(())
}
