//! ATMem vs an AutoNUMA-style OS-tiering baseline on a three-tier machine.
//!
//! Both policies run the same profiled PageRank workload on the
//! HBM-DRAM-CXL platform through the multi-round protocol
//! ([`run_protocol_rounds`]). ATMem's analyzer promotes its critical
//! chunks straight to the hottest tier with headroom; the AutoNUMA
//! baseline only ever promotes a hot page one hop hotter per round and
//! pays `mbind`'s remap costs, so it climbs the tier ladder slowly — the
//! gap in hot-tier data ratio at the same fast-tier budget, and the number
//! of rounds each policy needs to converge, are the point of the
//! comparison.
//!
//! Run with: `cargo run -p atmem-bench --release --example ntier_comparison`

use atmem::{AtmemConfig, OptimizePolicy};
use atmem_apps::{run_protocol_rounds, App, Mode, ProtocolResult};
use atmem_graph::{Csr, Dataset};
use atmem_hms::Platform;

const ROUNDS: usize = 4;

fn run_policy(
    platform: &Platform,
    csr: &Csr,
    policy: OptimizePolicy,
) -> atmem::Result<ProtocolResult> {
    let r = run_protocol_rounds(
        platform.clone(),
        AtmemConfig::default().with_policy(policy),
        csr,
        App::PageRank,
        Mode::Atmem,
        1,
        ROUNDS,
    )?;
    assert!(r.audit.is_empty(), "audit violations: {:?}", r.audit);
    Ok(r)
}

fn main() -> atmem::Result<()> {
    // Shrink the hot tier so it cannot hold the whole working set: both
    // policies compete under the same binding fast-tier budget.
    let platform = Platform::hbm_dram_cxl().with_tier_capacities(&[256 << 10, 4 << 20, 64 << 20]);
    let csr = Dataset::Twitter.build_small(4);
    println!(
        "PageRank on {} ({} vertices, {} edges, {:.1} MiB) — platform {}\n",
        Dataset::Twitter.name(),
        csr.num_vertices(),
        csr.num_edges(),
        csr.simulated_footprint() as f64 / (1 << 20) as f64,
        platform.name,
    );

    let atmem = run_policy(&platform, &csr, OptimizePolicy::Atmem)?;
    let autonuma = run_policy(&platform, &csr, OptimizePolicy::Autonuma)?;

    let fmt_vec = |v: &[f64]| {
        v.iter()
            .map(|r| format!("{:.1}%", r * 100.0))
            .collect::<Vec<_>>()
            .join(" / ")
    };
    for (name, run) in [("atmem", &atmem), ("autonuma", &autonuma)] {
        println!(
            "{name:<9} hot-tier ratio per round: {}   final iter: {:.3} ms",
            fmt_vec(&run.round_ratios),
            run.second_iter.as_ns() / 1e6,
        );
    }

    let atmem_hot = *atmem.round_ratios.last().unwrap();
    let autonuma_hot = *autonuma.round_ratios.last().unwrap();
    println!(
        "\natmem holds {:.1}% of the data on the hot tier vs autonuma's {:.1}% \
         at the same budget ({:.2}x final-iteration speedup)",
        atmem_hot * 100.0,
        autonuma_hot * 100.0,
        autonuma.second_iter.as_ns() / atmem.second_iter.as_ns(),
    );
    assert!(
        atmem_hot > autonuma_hot,
        "atmem must beat the OS-tiering baseline on hot-tier data ratio"
    );
    assert!(
        atmem.second_iter.as_ns() <= autonuma.second_iter.as_ns(),
        "atmem must not be slower than the OS-tiering baseline"
    );

    // Convergence contracts of the multi-round protocol. ATMem reaches its
    // placement in the very first round; the one-hop-per-round AutoNUMA
    // ladder climbs monotonically and has levelled off by the last round.
    assert!(
        (atmem.round_ratios[0] - atmem_hot).abs() < 0.05,
        "atmem should converge in one round: {:?}",
        atmem.round_ratios
    );
    for w in autonuma.round_ratios.windows(2) {
        assert!(
            w[1] >= w[0] - 0.02,
            "autonuma climbing must be monotone: {:?}",
            autonuma.round_ratios
        );
    }
    let last_step = autonuma.round_ratios[ROUNDS - 1] - autonuma.round_ratios[ROUNDS - 2];
    assert!(
        last_step.abs() < 0.05,
        "autonuma should have converged by round {ROUNDS}: {:?}",
        autonuma.round_ratios
    );
    println!("convergence: atmem in 1 round, autonuma levelled off by round {ROUNDS}");
    Ok(())
}
