//! Quickstart: the five-call ATMem API on a skewed array.
//!
//! Mirrors Listing 1 of the paper: register data with `malloc`, profile one
//! phase of the application, call `optimize`, and keep running — the hot
//! region is now on the fast tier.
//!
//! Run with: `cargo run -p atmem-bench --release --example quickstart`

use atmem::{Atmem, AtmemConfig};
use atmem_hms::{Platform, TierId};

fn main() -> atmem::Result<()> {
    // A simulated Optane testbed: DRAM (fast) next to NVM (slow).
    let mut rt = Atmem::new(Platform::nvm_dram(), AtmemConfig::default())?;

    // atmem_malloc: an 8 MiB array, placed on NVM like everything else.
    let n = 1 << 20;
    let data = rt.malloc::<u64>(n, "scores")?;
    for i in 0..n {
        data.poke(rt.machine_mut(), i, i as u64);
    }
    println!(
        "allocated {} MiB on {}",
        n * 8 / (1 << 20),
        rt.machine().platform().slow().name
    );

    // A skewed workload: 90% of accesses hit the first ~8% of the array.
    let skewed = |rt: &mut Atmem, sweeps: usize| {
        let hot = n / 12;
        for i in 0..sweeps * 100_000 {
            let idx = if i % 10 < 9 {
                (i * 7919) % hot
            } else {
                hot + (i * 104_729) % (n - hot)
            };
            let _ = data.get(rt.machine_mut(), idx);
        }
    };

    // atmem_profiling_start / iteration 1 / atmem_profiling_stop.
    rt.profiling_start()?;
    let t0 = rt.now();
    skewed(&mut rt, 2);
    let first = rt.now().as_ns() - t0.as_ns();
    let profile = rt.profiling_stop()?;
    println!(
        "iteration 1: {:.2} ms  ({} samples at period {})",
        first / 1e6,
        profile.samples,
        profile.period
    );

    // atmem_optimize: analyze + migrate the hot region to DRAM.
    let report = rt.optimize()?;
    println!(
        "optimize: moved {} KiB in {} regions ({:.1}% of data), migration took {}",
        report.migration.bytes_moved / 1024,
        report.migration.regions,
        report.data_ratio * 100.0,
        report.migration.time,
    );

    // Iteration 2 runs on the optimized placement.
    let t1 = rt.now();
    skewed(&mut rt, 2);
    let second = rt.now().as_ns() - t1.as_ns();
    println!(
        "iteration 2: {:.2} ms  -> {:.2}x speedup",
        second / 1e6,
        first / second
    );

    // The hot prefix is on DRAM now.
    let tier = rt.machine_mut().tier_of(data.addr_of(0))?;
    assert_eq!(tier, TierId::FAST);
    println!(
        "hot prefix now resides on {}",
        rt.machine().platform().fast().name
    );
    Ok(())
}
