//! Offline trace-based profiling, Pin-style.
//!
//! The related work the ATMem paper compares against ([9] Dulloor et al.,
//! [30] Shen et al.) profiles applications *offline* with full memory
//! traces. This example reproduces that workflow on the simulator: record
//! every access of a PageRank iteration with the machine's tracer, build
//! an exact per-chunk miss histogram offline, and compare it with what
//! ATMem's online sampling saw — then show both lead to the same placement
//! decision for the hot object.
//!
//! Run with: `cargo run -p atmem-bench --release --example offline_analysis`

use std::collections::HashMap;

use atmem::{Atmem, AtmemConfig, ObjectId};
use atmem_apps::{App, HmsGraph, MemCtx};
use atmem_graph::Dataset;
use atmem_hms::Platform;

fn main() -> atmem::Result<()> {
    let csr = Dataset::Twitter.build_small(4);
    let mut rt = Atmem::new(Platform::nvm_dram(), AtmemConfig::default())?;
    let graph = HmsGraph::load(&mut rt, &csr)?;
    let mut kernel = App::PageRank.instantiate(&mut rt, graph)?;
    kernel.reset(&mut rt);

    // Record BOTH ways at once: the full trace (offline) and PEBS samples
    // (online). Tracing is observationally neutral, so the comparison is
    // apples-to-apples.
    rt.machine_mut().trace_enable();
    rt.profiling_start()?;
    kernel.run_iteration(&mut MemCtx::bulk(rt.machine_mut()));
    let profile = rt.profiling_stop()?;
    rt.machine_mut().trace_disable();
    let trace = rt.machine_mut().trace_drain();

    println!(
        "recorded {} trace events; online sampling kept {} ({}x reduction)\n",
        trace.len(),
        profile.samples,
        trace.len() as u64 / profile.samples.max(1)
    );

    // Offline pass: exact read-miss histogram per (object, chunk).
    let mut exact: HashMap<(ObjectId, usize), u64> = HashMap::new();
    for rec in &trace {
        if rec.kind == atmem_hms::AccessKind::ReadMiss {
            if let Some(id) = rt.registry().object_at(rec.vaddr) {
                let obj = rt.registry().get(id).expect("live object");
                if let Some(chunk) = obj.chunk_of(rec.vaddr) {
                    *exact.entry((id, chunk)).or_insert(0) += 1;
                }
            }
        }
    }

    // Compare the two views object by object: exact misses vs sampled
    // misses scaled by the period.
    println!(
        "{:<16} {:>14} {:>18} {:>10}",
        "object", "exact misses", "sampled x period", "rel. err"
    );
    let objects: Vec<_> = rt
        .registry()
        .iter()
        .map(|o| (o.id(), o.name().to_string(), o.total_samples()))
        .collect();
    for (id, name, samples) in &objects {
        let exact_total: u64 = exact
            .iter()
            .filter(|((oid, _), _)| oid == id)
            .map(|(_, &c)| c)
            .sum();
        let estimated = samples * profile.period;
        let err = if exact_total > 0 {
            (estimated as f64 - exact_total as f64).abs() / exact_total as f64
        } else {
            0.0
        };
        println!(
            "{:<16} {:>14} {:>18} {:>9.1}%",
            name,
            exact_total,
            estimated,
            err * 100.0
        );
    }

    // Both views agree on which object is hottest per byte.
    let hottest_exact = objects
        .iter()
        .max_by_key(|(id, _, _)| {
            let total: u64 = exact
                .iter()
                .filter(|((oid, _), _)| oid == id)
                .map(|(_, &c)| c)
                .sum();
            let size = rt.registry().get(*id).expect("live").size() as u64;
            total * 1_000_000 / size
        })
        .map(|(_, name, _)| name.clone())
        .expect("objects exist");
    let hottest_sampled = objects
        .iter()
        .max_by_key(|(id, _, samples)| {
            let size = rt.registry().get(*id).expect("live").size() as u64;
            samples * 1_000_000 / size
        })
        .map(|(_, name, _)| name.clone())
        .expect("objects exist");
    println!("\nhottest object per byte — offline: {hottest_exact}, online: {hottest_sampled}");
    assert_eq!(
        hottest_exact, hottest_sampled,
        "sampled profile must identify the same hot object"
    );
    println!("both profiles point the optimizer at the same data.");
    Ok(())
}
