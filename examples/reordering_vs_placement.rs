//! Graph reordering versus data placement.
//!
//! The classic software answer to skewed graphs is *reordering*: relabel
//! vertices by degree so hub data packs into a contiguous prefix (better
//! cache lines, better prefetch). ATMem's answer is *placement*: leave the
//! graph alone and move hot regions to fast memory. This example runs
//! PageRank four ways — baseline, reordered-only, ATMem-only, and both —
//! showing that the techniques compose: reordering concentrates the hot
//! region, which then makes ATMem's selection tighter.
//!
//! Run with: `cargo run -p atmem-bench --release --example reordering_vs_placement`

use atmem::{Atmem, AtmemConfig, PlacementPolicy, Result};
use atmem_apps::{App, HmsGraph, MemCtx, Mode};
use atmem_graph::{degree_order, Dataset};
use atmem_hms::Platform;

fn run(csr: &atmem_graph::Csr, mode: Mode) -> Result<(f64, f64)> {
    // Both modes start with everything on the slow tier; only Atmem mode
    // profiles and migrates.
    let config = AtmemConfig::default().with_placement(PlacementPolicy::AllSlow);
    let mut rt = Atmem::new(Platform::nvm_dram(), config)?;
    let graph = HmsGraph::load(&mut rt, csr)?;
    let mut kernel = App::PageRank.instantiate(&mut rt, graph)?;
    kernel.reset(&mut rt);
    if mode == Mode::Atmem {
        rt.profiling_start()?;
    }
    kernel.run_iteration(&mut MemCtx::bulk(rt.machine_mut()));
    if mode == Mode::Atmem {
        rt.profiling_stop()?;
        rt.optimize()?;
    }
    kernel.reset(&mut rt);
    let t = rt.now();
    kernel.run_iteration(&mut MemCtx::bulk(rt.machine_mut()));
    Ok(((rt.now().as_ns() - t.as_ns()) / 1e6, rt.fast_data_ratio()))
}

fn main() -> Result<()> {
    let original = Dataset::Twitter.build_small(3);
    let (reordered, _) = degree_order(&original);
    println!(
        "PageRank on twitter stand-in ({} vertices, {} edges), NVM-DRAM testbed\n",
        original.num_vertices(),
        original.num_edges()
    );
    println!(
        "{:<28} {:>12} {:>12}",
        "configuration", "iter2 (ms)", "data ratio"
    );

    let (base, _) = run(&original, Mode::Baseline)?;
    println!(
        "{:<28} {:>12.3} {:>11.1}%",
        "baseline (NVM, original)", base, 0.0
    );

    let (reord, _) = run(&reordered, Mode::Baseline)?;
    println!(
        "{:<28} {:>12.3} {:>11.1}%",
        "reordered only (NVM)", reord, 0.0
    );

    let (atmem, ratio) = run(&original, Mode::Atmem)?;
    println!(
        "{:<28} {:>12.3} {:>11.1}%",
        "ATMem only (original)",
        atmem,
        ratio * 100.0
    );

    let (both, ratio_both) = run(&reordered, Mode::Atmem)?;
    println!(
        "{:<28} {:>12.3} {:>11.1}%",
        "reordered + ATMem",
        both,
        ratio_both * 100.0
    );

    println!(
        "\nspeedups over baseline: reorder {:.2}x, placement {:.2}x, both {:.2}x",
        base / reord,
        base / atmem,
        base / both
    );
    Ok(())
}
