//! Phase-adaptive placement with demotion (the §9 future-work extension).
//!
//! A workload whose hot region *moves* between phases defeats one-shot
//! placement: the fast tier fills with phase-1 data and phase 2 starves.
//! With `allow_demotion` enabled, each `optimize()` call first evicts
//! regions the fresh profile no longer marks critical, so the placement
//! follows the workload.
//!
//! Run with: `cargo run -p atmem-bench --release --example phase_adaptive`

use atmem::{Atmem, AtmemConfig, ResidencyReport, Result};
use atmem_hms::{Platform, TrackedVec};

const ELEMS: usize = 1 << 21; // 16 MiB array

fn hammer(rt: &mut Atmem, v: &TrackedVec<u64>, window_start: usize, window_len: usize) {
    for i in 0..400_000usize {
        let idx = if i % 10 < 9 {
            window_start + (i * 2654435761) % window_len
        } else {
            (i * 104729) % ELEMS
        };
        let _ = v.get(rt.machine_mut(), idx % ELEMS);
    }
}

fn run(adaptive: bool) -> Result<Vec<f64>> {
    // Fast tier too small for both phase windows at once.
    let platform = Platform::nvm_dram().with_capacities(4 * 1024 * 1024, 256 * 1024 * 1024);
    let mut config = AtmemConfig::default();
    config.migration.allow_demotion = adaptive;
    config.migration.max_region_bytes = 1024 * 1024;
    let mut rt = Atmem::new(platform, config)?;
    let v = rt.malloc::<u64>(ELEMS, "phased")?;

    let window = ELEMS / 8;
    let mut times = Vec::new();
    for phase in 0..3usize {
        let start = [0, 5 * window, 2 * window][phase];
        // Profile the new phase and re-optimize.
        rt.profiling_start()?;
        hammer(&mut rt, &v, start, window);
        rt.profiling_stop()?;
        rt.optimize()?;
        // Measure the phase steady state.
        let t = rt.now();
        hammer(&mut rt, &v, start, window);
        times.push((rt.now().as_ns() - t.as_ns()) / 1e6);
    }
    if adaptive {
        println!(
            "final placement (adaptive):\n{}",
            ResidencyReport::collect(&rt)
        );
    }
    Ok(times)
}

fn main() -> Result<()> {
    println!("three-phase workload, hot window moves each phase; fast tier fits one window\n");
    let fixed = run(false)?;
    let adaptive = run(true)?;
    println!(
        "{:<10} {:>12} {:>12} {:>9}",
        "phase", "fixed (ms)", "adaptive", "gain"
    );
    for (i, (f, a)) in fixed.iter().zip(&adaptive).enumerate() {
        println!(
            "{:<10} {:>12.2} {:>12.2} {:>8.2}x",
            format!("phase {i}"),
            f,
            a,
            f / a
        );
    }
    let total_f: f64 = fixed.iter().sum();
    let total_a: f64 = adaptive.iter().sum();
    println!(
        "{:<10} {:>12.2} {:>12.2} {:>8.2}x",
        "total",
        total_f,
        total_a,
        total_f / total_a
    );
    Ok(())
}
