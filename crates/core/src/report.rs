//! Placement introspection: per-object residency reports and chunk
//! heatmaps.
//!
//! These views are what operators look at to understand *why* ATMem chose
//! a placement: which objects were sampled how hard, where the critical
//! regions sit inside each object, and how many of an object's bytes ended
//! up on the fast tier.

use std::fmt;

use atmem_hms::TierId;

use crate::analyzer::Analysis;
use crate::registry::Registry;
use crate::runtime::Atmem;

/// Placement summary of one data object.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectResidency {
    /// Registration name.
    pub name: String,
    /// Total size in bytes.
    pub size: usize,
    /// Bytes currently on the fast tier.
    pub fast_bytes: usize,
    /// Bytes resident on each tier, hottest first. `per_tier[0]` equals
    /// [`ObjectResidency::fast_bytes`]; two-tier platforms therefore see
    /// nothing new here.
    pub per_tier: Vec<usize>,
    /// Total profiler samples attributed.
    pub samples: u64,
    /// Number of chunks.
    pub chunks: usize,
}

impl ObjectResidency {
    /// Fraction of the object on the fast tier.
    pub fn fast_ratio(&self) -> f64 {
        if self.size == 0 {
            0.0
        } else {
            self.fast_bytes as f64 / self.size as f64
        }
    }
}

/// A whole-runtime placement report.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResidencyReport {
    /// One entry per live object, in registration order.
    pub objects: Vec<ObjectResidency>,
}

impl ResidencyReport {
    /// Collects the report from a runtime.
    pub fn collect(rt: &Atmem) -> Self {
        let num_tiers = rt.machine().num_tiers();
        let objects = rt
            .registry()
            .iter()
            .map(|o| {
                let per_tier: Vec<usize> = (0..num_tiers)
                    .map(|t| rt.machine().resident_bytes(o.range(), TierId::new(t)))
                    .collect();
                ObjectResidency {
                    name: o.name().to_string(),
                    size: o.size(),
                    fast_bytes: rt.machine().resident_bytes(o.range(), TierId::FAST),
                    per_tier,
                    samples: o.total_samples(),
                    chunks: o.num_chunks(),
                }
            })
            .collect();
        ResidencyReport { objects }
    }

    /// Total registered bytes.
    pub fn total_bytes(&self) -> usize {
        self.objects.iter().map(|o| o.size).sum()
    }

    /// Total fast-tier bytes across objects.
    pub fn total_fast_bytes(&self) -> usize {
        self.objects.iter().map(|o| o.fast_bytes).sum()
    }

    /// Total resident bytes per tier across objects, hottest first. Empty
    /// when the report holds no objects.
    pub fn total_per_tier(&self) -> Vec<usize> {
        let tiers = self.objects.iter().map(|o| o.per_tier.len()).max();
        let Some(tiers) = tiers else {
            return Vec::new();
        };
        (0..tiers)
            .map(|t| {
                self.objects
                    .iter()
                    .map(|o| o.per_tier.get(t).copied().unwrap_or(0))
                    .sum()
            })
            .collect()
    }
}

impl fmt::Display for ResidencyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<20} {:>12} {:>12} {:>8} {:>9} {:>8}",
            "object", "bytes", "fast bytes", "fast %", "samples", "chunks"
        )?;
        let show_tiers = self.objects.iter().any(|o| o.per_tier.len() > 2);
        for o in &self.objects {
            write!(
                f,
                "{:<20} {:>12} {:>12} {:>7.1}% {:>9} {:>8}",
                o.name,
                o.size,
                o.fast_bytes,
                o.fast_ratio() * 100.0,
                o.samples,
                o.chunks
            )?;
            if show_tiers {
                let cells: Vec<String> = o.per_tier.iter().map(|b| b.to_string()).collect();
                write!(f, "  [{}]", cells.join(" / "))?;
            }
            writeln!(f)?;
        }
        let total = self.total_bytes();
        let fast = self.total_fast_bytes();
        writeln!(
            f,
            "{:<20} {:>12} {:>12} {:>7.1}%",
            "TOTAL",
            total,
            fast,
            if total == 0 {
                0.0
            } else {
                fast as f64 / total as f64 * 100.0
            }
        )
    }
}

/// Renders an ASCII heatmap of one object's chunk profile: one character
/// per bucket of chunks, `.` cold through `#` hottest, with `|` marking
/// analyzer-critical buckets when an analysis is supplied.
///
/// `width` buckets are emitted (chunks are averaged into buckets when the
/// object has more chunks than `width`).
pub fn chunk_heatmap(registry: &Registry, analysis: Option<&Analysis>, width: usize) -> String {
    const RAMP: [char; 6] = ['.', ':', '-', '=', '+', '#'];
    let width = width.max(8);
    let mut out = String::new();
    for obj in registry.iter() {
        let chunks = obj.num_chunks();
        let buckets = width.min(chunks);
        let per_bucket = chunks.div_ceil(buckets);
        let samples = obj.samples();
        let max_bucket = (0..buckets)
            .map(|b| {
                samples[b * per_bucket..(b * per_bucket + per_bucket).min(chunks)]
                    .iter()
                    .sum::<u64>()
            })
            .max()
            .unwrap_or(0)
            .max(1);
        let critical = analysis.and_then(|a| {
            a.objects
                .iter()
                .find(|oa| oa.id == obj.id())
                .map(|oa| &oa.critical)
        });
        out.push_str(&format!("{:<20} [", obj.name()));
        for b in 0..buckets {
            let lo = b * per_bucket;
            let hi = (lo + per_bucket).min(chunks);
            let heat: u64 = samples[lo..hi].iter().sum();
            let is_critical = critical
                .map(|c| c[lo..hi].iter().any(|&x| x))
                .unwrap_or(false);
            if is_critical && heat == 0 {
                out.push('|'); // promoted without samples: estimated critical
            } else {
                let level = (heat * (RAMP.len() as u64 - 1)).div_ceil(max_bucket) as usize;
                out.push(RAMP[level.min(RAMP.len() - 1)]);
            }
        }
        out.push_str("]\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::analyze;
    use crate::config::AtmemConfig;
    use atmem_hms::Platform;

    fn runtime_with_hot_object() -> Atmem {
        let mut rt = Atmem::new(Platform::testing(), AtmemConfig::default()).unwrap();
        let v = rt.malloc::<u64>(128 * 1024, "hot").unwrap();
        rt.profiling_start().unwrap();
        for i in 0..100_000usize {
            let _ = v.get(rt.machine_mut(), (i * 2654435761) % 16384);
        }
        rt.profiling_stop().unwrap();
        rt
    }

    #[test]
    fn residency_report_tracks_migration() {
        let mut rt = runtime_with_hot_object();
        let before = ResidencyReport::collect(&rt);
        assert_eq!(before.total_fast_bytes(), 0);
        assert!(before.objects[0].samples > 0);
        rt.optimize().unwrap();
        let after = ResidencyReport::collect(&rt);
        assert!(after.total_fast_bytes() > 0);
        assert_eq!(after.total_bytes(), before.total_bytes());
        let text = after.to_string();
        assert!(text.contains("hot") && text.contains("TOTAL"));
    }

    #[test]
    fn heatmap_marks_the_hot_prefix() {
        let rt = runtime_with_hot_object();
        let analysis = analyze(rt.registry(), &rt.config().analyzer.clone());
        let map = chunk_heatmap(rt.registry(), Some(&analysis), 32);
        assert!(map.starts_with("hot"));
        let row: String = map
            .chars()
            .skip_while(|&c| c != '[')
            .take_while(|&c| c != ']')
            .collect();
        // The hot prefix (first eighth) must be hotter than the tail.
        assert!(row.len() > 8);
        let head = &row[1..4];
        assert!(
            head.contains('#') || head.contains('+') || head.contains('='),
            "hot prefix not visible in {row:?}"
        );
        assert!(row.ends_with('.'), "cold tail not visible in {row:?}");
    }

    #[test]
    fn heatmap_marks_promoted_unsampled_buckets() {
        // Hand-build a registry where promotion adds chunks that were never
        // sampled: the heatmap must show them as '|'.
        use crate::analyzer::local::LocalSelection;
        use crate::analyzer::{Analysis, ObjectAnalysis};
        use crate::chunk::chunk_geometry;
        use crate::config::ChunkConfig;
        use atmem_hms::{VirtAddr, VirtRange};

        let mut registry = crate::registry::Registry::new();
        let bytes = 8 * 4096;
        let geometry = chunk_geometry(
            bytes,
            &ChunkConfig {
                target_chunks: 8,
                min_chunk_bytes: 4096,
            },
        );
        let id = registry.register(
            "obj",
            VirtRange::new(VirtAddr::new(0x40000000), bytes),
            geometry,
        );
        // Sample only chunk 0; pretend promotion added chunk 1.
        let start = registry.get(id).unwrap().chunk_range(0).start;
        registry.attribute(start).unwrap();
        let mut critical = vec![false; 8];
        critical[0] = true;
        critical[1] = true; // promoted, unsampled
        let analysis = Analysis {
            objects: vec![ObjectAnalysis {
                id,
                selection: LocalSelection {
                    priorities: vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
                    theta: 0.5,
                    critical: {
                        let mut c = vec![false; 8];
                        c[0] = true;
                        c
                    },
                },
                weight: 1.0,
                tr_threshold: 0.5,
                critical,
                promoted_chunks: 1,
            }],
        };
        let map = chunk_heatmap(&registry, Some(&analysis), 8);
        let row: String = map
            .chars()
            .skip_while(|&c| c != '[')
            .take_while(|&c| c != ']')
            .collect();
        assert_eq!(&row[2..3], "|", "promoted unsampled bucket marked: {row}");
    }

    #[test]
    fn heatmap_handles_empty_registry() {
        let rt = Atmem::new(Platform::testing(), AtmemConfig::default()).unwrap();
        assert_eq!(chunk_heatmap(rt.registry(), None, 40), "");
    }
}
