//! Error types for the ATMem runtime.

use std::error::Error as StdError;
use std::fmt;

use atmem_hms::{HmsError, VirtAddr};

/// Errors produced by the ATMem runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AtmemError {
    /// Propagated failure from the memory system.
    Hms(HmsError),
    /// The address does not belong to any registered data object.
    Unregistered(VirtAddr),
    /// `optimize()` was called while profiling was still enabled.
    ProfilingActive,
    /// `profiling_stop()` without a matching `profiling_start()`.
    ProfilingNotActive,
    /// A configuration value is out of range.
    InvalidConfig {
        /// Name of the offending parameter.
        what: &'static str,
        /// Explanation of the constraint.
        reason: &'static str,
    },
}

impl fmt::Display for AtmemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AtmemError::Hms(e) => write!(f, "memory system error: {e}"),
            AtmemError::Unregistered(va) => {
                write!(f, "address {va} is not part of a registered data object")
            }
            AtmemError::ProfilingActive => {
                write!(f, "cannot optimize while profiling is active")
            }
            AtmemError::ProfilingNotActive => write!(f, "profiling is not active"),
            AtmemError::InvalidConfig { what, reason } => {
                write!(f, "invalid configuration {what}: {reason}")
            }
        }
    }
}

impl StdError for AtmemError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            AtmemError::Hms(e) => Some(e),
            _ => None,
        }
    }
}

impl From<HmsError> for AtmemError {
    fn from(e: HmsError) -> Self {
        AtmemError::Hms(e)
    }
}

/// Convenience alias used by all fallible operations in this crate.
pub type Result<T> = std::result::Result<T, AtmemError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = AtmemError::from(HmsError::ZeroSizedAllocation);
        assert!(e.to_string().contains("memory system"));
        assert!(StdError::source(&e).is_some());
        assert!(StdError::source(&AtmemError::ProfilingActive).is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AtmemError>();
    }
}
