//! An AutoNUMA-style OS-tiering baseline policy.
//!
//! Linux tiering (NUMA balancing plus reclaim-based demotion) has no
//! application-level notion of data objects or chunks: it watches page
//! touches through periodic access-bit scans, promotes a page one tier
//! hotter when it is touched in consecutive scan windows, and demotes cold
//! pages to the next-colder tier when a tier crosses its high watermark.
//! This module reproduces that shape inside the simulator so the same
//! workload can run under the paper's protocol and the OS baseline on any
//! platform preset ([`OptimizePolicy`](crate::config::OptimizePolicy)
//! selects between them):
//!
//! * the raw PEBS sample stream stands in for access-bit scans, split into
//!   equal **epochs** by stream position (the simulator's clock does not
//!   timestamp samples);
//! * a page touched in [`promote_touches`](crate::config::AutonumaConfig)
//!   consecutive epochs is **promoted one hop hotter** (never straight to
//!   the top — the kernel ladders pages up tier by tier);
//! * after promotion, every tier above its
//!   [`high_watermark`](crate::config::AutonumaConfig) **demotes** its
//!   coldest (untouched) pages to the next-colder tier until it drains to
//!   the low watermark;
//! * all movement goes through the **`mbind` service** — page-granular
//!   splintered remapping, the same mechanism the OS would use — so the
//!   baseline also pays `mbind`'s TLB and mapping costs (Table 4).
//!
//! Everything iterates in virtual-address order over plain collections, so
//! the policy is as deterministic as the rest of the simulator.

use std::collections::{BTreeMap, BTreeSet};

use atmem_hms::addr::PAGE_SIZE;
use atmem_hms::{HmsError, Machine, SampleRecord, SimDuration, TierId, VirtAddr, VirtRange};

use crate::config::AutonumaConfig;
use crate::error::Result;
use crate::migrate::{MigrationOutcome, MigrationPlan, PlannedRegion};
use crate::object::ObjectId;
use crate::registry::Registry;

/// What one AutoNUMA optimize pass did, in the solo optimizer's terms.
pub(crate) struct AutonumaOutcome {
    /// The promoted page runs, as a plan (for the report; execution has
    /// already happened).
    pub plan: MigrationPlan,
    /// Promotion traffic.
    pub promotion: MigrationOutcome,
    /// Watermark demotion traffic, if any tier was over its high mark.
    pub demotion: Option<MigrationOutcome>,
}

/// Runs one AutoNUMA pass over `machine`: promote-on-second-touch from
/// `records`, then watermark demotion, both through `mbind`.
pub(crate) fn run(
    machine: &mut Machine,
    registry: &Registry,
    records: &[SampleRecord],
    config: &AutonumaConfig,
) -> Result<AutonumaOutcome> {
    let objects: Vec<(VirtRange, ObjectId)> = {
        let mut v: Vec<(VirtRange, ObjectId)> =
            registry.iter().map(|o| (o.range(), o.id())).collect();
        v.sort_by_key(|(r, _)| r.start);
        v
    };
    let hot = hot_pages(records, &objects, config);

    let promo_start = machine.now();
    let (plan, promotion) = promote(machine, &objects, &hot, config)?;
    let mut promotion = promotion;
    promotion.time = SimDuration::from_ns(machine.now().as_ns() - promo_start.as_ns());

    let demo_start = machine.now();
    let demotion = demote_over_watermarks(machine, &objects, &hot, config)?;
    let demotion = demotion.map(|mut d| {
        d.time = SimDuration::from_ns(machine.now().as_ns() - demo_start.as_ns());
        d
    });

    Ok(AutonumaOutcome {
        plan,
        promotion,
        demotion,
    })
}

/// Pages (by base address) touched in `promote_touches` consecutive
/// epochs, restricted to registered objects. The BTreeSet gives the
/// address-ordered iteration every later stage relies on.
fn hot_pages(
    records: &[SampleRecord],
    objects: &[(VirtRange, ObjectId)],
    config: &AutonumaConfig,
) -> BTreeSet<u64> {
    let epoch_len = records.len().div_ceil(config.epochs).max(1);
    // page -> (last epoch touched, consecutive-epoch streak)
    let mut touch: BTreeMap<u64, (usize, u32)> = BTreeMap::new();
    let mut hot = BTreeSet::new();
    for (i, rec) in records.iter().enumerate() {
        let page = rec.vaddr.raw() & !(PAGE_SIZE as u64 - 1);
        if owner_of(objects, page).is_none() {
            continue;
        }
        let epoch = i / epoch_len;
        let streak = match touch.get_mut(&page) {
            None => {
                touch.insert(page, (epoch, 1));
                1
            }
            Some((last, streak)) => {
                if epoch == *last + 1 {
                    *streak += 1;
                } else if epoch > *last + 1 {
                    *streak = 1;
                }
                *last = epoch;
                *streak
            }
        };
        if streak >= config.promote_touches {
            hot.insert(page);
        }
    }
    hot
}

/// The object a page belongs to, if any (object ranges are disjoint and
/// sorted by start).
fn owner_of(objects: &[(VirtRange, ObjectId)], page: u64) -> Option<ObjectId> {
    let idx = objects.partition_point(|(r, _)| r.start.raw() <= page);
    let (range, id) = objects.get(idx.checked_sub(1)?)?;
    (page < range.start.raw() + range.len as u64).then_some(*id)
}

/// Promotes hot pages one hop hotter, coalescing address-adjacent pages
/// with the same source tier into single `mbind` calls, up to the
/// configured byte cap.
fn promote(
    machine: &mut Machine,
    objects: &[(VirtRange, ObjectId)],
    hot: &BTreeSet<u64>,
    config: &AutonumaConfig,
) -> Result<(MigrationPlan, MigrationOutcome)> {
    // Coalesce runs first: (start page, pages, src tier).
    let mut runs: Vec<(u64, usize, TierId)> = Vec::new();
    let mut budget = config.promote_cap_bytes / PAGE_SIZE;
    for &page in hot {
        if budget == 0 {
            break;
        }
        let tier = machine.tier_of(VirtAddr::new(page))?;
        if tier.hotter().is_none() {
            continue; // already on the hottest tier
        }
        budget -= 1;
        match runs.last_mut() {
            Some((start, pages, t))
                if *t == tier && *start + (*pages * PAGE_SIZE) as u64 == page =>
            {
                *pages += 1;
            }
            _ => runs.push((page, 1, tier)),
        }
    }

    let mut plan = MigrationPlan::default();
    let mut outcome = MigrationOutcome::default();
    for (start, pages, src) in runs {
        let dst = src.hotter().expect("top-tier pages were filtered out");
        let range = VirtRange::new(VirtAddr::new(start), pages * PAGE_SIZE);
        plan.regions.push(PlannedRegion {
            object: owner_of(objects, start).expect("hot pages belong to registered objects"),
            range,
            priority: config.promote_touches as f64,
            dst: Some(dst),
        });
        plan.total_bytes += range.len;
        match machine.migrate_mbind(range, dst) {
            Ok(_) => {
                outcome.bytes_moved += range.len;
                outcome.regions += 1;
            }
            // Hotter tier full: the kernel would have left the page where
            // it is; watermark demotion may make room for the next pass.
            Err(HmsError::OutOfMemory { .. }) | Err(HmsError::Fragmented { .. }) => {
                outcome.regions_failed += 1;
                outcome.bytes_failed += range.len;
            }
            Err(e) => return Err(e.into()),
        }
    }
    Ok((plan, outcome))
}

/// Walks the tiers hottest-first; every tier above its high watermark
/// demotes cold (non-hot) registered pages, in address order, to the
/// next-colder tier until it reaches the low watermark. Processing
/// hotter tiers first means a tier receiving demoted bytes is re-checked
/// *after* they arrive.
fn demote_over_watermarks(
    machine: &mut Machine,
    objects: &[(VirtRange, ObjectId)],
    hot: &BTreeSet<u64>,
    config: &AutonumaConfig,
) -> Result<Option<MigrationOutcome>> {
    let mut outcome: Option<MigrationOutcome> = None;
    for t in 0..machine.num_tiers().saturating_sub(1) {
        let tier = TierId::new(t);
        let capacity = machine.capacity(tier) as f64;
        let used = machine.bytes_used_by_tier()[t] as f64;
        if used <= capacity * config.high_watermark {
            continue;
        }
        let mut need = (used - capacity * config.low_watermark) as usize;
        let out = outcome.get_or_insert_with(MigrationOutcome::default);
        // Cold candidate runs on this tier, in address order.
        let mut runs: Vec<(u64, usize)> = Vec::new();
        'scan: for (range, _) in objects {
            let mut page = range.start.raw();
            let end = range.start.raw() + range.len as u64;
            while page < end {
                if need < runs.iter().map(|(_, p)| p * PAGE_SIZE).sum::<usize>() {
                    break 'scan;
                }
                if !hot.contains(&page) && machine.tier_of(VirtAddr::new(page))? == tier {
                    match runs.last_mut() {
                        Some((start, pages)) if *start + (*pages * PAGE_SIZE) as u64 == page => {
                            *pages += 1
                        }
                        _ => runs.push((page, 1)),
                    }
                }
                page += PAGE_SIZE as u64;
            }
        }
        let dst = TierId::new(t + 1);
        for (start, pages) in runs {
            if need == 0 {
                break;
            }
            let len = (pages * PAGE_SIZE).min(need.next_multiple_of(PAGE_SIZE));
            let range = VirtRange::new(VirtAddr::new(start), len);
            match machine.migrate_mbind(range, dst) {
                Ok(_) => {
                    out.bytes_moved += len;
                    out.regions += 1;
                    need = need.saturating_sub(len);
                }
                // Next-colder tier full: nowhere to drain to (the coldest
                // tier never demotes); stop working this tier.
                Err(HmsError::OutOfMemory { .. }) | Err(HmsError::Fragmented { .. }) => {
                    out.regions_failed += 1;
                    out.bytes_failed += len;
                    break;
                }
                Err(e) => return Err(e.into()),
            }
        }
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_lookup_respects_range_bounds() {
        let objects = vec![
            (
                VirtRange::new(VirtAddr::new(0x1000), 2 * PAGE_SIZE),
                ObjectId(0),
            ),
            (
                VirtRange::new(VirtAddr::new(0x10000), PAGE_SIZE),
                ObjectId(1),
            ),
        ];
        assert_eq!(owner_of(&objects, 0x1000), Some(ObjectId(0)));
        assert_eq!(owner_of(&objects, 0x2000), Some(ObjectId(0)));
        assert_eq!(owner_of(&objects, 0x3000), None);
        assert_eq!(owner_of(&objects, 0x10000), Some(ObjectId(1)));
        assert_eq!(owner_of(&objects, 0x0), None);
    }

    #[test]
    fn second_touch_across_consecutive_epochs_is_hot() {
        let objects = vec![(
            VirtRange::new(VirtAddr::new(0x1000), 8 * PAGE_SIZE),
            ObjectId(0),
        )];
        let config = AutonumaConfig::default();
        // 8 records -> epoch length 2 with 4 epochs. Page A is touched in
        // epochs 0 and 1 (hot); page B only in epoch 0; page C in epochs 0
        // and 2 (streak resets, not hot).
        let a = VirtAddr::new(0x1000);
        let b = VirtAddr::new(0x2000);
        let c = VirtAddr::new(0x3000);
        let records: Vec<SampleRecord> =
            [a, b, a, c, /* epoch 1 */ a, a, /* epoch 2 */ c, b]
                .iter()
                .map(|&vaddr| SampleRecord { vaddr })
                .collect();
        let hot = hot_pages(&records[..6], &objects, &config);
        assert!(hot.contains(&0x1000));
        assert!(!hot.contains(&0x2000));
        let hot = hot_pages(&records, &objects, &config);
        assert!(!hot.contains(&0x3000), "a gap epoch resets the streak");
    }

    #[test]
    fn samples_outside_objects_never_become_hot() {
        let objects = vec![(
            VirtRange::new(VirtAddr::new(0x1000), PAGE_SIZE),
            ObjectId(0),
        )];
        let stray = VirtAddr::new(0x8000);
        let records: Vec<SampleRecord> = (0..8).map(|_| SampleRecord { vaddr: stray }).collect();
        let hot = hot_pages(&records, &objects, &AutonumaConfig::default());
        assert!(hot.is_empty());
    }
}
