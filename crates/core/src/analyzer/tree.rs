//! The m-ary promotion tree (paper §4.3.1).
//!
//! Leaves are the chunks of one data object carrying their Eq. 3
//! classification (1 = sampled critical). Each internal node's value is the
//! sum of its children; its *tree ratio* (TR) is `value / descendant leaf
//! count` — the density of critical chunks in the address span the node
//! covers. The arity `m` controls both the span granularity and the set of
//! distinguishable TR values (a quad-tree has more thresholds than a binary
//! tree).
//!
//! The tree is stored implicitly: level by level, each level `ceil(len/m)`
//! of the one below. Padding leaves (beyond the real chunk count) count
//! toward neither value nor leaf count.

/// An m-ary tree over the chunk classification of one data object.
#[derive(Debug, Clone, PartialEq)]
pub struct MaryTree {
    arity: usize,
    /// `levels[0]` = leaves, `levels.last()` = root level (length 1).
    /// Each node stores `(critical_sum, real_leaf_count)`.
    levels: Vec<Vec<(u32, u32)>>,
}

/// Identifies a node: level index (0 = leaves) and position within level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId {
    /// Level, 0 for leaves.
    pub level: usize,
    /// Index within the level.
    pub index: usize,
}

impl MaryTree {
    /// Builds the tree bottom-up from leaf criticality.
    ///
    /// # Panics
    ///
    /// Panics if `arity < 2` or `leaves` is empty.
    pub fn build(leaves: &[bool], arity: usize) -> Self {
        assert!(arity >= 2, "tree arity must be at least 2");
        assert!(!leaves.is_empty(), "tree needs at least one leaf");
        let mut levels: Vec<Vec<(u32, u32)>> = Vec::new();
        levels.push(leaves.iter().map(|&c| (c as u32, 1)).collect());
        while levels.last().expect("non-empty").len() > 1 {
            let below = levels.last().expect("non-empty");
            let next: Vec<(u32, u32)> = below
                .chunks(arity)
                .map(|group| {
                    group
                        .iter()
                        .fold((0, 0), |acc, &(v, l)| (acc.0 + v, acc.1 + l))
                })
                .collect();
            levels.push(next);
        }
        MaryTree { arity, levels }
    }

    /// The tree arity `m`.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of real leaves (chunks).
    pub fn leaf_count(&self) -> usize {
        self.levels[0].len()
    }

    /// Number of levels (1 for a single-leaf tree).
    pub fn height(&self) -> usize {
        self.levels.len()
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        NodeId {
            level: self.levels.len() - 1,
            index: 0,
        }
    }

    /// Sum of critical leaves under `node`.
    pub fn value(&self, node: NodeId) -> u32 {
        self.levels[node.level][node.index].0
    }

    /// Number of real leaves under `node`.
    pub fn leaves_under(&self, node: NodeId) -> u32 {
        self.levels[node.level][node.index].1
    }

    /// Tree ratio of `node`: critical density in `[0, 1]`.
    pub fn tree_ratio(&self, node: NodeId) -> f64 {
        let (v, l) = self.levels[node.level][node.index];
        if l == 0 {
            0.0
        } else {
            v as f64 / l as f64
        }
    }

    /// The children of `node` (empty for leaves).
    pub fn children(&self, node: NodeId) -> Vec<NodeId> {
        if node.level == 0 {
            return Vec::new();
        }
        let below = node.level - 1;
        let start = node.index * self.arity;
        let end = (start + self.arity).min(self.levels[below].len());
        (start..end)
            .map(|index| NodeId {
                level: below,
                index,
            })
            .collect()
    }

    /// Index range `[start, end)` of the real leaves under `node`.
    pub fn leaf_range(&self, node: NodeId) -> (usize, usize) {
        let span = self.arity.pow(node.level as u32);
        let start = node.index * span;
        let end = (start + span).min(self.leaf_count());
        (start, end)
    }

    /// Whether `node` is a leaf.
    pub fn is_leaf(&self, node: NodeId) -> bool {
        node.level == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_leaf_tree() {
        let t = MaryTree::build(&[true], 4);
        assert_eq!(t.height(), 1);
        assert_eq!(t.root(), NodeId { level: 0, index: 0 });
        assert_eq!(t.tree_ratio(t.root()), 1.0);
        assert!(t.children(t.root()).is_empty());
    }

    #[test]
    fn figure3_example_tree_ratios() {
        // Paper Figure 3: eight chunks, a binary-ish example; we use m=2 and
        // leaves [1,1,1,0, 0,0,0,0] — the left half has TR 3/4.
        let leaves = [true, true, true, false, false, false, false, false];
        let t = MaryTree::build(&leaves, 2);
        assert_eq!(t.height(), 4);
        let root = t.root();
        assert_eq!(t.value(root), 3);
        assert_eq!(t.leaves_under(root), 8);
        assert!((t.tree_ratio(root) - 3.0 / 8.0).abs() < 1e-12);
        let kids = t.children(root);
        assert_eq!(kids.len(), 2);
        assert!((t.tree_ratio(kids[0]) - 0.75).abs() < 1e-12);
        assert_eq!(t.tree_ratio(kids[1]), 0.0);
    }

    #[test]
    fn padding_leaves_do_not_dilute_ratios() {
        // Five leaves under a quad tree: the second internal node covers
        // only one real leaf.
        let leaves = [false, false, false, false, true];
        let t = MaryTree::build(&leaves, 4);
        let root = t.root();
        let kids = t.children(root);
        assert_eq!(kids.len(), 2);
        assert_eq!(t.leaves_under(kids[1]), 1);
        assert_eq!(t.tree_ratio(kids[1]), 1.0, "one real critical leaf = TR 1");
    }

    #[test]
    fn leaf_ranges_partition_leaves() {
        let leaves = vec![false; 23];
        let t = MaryTree::build(&leaves, 3);
        // The children of the root partition [0, 23).
        let mut covered = 0;
        for child in t.children(t.root()) {
            let (s, e) = t.leaf_range(child);
            assert_eq!(s, covered);
            covered = e;
        }
        assert_eq!(covered, 23);
    }

    #[test]
    fn root_ratio_is_global_density() {
        let leaves: Vec<bool> = (0..100).map(|i| i % 4 == 0).collect();
        let t = MaryTree::build(&leaves, 4);
        assert!((t.tree_ratio(t.root()) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn values_sum_up_the_levels() {
        let leaves: Vec<bool> = (0..64).map(|i| i < 16).collect();
        let t = MaryTree::build(&leaves, 4);
        let root = t.root();
        let child_sum: u32 = t.children(root).iter().map(|&c| t.value(c)).sum();
        assert_eq!(child_sum, t.value(root));
        assert_eq!(t.value(root), 16);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn unary_tree_rejected() {
        let _ = MaryTree::build(&[true], 1);
    }
}
