//! Hybrid local selection (paper §4.2, Eq. 1–3).
//!
//! Stage one of the analyzer ranks chunks *within* each data object:
//!
//! * Eq. 1 — local priority `PR(DC) = LLC_mr(DC) / Size(DC)`: sampled LLC
//!   read misses normalised by chunk size (normalisation makes priorities
//!   comparable across objects with different chunk sizes, which the global
//!   stage relies on);
//! * Eq. 2 — the threshold `θ(DO)` is the maximum of three candidates:
//!   the top-N percentile `P_n`, a derivative-based knee relative to
//!   `max PR` (a 1-D analogue of 2-means clustering), and a theoretical
//!   floor derived from the sampling frequency (a chunk observed fewer
//!   times than `min_samples` carries no signal);
//! * Eq. 3 — `CAT(DC) = 1` iff `PR(DC) > θ`.
//!
//! The hybrid of percentile and knee handles both failure modes of a fixed
//! top-N: highly skewed objects (where top-N would drag in cold chunks) and
//! flat objects (where more than N% deserve selection).

use crate::config::AnalyzerConfig;
use crate::object::DataObject;

/// Per-object outcome of the local selection stage.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalSelection {
    /// Eq. 1 priority of every chunk (misses per byte).
    pub priorities: Vec<f64>,
    /// The threshold chosen by Eq. 2.
    pub theta: f64,
    /// Eq. 3 classification: `true` = sampled critical.
    pub critical: Vec<bool>,
}

impl LocalSelection {
    /// Number of sampled-critical chunks.
    pub fn critical_count(&self) -> usize {
        self.critical.iter().filter(|&&c| c).count()
    }
}

/// Runs the local selection for one object.
pub fn local_selection(object: &DataObject, config: &AnalyzerConfig) -> LocalSelection {
    let n = object.num_chunks();
    // The sampling floor is count-based: a chunk observed fewer than
    // `min_samples` times carries no signal, *whatever its size*. Applying
    // the floor to the normalised priority would let a tiny final partial
    // chunk turn one stray sample into an enormous priority.
    let priorities: Vec<f64> = (0..n)
        .map(|i| {
            let samples = object.samples()[i];
            if samples < config.min_samples {
                0.0
            } else {
                samples as f64 / object.chunk_bytes(i) as f64
            }
        })
        .collect();

    let theta = select_threshold(&priorities, config);
    let critical = priorities.iter().map(|&p| p > theta).collect();
    LocalSelection {
        priorities,
        theta,
        critical,
    }
}

/// Eq. 2: `θ = max(P_n, derivative knee, sampling floor)`. The floor has
/// already been applied (floor-failing chunks carry priority zero).
fn select_threshold(priorities: &[f64], config: &AnalyzerConfig) -> f64 {
    let max_pr = priorities.iter().cloned().fold(0.0, f64::max);
    if max_pr == 0.0 {
        // No samples: nothing can be critical. Any positive threshold works.
        return f64::INFINITY;
    }

    // Signal-bearing chunks, hottest first.
    let mut sorted: Vec<f64> = priorities.iter().copied().filter(|&p| p > 0.0).collect();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("priorities are finite"));
    if sorted.is_empty() {
        return f64::INFINITY;
    }
    let n = priorities.len();

    // The derivative-based search walks the descending priority curve
    // looking for a *cliff*: the first chunk whose marginal priority falls
    // below `derivative_alpha` of the running average — the hot-cluster
    // boundary, a 1-D analogue of a 2-means split. Along the way it also
    // notes where the prefix covers `mass_coverage` of the total priority
    // mass — beyond that point, extra chunks buy almost no gain per byte
    // (§1's objective), so selection never extends past it.
    let total_mass: f64 = sorted.iter().sum();
    let mut cliff: Option<usize> = None;
    let mut k_mass = sorted.len();
    let mut mass = sorted[0];
    for (i, &p) in sorted.iter().enumerate().skip(1) {
        if k_mass == sorted.len() && mass >= config.mass_coverage * total_mass {
            k_mass = i;
        }
        if cliff.is_none() && p < config.derivative_alpha * (mass / i as f64) {
            cliff = Some(i);
            break;
        }
        mass += p;
    }

    // The percentile candidate bounds how far a *cliff-less* (flat)
    // selection may extend: at least the top-N count, at most
    // `max_select_frac`. A detected cliff is trusted even beyond the cap —
    // truncating a real hot cluster would strand critical chunks on the
    // slow tier — but never past the mass bound.
    let k_pn = ((n as f64) * config.top_n_frac).floor() as usize;
    let cap = k_pn
        .max((n as f64 * config.max_select_frac) as usize)
        .max(1);
    let mut k = match cliff {
        Some(c) => c.min(k_mass),
        None => k_mass.min(cap),
    }
    .max(1)
    .min(sorted.len());

    // Boundary ties are included: chunks with identical priority deserve
    // identical treatment (and for a perfectly flat object this selects the
    // whole structure — the coarse-grained degeneration of paper §9).
    while k < sorted.len() && sorted[k] == sorted[k - 1] {
        k += 1;
    }

    let kth = sorted[k - 1];
    let next = sorted.get(k).copied().unwrap_or(0.0);
    // Any θ in [next, kth) selects exactly the top k; use the midpoint.
    (next + kth) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::chunk_geometry;
    use crate::config::ChunkConfig;
    use atmem_hms::{VirtAddr, VirtRange};

    /// Builds an object with the given per-chunk sample counts (chunk size
    /// 4 KiB).
    fn object_with_samples(counts: &[u64]) -> DataObject {
        let bytes = counts.len() * 4096;
        let g = chunk_geometry(
            bytes,
            &ChunkConfig {
                target_chunks: counts.len(),
                min_chunk_bytes: 4096,
            },
        );
        assert_eq!(g.num_chunks, counts.len());
        let mut o = DataObject::new(
            crate::object::ObjectId(0),
            "t",
            VirtRange::new(VirtAddr::new(0x100000), bytes),
            g,
        );
        for (i, &c) in counts.iter().enumerate() {
            for _ in 0..c {
                assert!(o.record_sample(o.chunk_range(i).start));
            }
        }
        o
    }

    fn config() -> AnalyzerConfig {
        AnalyzerConfig::default()
    }

    #[test]
    fn unsampled_object_selects_nothing() {
        let o = object_with_samples(&[0; 16]);
        let sel = local_selection(&o, &config());
        assert_eq!(sel.critical_count(), 0);
    }

    #[test]
    fn skewed_distribution_selects_only_the_cliff_top() {
        // Two hot chunks far above the rest; top-10% of 20 chunks would be
        // 2 anyway, but the knee keeps the cold ones out even with a larger
        // percentile.
        let mut counts = vec![1u64; 20];
        counts[3] = 500;
        counts[11] = 450;
        let o = object_with_samples(&counts);
        let sel = local_selection(&o, &config());
        assert!(sel.critical[3] && sel.critical[11]);
        assert_eq!(sel.critical_count(), 2);
    }

    #[test]
    fn flat_distribution_extends_to_the_cap() {
        // A smooth gradient: no cliff, so selection extends past the
        // percentile up to the max_select_frac cap (the paper's "more than
        // N% should be selected" case for even distributions).
        let counts: Vec<u64> = (0..100u64).map(|i| 100 + i).collect();
        let o = object_with_samples(&counts);
        let sel = local_selection(&o, &config());
        let picked = sel.critical_count();
        assert!(
            (10..=16).contains(&picked),
            "expected ~12% selected, got {picked}"
        );
        // The selected ones are the highest.
        for (i, (&selected, &count)) in sel.critical.iter().zip(&counts).enumerate() {
            if selected {
                assert!(count > 180, "chunk {i} selected with count {count}");
            }
        }
    }

    #[test]
    fn all_equal_distribution_selects_everything() {
        // Perfectly uniform heat degenerates to whole-structure placement
        // (paper §9): boundary ties extend selection to the full object.
        let counts = vec![50u64; 64];
        let o = object_with_samples(&counts);
        let sel = local_selection(&o, &config());
        assert_eq!(sel.critical_count(), 64);
    }

    #[test]
    fn sampling_floor_suppresses_noise() {
        // Every chunk saw at most one sample: nothing is significant.
        let counts = vec![1u64, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0];
        let o = object_with_samples(&counts);
        let sel = local_selection(&o, &config());
        assert_eq!(
            sel.critical_count(),
            0,
            "single-sample chunks are noise under min_samples=2"
        );
    }

    #[test]
    fn priorities_are_normalized_by_size() {
        let o = object_with_samples(&[10, 0, 0, 0]);
        let sel = local_selection(&o, &config());
        assert!((sel.priorities[0] - 10.0 / 4096.0).abs() < 1e-12);
    }

    mod properties {
        use super::*;
        use atmem_prop::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            /// The selected set is a prefix of the descending priority
            /// order: walking chunks from hottest to coldest, once one is
            /// rejected no later chunk is selected.
            #[test]
            fn selection_is_a_prefix_of_descending_priority(
                counts in prop::collection::vec(0u64..60, 1..80),
            ) {
                let o = object_with_samples(&counts);
                let sel = local_selection(&o, &config());
                let mut idx: Vec<usize> = (0..sel.priorities.len()).collect();
                idx.sort_by(|&a, &b| {
                    sel.priorities[b].partial_cmp(&sel.priorities[a]).unwrap()
                });
                let mut rejected_before = None;
                for &i in &idx {
                    if sel.critical[i] {
                        prop_assert!(
                            rejected_before.is_none(),
                            "chunk {i} (priority {}) selected after chunk {:?} was rejected",
                            sel.priorities[i],
                            rejected_before,
                        );
                    } else {
                        rejected_before.get_or_insert(i);
                    }
                }
            }

            /// Ties at the selection boundary are always included: every
            /// chunk whose priority equals the coldest selected priority is
            /// itself selected.
            #[test]
            fn boundary_ties_are_included(
                counts in prop::collection::vec(0u64..8, 1..80),
            ) {
                let o = object_with_samples(&counts);
                let sel = local_selection(&o, &config());
                let boundary = sel
                    .priorities
                    .iter()
                    .zip(&sel.critical)
                    .filter(|(_, &c)| c)
                    .map(|(&p, _)| p)
                    .fold(f64::INFINITY, f64::min);
                if boundary.is_finite() {
                    for (i, (&p, &c)) in sel.priorities.iter().zip(&sel.critical).enumerate() {
                        if p == boundary {
                            prop_assert!(c, "chunk {i} ties the boundary priority {boundary} but was rejected");
                        }
                    }
                }
            }

            /// θ is finite iff at least one chunk clears the `min_samples`
            /// floor — and then at least one chunk is selected.
            #[test]
            fn theta_finite_iff_some_chunk_clears_the_floor(
                counts in prop::collection::vec(0u64..5, 1..80),
            ) {
                let cfg = config();
                let o = object_with_samples(&counts);
                let sel = local_selection(&o, &cfg);
                let any_signal = counts.iter().any(|&c| c >= cfg.min_samples);
                prop_assert_eq!(
                    sel.theta.is_finite(),
                    any_signal,
                    "theta {} vs counts {:?}",
                    sel.theta,
                    &counts
                );
                prop_assert_eq!(sel.critical_count() > 0, any_signal);
            }
        }
    }

    #[test]
    fn threshold_is_infinite_only_when_unsampled() {
        let o = object_with_samples(&[0; 8]);
        let sel = local_selection(&o, &config());
        assert!(sel.theta.is_infinite());
        let o = object_with_samples(&[9; 8]);
        let sel = local_selection(&o, &config());
        assert!(sel.theta.is_finite());
    }
}
