//! The learned (learning-to-rank) placement analyzer.
//!
//! A drop-in alternative to the paper's Eq. 1–5 pipeline, after Moura et
//! al., "Learning to Rank Graph-based Application Objects on Heterogeneous
//! Memories": instead of hand-tuned thresholds, every chunk is scored by a
//! small linear model over the bounded features of
//! [`features`](crate::analyzer::features), and the hottest-scoring chunks
//! are admitted up to a byte budget. The output is the same [`Analysis`]
//! shape the planner, the demotion cascade, the serving scheduler and the
//! reports already consume:
//!
//! * `selection.priorities` carry the model's per-chunk confidence
//!   (`sigmoid(score)`, always finite, in `(0, 1)`), so the planner's
//!   hotter-first ordering and the cascade's coldest-first ordering work
//!   unchanged;
//! * `selection.theta` / `tr_threshold` record the admission cutoff;
//! * `critical` is the admitted bitmap; `promoted_chunks` counts admitted
//!   chunks the profiler never sampled — the learned analogue of the
//!   m-ary tree patching sampling gaps (here the neighbourhood features
//!   carry that signal).
//!
//! The model ships with pretrained weights (see
//! [`train`](crate::analyzer::train) for the offline pairwise-ranking
//! trainer and `learned_train` in the bench crate for the recording
//! pipeline) so the learned analyzer works out of the box.

use crate::analyzer::features::{feature_context, object_features, NUM_FEATURES};
use crate::analyzer::local::LocalSelection;
use crate::analyzer::promote::object_weight;
use crate::analyzer::{Analysis, ObjectAnalysis};
use crate::config::AnalyzerConfig;
use crate::registry::Registry;

/// A linear chunk scorer: `score = w · features + bias`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LearnedModel {
    /// One weight per feature, index-aligned with
    /// [`FEATURE_NAMES`](crate::analyzer::features::FEATURE_NAMES).
    pub weights: [f64; NUM_FEATURES],
    /// Additive bias.
    pub bias: f64,
}

/// Weights produced by the offline trainer (`learned_train --train`) on
/// the committed kernel-suite trace (`traces/analyzer_mini.trace`):
/// dual-period recordings of PageRank, SpMV and BFS plus synthetic
/// phase-shift and sample-loss scenarios. Regenerate with
/// `cargo run -p atmem-bench --bin learned_train -- --record --train`.
const PRETRAINED: LearnedModel = LearnedModel {
    weights: [
        5.3397,  // density_global
        -0.6056, // rank_local
        -3.7130, // mass_frac
        3.0948,  // neighbor_mean
        2.1534,  // run_occupancy
        0.0,     // object_share
        0.0,     // size_log
        0.0,     // stride_regular
        -0.1509, // phase_delta
    ],
    bias: -0.0238,
};

impl LearnedModel {
    /// The shipped pretrained model.
    pub fn pretrained() -> Self {
        PRETRAINED
    }

    /// Scores one feature vector.
    pub fn score(&self, features: &[f64; NUM_FEATURES]) -> f64 {
        self.weights
            .iter()
            .zip(features)
            .map(|(w, f)| w * f)
            .sum::<f64>()
            + self.bias
    }

    /// The model's confidence that a chunk is placement-critical:
    /// `sigmoid(score)`, in `(0, 1)`.
    pub fn confidence(&self, features: &[f64; NUM_FEATURES]) -> f64 {
        sigmoid(self.score(features))
    }

    /// Whether every parameter is finite (validation hook).
    pub fn is_finite(&self) -> bool {
        self.weights.iter().all(|w| w.is_finite()) && self.bias.is_finite()
    }
}

impl Default for LearnedModel {
    fn default() -> Self {
        PRETRAINED
    }
}

/// The logistic function.
pub fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Runs the learned analyzer over every live object. Same interface and
/// output shape as [`analyze`](crate::analyzer::analyze) with the paper
/// pipeline; see the module docs for how the fields are populated.
pub fn analyze_learned(registry: &Registry, config: &AnalyzerConfig) -> Analysis {
    let ctx = feature_context(registry);
    let model = &config.learned.model;

    // Score every chunk. A chunk is *eligible* only when its ±2-chunk
    // neighbourhood saw at least one sample (feature 4): the model may
    // patch sampling gaps inside hot runs, but must not promote bytes on
    // pure prior (size/stride) evidence in a dead region.
    struct Scored {
        object: usize, // index into `per_object`
        chunk: usize,
        confidence: f64,
        bytes: usize,
    }
    let mut per_object: Vec<(crate::object::ObjectId, usize, Vec<f64>, Vec<bool>)> = Vec::new();
    let mut candidates: Vec<Scored> = Vec::new();
    for obj in registry.iter() {
        let features = object_features(obj, &ctx);
        let confidences: Vec<f64> = features.iter().map(|f| model.confidence(f)).collect();
        let sampled: Vec<bool> = obj.samples().iter().map(|&s| s > 0).collect();
        if ctx.total_samples > 0 {
            for (chunk, f) in features.iter().enumerate() {
                if f[4] > 0.0 && confidences[chunk] >= config.learned.min_confidence {
                    candidates.push(Scored {
                        object: per_object.len(),
                        chunk,
                        confidence: confidences[chunk],
                        bytes: obj.chunk_bytes(chunk),
                    });
                }
            }
        }
        per_object.push((obj.id(), obj.num_chunks(), confidences, sampled));
    }

    // Admit hottest-confidence first under the byte budget. The order is
    // fully deterministic: confidence descending, then registration order.
    candidates.sort_by(|a, b| {
        b.confidence
            .partial_cmp(&a.confidence)
            .expect("confidences are finite")
            .then(a.object.cmp(&b.object))
            .then(a.chunk.cmp(&b.chunk))
    });
    let budget = (registry.total_bytes() as f64 * config.learned.select_frac) as usize;
    let mut admitted: Vec<Vec<usize>> = vec![Vec::new(); per_object.len()];
    let mut taken = 0usize;
    let mut cutoff = f64::INFINITY;
    for c in &candidates {
        if taken >= budget {
            break;
        }
        taken += c.bytes;
        cutoff = c.confidence;
        admitted[c.object].push(c.chunk);
    }

    let objects = per_object
        .into_iter()
        .zip(admitted)
        .map(|((id, chunks, confidences, sampled), admitted)| {
            let mut critical = vec![false; chunks];
            for chunk in admitted {
                critical[chunk] = true;
            }
            let promoted_chunks = critical
                .iter()
                .zip(&sampled)
                .filter(|&(&c, &s)| c && !s)
                .count();
            let selection = LocalSelection {
                priorities: confidences,
                theta: cutoff,
                critical: critical.clone(),
            };
            let weight = object_weight(&selection);
            ObjectAnalysis {
                id,
                selection,
                weight,
                tr_threshold: cutoff,
                critical,
                promoted_chunks,
            }
        })
        .collect();
    Analysis { objects }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::chunk_geometry;
    use crate::config::ChunkConfig;
    use atmem_hms::{VirtAddr, VirtRange};

    fn registry_with(counts: &[&[u64]]) -> Registry {
        let mut r = Registry::new();
        for (k, obj_counts) in counts.iter().enumerate() {
            let bytes = obj_counts.len() * 4096;
            let g = chunk_geometry(
                bytes,
                &ChunkConfig {
                    target_chunks: obj_counts.len(),
                    min_chunk_bytes: 4096,
                },
            );
            let id = r.register(
                format!("o{k}"),
                VirtRange::new(VirtAddr::new(0x10_0000 + ((k as u64) << 28)), bytes),
                g,
            );
            for (i, &c) in obj_counts.iter().enumerate() {
                let va = r.get(id).unwrap().chunk_range(i).start;
                for _ in 0..c {
                    r.attribute(va).unwrap();
                }
            }
        }
        r
    }

    fn config() -> AnalyzerConfig {
        AnalyzerConfig::default()
    }

    #[test]
    fn hot_cluster_is_selected_and_gap_patched() {
        let mut counts = vec![0u64; 32];
        for c in [4usize, 5, 7] {
            counts[c] = 200; // chunk 6 is a sampling gap inside the run
        }
        let r = registry_with(&[&counts]);
        let a = analyze_learned(&r, &config());
        let o = &a.objects[0];
        assert!(o.critical[4] && o.critical[5] && o.critical[7]);
        assert!(o.critical[6], "gap inside the hot run must be patched");
        assert!(o.promoted_chunks >= 1);
        assert!(!o.critical[20], "cold tail stays out");
        assert!(o.selection.priorities.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn selection_respects_the_byte_budget() {
        let counts = vec![100u64; 64]; // everything equally hot
        let r = registry_with(&[&counts]);
        let cfg = config();
        let a = analyze_learned(&r, &cfg);
        let picked = a.objects[0].critical_count();
        let frac = picked as f64 / 64.0;
        assert!(
            frac <= cfg.learned.select_frac + 0.05,
            "selected {frac} of a uniform object"
        );
        assert!(picked > 0, "a hot object must select something");
    }

    #[test]
    fn unsampled_registry_selects_nothing() {
        let r = registry_with(&[&[0u64; 16]]);
        let a = analyze_learned(&r, &config());
        assert_eq!(a.sampled_chunks() + a.promoted_chunks(), 0);
        assert!(a.objects[0].critical.iter().all(|&c| !c));
        assert!(a.objects[0].selection.theta.is_infinite());
    }

    #[test]
    fn empty_registry_analyzes_to_nothing() {
        let a = analyze_learned(&Registry::new(), &config());
        assert!(a.objects.is_empty());
    }

    #[test]
    fn dead_region_is_never_promoted_on_prior_alone() {
        // One hot object, one completely cold object: however the model
        // weighs size/stride priors, the cold object must stay out.
        let r = registry_with(&[&[300u64, 300, 0, 0, 0, 0, 0, 0], &[0u64; 8]]);
        let a = analyze_learned(&r, &config());
        assert!(a.objects[0].critical_count() > 0);
        assert_eq!(a.objects[1].critical_count(), 0);
    }

    #[test]
    fn analysis_is_deterministic() {
        let r1 = registry_with(&[&[5, 80, 0, 3, 0, 0, 90, 1], &[7u64; 8]]);
        let r2 = registry_with(&[&[5, 80, 0, 3, 0, 0, 90, 1], &[7u64; 8]]);
        assert_eq!(
            analyze_learned(&r1, &config()),
            analyze_learned(&r2, &config())
        );
    }

    #[test]
    fn pretrained_model_is_finite() {
        assert!(LearnedModel::pretrained().is_finite());
        let broken = LearnedModel {
            bias: f64::NAN,
            ..LearnedModel::pretrained()
        };
        assert!(!broken.is_finite());
    }
}
