//! Tree-based global promotion (paper §4.3.2–§4.3.3, Eq. 4–5).
//!
//! Stage two of the analyzer looks *across* data objects. For each object
//! it derives a weight (Eq. 4) — the mean priority of its sampled-critical
//! chunks — then adapts the tree-ratio threshold per object (Eq. 5):
//!
//! ```text
//! θ(TR_i)' = ε + θ(TR) · (max W − W(DO_i)) / ‖min W − max W‖
//! ```
//!
//! Heavier objects (few, very hot critical chunks) get a *lower* threshold
//! so the top-down promotion patches up more of their neighbourhood; light
//! objects keep a high threshold and promote little. `ε` is the theoretical
//! floor tied to the arity (an octree's meaningful floor is 1/8).
//!
//! The top-down pass (§4.3.3) walks the tree breadth-first; at the first
//! node whose TR clears the object's threshold, all descendant leaves are
//! promoted — turning scattered sampled-critical chunks plus their gaps
//! into one contiguous migratable region.

use crate::analyzer::local::LocalSelection;
use crate::analyzer::tree::MaryTree;
use crate::config::AnalyzerConfig;

/// Weight of one data object (Eq. 4): the average priority of its
/// sampled-critical chunks, or 0 when it has none.
pub fn object_weight(selection: &LocalSelection) -> f64 {
    let mut sum = 0.0;
    let mut count = 0u64;
    for (p, &c) in selection.priorities.iter().zip(&selection.critical) {
        if c {
            sum += *p;
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

/// Computes each object's adapted tree-ratio threshold (Eq. 5) from the
/// weights of all objects.
///
/// With `adaptive_tr` disabled (ablation), every object gets the fixed
/// `ε + base_tr` value regardless of weight.
pub fn adaptive_thresholds(weights: &[f64], config: &AnalyzerConfig) -> Vec<f64> {
    let epsilon = config.effective_epsilon();
    if !config.adaptive_tr {
        return vec![(epsilon + config.base_tr).min(1.0); weights.len()];
    }
    let max_w = weights.iter().cloned().fold(f64::MIN, f64::max);
    let min_w = weights.iter().cloned().fold(f64::MAX, f64::min);
    let span = max_w - min_w;
    weights
        .iter()
        .map(|&w| {
            let scale = if span > 0.0 { (max_w - w) / span } else { 0.0 };
            (epsilon + config.base_tr * scale).min(1.0)
        })
        .collect()
}

/// Top-down promotion (§4.3.3): breadth-first search from the root; the
/// first node (on each path) whose tree ratio is at least `threshold` has
/// *all* its descendant leaves promoted. Returns the final criticality
/// bitmap (sampled ∪ estimated); promotion never demotes.
pub fn promote(tree: &MaryTree, sampled: &[bool], threshold: f64) -> Vec<bool> {
    assert_eq!(tree.leaf_count(), sampled.len(), "tree/selection mismatch");
    let mut result = sampled.to_vec();
    if threshold <= 0.0 {
        // Degenerate: everything qualifies.
        result.fill(true);
        return result;
    }
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(tree.root());
    while let Some(node) = queue.pop_front() {
        let tr = tree.tree_ratio(node);
        if tr <= 0.0 {
            continue; // nothing critical below: prune
        }
        if tr >= threshold {
            let (start, end) = tree.leaf_range(node);
            for leaf in result.iter_mut().take(end).skip(start) {
                *leaf = true;
            }
            continue; // everything below is promoted; no need to descend
        }
        for child in tree.children(node) {
            queue.push_back(child);
        }
    }
    result
}

/// Chunks promoted by estimation only (in `promoted` but not `sampled`).
pub fn estimated_only(sampled: &[bool], promoted: &[bool]) -> usize {
    sampled
        .iter()
        .zip(promoted)
        .filter(|&(&s, &p)| p && !s)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn selection(priorities: Vec<f64>, critical: Vec<bool>) -> LocalSelection {
        LocalSelection {
            priorities,
            theta: 0.0,
            critical,
        }
    }

    #[test]
    fn weight_is_mean_of_critical_priorities() {
        let s = selection(vec![4.0, 2.0, 8.0, 1.0], vec![true, false, true, false]);
        assert!((object_weight(&s) - 6.0).abs() < 1e-12);
        let none = selection(vec![1.0, 1.0], vec![false, false]);
        assert_eq!(object_weight(&none), 0.0);
    }

    #[test]
    fn heavier_objects_get_lower_thresholds() {
        let config = AnalyzerConfig::default();
        let th = adaptive_thresholds(&[10.0, 5.0, 0.0], &config);
        let eps = config.effective_epsilon();
        assert!((th[0] - eps).abs() < 1e-12, "max-weight object sits at ε");
        assert!(th[0] < th[1] && th[1] < th[2]);
        assert!((th[2] - (eps + config.base_tr)).abs() < 1e-12);
    }

    #[test]
    fn equal_weights_all_get_epsilon() {
        let config = AnalyzerConfig::default();
        let th = adaptive_thresholds(&[3.0, 3.0], &config);
        let eps = config.effective_epsilon();
        assert!(th.iter().all(|&t| (t - eps).abs() < 1e-12));
    }

    #[test]
    fn fixed_tr_ablation_ignores_weights() {
        let config = AnalyzerConfig {
            adaptive_tr: false,
            ..AnalyzerConfig::default()
        };
        let th = adaptive_thresholds(&[10.0, 0.0], &config);
        assert_eq!(th[0], th[1]);
    }

    #[test]
    fn figure3_promotion() {
        // Paper Figure 3c: threshold 0.5; the left subtree has TR 0.75, so
        // its non-critical leaf gets promoted; the right subtree (TR 0)
        // stays out. Using m=2 over [1,1,1,0, 0,0,0,0].
        let sampled = [true, true, true, false, false, false, false, false];
        let tree = MaryTree::build(&sampled, 2);
        let out = promote(&tree, &sampled, 0.5);
        assert_eq!(
            out,
            [true, true, true, true, false, false, false, false],
            "the gap inside the hot half is patched, the cold half is not"
        );
        assert_eq!(estimated_only(&sampled, &out), 1);
    }

    #[test]
    fn promotion_is_monotone() {
        let sampled: Vec<bool> = (0..64).map(|i| i % 3 == 0).collect();
        let tree = MaryTree::build(&sampled, 4);
        let out = promote(&tree, &sampled, 0.3);
        for (i, (&s, &p)) in sampled.iter().zip(&out).enumerate() {
            assert!(!s || p, "chunk {i} was demoted");
        }
    }

    #[test]
    fn threshold_one_promotes_only_saturated_spans() {
        let sampled = [true, true, false, false];
        let tree = MaryTree::build(&sampled, 2);
        let out = promote(&tree, &sampled, 1.0);
        assert_eq!(out, sampled, "no span is fully critical except the pair");
    }

    #[test]
    fn zero_threshold_promotes_everything() {
        let sampled = [false, true, false, false];
        let tree = MaryTree::build(&sampled, 2);
        let out = promote(&tree, &sampled, 0.0);
        assert!(out.iter().all(|&b| b));
    }

    #[test]
    fn all_cold_object_promotes_nothing() {
        let sampled = [false; 16];
        let tree = MaryTree::build(&sampled, 4);
        let out = promote(&tree, &sampled, 0.25);
        assert!(out.iter().all(|&b| !b));
    }

    #[test]
    fn lower_threshold_promotes_at_least_as_much() {
        let sampled: Vec<bool> = (0..128).map(|i| (i / 7) % 3 == 0).collect();
        let tree = MaryTree::build(&sampled, 4);
        let hi = promote(&tree, &sampled, 0.75);
        let lo = promote(&tree, &sampled, 0.25);
        for (h, l) in hi.iter().zip(&lo) {
            assert!(!h | l, "lower threshold must be a superset");
        }
        assert!(lo.iter().filter(|&&b| b).count() >= hi.iter().filter(|&&b| b).count());
    }
}
