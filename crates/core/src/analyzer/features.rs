//! Chunk feature extraction for the learned (learning-to-rank) analyzer.
//!
//! Every chunk of every data object is described by a small fixed vector
//! of bounded features computed from the same attributed PEBS profile the
//! paper's Eq. 1–5 analyzer consumes — plus the previous profiling round
//! the registry now stashes (see [`DataObject::prev_samples`]), which
//! feeds the kernel-phase-delta feature. The features are deliberately
//! *relative* (ranks, normalised densities, neighbourhood occupancy)
//! rather than absolute counts: a ranking over relative features is
//! invariant to uniform sampling loss, which is exactly where the static
//! thresholds (the `min_samples` floor, the derivative knee) lose signal.

use crate::object::DataObject;
use crate::registry::Registry;

/// Number of features per chunk.
pub const NUM_FEATURES: usize = 9;

/// Human-readable feature names, index-aligned with the vectors produced
/// by [`object_features`] (and with [`LearnedModel::weights`]).
///
/// [`LearnedModel::weights`]: crate::analyzer::learned::LearnedModel
pub const FEATURE_NAMES: [&str; NUM_FEATURES] = [
    "density_global", // miss density / hottest chunk density in the registry
    "rank_local",     // 1 - (chunks hotter within the object) / chunks
    "mass_frac",      // chunk samples / object samples
    "neighbor_mean",  // mean density of adjacent chunks / global max
    "run_occupancy",  // sampled fraction of the ±2 chunk neighbourhood
    "object_share",   // object samples / registry samples
    "size_log",       // log2(object bytes) / 40
    "stride_regular", // 1 / (1 + cv of the object's density profile)
    "phase_delta",    // normalised density now − previous round
];

/// Registry-wide normalisers shared by every object's feature vectors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeatureContext {
    /// The hottest chunk density (samples per byte) across all objects.
    pub max_density: f64,
    /// Total samples attributed across all objects this round.
    pub total_samples: u64,
}

/// Computes the global normalisers over all live objects.
pub fn feature_context(registry: &Registry) -> FeatureContext {
    let mut max_density = 0.0f64;
    let mut total_samples = 0u64;
    for obj in registry.iter() {
        total_samples += obj.total_samples();
        for i in 0..obj.num_chunks() {
            max_density = max_density.max(density(obj, i));
        }
    }
    FeatureContext {
        max_density,
        total_samples,
    }
}

/// Miss density (samples per byte) of chunk `i`.
fn density(obj: &DataObject, i: usize) -> f64 {
    obj.samples()[i] as f64 / obj.chunk_bytes(i) as f64
}

/// Previous-round miss density of chunk `i`.
fn prev_density(obj: &DataObject, i: usize) -> f64 {
    obj.prev_samples()[i] as f64 / obj.chunk_bytes(i) as f64
}

/// Extracts one feature vector per chunk of `object`. Every component is
/// finite and bounded: the first eight lie in `[0, 1]`, the phase delta in
/// `[-1, 1]`.
pub fn object_features(object: &DataObject, ctx: &FeatureContext) -> Vec<[f64; NUM_FEATURES]> {
    let n = object.num_chunks();
    let densities: Vec<f64> = (0..n).map(|i| density(object, i)).collect();
    let obj_max = densities.iter().cloned().fold(0.0, f64::max);
    let prev: Vec<f64> = (0..n).map(|i| prev_density(object, i)).collect();
    let prev_max = prev.iter().cloned().fold(0.0, f64::max);
    let obj_samples = object.total_samples();

    let norm = |d: f64, max: f64| if max > 0.0 { d / max } else { 0.0 };

    // Within-object rank: 1 for the hottest chunk, approaching 0 for the
    // coldest; ties share the rank of their hottest member so equal
    // densities always get equal features.
    let mut by_density: Vec<usize> = (0..n).collect();
    by_density.sort_by(|&a, &b| densities[b].partial_cmp(&densities[a]).expect("finite"));
    let mut rank = vec![0.0; n];
    let mut hotter = 0usize;
    for (pos, &i) in by_density.iter().enumerate() {
        if pos > 0 && densities[i] < densities[by_density[pos - 1]] {
            hotter = pos;
        }
        rank[i] = 1.0 - hotter as f64 / n as f64;
    }

    // Per-object stride regularity: a strided or sweeping kernel spreads
    // misses evenly over the object (low coefficient of variation); a
    // pointer-chasing or skewed kernel concentrates them (high cv).
    let mean = densities.iter().sum::<f64>() / n as f64;
    let stride_regular = if mean > 0.0 {
        let var = densities
            .iter()
            .map(|d| (d - mean) * (d - mean))
            .sum::<f64>()
            / n as f64;
        1.0 / (1.0 + var.sqrt() / mean)
    } else {
        0.0
    };

    let size_log = ((object.size().max(1) as f64).log2() / 40.0).min(1.0);
    let object_share = if ctx.total_samples > 0 {
        obj_samples as f64 / ctx.total_samples as f64
    } else {
        0.0
    };

    (0..n)
        .map(|i| {
            let neighbors: Vec<usize> = [i.checked_sub(1), (i + 1 < n).then_some(i + 1)]
                .into_iter()
                .flatten()
                .collect();
            let neighbor_mean = if neighbors.is_empty() {
                0.0
            } else {
                neighbors.iter().map(|&j| densities[j]).sum::<f64>() / neighbors.len() as f64
            };
            let lo = i.saturating_sub(2);
            let hi = (i + 2).min(n - 1);
            let occupied = (lo..=hi).filter(|&j| object.samples()[j] > 0).count();
            let run_occupancy = occupied as f64 / (hi - lo + 1) as f64;
            let mass_frac = if obj_samples > 0 {
                object.samples()[i] as f64 / obj_samples as f64
            } else {
                0.0
            };
            [
                norm(densities[i], ctx.max_density),
                rank[i],
                mass_frac,
                norm(neighbor_mean, ctx.max_density),
                run_occupancy,
                object_share,
                size_log,
                stride_regular,
                norm(densities[i], obj_max) - norm(prev[i], prev_max),
            ]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::chunk_geometry;
    use crate::config::ChunkConfig;
    use atmem_hms::{VirtAddr, VirtRange};

    fn registry_with(counts: &[&[u64]]) -> Registry {
        let mut r = Registry::new();
        for (k, obj_counts) in counts.iter().enumerate() {
            let bytes = obj_counts.len() * 4096;
            let g = chunk_geometry(
                bytes,
                &ChunkConfig {
                    target_chunks: obj_counts.len(),
                    min_chunk_bytes: 4096,
                },
            );
            let id = r.register(
                format!("o{k}"),
                VirtRange::new(VirtAddr::new(0x10_0000 + ((k as u64) << 28)), bytes),
                g,
            );
            for (i, &c) in obj_counts.iter().enumerate() {
                let va = r.get(id).unwrap().chunk_range(i).start;
                for _ in 0..c {
                    r.attribute(va).unwrap();
                }
            }
        }
        r
    }

    #[test]
    fn features_are_bounded_and_finite() {
        let r = registry_with(&[&[0, 5, 100, 0, 3, 0, 0, 7], &[1, 1, 1, 1]]);
        let ctx = feature_context(&r);
        for obj in r.iter() {
            for f in object_features(obj, &ctx) {
                for (k, v) in f.iter().enumerate() {
                    assert!(v.is_finite(), "feature {k} not finite");
                    let lo = if k == NUM_FEATURES - 1 { -1.0 } else { 0.0 };
                    assert!(
                        (lo..=1.0).contains(v),
                        "feature {} = {v} out of range",
                        FEATURE_NAMES[k]
                    );
                }
            }
        }
    }

    #[test]
    fn hottest_chunk_dominates_density_and_rank() {
        let r = registry_with(&[&[0, 5, 100, 0, 3, 0, 0, 7]]);
        let ctx = feature_context(&r);
        let f = object_features(r.iter().next().unwrap(), &ctx);
        assert!((f[2][0] - 1.0).abs() < 1e-12, "global density of the max");
        assert!((f[2][1] - 1.0).abs() < 1e-12, "rank of the hottest");
        assert!(f[2][2] > f[1][2], "mass fraction orders with samples");
    }

    #[test]
    fn gap_chunks_inherit_neighbourhood_signal() {
        // Chunk 2 was never sampled but sits inside a hot run; its
        // neighbour-mean and run-occupancy features must carry the signal a
        // pure density threshold would miss.
        let r = registry_with(&[&[0, 80, 0, 90, 70, 0, 0, 0, 0, 0, 0, 0]]);
        let ctx = feature_context(&r);
        let f = object_features(r.iter().next().unwrap(), &ctx);
        assert_eq!(f[2][0], 0.0, "no direct density signal");
        assert!(f[2][3] > 0.5, "neighbours are hot: {}", f[2][3]);
        assert!(f[2][4] > 0.5, "run occupancy sees the cluster");
        assert!(
            f[2][3] > f[9][3] && f[2][4] > f[9][4],
            "gap inside the run outranks the cold tail"
        );
    }

    #[test]
    fn phase_delta_tracks_the_shift() {
        let mut r = registry_with(&[&[50, 0, 0, 0]]);
        r.reset_samples(); // round 1 (hot chunk 0) becomes history
        let id = r.iter().next().unwrap().id();
        let va = r.get(id).unwrap().chunk_range(3).start;
        for _ in 0..50 {
            r.attribute(va).unwrap(); // round 2: heat moved to chunk 3
        }
        let ctx = feature_context(&r);
        let f = object_features(r.get(id).unwrap(), &ctx);
        assert!((f[3][8] - 1.0).abs() < 1e-12, "rising chunk: {}", f[3][8]);
        assert!((f[0][8] + 1.0).abs() < 1e-12, "fading chunk: {}", f[0][8]);
        assert_eq!(f[1][8], 0.0, "untouched chunk has no delta");
    }

    #[test]
    fn empty_registry_context_is_zero() {
        let ctx = feature_context(&Registry::new());
        assert_eq!(ctx.max_density, 0.0);
        assert_eq!(ctx.total_samples, 0);
    }

    #[test]
    fn uniform_profile_is_stride_regular() {
        let r = registry_with(&[
            &[10; 16],
            &[0, 0, 0, 160, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0],
        ]);
        let ctx = feature_context(&r);
        let objs: Vec<_> = r.iter().collect();
        let flat = object_features(objs[0], &ctx);
        let spiky = object_features(objs[1], &ctx);
        assert!((flat[0][7] - 1.0).abs() < 1e-12, "flat profile: cv = 0");
        assert!(spiky[0][7] < 0.3, "spike: {}", spiky[0][7]);
    }
}
