//! Offline pairwise-ranking trainer for the learned analyzer.
//!
//! Training data is recorded from the simulator itself: the same
//! deterministic workload is profiled twice, once at the configured
//! (sparse, possibly lossy) sampling period — those profiles produce the
//! *features* — and once at a dense period — those profiles produce the
//! *labels* (per-chunk miss density, normalised within each object). Each
//! profiled object becomes one ranking *group*; the trainer then fits a
//! linear scorer with RankNet-style pairwise logistic SGD: for every
//! within-group pair whose labels differ by more than a margin, push the
//! hotter chunk's score above the colder one's. Pair order is shuffled
//! each epoch with the hermetic [`atmem_rng::SmallRng`], so training is
//! fully deterministic for a given seed — no external ML dependencies,
//! no filesystem access, no wall clock.
//!
//! Traces use a line-oriented text format (`trace v1`) so mini-traces can
//! be committed to the repository and retrained in CI:
//!
//! ```text
//! # atmem learned trace v1
//! group pagerank/edges
//! example 0.93 0.81 1.0 0.25 ... (label then NUM_FEATURES features)
//! ```

use crate::analyzer::features::{feature_context, object_features, NUM_FEATURES};
use crate::analyzer::learned::{sigmoid, LearnedModel};
use crate::registry::Registry;
use atmem_rng::SmallRng;

/// One labelled chunk: the dense-run ground truth plus the sparse-run
/// feature vector.
#[derive(Debug, Clone, PartialEq)]
pub struct Example {
    /// Ground-truth hotness in `[0, 1]`: dense-run miss density normalised
    /// by the hottest chunk of the same object.
    pub label: f64,
    /// Feature vector extracted from the sparse run.
    pub features: [f64; NUM_FEATURES],
}

/// One ranking group — all chunks of one profiled object. Pairs are only
/// formed within a group: cross-object chunk comparisons are the global
/// budget's job, not the ranker's.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceGroup {
    /// Provenance tag (`kernel/object`), for trace readability.
    pub name: String,
    /// The group's labelled chunks.
    pub examples: Vec<Example>,
}

/// Pairs a sparse-run registry (features) with a dense-run registry
/// (labels) into ranking groups, one per object. The two registries must
/// describe the same workload: objects are zipped in registration order
/// and must agree on chunk counts.
pub fn record_examples(sparse: &Registry, dense: &Registry, group_base: &str) -> Vec<TraceGroup> {
    let ctx = feature_context(sparse);
    sparse
        .iter()
        .zip(dense.iter())
        .map(|(s_obj, d_obj)| {
            assert_eq!(
                s_obj.num_chunks(),
                d_obj.num_chunks(),
                "sparse/dense runs must share geometry for object {}",
                s_obj.name()
            );
            let features = object_features(s_obj, &ctx);
            let dense_density: Vec<f64> = (0..d_obj.num_chunks())
                .map(|i| d_obj.samples()[i] as f64 / d_obj.chunk_bytes(i) as f64)
                .collect();
            let max = dense_density.iter().cloned().fold(0.0, f64::max);
            let examples = features
                .into_iter()
                .zip(&dense_density)
                .map(|(features, &d)| Example {
                    label: if max > 0.0 { d / max } else { 0.0 },
                    features,
                })
                .collect();
            TraceGroup {
                name: format!("{group_base}/{}", s_obj.name()),
                examples,
            }
        })
        .collect()
}

/// Serialises groups into the committed text trace format.
pub fn serialize(groups: &[TraceGroup]) -> String {
    let mut out = String::from("# atmem learned trace v1\n");
    for g in groups {
        out.push_str(&format!("group {}\n", g.name));
        for e in &g.examples {
            out.push_str(&format!("example {:.6}", e.label));
            for f in &e.features {
                out.push_str(&format!(" {:.6}", f));
            }
            out.push('\n');
        }
    }
    out
}

/// Parses the text trace format produced by [`serialize`].
pub fn parse(text: &str) -> Result<Vec<TraceGroup>, String> {
    let mut groups: Vec<TraceGroup> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("group") => {
                let name = parts.collect::<Vec<_>>().join(" ");
                if name.is_empty() {
                    return Err(format!("line {}: group without a name", lineno + 1));
                }
                groups.push(TraceGroup {
                    name,
                    examples: Vec::new(),
                });
            }
            Some("example") => {
                let group = groups
                    .last_mut()
                    .ok_or_else(|| format!("line {}: example before any group", lineno + 1))?;
                let nums: Result<Vec<f64>, _> = parts.map(str::parse::<f64>).collect();
                let nums = nums.map_err(|e| format!("line {}: {e}", lineno + 1))?;
                if nums.len() != 1 + NUM_FEATURES {
                    return Err(format!(
                        "line {}: expected label + {NUM_FEATURES} features, got {} numbers",
                        lineno + 1,
                        nums.len()
                    ));
                }
                if nums.iter().any(|v| !v.is_finite()) {
                    return Err(format!("line {}: non-finite value", lineno + 1));
                }
                let mut features = [0.0; NUM_FEATURES];
                features.copy_from_slice(&nums[1..]);
                group.examples.push(Example {
                    label: nums[0],
                    features,
                });
            }
            Some(other) => {
                return Err(format!("line {}: unknown record `{other}`", lineno + 1));
            }
            None => unreachable!("empty lines are skipped"),
        }
    }
    Ok(groups)
}

/// Trainer hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainOptions {
    /// Full passes over the pair set.
    pub epochs: usize,
    /// SGD step size.
    pub learning_rate: f64,
    /// Minimum label difference for a pair to count as ordered.
    pub margin: f64,
    /// L2 regularisation strength.
    pub l2: f64,
    /// Seed for the epoch shuffles.
    pub seed: u64,
}

impl Default for TrainOptions {
    fn default() -> Self {
        TrainOptions {
            epochs: 40,
            learning_rate: 0.05,
            margin: 0.05,
            l2: 1e-4,
            seed: 0xA73E_0001,
        }
    }
}

/// Enumerates the ordered within-group pairs: `(group, hotter, colder)`
/// index triples with `label[hotter] > label[colder] + margin`.
fn ordered_pairs(groups: &[TraceGroup], margin: f64) -> Vec<(usize, usize, usize)> {
    let mut pairs = Vec::new();
    for (g, group) in groups.iter().enumerate() {
        for i in 0..group.examples.len() {
            for j in 0..group.examples.len() {
                if group.examples[i].label > group.examples[j].label + margin {
                    pairs.push((g, i, j));
                }
            }
        }
    }
    pairs
}

/// Fits a [`LearnedModel`] with pairwise logistic SGD over the ordered
/// pairs of `groups`. The pairwise loss is shift-invariant, so after the
/// ranking weights converge the bias is calibrated separately: it centres
/// the decision boundary (`confidence = 0.5`) between the mean scores of
/// hot (`label ≥ 0.5`) and cold chunks.
pub fn train(groups: &[TraceGroup], opts: &TrainOptions) -> LearnedModel {
    let pairs = ordered_pairs(groups, opts.margin);
    let mut w = [0.0f64; NUM_FEATURES];
    if pairs.is_empty() {
        return LearnedModel {
            weights: w,
            bias: 0.0,
        };
    }
    let mut rng = SmallRng::seed_from_u64(opts.seed);
    let mut order: Vec<usize> = (0..pairs.len()).collect();
    for _ in 0..opts.epochs {
        // Fisher–Yates shuffle of the pair order.
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        for &p in &order {
            let (g, i, j) = pairs[p];
            let fi = &groups[g].examples[i].features;
            let fj = &groups[g].examples[j].features;
            let diff: f64 = w
                .iter()
                .zip(fi.iter().zip(fj))
                .map(|(wk, (a, b))| wk * (a - b))
                .sum();
            // d/dw of -ln(sigmoid(diff)) = (sigmoid(diff) - 1) * (fi - fj)
            let g_scale = sigmoid(diff) - 1.0;
            for k in 0..NUM_FEATURES {
                w[k] -= opts.learning_rate * (g_scale * (fi[k] - fj[k]) + opts.l2 * w[k]);
            }
        }
    }

    // Bias calibration on the raw (bias-free) scores.
    let score = |f: &[f64; NUM_FEATURES]| -> f64 { w.iter().zip(f).map(|(wk, fk)| wk * fk).sum() };
    let (mut hot_sum, mut hot_n, mut cold_sum, mut cold_n) = (0.0, 0usize, 0.0, 0usize);
    for g in groups {
        for e in &g.examples {
            if e.label >= 0.5 {
                hot_sum += score(&e.features);
                hot_n += 1;
            } else {
                cold_sum += score(&e.features);
                cold_n += 1;
            }
        }
    }
    let bias = if hot_n > 0 && cold_n > 0 {
        -(hot_sum / hot_n as f64 + cold_sum / cold_n as f64) / 2.0
    } else {
        0.0
    };
    LearnedModel { weights: w, bias }
}

/// Fraction of ordered pairs the model ranks correctly (ties count as
/// wrong). Returns 1.0 for a trace with no ordered pairs.
pub fn pairwise_accuracy(model: &LearnedModel, groups: &[TraceGroup], margin: f64) -> f64 {
    let pairs = ordered_pairs(groups, margin);
    if pairs.is_empty() {
        return 1.0;
    }
    let correct = pairs
        .iter()
        .filter(|&&(g, i, j)| {
            model.score(&groups[g].examples[i].features)
                > model.score(&groups[g].examples[j].features)
        })
        .count();
    correct as f64 / pairs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic separable trace: the label rises with feature 0 and
    /// falls with feature 7, plus a little deterministic noise elsewhere.
    fn synthetic(groups: usize, per_group: usize) -> Vec<TraceGroup> {
        let mut rng = SmallRng::seed_from_u64(99);
        (0..groups)
            .map(|g| TraceGroup {
                name: format!("synthetic/{g}"),
                examples: (0..per_group)
                    .map(|_| {
                        let hot: f64 = rng.gen::<f64>();
                        let anti: f64 = rng.gen::<f64>();
                        let mut features = [0.0; NUM_FEATURES];
                        features[0] = hot;
                        features[7] = anti;
                        for f in features.iter_mut().skip(1).take(5) {
                            *f = rng.gen::<f64>() * 0.1;
                        }
                        Example {
                            label: (0.8 * hot - 0.2 * anti).clamp(0.0, 1.0),
                            features,
                        }
                    })
                    .collect(),
            })
            .collect()
    }

    #[test]
    fn trainer_learns_a_separable_ranking() {
        let trace = synthetic(6, 24);
        let opts = TrainOptions::default();
        let model = train(&trace, &opts);
        assert!(model.is_finite());
        assert!(model.weights[0] > 0.0, "hot feature gets positive weight");
        assert!(model.weights[7] < 0.0, "anti feature gets negative weight");
        let acc = pairwise_accuracy(&model, &trace, opts.margin);
        assert!(acc > 0.95, "training accuracy {acc}");
        // Generalisation to a fresh draw of the same distribution.
        let holdout = synthetic(3, 24);
        let acc = pairwise_accuracy(&model, &holdout, opts.margin);
        assert!(acc > 0.9, "holdout accuracy {acc}");
    }

    #[test]
    fn bias_calibration_centres_the_boundary() {
        let trace = synthetic(6, 24);
        let model = train(&trace, &TrainOptions::default());
        let (mut hot_ok, mut hot_n, mut cold_ok, mut cold_n) = (0, 0, 0, 0);
        for g in &trace {
            for e in &g.examples {
                let c = model.confidence(&e.features);
                if e.label >= 0.7 {
                    hot_n += 1;
                    hot_ok += (c > 0.5) as usize;
                } else if e.label <= 0.2 {
                    cold_n += 1;
                    cold_ok += (c < 0.5) as usize;
                }
            }
        }
        assert!(hot_ok as f64 >= 0.8 * hot_n as f64, "{hot_ok}/{hot_n} hot");
        assert!(
            cold_ok as f64 >= 0.8 * cold_n as f64,
            "{cold_ok}/{cold_n} cold"
        );
    }

    #[test]
    fn training_is_deterministic() {
        let trace = synthetic(4, 16);
        let a = train(&trace, &TrainOptions::default());
        let b = train(&trace, &TrainOptions::default());
        assert_eq!(a, b);
        let c = train(
            &trace,
            &TrainOptions {
                seed: 7,
                ..TrainOptions::default()
            },
        );
        assert!(c.is_finite()); // different seed still converges
    }

    #[test]
    fn trace_round_trips_through_text() {
        let trace = synthetic(3, 8);
        let text = serialize(&trace);
        let back = parse(&text).unwrap();
        assert_eq!(trace.len(), back.len());
        for (a, b) in trace.iter().zip(&back) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.examples.len(), b.examples.len());
            for (x, y) in a.examples.iter().zip(&b.examples) {
                assert!((x.label - y.label).abs() < 1e-5);
                for k in 0..NUM_FEATURES {
                    assert!((x.features[k] - y.features[k]).abs() < 1e-5);
                }
            }
        }
    }

    #[test]
    fn parse_rejects_malformed_traces() {
        assert!(parse("example 0.5 0 0 0 0 0 0 0 0 0").is_err(), "no group");
        assert!(parse("group g\nexample 0.5 1 2").is_err(), "short row");
        assert!(parse("group g\nexample nope 0 0 0 0 0 0 0 0 0").is_err());
        assert!(parse("wat 1 2 3").is_err(), "unknown record");
        assert!(parse("group g\nexample inf 0 0 0 0 0 0 0 0 0").is_err());
        assert!(parse("# comment only\n\n").unwrap().is_empty());
    }

    #[test]
    fn empty_trace_trains_to_a_null_model() {
        let model = train(&[], &TrainOptions::default());
        assert_eq!(model.weights, [0.0; NUM_FEATURES]);
        assert_eq!(model.bias, 0.0);
        assert_eq!(pairwise_accuracy(&model, &[], 0.05), 1.0);
    }
}
