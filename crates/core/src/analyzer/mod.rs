//! The ATMem analyzer: local selection, promotion tree, global promotion.
//!
//! [`analyze`] composes the two stages of paper §4.2–§4.3 over the whole
//! registry and produces, for every data object, the final per-chunk
//! criticality bitmap (sampled ∪ estimated) plus the numbers the reports
//! need.

pub mod features;
pub mod learned;
pub mod local;
pub mod promote;
pub mod train;
pub mod tree;

use crate::config::{AnalyzerConfig, AnalyzerKind};
use crate::object::ObjectId;
use crate::registry::Registry;

use local::{local_selection, LocalSelection};
use promote::{adaptive_thresholds, estimated_only, object_weight, promote};
use tree::MaryTree;

/// Analyzer outcome for one data object.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectAnalysis {
    /// The object analysed.
    pub id: ObjectId,
    /// Stage-one local selection.
    pub selection: LocalSelection,
    /// Eq. 4 weight.
    pub weight: f64,
    /// Eq. 5 adapted tree-ratio threshold.
    pub tr_threshold: f64,
    /// Final criticality (sampled ∪ estimated) per chunk.
    pub critical: Vec<bool>,
    /// Chunks added by promotion alone.
    pub promoted_chunks: usize,
}

impl ObjectAnalysis {
    /// Number of critical chunks after promotion.
    pub fn critical_count(&self) -> usize {
        self.critical.iter().filter(|&&c| c).count()
    }
}

/// The full analyzer result.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Analysis {
    /// One entry per live object, in registration order.
    pub objects: Vec<ObjectAnalysis>,
}

impl Analysis {
    /// Total sampled-critical chunks across objects.
    pub fn sampled_chunks(&self) -> usize {
        self.objects
            .iter()
            .map(|o| o.selection.critical_count())
            .sum()
    }

    /// Total chunks promoted by estimation across objects.
    pub fn promoted_chunks(&self) -> usize {
        self.objects.iter().map(|o| o.promoted_chunks).sum()
    }
}

/// Runs the configured analyzer over every live object in the registry:
/// the paper's two-stage pipeline, or the learned ranker when
/// `config.kind` is [`AnalyzerKind::Learned`]. Both produce the same
/// [`Analysis`] shape, so every consumer (the migration planner, the
/// demotion cascade, the serving scheduler, the reports) is
/// analyzer-agnostic.
pub fn analyze(registry: &Registry, config: &AnalyzerConfig) -> Analysis {
    match config.kind {
        AnalyzerKind::Paper => analyze_paper(registry, config),
        AnalyzerKind::Learned => learned::analyze_learned(registry, config),
    }
}

/// The paper's Eq. 1–5 pipeline (§4.2–§4.3): local selection, then
/// weight-adapted tree promotion.
pub fn analyze_paper(registry: &Registry, config: &AnalyzerConfig) -> Analysis {
    let mut selections: Vec<(ObjectId, LocalSelection)> = registry
        .iter()
        .map(|o| (o.id(), local_selection(o, config)))
        .collect();

    let weights: Vec<f64> = selections.iter().map(|(_, s)| object_weight(s)).collect();
    let thresholds = adaptive_thresholds(&weights, config);

    let objects = selections
        .drain(..)
        .zip(weights)
        .zip(thresholds)
        .map(|(((id, selection), weight), tr_threshold)| {
            let critical = if config.promotion_enabled && !selection.critical.is_empty() {
                let tree = MaryTree::build(&selection.critical, config.arity);
                promote(&tree, &selection.critical, tr_threshold)
            } else {
                selection.critical.clone()
            };
            let promoted_chunks = estimated_only(&selection.critical, &critical);
            ObjectAnalysis {
                id,
                selection,
                weight,
                tr_threshold,
                critical,
                promoted_chunks,
            }
        })
        .collect();
    Analysis { objects }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::chunk_geometry;
    use crate::config::ChunkConfig;
    use atmem_hms::{VirtAddr, VirtRange};

    /// A registry with two objects; the first has a very hot clustered
    /// region, the second is lukewarm.
    fn registry() -> Registry {
        let mut r = Registry::new();
        let cfg = ChunkConfig {
            target_chunks: 32,
            min_chunk_bytes: 4096,
        };
        let bytes = 32 * 4096;
        let g = chunk_geometry(bytes, &cfg);
        let hot = r.register("hot", VirtRange::new(VirtAddr::new(0x100000), bytes), g);
        let warm = r.register("warm", VirtRange::new(VirtAddr::new(0x900000), bytes), g);
        // Hot object: chunks 4..8 heavily sampled, chunk 6 missed by
        // sampling (the gap promotion should patch).
        for chunk in [4usize, 5, 7] {
            for _ in 0..200 {
                let va = r.get(hot).unwrap().chunk_range(chunk).start;
                r.attribute(va).unwrap();
            }
        }
        // Warm object: a couple of moderate chunks.
        for chunk in [0usize, 16] {
            for _ in 0..20 {
                let va = r.get(warm).unwrap().chunk_range(chunk).start;
                r.attribute(va).unwrap();
            }
        }
        r
    }

    #[test]
    fn analyze_patches_sampling_gaps_in_heavy_objects() {
        let r = registry();
        let a = analyze(&r, &AnalyzerConfig::default());
        let hot = &a.objects[0];
        assert!(hot.selection.critical[4] && hot.selection.critical[5]);
        assert!(!hot.selection.critical[6], "chunk 6 was never sampled");
        assert!(
            hot.critical[6],
            "promotion should patch the unsampled gap at chunk 6 \
             (threshold {}, weight {})",
            hot.tr_threshold, hot.weight
        );
        assert!(hot.promoted_chunks >= 1);
    }

    #[test]
    fn heavy_object_gets_lower_threshold() {
        let r = registry();
        let a = analyze(&r, &AnalyzerConfig::default());
        assert!(a.objects[0].weight > a.objects[1].weight);
        assert!(a.objects[0].tr_threshold < a.objects[1].tr_threshold);
    }

    #[test]
    fn promotion_disabled_keeps_sampled_selection() {
        let r = registry();
        let config = AnalyzerConfig {
            promotion_enabled: false,
            ..AnalyzerConfig::default()
        };
        let a = analyze(&r, &config);
        for o in &a.objects {
            assert_eq!(o.critical, o.selection.critical);
            assert_eq!(o.promoted_chunks, 0);
        }
    }

    #[test]
    fn priorities_are_comparable_across_chunk_sizes() {
        // Two objects with the same miss *density* but different chunk
        // sizes must receive the same Eq. 1 priorities (the normalisation
        // the global stage depends on).
        let mut r = Registry::new();
        let small_chunks = chunk_geometry(
            16 * 4096,
            &ChunkConfig {
                target_chunks: 16,
                min_chunk_bytes: 4096,
            },
        );
        let big_chunks = chunk_geometry(
            16 * 4096,
            &ChunkConfig {
                target_chunks: 2,
                min_chunk_bytes: 4096,
            },
        );
        assert!(big_chunks.chunk_bytes > small_chunks.chunk_bytes);
        let a = r.register(
            "fine",
            VirtRange::new(VirtAddr::new(0x100000), 16 * 4096),
            small_chunks,
        );
        let b = r.register(
            "coarse",
            VirtRange::new(VirtAddr::new(0x900000), 16 * 4096),
            big_chunks,
        );
        // Same density: 4 samples per 4 KiB page, across both objects.
        for obj in [a, b] {
            let range = r.get(obj).unwrap().range();
            for page in 0..16u64 {
                for k in 0..4u64 {
                    r.attribute(range.start.add(page * 4096 + k * 64)).unwrap();
                }
            }
        }
        let analysis = analyze(&r, &AnalyzerConfig::default());
        let pa = analysis.objects[0].selection.priorities[0];
        let pb = analysis.objects[1].selection.priorities[0];
        assert!(
            (pa - pb).abs() < 1e-12,
            "same density must give same priority: {pa} vs {pb}"
        );
        // And therefore the same weight where both saturate.
        assert!((analysis.objects[0].weight - analysis.objects[1].weight).abs() < 1e-12);
    }

    #[test]
    fn empty_registry_analyzes_to_nothing() {
        let a = analyze(&Registry::new(), &AnalyzerConfig::default());
        assert!(a.objects.is_empty());
        assert_eq!(a.sampled_chunks(), 0);
        assert_eq!(a.promoted_chunks(), 0);
    }

    #[test]
    fn analyze_dispatches_on_the_configured_kind() {
        use crate::config::AnalyzerKind;
        let r = registry();
        let paper_cfg = AnalyzerConfig::default();
        let learned_cfg = AnalyzerConfig {
            kind: AnalyzerKind::Learned,
            ..AnalyzerConfig::default()
        };
        assert_eq!(analyze(&r, &paper_cfg), analyze_paper(&r, &paper_cfg));
        let learned = analyze(&r, &learned_cfg);
        assert_eq!(learned, learned::analyze_learned(&r, &learned_cfg));
        // Same output shape: one entry per object, chunk-aligned bitmaps.
        let paper = analyze(&r, &paper_cfg);
        assert_eq!(learned.objects.len(), paper.objects.len());
        for (l, p) in learned.objects.iter().zip(&paper.objects) {
            assert_eq!(l.id, p.id);
            assert_eq!(l.critical.len(), p.critical.len());
            assert_eq!(l.selection.priorities.len(), p.selection.priorities.len());
        }
        // And the learned ranker also finds the hot cluster.
        assert!(learned.objects[0].critical[4] && learned.objects[0].critical[5]);
    }
}
