//! Runtime configuration.
//!
//! Every knob the paper describes — chunk granularity, sampling rate,
//! local-selection percentile, tree arity `m`, the tree-ratio floor `ε`,
//! migration concurrency — is an explicit field here, so the sensitivity
//! experiments (Figures 9 and 10 sweep `ε`; our ablations sweep the rest)
//! are plain configuration sweeps.

use atmem_hms::Placement;

use crate::analyzer::learned::LearnedModel;
use crate::error::{AtmemError, Result};

/// Chunking policy (paper §4.1, "Adaptive Data Chunks").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkConfig {
    /// Target number of chunks per data object. The actual chunk size is
    /// the object size divided by this, rounded up to a power of two and
    /// clamped to `[min_chunk_bytes, object size]`. More chunks = finer
    /// placement but more metadata and profiling overhead.
    pub target_chunks: usize,
    /// Lower bound on chunk size. Migration is page-granular, so the
    /// default is one 4 KiB page.
    pub min_chunk_bytes: usize,
}

impl Default for ChunkConfig {
    fn default() -> Self {
        ChunkConfig {
            target_chunks: 1024,
            min_chunk_bytes: 4096,
        }
    }
}

/// Profiler configuration (paper §5.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplingConfig {
    /// Fixed sampling period (one record per `period` LLC read misses), or
    /// `None` to let the runtime choose an empirical period from the total
    /// chunk count and thread count, as the paper's runtime does.
    pub period: Option<u64>,
    /// Random jitter added to each sampling interval, as a fraction of the
    /// period, to avoid aliasing with strided accesses.
    pub jitter_frac: f64,
    /// Seed of the jitter RNG. The paper repeats every experiment ten
    /// times and reports the average; sweeping this seed is how the
    /// harness reproduces that methodology on the deterministic simulator.
    pub rng_seed: u64,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        SamplingConfig {
            period: None,
            jitter_frac: 0.25,
            rng_seed: 0xA7_3E3,
        }
    }
}

/// Which analyzer ranks chunks for placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AnalyzerKind {
    /// The paper's Eq. 1–5 pipeline: static local-selection thresholds
    /// plus the m-ary promotion tree.
    #[default]
    Paper,
    /// The learning-to-rank scorer of
    /// [`analyzer::learned`](crate::analyzer::learned): a linear model over
    /// bounded chunk features, trained offline by pairwise ranking.
    Learned,
}

/// Knobs of the [`AnalyzerKind::Learned`] scorer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LearnedConfig {
    /// The scoring model. Defaults to the shipped pretrained weights.
    pub model: LearnedModel,
    /// Fraction of the registered bytes the scorer may mark critical —
    /// the learned analogue of `max_select_frac` + promotion, targeting
    /// the paper's 5%–18% data-ratio band. Default 0.15.
    pub select_frac: f64,
    /// Minimum model confidence (`sigmoid(score)`) for a chunk to be a
    /// selection candidate at all. Default 0.5.
    pub min_confidence: f64,
}

impl Default for LearnedConfig {
    fn default() -> Self {
        LearnedConfig {
            model: LearnedModel::pretrained(),
            select_frac: 0.15,
            min_confidence: 0.5,
        }
    }
}

/// Analyzer configuration (paper §4.2–§4.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyzerConfig {
    /// Which analyzer [`analyze`](crate::analyzer::analyze) dispatches to.
    /// The remaining fields configure the paper pipeline; `learned`
    /// configures the learning-to-rank alternative.
    pub kind: AnalyzerKind,
    /// Knobs of the learned scorer (used only when `kind` is
    /// [`AnalyzerKind::Learned`]).
    pub learned: LearnedConfig,
    /// Top-N fraction for the percentile candidate of Eq. 2 (`P_n`): the
    /// local selection picks at least the top `top_n_frac` of chunks by
    /// priority. Default 0.08.
    pub top_n_frac: f64,
    /// The derivative-based candidate of Eq. 2: walking the descending
    /// priority curve, selection stops at the first chunk whose priority
    /// falls below `derivative_alpha` times the running average of the
    /// chunks selected so far (the boundary of the hot cluster). Default
    /// 0.1.
    pub derivative_alpha: f64,
    /// The mass-coverage candidate of the derivative search: selection
    /// stops once the chosen chunks cover this fraction of the object's
    /// total priority mass — the direct expression of the paper's
    /// "maximum performance gain per byte" objective (§1). Default 0.70.
    pub mass_coverage: f64,
    /// Upper bound on the fraction of an object's chunks the local stage
    /// may select when no knee is found (flat distributions extend past the
    /// `top_n_frac` percentile up to this cap; boundary ties may exceed
    /// it). Default 0.12 — together with promotion this lands the overall
    /// data ratio in the paper's 5%-18% band (Figures 7/8).
    pub max_select_frac: f64,
    /// Minimum samples a chunk must receive for its priority to be
    /// considered real (the `min PR / Freq_sample` floor of Eq. 2).
    pub min_samples: u64,
    /// Arity `m` of the promotion tree (paper Figure 3 shows a ternary
    /// tree; an octree gives `ε = 0.125` as a natural floor). Default 4.
    pub arity: usize,
    /// The floor `ε` of Eq. 5. Figures 9/10 sweep this value. Default
    /// `1/arity`, set at build time when left as `None`.
    pub epsilon: Option<f64>,
    /// The base tree-ratio threshold `Θ(TR)` of Eq. 5 that the global
    /// adaption scales per object. Default 0.5.
    pub base_tr: f64,
    /// Disables the tree-based global promotion entirely (ablation:
    /// sampled selection only).
    pub promotion_enabled: bool,
    /// Uses `base_tr` as a fixed threshold for every object instead of the
    /// globally adapted Eq. 5 value (ablation: "naive design" of §4.3.2).
    pub adaptive_tr: bool,
}

impl Default for AnalyzerConfig {
    fn default() -> Self {
        AnalyzerConfig {
            kind: AnalyzerKind::Paper,
            learned: LearnedConfig::default(),
            top_n_frac: 0.08,
            derivative_alpha: 0.1,
            mass_coverage: 0.70,
            max_select_frac: 0.12,
            min_samples: 2,
            arity: 4,
            epsilon: None,
            base_tr: 0.5,
            promotion_enabled: true,
            adaptive_tr: true,
        }
    }
}

impl AnalyzerConfig {
    /// The effective `ε`: the configured value, or `1/arity`.
    pub fn effective_epsilon(&self) -> f64 {
        self.epsilon.unwrap_or(1.0 / self.arity as f64)
    }
}

/// Which engine executes a migration plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MigrationMechanism {
    /// The paper's three-stage multi-threaded mechanism (§4.4, Figure 4).
    #[default]
    Staged,
    /// Single-stage direct copy (ablation; unsafe with concurrent readers
    /// on real hardware, fine in simulation).
    Direct,
    /// The `mbind` system service (the Table 4 baseline).
    Mbind,
}

/// Migration configuration (paper §4.4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationConfig {
    /// Copier threads; `None` uses the platform's `migration_threads`.
    pub threads: Option<usize>,
    /// Fraction of the fast tier's free bytes the optimizer may fill.
    /// Figure 10 shows that filling MCDRAM to the brim hurts, so the
    /// default leaves headroom.
    pub budget_frac: f64,
    /// Upper bound on one migrated region (larger selections are split);
    /// also bounds the transient staging footprint.
    pub max_region_bytes: usize,
    /// Engine executing the plan.
    pub mechanism: MigrationMechanism,
    /// Enables demotion: before promoting a new selection, regions the
    /// latest analysis no longer classifies as critical are migrated back
    /// to the slow tier, freeing capacity for a shifted hot set. This is
    /// the phase-adaptivity extension the paper leaves as future work
    /// (§9); disabled by default to match the paper's one-shot protocol.
    pub allow_demotion: bool,
}

impl Default for MigrationConfig {
    fn default() -> Self {
        MigrationConfig {
            threads: None,
            budget_frac: 0.90,
            max_region_bytes: 8 * 1024 * 1024,
            mechanism: MigrationMechanism::Staged,
            allow_demotion: false,
        }
    }
}

/// Which placement policy [`Atmem::optimize`](crate::Atmem::optimize)
/// runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OptimizePolicy {
    /// The paper's protocol: analyzer over attributed samples, planned
    /// regions, staged migration.
    #[default]
    Atmem,
    /// An AutoNUMA-style OS-tiering baseline: page-granular
    /// promote-on-second-touch from the raw sample stream plus
    /// watermark-driven demotion, executed through the `mbind` service.
    /// Models what Linux kernel tiering (NUMA balancing + reclaim-based
    /// demotion) would do with the same access information.
    Autonuma,
}

/// Knobs of the [`OptimizePolicy::Autonuma`] baseline. The defaults mirror
/// the kernel's shape: short scan epochs, promotion on the second touch,
/// demotion when a tier crosses its high watermark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutonumaConfig {
    /// Number of scan epochs the raw sample stream is split into (the
    /// analogue of NUMA-balancing scan periods). The stream has no
    /// timestamps, so epochs are equal slices by stream position.
    pub epochs: usize,
    /// Consecutive epochs a page must be touched in before it is promoted
    /// one tier hotter (2 = the kernel's promote-on-second-touch).
    pub promote_touches: u32,
    /// Occupancy fraction above which a tier demotes cold pages to the
    /// next-colder tier (the kernel's high watermark).
    pub high_watermark: f64,
    /// Occupancy fraction demotion drains a tier down to (the low
    /// watermark; hysteresis keeps consecutive optimize calls from
    /// thrashing around the high mark).
    pub low_watermark: f64,
    /// Upper bound on bytes promoted per optimize call (the kernel's
    /// promotion rate limit).
    pub promote_cap_bytes: usize,
}

impl Default for AutonumaConfig {
    fn default() -> Self {
        AutonumaConfig {
            epochs: 4,
            promote_touches: 2,
            high_watermark: 0.95,
            low_watermark: 0.85,
            promote_cap_bytes: 64 * 1024 * 1024,
        }
    }
}

/// Complete ATMem runtime configuration.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AtmemConfig {
    /// Placement for registered allocations before optimization. The
    /// paper's baseline places everything on the large-capacity memory.
    pub default_placement: PlacementPolicy,
    /// Which policy [`Atmem::optimize`](crate::Atmem::optimize) runs.
    pub policy: OptimizePolicy,
    /// Chunking policy.
    pub chunks: ChunkConfig,
    /// Profiler policy.
    pub sampling: SamplingConfig,
    /// Analyzer policy.
    pub analyzer: AnalyzerConfig,
    /// Migration policy.
    pub migration: MigrationConfig,
    /// Knobs of the AutoNUMA baseline (used only when `policy` is
    /// [`OptimizePolicy::Autonuma`]).
    pub autonuma: AutonumaConfig,
}

/// Initial placement policy for `atmem_malloc` allocations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementPolicy {
    /// Everything on the large-capacity tier (the paper's baseline).
    #[default]
    AllSlow,
    /// Everything on the fast tier (the paper's all-DRAM ideal reference).
    AllFast,
    /// Fast tier preferred, spill to slow (`numactl -p`, the paper's
    /// MCDRAM-p reference).
    PreferFast,
}

impl PlacementPolicy {
    /// The HMS placement this policy requests.
    pub fn placement(self) -> Placement {
        match self {
            PlacementPolicy::AllSlow => Placement::Slow,
            PlacementPolicy::AllFast => Placement::Fast,
            PlacementPolicy::PreferFast => Placement::Preferred(atmem_hms::TierId::FAST),
        }
    }
}

impl AtmemConfig {
    /// Validates all fields.
    ///
    /// # Errors
    ///
    /// [`AtmemError::InvalidConfig`] naming the first offending field.
    pub fn validate(&self) -> Result<()> {
        fn bad(what: &'static str, reason: &'static str) -> Result<()> {
            Err(AtmemError::InvalidConfig { what, reason })
        }
        if self.chunks.target_chunks == 0 {
            return bad("chunks.target_chunks", "must be positive");
        }
        if self.chunks.min_chunk_bytes == 0 || !self.chunks.min_chunk_bytes.is_power_of_two() {
            return bad("chunks.min_chunk_bytes", "must be a positive power of two");
        }
        if let Some(p) = self.sampling.period {
            if p == 0 {
                return bad("sampling.period", "must be positive");
            }
        }
        if !(0.0..1.0).contains(&self.sampling.jitter_frac) {
            return bad("sampling.jitter_frac", "must be in [0, 1)");
        }
        if !(0.0..=1.0).contains(&self.analyzer.top_n_frac) {
            return bad("analyzer.top_n_frac", "must be in [0, 1]");
        }
        if !(0.0..=1.0).contains(&self.analyzer.max_select_frac) {
            return bad("analyzer.max_select_frac", "must be in [0, 1]");
        }
        if !(0.0..=1.0).contains(&self.analyzer.mass_coverage) {
            return bad("analyzer.mass_coverage", "must be in [0, 1]");
        }
        if self.analyzer.arity < 2 {
            return bad("analyzer.arity", "must be at least 2");
        }
        if let Some(e) = self.analyzer.epsilon {
            if !(0.0..=1.0).contains(&e) {
                return bad("analyzer.epsilon", "must be in [0, 1]");
            }
        }
        if !(0.0..=1.0).contains(&self.analyzer.base_tr) {
            return bad("analyzer.base_tr", "must be in [0, 1]");
        }
        if !(0.0..=1.0).contains(&self.analyzer.learned.select_frac) {
            return bad("analyzer.learned.select_frac", "must be in [0, 1]");
        }
        if !(0.0..=1.0).contains(&self.analyzer.learned.min_confidence) {
            return bad("analyzer.learned.min_confidence", "must be in [0, 1]");
        }
        if !self.analyzer.learned.model.is_finite() {
            return bad("analyzer.learned.model", "weights must be finite");
        }
        if self.policy == OptimizePolicy::Autonuma && self.analyzer.kind != AnalyzerKind::Paper {
            return bad(
                "analyzer.kind",
                "the AutoNUMA baseline works from the raw sample stream and \
                 never consults the chunk analyzer",
            );
        }
        if !(0.0..=1.0).contains(&self.migration.budget_frac) {
            return bad("migration.budget_frac", "must be in [0, 1]");
        }
        if self.migration.max_region_bytes < self.chunks.min_chunk_bytes {
            return bad("migration.max_region_bytes", "must be at least one chunk");
        }
        if self.autonuma.epochs == 0 {
            return bad("autonuma.epochs", "must be positive");
        }
        if self.autonuma.promote_touches == 0 {
            return bad("autonuma.promote_touches", "must be positive");
        }
        if !(0.0..=1.0).contains(&self.autonuma.high_watermark) {
            return bad("autonuma.high_watermark", "must be in [0, 1]");
        }
        if !(0.0..=self.autonuma.high_watermark).contains(&self.autonuma.low_watermark) {
            return bad("autonuma.low_watermark", "must be in [0, high_watermark]");
        }
        Ok(())
    }

    /// Sets the initial placement policy.
    #[must_use]
    pub fn with_placement(mut self, p: PlacementPolicy) -> Self {
        self.default_placement = p;
        self
    }

    /// Sets the optimize policy (ATMem protocol or the AutoNUMA baseline).
    #[must_use]
    pub fn with_policy(mut self, policy: OptimizePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Selects the analyzer (the paper pipeline or the learned ranker).
    #[must_use]
    pub fn with_analyzer(mut self, kind: AnalyzerKind) -> Self {
        self.analyzer.kind = kind;
        self
    }

    /// Sets the tree-ratio floor `ε` (the Figure 9/10 sweep knob).
    #[must_use]
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.analyzer.epsilon = Some(epsilon);
        self
    }

    /// Sets the promotion-tree arity `m`.
    #[must_use]
    pub fn with_arity(mut self, arity: usize) -> Self {
        self.analyzer.arity = arity;
        self
    }

    /// Sets a fixed sampling period.
    #[must_use]
    pub fn with_sampling_period(mut self, period: u64) -> Self {
        self.sampling.period = Some(period);
        self
    }

    /// Sets the per-object target chunk count.
    #[must_use]
    pub fn with_target_chunks(mut self, target: usize) -> Self {
        self.chunks.target_chunks = target;
        self
    }

    /// A preset that trades fast-tier capacity for performance: permissive
    /// promotion (low ε), generous selection caps, denser sampling, and
    /// phase-adaptive demotion on. Use when the fast tier is plentiful or
    /// the application alternates hot sets.
    pub fn aggressive() -> Self {
        let mut config = AtmemConfig::default();
        config.analyzer.epsilon = Some(0.1);
        config.analyzer.max_select_frac = 0.30;
        config.analyzer.mass_coverage = 0.90;
        config.sampling.period = Some(16);
        config.migration.allow_demotion = true;
        config
    }

    /// A preset that minimises fast-tier pressure and profiling cost:
    /// strict promotion, tight selection, sparse sampling. Use on shared
    /// machines where the fast tier is contended (the server scenario the
    /// paper motivates in §1).
    pub fn conservative() -> Self {
        let mut config = AtmemConfig::default();
        config.analyzer.epsilon = Some(0.6);
        config.analyzer.max_select_frac = 0.08;
        config.analyzer.mass_coverage = 0.55;
        config.sampling.period = Some(256);
        config.migration.budget_frac = 0.5;
        config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        AtmemConfig::default().validate().unwrap();
    }

    #[test]
    fn effective_epsilon_defaults_to_inverse_arity() {
        let a = AnalyzerConfig::default();
        assert!((a.effective_epsilon() - 0.25).abs() < 1e-12);
        let a = AnalyzerConfig {
            arity: 8,
            ..AnalyzerConfig::default()
        };
        assert!((a.effective_epsilon() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn invalid_fields_are_named() {
        let mut c = AtmemConfig::default();
        c.analyzer.arity = 1;
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("arity"));

        let mut c = AtmemConfig::default();
        c.chunks.min_chunk_bytes = 1000; // not a power of two
        assert!(c.validate().is_err());

        let c = AtmemConfig::default().with_epsilon(1.5);
        assert!(c.validate().is_err());

        let mut c = AtmemConfig::default();
        c.analyzer.learned.select_frac = 1.5;
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("select_frac"));

        let mut c = AtmemConfig::default();
        c.analyzer.learned.model.bias = f64::NAN;
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("finite"));
    }

    #[test]
    fn learned_analyzer_conflicts_with_autonuma() {
        let c = AtmemConfig::default()
            .with_policy(OptimizePolicy::Autonuma)
            .with_analyzer(AnalyzerKind::Learned);
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("analyzer.kind"), "{err}");
        // Either alone is fine.
        AtmemConfig::default()
            .with_policy(OptimizePolicy::Autonuma)
            .validate()
            .unwrap();
        AtmemConfig::default()
            .with_analyzer(AnalyzerKind::Learned)
            .validate()
            .unwrap();
    }

    #[test]
    fn presets_are_valid_and_ordered() {
        let a = AtmemConfig::aggressive();
        let c = AtmemConfig::conservative();
        a.validate().unwrap();
        c.validate().unwrap();
        assert!(a.analyzer.effective_epsilon() < c.analyzer.effective_epsilon());
        assert!(a.analyzer.max_select_frac > c.analyzer.max_select_frac);
        assert!(a.sampling.period.unwrap() < c.sampling.period.unwrap());
        assert!(a.migration.allow_demotion && !c.migration.allow_demotion);
    }

    #[test]
    fn builders_chain() {
        let c = AtmemConfig::default()
            .with_placement(PlacementPolicy::PreferFast)
            .with_epsilon(0.3)
            .with_arity(8)
            .with_sampling_period(128)
            .with_target_chunks(256);
        c.validate().unwrap();
        assert_eq!(c.analyzer.arity, 8);
        assert_eq!(c.sampling.period, Some(128));
        assert_eq!(c.chunks.target_chunks, 256);
        assert_eq!(
            c.default_placement.placement(),
            Placement::Preferred(atmem_hms::TierId::FAST)
        );
    }
}
