//! Registered data objects and their per-chunk sample counters.

use atmem_hms::{VirtAddr, VirtRange};

use crate::chunk::ChunkGeometry;

/// Identifier of a registered data object, stable for the lifetime of the
/// runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub(crate) u32);

impl ObjectId {
    /// Creates an identifier from a raw index. Useful when constructing
    /// migration plans by hand (e.g. harnesses that bypass the analyzer);
    /// ids handed to a [`Registry`](crate::registry::Registry) must come
    /// from registration.
    pub fn from_index(index: u32) -> Self {
        ObjectId(index)
    }

    /// The numeric index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One data object registered through `atmem_malloc` (paper Listing 1):
/// a virtual range, its adaptive chunk geometry, and the LLC-miss sample
/// counter of every chunk.
#[derive(Debug, Clone)]
pub struct DataObject {
    id: ObjectId,
    name: String,
    range: VirtRange,
    geometry: ChunkGeometry,
    /// Sampled LLC read misses attributed to each chunk.
    samples: Vec<u64>,
    /// The previous profiling round's sample counts, stashed by
    /// [`DataObject::reset_samples`]. Gives phase-aware analyzers (the
    /// learned scorer's kernel-phase-delta feature) a one-round history
    /// without any extra bookkeeping at the call sites.
    prev_samples: Vec<u64>,
}

impl DataObject {
    pub(crate) fn new(
        id: ObjectId,
        name: impl Into<String>,
        range: VirtRange,
        geometry: ChunkGeometry,
    ) -> Self {
        DataObject {
            id,
            name: name.into(),
            range,
            samples: vec![0; geometry.num_chunks],
            prev_samples: vec![0; geometry.num_chunks],
            geometry,
        }
    }

    /// The object's identifier.
    pub fn id(&self) -> ObjectId {
        self.id
    }

    /// The registration name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The registered virtual range.
    pub fn range(&self) -> VirtRange {
        self.range
    }

    /// Total size in bytes.
    pub fn size(&self) -> usize {
        self.range.len
    }

    /// Chunk geometry.
    pub fn geometry(&self) -> ChunkGeometry {
        self.geometry
    }

    /// Number of chunks.
    pub fn num_chunks(&self) -> usize {
        self.geometry.num_chunks
    }

    /// Size in bytes of chunk `idx` (the final chunk may be short).
    pub fn chunk_bytes(&self, idx: usize) -> usize {
        let (s, e) = self.geometry.chunk_span(idx, self.range.len);
        e - s
    }

    /// Virtual range of chunk `idx`.
    pub fn chunk_range(&self, idx: usize) -> VirtRange {
        let (s, e) = self.geometry.chunk_span(idx, self.range.len);
        VirtRange::new(self.range.start.add(s as u64), e - s)
    }

    /// The chunk containing `va`, if `va` lies in this object.
    pub fn chunk_of(&self, va: VirtAddr) -> Option<usize> {
        if !self.range.contains(va) {
            return None;
        }
        Some(
            self.geometry
                .chunk_of(va.offset_from(self.range.start) as usize),
        )
    }

    /// Records one sampled miss at `va`. Returns `false` if `va` is outside
    /// the object.
    pub(crate) fn record_sample(&mut self, va: VirtAddr) -> bool {
        match self.chunk_of(va) {
            Some(c) => {
                self.samples[c] += 1;
                true
            }
            None => false,
        }
    }

    /// Per-chunk sampled miss counts.
    pub fn samples(&self) -> &[u64] {
        &self.samples
    }

    /// Total samples attributed to the object.
    pub fn total_samples(&self) -> u64 {
        self.samples.iter().sum()
    }

    /// Per-chunk sample counts of the previous profiling round (all zero
    /// before the second round).
    pub fn prev_samples(&self) -> &[u64] {
        &self.prev_samples
    }

    /// Total samples the previous profiling round attributed.
    pub fn total_prev_samples(&self) -> u64 {
        self.prev_samples.iter().sum()
    }

    /// Clears the sample counters (between profiling rounds), stashing the
    /// outgoing counts as the previous round's profile.
    pub(crate) fn reset_samples(&mut self) {
        std::mem::swap(&mut self.prev_samples, &mut self.samples);
        self.samples.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::chunk_geometry;
    use crate::config::ChunkConfig;

    fn object(bytes: usize) -> DataObject {
        let g = chunk_geometry(bytes, &ChunkConfig::default());
        DataObject::new(
            ObjectId(0),
            "test",
            VirtRange::new(VirtAddr::new(0x10_0000), bytes),
            g,
        )
    }

    #[test]
    fn chunk_of_boundaries() {
        let o = object(64 * 4096);
        assert_eq!(o.chunk_of(VirtAddr::new(0x10_0000)), Some(0));
        assert_eq!(o.chunk_of(VirtAddr::new(0x10_0000 - 1)), None);
        let last = o.range().end().raw() - 1;
        assert_eq!(o.chunk_of(VirtAddr::new(last)), Some(o.num_chunks() - 1));
        assert_eq!(o.chunk_of(o.range().end()), None);
    }

    #[test]
    fn record_sample_increments_right_chunk() {
        let mut o = object(16 * 4096);
        let chunk_bytes = o.geometry().chunk_bytes;
        assert!(o.record_sample(VirtAddr::new(0x10_0000 + chunk_bytes as u64)));
        assert_eq!(o.samples()[1], 1);
        assert_eq!(o.total_samples(), 1);
        assert!(!o.record_sample(VirtAddr::new(0x0)));
        o.reset_samples();
        assert_eq!(o.total_samples(), 0);
        assert_eq!(o.prev_samples()[1], 1, "reset stashes the old round");
        assert_eq!(o.total_prev_samples(), 1);
        o.reset_samples();
        assert_eq!(o.total_prev_samples(), 0, "history is one round deep");
    }

    #[test]
    fn chunk_ranges_tile_the_object() {
        let o = object(10 * 4096 + 123);
        let mut covered = 0usize;
        for i in 0..o.num_chunks() {
            let r = o.chunk_range(i);
            assert_eq!(
                r.start.offset_from(o.range().start) as usize,
                covered,
                "chunks must tile contiguously"
            );
            covered += r.len;
        }
        assert_eq!(covered, o.size());
    }
}
