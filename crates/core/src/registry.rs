//! The data-object registry behind `atmem_malloc`.

use std::collections::BTreeMap;

use atmem_hms::{VirtAddr, VirtRange};

use crate::chunk::ChunkGeometry;
use crate::object::{DataObject, ObjectId};

/// All registered data objects, with address-based attribution.
#[derive(Debug, Default)]
pub struct Registry {
    objects: Vec<Option<DataObject>>,
    /// Range start -> object id, for sample attribution.
    by_start: BTreeMap<u64, ObjectId>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers an object covering `range` and returns its id.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        range: VirtRange,
        geometry: ChunkGeometry,
    ) -> ObjectId {
        let id = ObjectId(self.objects.len() as u32);
        self.objects
            .push(Some(DataObject::new(id, name, range, geometry)));
        self.by_start.insert(range.start.raw(), id);
        id
    }

    /// Unregisters an object, returning it.
    pub fn unregister(&mut self, id: ObjectId) -> Option<DataObject> {
        let slot = self.objects.get_mut(id.index())?;
        let obj = slot.take()?;
        self.by_start.remove(&obj.range().start.raw());
        Some(obj)
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.by_start.len()
    }

    /// Whether there are no live objects.
    pub fn is_empty(&self) -> bool {
        self.by_start.is_empty()
    }

    /// The object with id `id`, if alive.
    pub fn get(&self, id: ObjectId) -> Option<&DataObject> {
        self.objects.get(id.index()).and_then(|o| o.as_ref())
    }

    /// Mutable access to the object with id `id`.
    pub fn get_mut(&mut self, id: ObjectId) -> Option<&mut DataObject> {
        self.objects.get_mut(id.index()).and_then(|o| o.as_mut())
    }

    /// Finds the live object containing `va`.
    pub fn object_at(&self, va: VirtAddr) -> Option<ObjectId> {
        let (_, &id) = self.by_start.range(..=va.raw()).next_back()?;
        let obj = self.get(id)?;
        obj.range().contains(va).then_some(id)
    }

    /// Attributes one sampled address to its object and chunk; returns the
    /// pair on success.
    pub fn attribute(&mut self, va: VirtAddr) -> Option<(ObjectId, usize)> {
        let id = self.object_at(va)?;
        let obj = self.get_mut(id).expect("object_at returned a live id");
        let chunk = obj.chunk_of(va)?;
        obj.record_sample(va);
        Some((id, chunk))
    }

    /// Iterates over live objects in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &DataObject> {
        self.objects.iter().filter_map(|o| o.as_ref())
    }

    /// Total registered bytes.
    pub fn total_bytes(&self) -> usize {
        self.iter().map(|o| o.size()).sum()
    }

    /// Total chunks across live objects.
    pub fn total_chunks(&self) -> usize {
        self.iter().map(|o| o.num_chunks()).sum()
    }

    /// Clears all sample counters.
    pub fn reset_samples(&mut self) {
        for obj in self.objects.iter_mut().flatten() {
            obj.reset_samples();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::chunk_geometry;
    use crate::config::ChunkConfig;

    fn reg_with(ranges: &[(u64, usize)]) -> Registry {
        let mut r = Registry::new();
        for (i, &(start, len)) in ranges.iter().enumerate() {
            let g = chunk_geometry(len, &ChunkConfig::default());
            r.register(
                format!("o{i}"),
                VirtRange::new(VirtAddr::new(start), len),
                g,
            );
        }
        r
    }

    #[test]
    fn attribution_picks_the_containing_object() {
        let mut r = reg_with(&[(0x10000, 0x4000), (0x40000, 0x8000)]);
        assert_eq!(r.object_at(VirtAddr::new(0x10001)), Some(ObjectId(0)));
        assert_eq!(r.object_at(VirtAddr::new(0x47fff)), Some(ObjectId(1)));
        assert_eq!(r.object_at(VirtAddr::new(0x30000)), None);
        let (id, _chunk) = r.attribute(VirtAddr::new(0x40010)).unwrap();
        assert_eq!(id, ObjectId(1));
        assert_eq!(r.get(id).unwrap().total_samples(), 1);
    }

    #[test]
    fn unregister_removes_attribution() {
        let mut r = reg_with(&[(0x10000, 0x4000)]);
        let obj = r.unregister(ObjectId(0)).unwrap();
        assert_eq!(obj.name(), "o0");
        assert!(r.object_at(VirtAddr::new(0x10001)).is_none());
        assert!(r.is_empty());
        assert!(r.unregister(ObjectId(0)).is_none());
    }

    #[test]
    fn totals_sum_over_live_objects() {
        let mut r = reg_with(&[(0x10000, 0x4000), (0x40000, 0x8000)]);
        assert_eq!(r.total_bytes(), 0xC000);
        assert_eq!(r.len(), 2);
        r.unregister(ObjectId(0));
        assert_eq!(r.total_bytes(), 0x8000);
    }

    #[test]
    fn reset_samples_clears_everything() {
        let mut r = reg_with(&[(0x10000, 0x4000)]);
        r.attribute(VirtAddr::new(0x10000)).unwrap();
        r.reset_samples();
        assert_eq!(r.get(ObjectId(0)).unwrap().total_samples(), 0);
    }
}
