//! Migration planning and execution (paper §4.4).

pub mod plan;
pub mod staged;

pub use plan::{build_demotion_plan, build_plan, MigrationPlan, PlannedRegion};
pub use staged::{execute_plan, MigrationOutcome};
