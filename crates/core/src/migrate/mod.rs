//! Migration planning and execution (paper §4.4).

pub mod plan;
pub mod staged;

pub use plan::{
    build_demotion_cascade, build_demotion_plan, build_plan, promotion_budget, MigrationPlan,
    PlannedRegion,
};
pub use staged::{execute_plan, execute_regions, MigrationOutcome, RegionStatus};
