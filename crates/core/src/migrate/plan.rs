//! Migration planning: chunks → page-aligned regions under a budget.
//!
//! The analyzer hands back per-chunk criticality. The planner turns that
//! into concrete migratable work: adjacent critical chunks of an object are
//! coalesced into contiguous regions (one launch per region, amortising
//! per-migration overhead — a benefit the paper attributes to promotion's
//! gap patching), regions are page-aligned, split at a configurable cap,
//! ranked by priority density, and selected greedily until the fast-tier
//! budget runs out.

use atmem_hms::addr::PAGE_SIZE;
use atmem_hms::VirtRange;

use crate::analyzer::Analysis;
use crate::config::MigrationConfig;
use crate::object::ObjectId;
use crate::registry::Registry;

/// One planned contiguous migration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannedRegion {
    /// The object the region belongs to.
    pub object: ObjectId,
    /// Page-aligned virtual range to migrate.
    pub range: VirtRange,
    /// Mean chunk priority over the region (misses per byte).
    pub priority: f64,
    /// Per-region destination tier. `None` inherits the call-level target
    /// passed to [`execute_plan`](crate::migrate::execute_plan); `Some`
    /// overrides it — how one hop of a multi-tier demotion cascade routes
    /// its regions without a separate execution entry point.
    pub dst: Option<atmem_hms::TierId>,
}

/// The full plan.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MigrationPlan {
    /// Regions in execution order (highest priority density first).
    pub regions: Vec<PlannedRegion>,
    /// Total bytes the plan will move.
    pub total_bytes: usize,
    /// Bytes selected by the analyzer that did not fit the budget.
    pub dropped_bytes: usize,
}

impl MigrationPlan {
    /// Whether the plan moves anything.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }
}

/// All candidate promotion regions of one (registry, analysis) pair:
/// coalesced runs of critical chunks, page-aligned and split at the cap.
/// Unsorted — callers rank and admit (the solo optimizer against its own
/// budget, the multi-tenant scheduler against the shared tier globally).
pub(crate) fn promotion_candidates(
    registry: &Registry,
    analysis: &Analysis,
    config: &MigrationConfig,
) -> Vec<PlannedRegion> {
    let mut candidates: Vec<PlannedRegion> = Vec::new();
    for oa in &analysis.objects {
        let obj = match registry.get(oa.id) {
            Some(o) => o,
            None => continue,
        };
        // Coalesce runs of critical chunks.
        let mut run_start: Option<usize> = None;
        for i in 0..=oa.critical.len() {
            let is_critical = i < oa.critical.len() && oa.critical[i];
            match (run_start, is_critical) {
                (None, true) => run_start = Some(i),
                (Some(s), false) => {
                    candidates.extend(region_from_run(obj, &oa.selection.priorities, s, i, config));
                    run_start = None;
                }
                _ => {}
            }
        }
    }
    candidates
}

/// Hottest-first region order: priority density descending, ties broken by
/// address for determinism. Virtual addresses are globally unique, so the
/// order is total even across tenants sharing one machine.
pub(crate) fn hotter_first(a: &PlannedRegion, b: &PlannedRegion) -> std::cmp::Ordering {
    b.priority
        .partial_cmp(&a.priority)
        .expect("priorities are finite")
        .then(a.range.start.cmp(&b.range.start))
}

/// Coldest-first region order (the demotion rank), with the same address
/// tiebreak as [`hotter_first`].
pub(crate) fn colder_first(a: &PlannedRegion, b: &PlannedRegion) -> std::cmp::Ordering {
    a.priority
        .partial_cmp(&b.priority)
        .expect("priorities are finite")
        .then(a.range.start.cmp(&b.range.start))
}

/// Builds the plan for `analysis` under `budget_bytes` of fast-tier space.
pub fn build_plan(
    registry: &Registry,
    analysis: &Analysis,
    config: &MigrationConfig,
    budget_bytes: usize,
) -> MigrationPlan {
    let mut candidates = promotion_candidates(registry, analysis, config);
    candidates.sort_by(hotter_first);

    let mut plan = MigrationPlan::default();
    for region in candidates {
        if plan.total_bytes + region.range.len <= budget_bytes {
            plan.total_bytes += region.range.len;
            plan.regions.push(region);
        } else {
            plan.dropped_bytes += region.range.len;
        }
    }
    plan
}

/// The promotion budget the optimizer derives from `free_bytes` of
/// fast-tier space: a `budget_frac` headroom, minus a reserve for one
/// staging buffer (the transient of the staged mechanism), never more
/// than half the headroom on small tiers.
///
/// **Why the reserve is sufficient** (checked by the exact-fit regression
/// test in `migrate::staged`): regions execute one at a time, so the peak
/// transient fast-tier usage while executing a plan of total size `T ≤
/// budget` is `T + rᵢ`, where `rᵢ ≤ max_region_bytes` is the staging buffer
/// of the region in flight. With `reserve = min(max_region_bytes,
/// headroom/2)` two cases close the argument: if `max_region_bytes ≤
/// headroom/2` then `T + rᵢ ≤ (headroom − reserve) + max_region_bytes =
/// headroom`; otherwise `reserve = headroom/2`, every admissible region
/// also satisfies `rᵢ ≤ T ≤ budget = headroom/2`, and again `T + rᵢ ≤
/// headroom`. Since `headroom ≤ free_bytes`, a plan that fills the budget
/// exactly still executes without staging-allocation pressure on a
/// quiescent machine.
pub fn promotion_budget(free_bytes: usize, config: &MigrationConfig) -> usize {
    let headroom = (free_bytes as f64 * config.budget_frac) as usize;
    let staging_reserve = config.max_region_bytes.min(headroom / 2);
    headroom - staging_reserve
}

/// Builds a *demotion* plan: regions of currently-fast-resident chunks
/// that the latest analysis no longer classifies as critical. Executing it
/// with the slow tier as destination frees fast-tier space for a shifted
/// hot set — the phase-adaptivity extension the paper leaves as future
/// work (§9).
///
/// Candidates are ordered coldest-first and taken only until the
/// prospective promotion budget (computed over current free space plus the
/// bytes freed so far) covers `demand_bytes` — the slow-resident bytes the
/// upcoming promotion wants to move. Warm residue that the new hot set
/// does not displace stays put, so alternating phases do not thrash the
/// whole fast tier on every optimize.
///
/// Demoting a region frees only the bytes of it *currently resident* on
/// the fast tier — a candidate run can straddle tiers after a partial or
/// interrupted earlier migration — so the prospective budget accumulates
/// `resident_bytes`, not region lengths. Counting full lengths here
/// under-evicts exactly when residency is partial.
pub fn build_demotion_plan(
    registry: &Registry,
    analysis: &Analysis,
    machine: &atmem_hms::Machine,
    config: &MigrationConfig,
    demand_bytes: usize,
) -> MigrationPlan {
    let mut candidates =
        demotion_candidates(registry, analysis, machine, config, atmem_hms::TierId::FAST);
    candidates.sort_by(colder_first);

    let free = machine.free_bytes(atmem_hms::TierId::FAST);
    let mut freed = 0usize;
    let mut plan = MigrationPlan::default();
    for region in candidates {
        if promotion_budget(free + freed, config) >= demand_bytes {
            plan.dropped_bytes += region.range.len;
        } else {
            freed += machine.resident_bytes(region.range, atmem_hms::TierId::FAST);
            plan.total_bytes += region.range.len;
            plan.regions.push(region);
        }
    }
    plan
}

/// Builds the hops of an N-tier demotion cascade, returned in execution
/// order: coldest pair first, the hottest pair (the [`build_demotion_plan`]
/// result) last.
///
/// The hottest hop frees top-tier space for `demand_bytes` of incoming
/// promotion. Each colder hop `k → k+1` is sized *from the hop above it*:
/// it evicts just enough non-critical tier-`k` residue (coldest first) that
/// tier `k` can absorb the bytes the hotter hop will push down. Hops are
/// computed hottest-pair-first (each feeds the demand of the next) but must
/// execute coldest-pair-first so the room exists when the bytes arrive —
/// hence the reversed order of the returned vector. Every hop's regions
/// carry their destination in [`PlannedRegion::dst`].
///
/// On a two-tier machine this degenerates to exactly one hop, the
/// [`build_demotion_plan`] plan with the slow tier as destination.
pub fn build_demotion_cascade(
    registry: &Registry,
    analysis: &Analysis,
    machine: &atmem_hms::Machine,
    config: &MigrationConfig,
    demand_bytes: usize,
) -> Vec<MigrationPlan> {
    let num_tiers = machine.num_tiers();
    let mut top = build_demotion_plan(registry, analysis, machine, config, demand_bytes);
    for r in &mut top.regions {
        r.dst = Some(atmem_hms::TierId::new(1.min(num_tiers - 1)));
    }
    let mut hops = vec![top];
    // Middle hops: tier k must absorb what hop k-1 demotes into it. Two
    // accounting subtleties, both flushed out by the overcommitted-middle-
    // tier scenario test in `tests/migration.rs`:
    //
    // * The hotter hop's transient footprint on tier k exceeds its
    //   `total_bytes`: the staged mechanism allocates a staging buffer on
    //   the destination for the region in flight, so the peak is
    //   `total_bytes + max(region len)` (staging is freed per region —
    //   see `promotion_budget`'s sufficiency argument).
    // * Demoting a tier-k region frees only the bytes of it *resident on
    //   tier k*; candidates only need `resident_bytes > 0`, so sizing the
    //   hop by region lengths under-evicts partially-resident residue.
    for k in 1..num_tiers.saturating_sub(1) {
        let src = atmem_hms::TierId::new(k);
        let above = hops.last().expect("cascade has a hottest hop");
        let staging = above.regions.iter().map(|r| r.range.len).max().unwrap_or(0);
        let incoming = above.total_bytes + staging;
        if machine.free_bytes(src) >= incoming {
            break;
        }
        let shortfall = incoming - machine.free_bytes(src);
        let mut candidates = demotion_candidates(registry, analysis, machine, config, src);
        candidates.sort_by(colder_first);
        let mut plan = MigrationPlan::default();
        let mut freed = 0usize;
        for mut region in candidates {
            if freed >= shortfall {
                plan.dropped_bytes += region.range.len;
            } else {
                freed += machine.resident_bytes(region.range, src);
                region.dst = Some(atmem_hms::TierId::new(k + 1));
                plan.total_bytes += region.range.len;
                plan.regions.push(region);
            }
        }
        if plan.is_empty() {
            break;
        }
        hops.push(plan);
    }
    hops.reverse();
    hops
}

/// All candidate demotion regions of one (registry, analysis) pair: runs
/// of non-critical chunks with any bytes resident on `src_tier`. Unsorted,
/// like [`promotion_candidates`].
pub(crate) fn demotion_candidates(
    registry: &Registry,
    analysis: &Analysis,
    machine: &atmem_hms::Machine,
    config: &MigrationConfig,
    src_tier: atmem_hms::TierId,
) -> Vec<PlannedRegion> {
    let mut candidates: Vec<PlannedRegion> = Vec::new();
    for oa in &analysis.objects {
        let obj = match registry.get(oa.id) {
            Some(o) => o,
            None => continue,
        };
        // Runs of non-critical chunks with any bytes on the source tier.
        let demotable =
            |i: usize| !oa.critical[i] && machine.resident_bytes(obj.chunk_range(i), src_tier) > 0;
        let mut run_start: Option<usize> = None;
        for i in 0..=oa.critical.len() {
            let in_run = i < oa.critical.len() && demotable(i);
            match (run_start, in_run) {
                (None, true) => run_start = Some(i),
                (Some(s), false) => {
                    candidates.extend(region_from_run(obj, &oa.selection.priorities, s, i, config));
                    run_start = None;
                }
                _ => {}
            }
        }
    }
    candidates
}

/// Converts the chunk run `[first, last)` of `obj` into one or more
/// page-aligned regions no larger than `config.max_region_bytes`.
fn region_from_run(
    obj: &crate::object::DataObject,
    priorities: &[f64],
    first: usize,
    last: usize,
    config: &MigrationConfig,
) -> Vec<PlannedRegion> {
    let run_start_byte = obj.chunk_range(first).start;
    let run_end_byte = obj.chunk_range(last - 1).end();

    // Page-align outward, clamped to the object's page-aligned footprint
    // (the allocation itself is page-aligned, so expanding to page borders
    // never leaves the allocation).
    let aligned_start = run_start_byte.raw() & !(PAGE_SIZE as u64 - 1);
    let aligned_end = (run_end_byte.raw()).next_multiple_of(PAGE_SIZE as u64);
    let total = (aligned_end - aligned_start) as usize;

    // Split at the cap (cap rounded down to a page multiple, at least one
    // page). Each piece carries the mean priority of the chunks *it*
    // covers — a promoted run can mix a hot window with cold estimated
    // chunks, and a run-wide mean would let the budget pick the cold half.
    let cap = (config.max_region_bytes / PAGE_SIZE).max(1) * PAGE_SIZE;
    let obj_start = obj.range().start.raw();
    let geometry = obj.geometry();
    let mut out = Vec::new();
    let mut offset = 0usize;
    while offset < total {
        let len = (total - offset).min(cap);
        let piece_start = aligned_start + offset as u64;
        // Chunks overlapping this piece, clamped to the run.
        let lo = ((piece_start - obj_start) as usize / geometry.chunk_bytes).max(first);
        let hi = ((piece_start + len as u64 - 1 - obj_start) as usize / geometry.chunk_bytes)
            .min(last - 1);
        let priority = if lo <= hi {
            priorities[lo..=hi].iter().sum::<f64>() / (hi - lo + 1) as f64
        } else {
            0.0
        };
        out.push(PlannedRegion {
            object: obj.id(),
            range: VirtRange::new(atmem_hms::VirtAddr::new(piece_start), len),
            priority,
            dst: None,
        });
        offset += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::local::LocalSelection;
    use crate::analyzer::ObjectAnalysis;
    use crate::chunk::chunk_geometry;
    use crate::config::ChunkConfig;
    use atmem_hms::VirtAddr;

    /// One object of `chunks` 4 KiB chunks with the given criticality and
    /// uniform priorities.
    fn fixture(chunks: usize, critical: Vec<bool>) -> (Registry, Analysis) {
        let mut registry = Registry::new();
        let bytes = chunks * 4096;
        let g = chunk_geometry(
            bytes,
            &ChunkConfig {
                target_chunks: chunks,
                min_chunk_bytes: 4096,
            },
        );
        let id = registry.register("o", VirtRange::new(VirtAddr::new(0x40000000), bytes), g);
        let priorities = critical
            .iter()
            .map(|&c| if c { 1.0 } else { 0.0 })
            .collect();
        let analysis = Analysis {
            objects: vec![ObjectAnalysis {
                id,
                selection: LocalSelection {
                    priorities,
                    theta: 0.5,
                    critical: critical.clone(),
                },
                weight: 1.0,
                tr_threshold: 0.5,
                critical,
                promoted_chunks: 0,
            }],
        };
        (registry, analysis)
    }

    #[test]
    fn adjacent_chunks_coalesce() {
        let (r, a) = fixture(8, vec![false, true, true, true, false, false, true, false]);
        let plan = build_plan(&r, &a, &MigrationConfig::default(), usize::MAX);
        assert_eq!(plan.regions.len(), 2);
        assert_eq!(plan.total_bytes, 4 * 4096);
        // First region is 3 chunks, the second 1.
        let lens: Vec<usize> = plan.regions.iter().map(|p| p.range.len).collect();
        assert!(lens.contains(&(3 * 4096)) && lens.contains(&4096));
    }

    #[test]
    fn budget_drops_lowest_priority() {
        let (r, mut a) = fixture(4, vec![true, false, true, false]);
        // Make chunk 0 hotter than chunk 2.
        a.objects[0].selection.priorities = vec![5.0, 0.0, 1.0, 0.0];
        let plan = build_plan(&r, &a, &MigrationConfig::default(), 4096);
        assert_eq!(plan.regions.len(), 1);
        assert_eq!(plan.regions[0].range.start, VirtAddr::new(0x40000000));
        assert_eq!(plan.dropped_bytes, 4096);
    }

    #[test]
    fn regions_split_at_cap() {
        let (r, a) = fixture(16, vec![true; 16]);
        let config = MigrationConfig {
            max_region_bytes: 4 * 4096,
            ..MigrationConfig::default()
        };
        let plan = build_plan(&r, &a, &config, usize::MAX);
        assert_eq!(plan.regions.len(), 4);
        assert!(plan.regions.iter().all(|p| p.range.len == 4 * 4096));
        assert_eq!(plan.total_bytes, 16 * 4096);
    }

    #[test]
    fn split_pieces_carry_their_own_priorities() {
        // One promoted run mixing a cold promoted half (chunks 0..8) and a
        // hot sampled half (chunks 8..16). Under a budget of half the run,
        // the HOT half must win — a run-wide mean priority would tie the
        // pieces and let address order pick the cold half.
        let (r, mut a) = fixture(16, vec![true; 16]);
        a.objects[0].selection.priorities =
            (0..16).map(|i| if i < 8 { 0.0 } else { 1.0 }).collect();
        let config = MigrationConfig {
            max_region_bytes: 4 * 4096,
            ..MigrationConfig::default()
        };
        let plan = build_plan(&r, &a, &config, 8 * 4096);
        assert_eq!(plan.total_bytes, 8 * 4096);
        for p in &plan.regions {
            let off = p.range.start.offset_from(VirtAddr::new(0x40000000));
            assert!(
                off >= 8 * 4096,
                "cold piece at offset {off} selected over the hot half"
            );
            assert!(p.priority > 0.9);
        }
        assert_eq!(plan.dropped_bytes, 8 * 4096);
    }

    /// A machine-backed fixture: one object of `chunks` 4 KiB chunks
    /// resident on `placement`, with the fast tier sized exactly to the
    /// object (free fast space is zero when `placement` is fast).
    fn machine_fixture(
        chunks: usize,
        critical: Vec<bool>,
        priorities: Vec<f64>,
        placement: atmem_hms::Placement,
    ) -> (Registry, Analysis, atmem_hms::Machine) {
        use atmem_hms::{Machine, Platform};
        let bytes = chunks * 4096;
        let mut m = Machine::new(Platform::testing().with_capacities(bytes, 64 * 1024 * 1024));
        let r = m.alloc(bytes, placement).unwrap();
        let g = chunk_geometry(
            bytes,
            &ChunkConfig {
                target_chunks: chunks,
                min_chunk_bytes: 4096,
            },
        );
        let mut registry = Registry::new();
        let id = registry.register("o", VirtRange::new(r.start, bytes), g);
        let analysis = Analysis {
            objects: vec![ObjectAnalysis {
                id,
                selection: LocalSelection {
                    priorities: priorities.clone(),
                    theta: 0.5,
                    critical: critical.clone(),
                },
                weight: 1.0,
                tr_threshold: 0.5,
                critical,
                promoted_chunks: 0,
            }],
        };
        (registry, analysis, m)
    }

    /// Per-chunk regions so ordering is observable.
    fn chunk_granular() -> MigrationConfig {
        MigrationConfig {
            max_region_bytes: 4096,
            ..MigrationConfig::default()
        }
    }

    #[test]
    fn demotion_takes_a_minimal_coldest_first_prefix() {
        let priorities = vec![0.8, 0.1, 0.5, 0.3, 0.7, 0.2, 0.6, 0.4];
        let (r, a, m) = machine_fixture(8, vec![false; 8], priorities, atmem_hms::Placement::Fast);
        let config = chunk_granular();
        let demand = 4096;
        let plan = build_demotion_plan(&r, &a, &m, &config, demand);
        assert!(!plan.is_empty(), "stale bytes must be freed for demand");
        // Coldest first.
        let prios: Vec<f64> = plan.regions.iter().map(|p| p.priority).collect();
        let mut sorted = prios.clone();
        sorted.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert_eq!(prios, sorted, "demotion must evict coldest first");
        assert!(prios[0] < 0.15, "the coldest chunk leads the plan");
        // The prefix is minimal: enough to cover the demand, and one region
        // fewer would not be.
        let free = m.free_bytes(atmem_hms::TierId::FAST);
        assert!(promotion_budget(free + plan.total_bytes, &config) >= demand);
        let one_less = plan.total_bytes - plan.regions.last().unwrap().range.len;
        assert!(promotion_budget(free + one_less, &config) < demand);
        // Warm residue stays put.
        assert!(plan.dropped_bytes > 0);
        assert_eq!(plan.total_bytes + plan.dropped_bytes, 8 * 4096);
    }

    #[test]
    fn demotion_is_empty_without_promotion_demand() {
        let (r, a, m) =
            machine_fixture(8, vec![false; 8], vec![0.0; 8], atmem_hms::Placement::Fast);
        let plan = build_demotion_plan(&r, &a, &m, &chunk_granular(), 0);
        assert!(plan.is_empty(), "no demand, nothing to evict: {plan:?}");
        assert_eq!(plan.total_bytes, 0);
    }

    #[test]
    fn demotion_never_touches_critical_or_slow_resident_chunks() {
        // Critical chunks are exempt however large the demand.
        let (r, a, m) = machine_fixture(
            4,
            vec![true, false, false, true],
            vec![0.9, 0.1, 0.2, 0.8],
            atmem_hms::Placement::Fast,
        );
        let plan = build_demotion_plan(&r, &a, &m, &chunk_granular(), usize::MAX / 2);
        assert_eq!(plan.regions.len(), 2);
        let obj_start = r.iter().next().unwrap().range().start;
        for p in &plan.regions {
            let chunk = p.range.start.offset_from(obj_start) / 4096;
            assert!((1..=2).contains(&chunk), "critical chunk {chunk} demoted");
        }
        // A slow-resident object offers no candidates at all.
        let (r, a, m) =
            machine_fixture(4, vec![false; 4], vec![0.5; 4], atmem_hms::Placement::Slow);
        let plan = build_demotion_plan(&r, &a, &m, &chunk_granular(), usize::MAX / 2);
        assert!(plan.is_empty());
    }

    #[test]
    fn empty_analysis_empty_plan() {
        let (r, a) = fixture(4, vec![false; 4]);
        let plan = build_plan(&r, &a, &MigrationConfig::default(), usize::MAX);
        assert!(plan.is_empty());
        assert_eq!(plan.total_bytes, 0);
    }

    #[test]
    fn ranges_are_page_aligned() {
        let (r, a) = fixture(6, vec![false, true, true, false, true, true]);
        let plan = build_plan(&r, &a, &MigrationConfig::default(), usize::MAX);
        for p in &plan.regions {
            assert_eq!(p.range.start.page_offset(), 0);
            assert_eq!(p.range.len % PAGE_SIZE, 0);
        }
    }
}
