//! Multi-stage multi-threaded migration (paper §4.4, Figure 4).
//!
//! For each planned region the engine performs three stages:
//!
//! 1. **Staging** — multiple threads copy the source region into a staging
//!    buffer physically located on the *target* tier;
//! 2. **Remapping** — the virtual pages of the region are remapped onto
//!    fresh frames on the target tier (huge mappings where alignment
//!    allows), with a single range TLB shootdown; no data moves;
//! 3. **Moving** — multiple threads copy the staged bytes into the final
//!    frames (a same-tier copy).
//!
//! Data crosses the tier boundary exactly once (stage 1); stage 3 runs at
//! the target tier's bandwidth. Compared to the `mbind` baseline the engine
//! exploits copy parallelism and leaves the region covered by a handful of
//! huge mappings instead of hundreds of splintered base mappings, which is
//! where the TLB wins of Table 4 come from.
//!
//! ## Fault tolerance
//!
//! Every stage can fail — from genuine tier pressure or from an injected
//! [`FaultPlan`](atmem_hms::FaultPlan) — and each failure mode has a
//! page-exact recovery that leaves the region fully readable with its data
//! bit-identical to the pre-migration image:
//!
//! * **staging allocation** (stage 0) fails → the region is *skipped*:
//!   nothing was touched, no rollback needed;
//! * **staging copy** (stage 1) fails → the staging buffer is freed; the
//!   region's mappings and data were never touched → *failed*;
//! * **remap** (stage 2) fails → [`Machine::remap_region`] restores the old
//!   mappings itself; the engine frees the staging buffer → *failed*;
//! * **move** (stage 3) fails → the region is currently mapped on the
//!   target tier with *uninitialised* frames, but the staging buffer holds
//!   the complete pre-migration image. The engine suspends fault injection
//!   (a rollback must not itself be faulted), remaps the region back onto
//!   the source tier, replays the staged bytes into it, and frees the
//!   staging buffer → *failed*. If the remap-back itself hits pressure
//!   (possible only for regions that were partially resident on the target
//!   tier already), the engine instead replays the staged bytes into the
//!   target-tier mapping — the migration then simply completed — so no
//!   error ever escapes for a pressure-class condition.
//!
//! Skipped and failed regions stay where they were; their access samples
//! persist in the registry, so the next [`Atmem::optimize`] round re-plans
//! and retries them.
//!
//! [`Machine::remap_region`]: atmem_hms::Machine::remap_region
//! [`Atmem::optimize`]: crate::Atmem::optimize

use atmem_hms::addr::PAGE_SIZE;
use atmem_hms::{HmsError, Machine, SimDuration, TierId, VirtRange};

use crate::config::{MigrationConfig, MigrationMechanism};
use crate::error::Result;
use crate::migrate::plan::{MigrationPlan, PlannedRegion};

/// Outcome of executing one migration plan.
///
/// The byte counters form a conservation law checked by the property
/// suite: `bytes_moved + bytes_skipped + bytes_failed == plan.total_bytes`
/// for every plan and every fault schedule. A region contributes all of its
/// bytes to exactly one bucket; `bytes_moved` counts only regions that
/// migrated *completely* (an `mbind` region whose prefix moved before a
/// mid-stream failure counts under `bytes_failed`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MigrationOutcome {
    /// Bytes of fully migrated regions.
    pub bytes_moved: usize,
    /// Regions migrated completely.
    pub regions: usize,
    /// Regions skipped before any work started (the target tier could not
    /// fit the staging buffer at execution time).
    pub regions_skipped: usize,
    /// Regions that faulted mid-migration (staging copy, remap, or move)
    /// and were rolled back page-exactly onto their source tier.
    pub regions_failed: usize,
    /// Bytes of skipped regions.
    pub bytes_skipped: usize,
    /// Bytes of failed regions.
    pub bytes_failed: usize,
    /// Total simulated migration time.
    pub time: SimDuration,
}

impl MigrationOutcome {
    /// Combines the outcomes of two plan executions (the hops of a
    /// demotion cascade) into one: counters add, times add.
    #[must_use]
    pub fn merged(self, other: MigrationOutcome) -> MigrationOutcome {
        MigrationOutcome {
            bytes_moved: self.bytes_moved + other.bytes_moved,
            regions: self.regions + other.regions,
            regions_skipped: self.regions_skipped + other.regions_skipped,
            regions_failed: self.regions_failed + other.regions_failed,
            bytes_skipped: self.bytes_skipped + other.bytes_skipped,
            bytes_failed: self.bytes_failed + other.bytes_failed,
            time: SimDuration::from_ns(self.time.as_ns() + other.time.as_ns()),
        }
    }
}

/// How one region's migration ended. [`execute_regions`] returns one
/// status per input region, in order, so callers that interleave regions
/// from several owners (the multi-tenant scheduler) can attribute each
/// region's bytes to whoever planned it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionStatus {
    /// Fully migrated to the target tier.
    Moved,
    /// Not attempted: staging allocation pressure before any work.
    Skipped,
    /// Faulted mid-migration and rolled back (data intact on source tier).
    Failed,
}

/// Executes `plan`, migrating each region to `dst_tier`.
///
/// The plan's byte budget ([`promotion_budget`](crate::migrate::plan::promotion_budget))
/// already reserves headroom for the largest staging buffer, so on a
/// quiescent machine every admitted region fits together with its staging
/// run; skips and failures arise only from pressure that developed after
/// planning or from injected faults. Either way the region is skipped or
/// rolled back page-exactly and counted — never fatal, never half-migrated
/// (see the module docs for the per-stage recovery protocol).
///
/// # Errors
///
/// Propagates unexpected memory-system failures (unmapped holes,
/// invalid ranges) — conditions that indicate a bug rather than pressure.
pub fn execute_plan(
    machine: &mut Machine,
    plan: &MigrationPlan,
    config: &MigrationConfig,
    dst_tier: TierId,
) -> Result<MigrationOutcome> {
    let (outcome, _statuses) = execute_regions(machine, &plan.regions, config, dst_tier)?;
    Ok(outcome)
}

/// Executes a bare region sequence (the body of [`execute_plan`]),
/// additionally returning each region's [`RegionStatus`] in input order.
/// The multi-tenant scheduler uses the statuses to attribute migrated
/// bytes per tenant; byte and time accounting are identical to
/// [`execute_plan`] on the same sequence.
///
/// # Errors
///
/// Same failure modes as [`execute_plan`].
pub fn execute_regions(
    machine: &mut Machine,
    regions: &[PlannedRegion],
    config: &MigrationConfig,
    dst_tier: TierId,
) -> Result<(MigrationOutcome, Vec<RegionStatus>)> {
    let threads = config
        .threads
        .unwrap_or(machine.platform().migration_threads);
    let mut outcome = MigrationOutcome::default();
    let mut statuses = Vec::with_capacity(regions.len());
    let start = machine.now();
    for region in regions {
        // Multi-hop plans carry a per-region destination (one hop of a
        // demotion cascade); plain plans inherit the call-level target.
        let dst = region.dst.unwrap_or(dst_tier);
        let status = match config.mechanism {
            MigrationMechanism::Staged => {
                migrate_region_staged(machine, region.range, dst, threads)?
            }
            MigrationMechanism::Direct => {
                migrate_region_direct(machine, region.range, dst, threads)?
            }
            MigrationMechanism::Mbind => match machine.migrate_mbind(region.range, dst) {
                // migrate_mbind already accounts bytes and time.
                Ok(_) => RegionStatus::Moved,
                // Mid-stream pressure: the real service commits the moved
                // prefix and leaves the rest on the source tier — the
                // region is consistent and readable but not fully
                // migrated, so it counts as failed, not moved.
                Err(HmsError::OutOfMemory { .. }) | Err(HmsError::Fragmented { .. }) => {
                    RegionStatus::Failed
                }
                Err(e) => return Err(e.into()),
            },
        };
        match status {
            RegionStatus::Moved => {
                outcome.bytes_moved += region.range.len;
                outcome.regions += 1;
                if !matches!(config.mechanism, MigrationMechanism::Mbind) {
                    machine.note_migrated(region.range.len);
                }
            }
            RegionStatus::Skipped => {
                outcome.regions_skipped += 1;
                outcome.bytes_skipped += region.range.len;
            }
            RegionStatus::Failed => {
                outcome.regions_failed += 1;
                outcome.bytes_failed += region.range.len;
            }
        }
        statuses.push(status);
    }
    outcome.time = SimDuration::from_ns(machine.now().as_ns() - start.as_ns());
    Ok((outcome, statuses))
}

/// The three-stage migration of one region, with per-stage recovery (see
/// the module docs).
fn migrate_region_staged(
    machine: &mut Machine,
    range: VirtRange,
    dst_tier: TierId,
    threads: usize,
) -> Result<RegionStatus> {
    // Captured before stage 2: after the remap the region answers for the
    // target tier, and on an N-tier machine the rollback destination is not
    // derivable from `dst_tier` alone.
    let src_tier = machine.tier_of(range.start)?;
    let pages = range.len / PAGE_SIZE;
    // Stage 0: reserve the staging buffer on the target tier.
    let staging = match machine.alloc_frames(dst_tier, pages) {
        Ok(run) => run,
        Err(HmsError::OutOfMemory { .. }) | Err(HmsError::Fragmented { .. }) => {
            return Ok(RegionStatus::Skipped)
        }
        Err(e) => return Err(e.into()),
    };
    // Stage 1: parallel copy source -> staging (crosses the tier link).
    // On failure nothing has moved; releasing the staging buffer is the
    // whole rollback.
    match machine.copy_region_to_frames(range, dst_tier, staging, threads) {
        Ok(_) => {}
        Err(HmsError::FaultInjected(_)) => {
            machine.free_frames(dst_tier, staging);
            return Ok(RegionStatus::Failed);
        }
        Err(e) => {
            machine.free_frames(dst_tier, staging);
            return Err(e.into());
        }
    }
    // Stage 2: remap the region onto fresh target frames. remap_region
    // restores the original mappings itself on failure.
    match machine.remap_region(range, dst_tier) {
        Ok(_mappings) => {}
        Err(HmsError::OutOfMemory { .. }) | Err(HmsError::Fragmented { .. }) => {
            machine.free_frames(dst_tier, staging);
            return Ok(RegionStatus::Failed);
        }
        Err(e) => {
            machine.free_frames(dst_tier, staging);
            return Err(e.into());
        }
    }
    // A small fixed remap cost: page-table update + one range shootdown.
    machine.advance_clock(SimDuration::from_ns(2_000.0));
    // Stage 3: parallel copy staging -> final frames (same-tier copy).
    let outcome = match machine.copy_frames_to_region(dst_tier, staging, range, threads) {
        Ok(_) => Ok(RegionStatus::Moved),
        Err(HmsError::FaultInjected(_)) => {
            rollback_after_move_fault(machine, range, src_tier, dst_tier, staging, threads)
        }
        Err(e) => {
            // Bug-class failure: still restore before propagating so the
            // machine stays auditable.
            let _ = rollback_after_move_fault(machine, range, src_tier, dst_tier, staging, threads);
            Err(e.into())
        }
    };
    machine.free_frames(dst_tier, staging);
    outcome
}

/// Recovers from a stage-3 (move) fault: the region is mapped on
/// `dst_tier` with uninitialised frames while `staging` holds the full
/// pre-migration image. Remaps the region back onto `src_tier` — the tier
/// it actually came from, captured before the stage-2 remap — and replays
/// the staged bytes; runs with fault injection suspended so the rollback
/// cannot itself be faulted. The staging buffer is NOT freed here (the
/// caller owns it).
fn rollback_after_move_fault(
    machine: &mut Machine,
    range: VirtRange,
    src_tier: TierId,
    dst_tier: TierId,
    staging: atmem_hms::FrameRun,
    threads: usize,
) -> Result<RegionStatus> {
    machine.suspend_faults();
    let result = (|| {
        match machine.remap_region(range, src_tier) {
            Ok(_) => {
                machine.copy_frames_to_region(dst_tier, staging, range, threads)?;
                Ok(RegionStatus::Failed)
            }
            Err(HmsError::OutOfMemory { .. }) | Err(HmsError::Fragmented { .. }) => {
                // The source tier cannot take the region back (it was
                // partially resident on the target already). The region is
                // still validly mapped on the target tier, so complete the
                // move instead: replay the staged image there.
                machine.copy_frames_to_region(dst_tier, staging, range, threads)?;
                Ok(RegionStatus::Moved)
            }
            Err(e) => Err(crate::error::AtmemError::from(e)),
        }
    })();
    machine.resume_faults();
    result
}

/// Ablation variant: a single-stage direct copy into freshly mapped target
/// frames. One copy instead of two, but on real hardware the region would
/// be unreadable during the remap window; the simulator has no concurrent
/// readers, so this bounds the cost of the staging design. Shares the
/// staged engine's per-stage recovery protocol.
fn migrate_region_direct(
    machine: &mut Machine,
    range: VirtRange,
    dst_tier: TierId,
    threads: usize,
) -> Result<RegionStatus> {
    let src_tier = machine.tier_of(range.start)?;
    let pages = range.len / PAGE_SIZE;
    let fresh = match machine.alloc_frames(dst_tier, pages) {
        Ok(run) => run,
        Err(HmsError::OutOfMemory { .. }) | Err(HmsError::Fragmented { .. }) => {
            return Ok(RegionStatus::Skipped)
        }
        Err(e) => return Err(e.into()),
    };
    // Copy source -> fresh frames, then remap and immediately copy the
    // fresh frames into the (newly mapped) region. The second copy is
    // within-tier and frame-identical, so we emulate "adopting" the fresh
    // frames by copying into whatever frames the remap chose; the extra
    // cost versus true adoption is the same-tier copy, which we do charge.
    match machine.copy_region_to_frames(range, dst_tier, fresh, threads) {
        Ok(_) => {}
        Err(HmsError::FaultInjected(_)) => {
            machine.free_frames(dst_tier, fresh);
            return Ok(RegionStatus::Failed);
        }
        Err(e) => {
            machine.free_frames(dst_tier, fresh);
            return Err(e.into());
        }
    }
    match machine.remap_region(range, dst_tier) {
        Ok(_) => {}
        Err(HmsError::OutOfMemory { .. }) | Err(HmsError::Fragmented { .. }) => {
            machine.free_frames(dst_tier, fresh);
            return Ok(RegionStatus::Failed);
        }
        Err(e) => {
            machine.free_frames(dst_tier, fresh);
            return Err(e.into());
        }
    }
    machine.advance_clock(SimDuration::from_ns(2_000.0));
    let outcome = match machine.copy_frames_to_region(dst_tier, fresh, range, threads) {
        Ok(_) => Ok(RegionStatus::Moved),
        Err(HmsError::FaultInjected(_)) => {
            rollback_after_move_fault(machine, range, src_tier, dst_tier, fresh, threads)
        }
        Err(e) => {
            let _ = rollback_after_move_fault(machine, range, src_tier, dst_tier, fresh, threads);
            Err(e.into())
        }
    };
    machine.free_frames(dst_tier, fresh);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::migrate::plan::{promotion_budget, PlannedRegion};
    use crate::object::ObjectId;
    use atmem_hms::{FaultPlan, FaultSite, Placement, Platform, VirtRange};

    fn plan_for(range: VirtRange) -> MigrationPlan {
        MigrationPlan {
            regions: vec![PlannedRegion {
                object: ObjectId(0),
                range,
                priority: 1.0,
                dst: None,
            }],
            total_bytes: range.len,
            dropped_bytes: 0,
        }
    }

    fn setup(bytes: usize) -> (Machine, VirtRange) {
        let mut m = Machine::new(Platform::testing());
        let r = m.alloc(bytes, Placement::Slow).unwrap();
        for i in 0..(bytes / 8) as u64 {
            m.poke::<u64>(r.start.add(i * 8), i.wrapping_mul(0x9E37_79B9))
                .unwrap();
        }
        (m, VirtRange::new(r.start, bytes))
    }

    fn assert_source_intact(m: &mut Machine, range: VirtRange) {
        assert_eq!(m.resident_bytes(range, TierId::SLOW), range.len);
        for i in 0..(range.len / 8) as u64 {
            assert_eq!(
                m.peek::<u64>(range.start.add(i * 8)).unwrap(),
                i.wrapping_mul(0x9E37_79B9)
            );
        }
        assert!(m.outstanding_staging().is_empty(), "staging leak");
        let violations = m.audit();
        assert!(violations.is_empty(), "audit violations: {violations:#?}");
    }

    #[test]
    fn staged_migration_preserves_data_and_moves_tier() {
        let (mut m, range) = setup(2 * 1024 * 1024);
        let out = execute_plan(
            &mut m,
            &plan_for(range),
            &MigrationConfig::default(),
            TierId::FAST,
        )
        .unwrap();
        assert_eq!(out.regions, 1);
        assert_eq!(out.bytes_moved, range.len);
        assert!(out.time.as_ns() > 0.0);
        assert_eq!(m.resident_bytes(range, TierId::FAST), range.len);
        for i in 0..(range.len / 8) as u64 {
            assert_eq!(
                m.peek::<u64>(range.start.add(i * 8)).unwrap(),
                i.wrapping_mul(0x9E37_79B9)
            );
        }
    }

    #[test]
    fn staged_is_much_faster_than_mbind() {
        let (mut m1, range1) = setup(4 * 1024 * 1024);
        let staged = execute_plan(
            &mut m1,
            &plan_for(range1),
            &MigrationConfig::default(),
            TierId::FAST,
        )
        .unwrap();
        let (mut m2, range2) = setup(4 * 1024 * 1024);
        let mbind = m2.migrate_mbind(range2, TierId::FAST).unwrap();
        assert!(
            mbind.time.as_ns() > 1.3 * staged.time.as_ns(),
            "mbind {} vs staged {}",
            mbind.time,
            staged.time
        );
    }

    #[test]
    fn staged_keeps_huge_mappings_where_mbind_splinters() {
        let (mut m, range) = setup(2 * 1024 * 1024);
        execute_plan(
            &mut m,
            &plan_for(range),
            &MigrationConfig::default(),
            TierId::FAST,
        )
        .unwrap();
        let maps = m.mappings_in(range);
        assert!(
            maps.len() <= 2,
            "staged migration should keep few mappings, got {}",
            maps.len()
        );
    }

    #[test]
    fn oversized_region_fails_at_remap_and_rolls_back() {
        let mut m = Machine::new(Platform::testing());
        let fast_cap = m.capacity(TierId::FAST);
        let r = m.alloc(fast_cap, Placement::Slow).unwrap();
        for i in 0..(fast_cap / 8) as u64 {
            m.poke::<u64>(r.start.add(i * 8), i.wrapping_mul(0x9E37_79B9))
                .unwrap();
        }
        // The staging buffer (fast_cap) fits exactly, but the remap then
        // has no frames left: a mid-migration failure, rolled back.
        let range = VirtRange::new(r.start, fast_cap);
        let out = execute_plan(
            &mut m,
            &plan_for(range),
            &MigrationConfig::default(),
            TierId::FAST,
        )
        .unwrap();
        assert_eq!(out.regions, 0);
        assert_eq!(out.regions_failed, 1);
        assert_eq!(out.bytes_failed, fast_cap);
        assert_eq!(out.regions_skipped, 0);
        assert_source_intact(&mut m, range);
    }

    #[test]
    fn staging_pressure_skips_before_any_work() {
        let mut m = Machine::new(Platform::testing());
        let fast_cap = m.capacity(TierId::FAST);
        // Fill the fast tier completely so stage 0 cannot reserve staging.
        let _pin = m.alloc(fast_cap, Placement::Fast).unwrap();
        let r = m.alloc(1024 * 1024, Placement::Slow).unwrap();
        for i in 0..(1024 * 1024 / 8) as u64 {
            m.poke::<u64>(r.start.add(i * 8), i.wrapping_mul(0x9E37_79B9))
                .unwrap();
        }
        let out = execute_plan(
            &mut m,
            &plan_for(r),
            &MigrationConfig::default(),
            TierId::FAST,
        )
        .unwrap();
        assert_eq!(out.regions_skipped, 1);
        assert_eq!(out.bytes_skipped, r.len);
        assert_eq!(out.regions_failed, 0);
        assert_source_intact(&mut m, r);
    }

    #[test]
    fn fault_at_each_stage_rolls_back_page_exactly() {
        // Staging-copy, remap and move faults each leave the region fully
        // readable on the source tier, staging freed, audit clean.
        let cases = [
            (FaultSite::Move, 0, "stage-1 staging copy"),
            (FaultSite::Remap, 0, "stage-2 remap"),
            (FaultSite::Move, 1, "stage-3 move"),
        ];
        for (site, nth, what) in cases {
            let (mut m, range) = setup(1024 * 1024);
            m.set_fault_plan(Some(FaultPlan::new().fail_at(site, nth)));
            let out = execute_plan(
                &mut m,
                &plan_for(range),
                &MigrationConfig::default(),
                TierId::FAST,
            )
            .unwrap_or_else(|e| panic!("{what}: {e}"));
            assert_eq!(out.regions_failed, 1, "{what}");
            assert_eq!(out.bytes_failed, range.len, "{what}");
            assert_eq!(out.bytes_moved, 0, "{what}");
            assert_eq!(
                m.fault_plan().unwrap().injected().len(),
                1,
                "{what}: fault must actually fire"
            );
            assert_source_intact(&mut m, range);
        }
    }

    #[test]
    fn staging_alloc_fault_skips_cleanly() {
        let (mut m, range) = setup(1024 * 1024);
        m.set_fault_plan(Some(FaultPlan::new().fail_at(FaultSite::StagingAlloc, 0)));
        let out = execute_plan(
            &mut m,
            &plan_for(range),
            &MigrationConfig::default(),
            TierId::FAST,
        )
        .unwrap();
        assert_eq!(out.regions_skipped, 1);
        assert_eq!(out.bytes_skipped, range.len);
        assert_source_intact(&mut m, range);
    }

    #[test]
    fn direct_variant_also_preserves_data() {
        let (mut m, range) = setup(1024 * 1024);
        let config = MigrationConfig {
            mechanism: MigrationMechanism::Direct,
            ..MigrationConfig::default()
        };
        let out = execute_plan(&mut m, &plan_for(range), &config, TierId::FAST).unwrap();
        assert_eq!(out.regions, 1);
        for i in 0..(range.len / 8) as u64 {
            assert_eq!(
                m.peek::<u64>(range.start.add(i * 8)).unwrap(),
                i.wrapping_mul(0x9E37_79B9)
            );
        }
    }

    #[test]
    fn direct_variant_rolls_back_on_move_fault() {
        let (mut m, range) = setup(1024 * 1024);
        let config = MigrationConfig {
            mechanism: MigrationMechanism::Direct,
            ..MigrationConfig::default()
        };
        m.set_fault_plan(Some(FaultPlan::new().fail_at(FaultSite::Move, 1)));
        let out = execute_plan(&mut m, &plan_for(range), &config, TierId::FAST).unwrap();
        assert_eq!(out.regions_failed, 1);
        assert_source_intact(&mut m, range);
    }

    #[test]
    fn exact_fit_budget_plan_executes_without_skips() {
        // Regression for the staging-headroom accounting: a plan that
        // consumes the whole promotion budget must execute with zero
        // skips and zero failures, because promotion_budget reserves the
        // staging buffer for the largest admissible region up front.
        let mut m = Machine::new(Platform::testing());
        let config = MigrationConfig::default();
        let budget = promotion_budget(m.free_bytes(TierId::FAST), &config);
        assert!(budget > 0);
        // Two regions that together fill the budget exactly (each within
        // max_region_bytes and page-aligned).
        let a_len = (budget / 2).min(config.max_region_bytes) / PAGE_SIZE * PAGE_SIZE;
        let b_len = (budget - a_len).min(config.max_region_bytes) / PAGE_SIZE * PAGE_SIZE;
        let a = m.alloc(a_len, Placement::Slow).unwrap();
        let b = m.alloc(b_len, Placement::Slow).unwrap();
        let plan = MigrationPlan {
            regions: vec![
                PlannedRegion {
                    object: ObjectId(0),
                    range: a,
                    priority: 2.0,
                    dst: None,
                },
                PlannedRegion {
                    object: ObjectId(1),
                    range: b,
                    priority: 1.0,
                    dst: None,
                },
            ],
            total_bytes: a_len + b_len,
            dropped_bytes: 0,
        };
        assert!(plan.total_bytes <= budget, "plan must fill the budget");
        assert!(budget - plan.total_bytes < 2 * PAGE_SIZE, "exact fit");
        let out = execute_plan(&mut m, &plan, &config, TierId::FAST).unwrap();
        assert_eq!(out.regions, 2, "{out:?}");
        assert_eq!(out.regions_skipped + out.regions_failed, 0, "{out:?}");
        assert_eq!(out.bytes_moved, plan.total_bytes);
        assert!(m.outstanding_staging().is_empty());
        let violations = m.audit();
        assert!(violations.is_empty(), "audit violations: {violations:#?}");
    }

    #[test]
    fn outcome_accounting_is_conservative_across_faults() {
        // One moved, one failed (remap fault), one skipped (staging fault):
        // every planned byte lands in exactly one bucket.
        let mut m = Machine::new(Platform::testing());
        let sizes = [512 * 1024, 256 * 1024, 128 * 1024];
        let ranges: Vec<VirtRange> = sizes
            .iter()
            .map(|&s| m.alloc(s, Placement::Slow).unwrap())
            .collect();
        let plan = MigrationPlan {
            regions: ranges
                .iter()
                .enumerate()
                .map(|(i, &range)| PlannedRegion {
                    object: ObjectId(i as u32),
                    range,
                    priority: 1.0,
                    dst: None,
                })
                .collect(),
            total_bytes: sizes.iter().sum(),
            dropped_bytes: 0,
        };
        m.set_fault_plan(Some(
            FaultPlan::new()
                .fail_at(FaultSite::Remap, 1)
                .fail_at(FaultSite::StagingAlloc, 2),
        ));
        let out = execute_plan(&mut m, &plan, &MigrationConfig::default(), TierId::FAST).unwrap();
        assert_eq!(out.regions, 1);
        assert_eq!(out.regions_failed, 1);
        assert_eq!(out.regions_skipped, 1);
        assert_eq!(
            out.bytes_moved + out.bytes_skipped + out.bytes_failed,
            plan.total_bytes
        );
        assert!(m.outstanding_staging().is_empty());
        let violations = m.audit();
        assert!(violations.is_empty(), "audit violations: {violations:#?}");
    }

    #[test]
    fn single_thread_migration_is_slower() {
        let (mut m1, r1) = setup(4 * 1024 * 1024);
        let multi = execute_plan(
            &mut m1,
            &plan_for(r1),
            &MigrationConfig::default(),
            TierId::FAST,
        )
        .unwrap();
        let (mut m2, r2) = setup(4 * 1024 * 1024);
        let single = execute_plan(
            &mut m2,
            &plan_for(r2),
            &MigrationConfig {
                threads: Some(1),
                ..MigrationConfig::default()
            },
            TierId::FAST,
        )
        .unwrap();
        assert!(
            single.time.as_ns() > multi.time.as_ns() * 1.5,
            "single {} multi {}",
            single.time,
            multi.time
        );
    }
}
