//! Multi-stage multi-threaded migration (paper §4.4, Figure 4).
//!
//! For each planned region the engine performs three stages:
//!
//! 1. **Staging** — multiple threads copy the source region into a staging
//!    buffer physically located on the *target* tier;
//! 2. **Remapping** — the virtual pages of the region are remapped onto
//!    fresh frames on the target tier (huge mappings where alignment
//!    allows), with a single range TLB shootdown; no data moves;
//! 3. **Moving** — multiple threads copy the staged bytes into the final
//!    frames (a same-tier copy).
//!
//! Data crosses the tier boundary exactly once (stage 1); stage 3 runs at
//! the target tier's bandwidth. Compared to the `mbind` baseline the engine
//! exploits copy parallelism and leaves the region covered by a handful of
//! huge mappings instead of hundreds of splintered base mappings, which is
//! where the TLB wins of Table 4 come from.

use atmem_hms::addr::PAGE_SIZE;
use atmem_hms::{HmsError, Machine, SimDuration, TierId};

use crate::config::{MigrationConfig, MigrationMechanism};
use crate::error::Result;
use crate::migrate::plan::MigrationPlan;

/// Outcome of executing one migration plan.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MigrationOutcome {
    /// Bytes moved onto the target tier.
    pub bytes_moved: usize,
    /// Regions migrated.
    pub regions: usize,
    /// Regions skipped because the target tier could not fit them (plus
    /// staging) at execution time.
    pub regions_skipped: usize,
    /// Total simulated migration time.
    pub time: SimDuration,
}

/// Executes `plan`, migrating each region to `dst_tier`.
///
/// Regions that no longer fit (the budget is computed before staging
/// buffers are accounted) are skipped and counted, not fatal.
///
/// # Errors
///
/// Propagates unexpected memory-system failures (unmapped holes,
/// invalid ranges) — conditions that indicate a bug rather than pressure.
pub fn execute_plan(
    machine: &mut Machine,
    plan: &MigrationPlan,
    config: &MigrationConfig,
    dst_tier: TierId,
) -> Result<MigrationOutcome> {
    let threads = config
        .threads
        .unwrap_or(machine.platform().migration_threads);
    let mut outcome = MigrationOutcome::default();
    let start = machine.now();
    for region in &plan.regions {
        let moved = match config.mechanism {
            MigrationMechanism::Staged => {
                migrate_region_staged(machine, region.range, dst_tier, threads)?
            }
            MigrationMechanism::Direct => {
                migrate_region_direct(machine, region.range, dst_tier, threads)?
            }
            MigrationMechanism::Mbind => {
                match machine.migrate_mbind(region.range, dst_tier) {
                    // migrate_mbind already accounts bytes and time.
                    Ok(_) => {
                        outcome.regions += 1;
                        outcome.bytes_moved += region.range.len;
                        continue;
                    }
                    Err(HmsError::OutOfMemory { .. }) | Err(HmsError::Fragmented { .. }) => {
                        outcome.regions_skipped += 1;
                        continue;
                    }
                    Err(e) => return Err(e.into()),
                }
            }
        };
        if moved {
            outcome.bytes_moved += region.range.len;
            outcome.regions += 1;
            machine.note_migrated(region.range.len);
        } else {
            outcome.regions_skipped += 1;
        }
    }
    outcome.time = SimDuration::from_ns(machine.now().as_ns() - start.as_ns());
    Ok(outcome)
}

/// The three-stage migration of one region. Returns `Ok(false)` when the
/// target tier lacks space for the region plus its staging buffer.
fn migrate_region_staged(
    machine: &mut Machine,
    range: atmem_hms::VirtRange,
    dst_tier: TierId,
    threads: usize,
) -> Result<bool> {
    let pages = range.len / PAGE_SIZE;
    // Stage 0: reserve the staging buffer on the target tier.
    let staging = match machine.alloc_frames(dst_tier, pages) {
        Ok(run) => run,
        Err(HmsError::OutOfMemory { .. }) | Err(HmsError::Fragmented { .. }) => return Ok(false),
        Err(e) => return Err(e.into()),
    };
    // Stage 1: parallel copy source -> staging (crosses the tier link).
    machine.copy_region_to_frames(range, dst_tier, staging, threads)?;
    // Stage 2: remap the region onto fresh target frames.
    match machine.remap_region(range, dst_tier) {
        Ok(_mappings) => {}
        Err(HmsError::OutOfMemory { .. }) | Err(HmsError::Fragmented { .. }) => {
            machine.free_frames(dst_tier, staging);
            return Ok(false);
        }
        Err(e) => {
            machine.free_frames(dst_tier, staging);
            return Err(e.into());
        }
    }
    // A small fixed remap cost: page-table update + one range shootdown.
    machine.advance_clock(SimDuration::from_ns(2_000.0));
    // Stage 3: parallel copy staging -> final frames (same-tier copy).
    machine.copy_frames_to_region(dst_tier, staging, range, threads)?;
    machine.free_frames(dst_tier, staging);
    Ok(true)
}

/// Ablation variant: a single-stage direct copy into freshly mapped target
/// frames. One copy instead of two, but on real hardware the region would
/// be unreadable during the remap window; the simulator has no concurrent
/// readers, so this bounds the cost of the staging design.
fn migrate_region_direct(
    machine: &mut Machine,
    range: atmem_hms::VirtRange,
    dst_tier: TierId,
    threads: usize,
) -> Result<bool> {
    let pages = range.len / PAGE_SIZE;
    let fresh = match machine.alloc_frames(dst_tier, pages) {
        Ok(run) => run,
        Err(HmsError::OutOfMemory { .. }) | Err(HmsError::Fragmented { .. }) => return Ok(false),
        Err(e) => return Err(e.into()),
    };
    // Copy source -> fresh frames, then remap and immediately copy the
    // fresh frames into the (newly mapped) region. The second copy is
    // within-tier and frame-identical, so we emulate "adopting" the fresh
    // frames by copying into whatever frames the remap chose; the extra
    // cost versus true adoption is the same-tier copy, which we do charge.
    machine.copy_region_to_frames(range, dst_tier, fresh, threads)?;
    match machine.remap_region(range, dst_tier) {
        Ok(_) => {}
        Err(HmsError::OutOfMemory { .. }) | Err(HmsError::Fragmented { .. }) => {
            machine.free_frames(dst_tier, fresh);
            return Ok(false);
        }
        Err(e) => {
            machine.free_frames(dst_tier, fresh);
            return Err(e.into());
        }
    }
    machine.advance_clock(SimDuration::from_ns(2_000.0));
    machine.copy_frames_to_region(dst_tier, fresh, range, threads)?;
    machine.free_frames(dst_tier, fresh);
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::migrate::plan::PlannedRegion;
    use crate::object::ObjectId;
    use atmem_hms::{Placement, Platform, VirtRange};

    fn plan_for(range: VirtRange) -> MigrationPlan {
        MigrationPlan {
            regions: vec![PlannedRegion {
                object: ObjectId(0),
                range,
                priority: 1.0,
            }],
            total_bytes: range.len,
            dropped_bytes: 0,
        }
    }

    fn setup(bytes: usize) -> (Machine, VirtRange) {
        let mut m = Machine::new(Platform::testing());
        let r = m.alloc(bytes, Placement::Slow).unwrap();
        for i in 0..(bytes / 8) as u64 {
            m.poke::<u64>(r.start.add(i * 8), i.wrapping_mul(0x9E37_79B9))
                .unwrap();
        }
        (m, VirtRange::new(r.start, bytes))
    }

    #[test]
    fn staged_migration_preserves_data_and_moves_tier() {
        let (mut m, range) = setup(2 * 1024 * 1024);
        let out = execute_plan(
            &mut m,
            &plan_for(range),
            &MigrationConfig::default(),
            TierId::FAST,
        )
        .unwrap();
        assert_eq!(out.regions, 1);
        assert_eq!(out.bytes_moved, range.len);
        assert!(out.time.as_ns() > 0.0);
        assert_eq!(m.resident_bytes(range, TierId::FAST), range.len);
        for i in 0..(range.len / 8) as u64 {
            assert_eq!(
                m.peek::<u64>(range.start.add(i * 8)).unwrap(),
                i.wrapping_mul(0x9E37_79B9)
            );
        }
    }

    #[test]
    fn staged_is_much_faster_than_mbind() {
        let (mut m1, range1) = setup(4 * 1024 * 1024);
        let staged = execute_plan(
            &mut m1,
            &plan_for(range1),
            &MigrationConfig::default(),
            TierId::FAST,
        )
        .unwrap();
        let (mut m2, range2) = setup(4 * 1024 * 1024);
        let mbind = m2.migrate_mbind(range2, TierId::FAST).unwrap();
        assert!(
            mbind.time.as_ns() > 1.3 * staged.time.as_ns(),
            "mbind {} vs staged {}",
            mbind.time,
            staged.time
        );
    }

    #[test]
    fn staged_keeps_huge_mappings_where_mbind_splinters() {
        let (mut m, range) = setup(2 * 1024 * 1024);
        execute_plan(
            &mut m,
            &plan_for(range),
            &MigrationConfig::default(),
            TierId::FAST,
        )
        .unwrap();
        let maps = m.mappings_in(range);
        assert!(
            maps.len() <= 2,
            "staged migration should keep few mappings, got {}",
            maps.len()
        );
    }

    #[test]
    fn oversized_region_is_skipped_not_fatal() {
        let mut m = Machine::new(Platform::testing());
        let fast_cap = m.capacity(TierId::FAST);
        let r = m.alloc(fast_cap, Placement::Slow).unwrap();
        // Staging (fast_cap) + remap (fast_cap) cannot both fit.
        let range = VirtRange::new(r.start, fast_cap);
        let out = execute_plan(
            &mut m,
            &plan_for(range),
            &MigrationConfig::default(),
            TierId::FAST,
        )
        .unwrap();
        assert_eq!(out.regions, 0);
        assert_eq!(out.regions_skipped, 1);
        // Data still intact on the slow tier.
        assert_eq!(m.resident_bytes(range, TierId::SLOW), fast_cap);
    }

    #[test]
    fn direct_variant_also_preserves_data() {
        let (mut m, range) = setup(1024 * 1024);
        let config = MigrationConfig {
            mechanism: MigrationMechanism::Direct,
            ..MigrationConfig::default()
        };
        let out = execute_plan(&mut m, &plan_for(range), &config, TierId::FAST).unwrap();
        assert_eq!(out.regions, 1);
        for i in 0..(range.len / 8) as u64 {
            assert_eq!(
                m.peek::<u64>(range.start.add(i * 8)).unwrap(),
                i.wrapping_mul(0x9E37_79B9)
            );
        }
    }

    #[test]
    fn single_thread_migration_is_slower() {
        let (mut m1, r1) = setup(4 * 1024 * 1024);
        let multi = execute_plan(
            &mut m1,
            &plan_for(r1),
            &MigrationConfig::default(),
            TierId::FAST,
        )
        .unwrap();
        let (mut m2, r2) = setup(4 * 1024 * 1024);
        let single = execute_plan(
            &mut m2,
            &plan_for(r2),
            &MigrationConfig {
                threads: Some(1),
                ..MigrationConfig::default()
            },
            TierId::FAST,
        )
        .unwrap();
        assert!(
            single.time.as_ns() > multi.time.as_ns() * 1.5,
            "single {} multi {}",
            single.time,
            multi.time
        );
    }
}
