//! # atmem — adaptive data placement for graph applications on HMS
//!
//! A from-scratch reproduction of the runtime described in *"ATMem:
//! Adaptive Data Placement in Graph Applications on Heterogeneous
//! Memories"* (CGO 2020). The runtime has the paper's three components:
//!
//! * a **profiler** ([`profiler`]) using PEBS-like precise address sampling
//!   of LLC read misses, with an empirically auto-tuned sampling period;
//! * an **analyzer** ([`analyzer`]) that (1) selects *sampled-critical*
//!   chunks per data object via a hybrid local ranking — Eq. 1 priority
//!   (misses/size), Eq. 2 threshold (percentile ∨ derivative knee ∨
//!   sampling floor), Eq. 3 classification — and (2) *promotes* prospective
//!   chunks via an m-ary tree with a globally adapted tree-ratio threshold
//!   (Eq. 4 weight, Eq. 5 threshold), patching information lost to sampling
//!   and merging fragments into contiguous regions — or, when configured
//!   with [`AnalyzerKind::Learned`], a learning-to-rank scorer over bounded
//!   chunk features ([`analyzer::learned`]) producing the same bitmaps;
//! * an **optimizer** ([`migrate`]) that plans page-aligned regions under a
//!   fast-tier budget and migrates them with the paper's three-stage
//!   multi-threaded mechanism (stage to target → remap → move), preserving
//!   huge mappings where `mbind` would splinter them.
//!
//! The machine underneath is the [`atmem_hms`] simulator; see that crate
//! for the hardware substitution rationale.
//!
//! ## Example
//!
//! ```
//! use atmem::{Atmem, AtmemConfig};
//! use atmem_hms::Platform;
//!
//! # fn main() -> atmem::Result<()> {
//! let mut rt = Atmem::new(Platform::testing(), AtmemConfig::default())?;
//! let data = rt.malloc::<u64>(64 * 1024, "scores")?;        // atmem_malloc
//!
//! rt.profiling_start()?;                                    // iteration 1
//! for i in 0..20_000 {
//!     let _ = data.get(rt.machine_mut(), (i * 13) % 4096);  // hot prefix
//! }
//! rt.profiling_stop()?;
//!
//! let report = rt.optimize()?;                              // migrate
//! assert!(report.data_ratio <= 1.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analyzer;
mod autonuma;
pub mod chunk;
pub mod config;
pub mod error;
pub mod migrate;
pub mod object;
pub mod profiler;
pub mod registry;
pub mod report;
pub mod runtime;
pub mod serve;

pub use analyzer::learned::LearnedModel;
pub use analyzer::{analyze, analyze_paper, Analysis, ObjectAnalysis};
pub use chunk::{chunk_geometry, ChunkGeometry};
pub use config::{
    AnalyzerConfig, AnalyzerKind, AtmemConfig, AutonumaConfig, ChunkConfig, LearnedConfig,
    MigrationConfig, MigrationMechanism, OptimizePolicy, PlacementPolicy, SamplingConfig,
};
pub use error::{AtmemError, Result};
pub use migrate::{
    build_demotion_cascade, build_plan, execute_plan, execute_regions, MigrationOutcome,
    MigrationPlan, PlannedRegion, RegionStatus,
};
pub use object::{DataObject, ObjectId};
pub use profiler::{ProfileSummary, Profiler};
pub use registry::Registry;
pub use report::{chunk_heatmap, ObjectResidency, ResidencyReport};
pub use runtime::{Atmem, OptimizeReport, TenantRt};
pub use serve::{RoundReport, Scheduler, TenantRound, TenantStats};
