//! Multi-tenant serving: many protocol instances over one machine.
//!
//! A solo [`Atmem`] assumes it owns the machine: one registry, one
//! profiler, one fast-tier budget. A serving deployment runs *N*
//! independent protocol instances — mixed kernels, mixed datasets, each
//! with its own configuration — on the same box, and the fast tier is a
//! single shared resource. [`Scheduler`] multiplexes the instances:
//!
//! * **Quantum interleaving** — exactly one tenant holds the machine at a
//!   time. [`Scheduler::run_quantum`] assembles a full [`Atmem`] from the
//!   shared machine and that tenant's [`TenantRt`] (registry + profiler +
//!   config + allocation tag), runs the closure, and takes it apart again.
//!   The machine's allocation tagging attributes every byte the quantum
//!   touches to the tenant, so per-tenant residency queries are
//!   constant-time reads of the incremental counters.
//! * **Shared-tier arbitration** — [`Scheduler::optimize_round`]
//!   generalizes the solo optimizer server-wide: each tenant's profile is
//!   analyzed with *its own* analyzer configuration (Eq. 1–5 are
//!   per-tenant statistics), then all candidate regions compete for the
//!   one fast tier in a single gain-per-byte order. A hot tenant can take
//!   fast bytes a mild co-tenant would strand under a static partition.
//! * **Determinism** — candidate order is total (priority density, ties
//!   broken by virtual address, which is globally unique across tenants),
//!   quanta are explicit, and the simulated clock only advances inside
//!   quanta or via [`Scheduler::advance_clock`]. With one tenant the
//!   round reduces *bit-identically* to [`Atmem::optimize`]: same
//!   candidates, same order, same budget, same execution path.
//!
//! Accounting lives in [`TenantStats`] (migration traffic plus the
//! simulated latency of every recorded query, with nearest-rank
//! percentiles for p50/p99 reporting) and the per-round [`RoundReport`].

use atmem_hms::{Machine, Platform, SimDuration, TierId};

use crate::analyzer::{analyze, Analysis};
use crate::config::{AtmemConfig, MigrationConfig};
use crate::error::{AtmemError, Result};
use crate::migrate::plan::{
    colder_first, demotion_candidates, hotter_first, promotion_budget, promotion_candidates,
    PlannedRegion,
};
use crate::migrate::{execute_regions, MigrationOutcome, RegionStatus};
use crate::runtime::{fast_ratio_of, Atmem, TenantRt};

/// Cumulative per-tenant accounting across a serving session.
#[derive(Debug, Clone, Default)]
pub struct TenantStats {
    /// Bytes this tenant promoted to the fast tier across all rounds.
    pub bytes_promoted: usize,
    /// Bytes this tenant had demoted to make room, across all rounds.
    pub bytes_demoted: usize,
    /// Planned regions that did not move (skipped or rolled back).
    pub regions_not_moved: usize,
    /// Simulated latency of every query recorded for this tenant, in
    /// completion order.
    pub latencies: Vec<SimDuration>,
}

impl TenantStats {
    /// Nearest-rank percentile of the recorded query latencies: the
    /// smallest latency such that at least `p`% of queries finished within
    /// it. Zero if no queries were recorded. `p` is clamped to (0, 100].
    pub fn latency_percentile(&self, p: f64) -> SimDuration {
        if self.latencies.is_empty() {
            return SimDuration::from_ns(0.0);
        }
        let mut ns: Vec<f64> = self.latencies.iter().map(|d| d.as_ns()).collect();
        ns.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let n = ns.len();
        let rank = ((p.clamp(f64::MIN_POSITIVE, 100.0) / 100.0) * n as f64).ceil() as usize;
        SimDuration::from_ns(ns[rank.clamp(1, n) - 1])
    }
}

/// One tenant's slice of a [`RoundReport`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TenantRound {
    /// Bytes moved to the fast tier for this tenant this round.
    pub bytes_promoted: usize,
    /// Bytes evicted to the slow tier for this tenant this round.
    pub bytes_demoted: usize,
    /// Fraction of the tenant's registered bytes fast-resident after the
    /// round.
    pub fast_data_ratio: f64,
}

/// Outcome of one server-wide [`Scheduler::optimize_round`].
#[derive(Debug, Clone, PartialEq)]
pub struct RoundReport {
    /// Eviction outcome, when the server config allows demotion and the
    /// round evicted stale regions.
    pub demotion: Option<MigrationOutcome>,
    /// Promotion outcome across all tenants.
    pub promotion: MigrationOutcome,
    /// Candidate bytes that lost the arbitration (over budget).
    pub dropped_bytes: usize,
    /// Per-tenant attribution, indexed by tenant id.
    pub tenants: Vec<TenantRound>,
}

/// Deterministic multi-tenant scheduler: N protocol instances, one
/// machine, one shared fast tier. See the [module docs](self) for the
/// model.
#[derive(Debug)]
pub struct Scheduler {
    machine: Option<Machine>,
    tenants: Vec<Option<TenantRt>>,
    stats: Vec<TenantStats>,
    migration: MigrationConfig,
}

impl Scheduler {
    /// Creates a scheduler on a fresh machine. `migration` is the
    /// *server's* policy for the shared fast tier (budget fraction,
    /// region cap, mechanism, demotion) — tenant configs govern only
    /// their own chunking, sampling and analysis.
    pub fn new(platform: Platform, migration: MigrationConfig) -> Self {
        Scheduler {
            machine: Some(Machine::new(platform)),
            tenants: Vec::new(),
            stats: Vec::new(),
            migration,
        }
    }

    /// Registers a tenant and returns its id (dense, starting at 0).
    /// Allocation tags start at 1 so tenant bytes never mingle with
    /// untagged (tag 0) bookkeeping allocations.
    ///
    /// # Errors
    ///
    /// [`AtmemError::InvalidConfig`] if `config` fails validation.
    pub fn add_tenant(&mut self, config: AtmemConfig) -> Result<usize> {
        let idx = self.tenants.len();
        let tenant = TenantRt::new(config, idx as u32 + 1)?;
        self.tenants.push(Some(tenant));
        self.stats.push(TenantStats::default());
        Ok(idx)
    }

    /// Number of registered tenants.
    pub fn num_tenants(&self) -> usize {
        self.tenants.len()
    }

    /// Runs one quantum for tenant `idx`: assembles a full [`Atmem`] from
    /// the shared machine and the tenant's state, runs `f`, and puts both
    /// halves back. Panics if `idx` is out of range or if `f` itself
    /// re-enters the scheduler (the machine is checked out for the
    /// duration of the quantum).
    pub fn run_quantum<R>(&mut self, idx: usize, f: impl FnOnce(&mut Atmem) -> R) -> R {
        let machine = self.machine.take().expect("machine checked out");
        let tenant = self.tenants[idx].take().expect("tenant checked out");
        let mut rt = Atmem::from_parts(machine, tenant);
        let out = f(&mut rt);
        let (machine, tenant) = rt.into_parts();
        self.machine = Some(machine);
        self.tenants[idx] = Some(tenant);
        out
    }

    /// One server-wide optimize round. Per tenant, the profile is
    /// analyzed under the tenant's own analyzer config; the resulting
    /// candidate regions then compete globally:
    ///
    /// 1. if the server allows demotion, stale fast residue across *all*
    ///    tenants is evicted coldest-first, but only until the prospective
    ///    budget covers the total promotion demand;
    /// 2. all promotion candidates are admitted hottest-first into the
    ///    shared budget ([`promotion_budget`] over the machine's free
    ///    fast bytes), regardless of owner.
    ///
    /// Moved bytes are attributed to their tenants from the per-region
    /// execution statuses.
    ///
    /// # Errors
    ///
    /// [`AtmemError::ProfilingActive`] if any tenant is mid-profiling;
    /// migration failures otherwise.
    pub fn optimize_round(&mut self) -> Result<RoundReport> {
        if self
            .tenants
            .iter()
            .flatten()
            .any(|t| t.profiler.is_active())
        {
            return Err(AtmemError::ProfilingActive);
        }
        let analyses: Vec<Analysis> = self
            .tenants
            .iter()
            .map(|t| {
                let t = t.as_ref().expect("tenant checked out");
                analyze(&t.registry, &t.config.analyzer)
            })
            .collect();
        let machine = self.machine.as_mut().expect("machine checked out");
        let n = self.tenants.len();
        let mut rounds = vec![TenantRound::default(); n];

        // Tag each candidate with its owner; ordering ignores the tag (the
        // address tiebreak is already total across tenants).
        let owned_candidates =
            |f: &dyn Fn(usize) -> Vec<PlannedRegion>| -> Vec<(usize, PlannedRegion)> {
                (0..n)
                    .flat_map(|i| f(i).into_iter().map(move |r| (i, r)))
                    .collect()
            };
        let tenant = |i: usize| self.tenants[i].as_ref().expect("tenant checked out");

        let demotion = if self.migration.allow_demotion {
            // Server-wide demand: slow-resident bytes the union of all
            // tenants' selections wants on the fast tier.
            let demand: usize = (0..n)
                .flat_map(|i| {
                    promotion_candidates(&tenant(i).registry, &analyses[i], &self.migration)
                })
                .map(|r| r.range.len - machine.resident_bytes(r.range, TierId::FAST))
                .sum();
            let mut candidates = owned_candidates(&|i| {
                demotion_candidates(
                    &tenant(i).registry,
                    &analyses[i],
                    machine,
                    &self.migration,
                    TierId::FAST,
                )
            });
            candidates.sort_by(|a, b| colder_first(&a.1, &b.1));
            let free = machine.free_bytes(TierId::FAST);
            let mut admitted: Vec<(usize, PlannedRegion)> = Vec::new();
            let mut freed = 0usize;
            for (owner, region) in candidates {
                if promotion_budget(free + freed, &self.migration) >= demand {
                    break;
                }
                freed += region.range.len;
                admitted.push((owner, region));
            }
            let regions: Vec<PlannedRegion> = admitted.iter().map(|(_, r)| *r).collect();
            // The round demotes one hop down from the hottest tier; unlike
            // the solo optimizer it runs no cascade — on an N-tier machine
            // pressure on the middle tiers surfaces as skipped regions, and
            // the next round retries them.
            let demote_to = TierId::FAST
                .colder(machine.num_tiers())
                .unwrap_or(TierId::FAST);
            let (outcome, statuses) =
                execute_regions(machine, &regions, &self.migration, demote_to)?;
            for ((owner, region), status) in admitted.iter().zip(&statuses) {
                match status {
                    RegionStatus::Moved => rounds[*owner].bytes_demoted += region.range.len,
                    RegionStatus::Skipped | RegionStatus::Failed => {
                        self.stats[*owner].regions_not_moved += 1
                    }
                }
            }
            Some(outcome)
        } else {
            None
        };

        let budget = promotion_budget(machine.free_bytes(TierId::FAST), &self.migration);
        let mut candidates = owned_candidates(&|i| {
            promotion_candidates(&tenant(i).registry, &analyses[i], &self.migration)
        });
        candidates.sort_by(|a, b| hotter_first(&a.1, &b.1));
        let mut admitted: Vec<(usize, PlannedRegion)> = Vec::new();
        let mut total = 0usize;
        let mut dropped_bytes = 0usize;
        for (owner, region) in candidates {
            if total + region.range.len <= budget {
                total += region.range.len;
                admitted.push((owner, region));
            } else {
                dropped_bytes += region.range.len;
            }
        }
        let regions: Vec<PlannedRegion> = admitted.iter().map(|(_, r)| *r).collect();
        let (promotion, statuses) =
            execute_regions(machine, &regions, &self.migration, TierId::FAST)?;
        for ((owner, region), status) in admitted.iter().zip(&statuses) {
            match status {
                RegionStatus::Moved => rounds[*owner].bytes_promoted += region.range.len,
                RegionStatus::Skipped | RegionStatus::Failed => {
                    self.stats[*owner].regions_not_moved += 1
                }
            }
        }

        for (i, round) in rounds.iter_mut().enumerate() {
            round.fast_data_ratio = fast_ratio_of(machine, &tenant(i).registry);
            self.stats[i].bytes_promoted += round.bytes_promoted;
            self.stats[i].bytes_demoted += round.bytes_demoted;
        }
        Ok(RoundReport {
            demotion,
            promotion,
            dropped_bytes,
            tenants: rounds,
        })
    }

    /// Shared access to the machine (outside any quantum).
    pub fn machine(&self) -> &Machine {
        self.machine.as_ref().expect("machine checked out")
    }

    /// Mutable access to the machine (outside any quantum).
    pub fn machine_mut(&mut self) -> &mut Machine {
        self.machine.as_mut().expect("machine checked out")
    }

    /// Current simulated time.
    pub fn now(&self) -> SimDuration {
        self.machine().now()
    }

    /// Advances the simulated clock by `d` — idle time between query
    /// arrivals, which no quantum accounts for.
    pub fn advance_clock(&mut self, d: SimDuration) {
        self.machine_mut().advance_clock(d);
    }

    /// Records one completed query latency for tenant `idx`.
    pub fn record_latency(&mut self, idx: usize, latency: SimDuration) {
        self.stats[idx].latencies.push(latency);
    }

    /// Cumulative accounting for tenant `idx`.
    pub fn stats(&self, idx: usize) -> &TenantStats {
        &self.stats[idx]
    }

    /// The tenant's runtime state (outside its quantum).
    pub fn tenant(&self, idx: usize) -> &TenantRt {
        self.tenants[idx].as_ref().expect("tenant checked out")
    }

    /// Fraction of tenant `idx`'s registered bytes on the fast tier.
    pub fn fast_data_ratio(&self, idx: usize) -> f64 {
        fast_ratio_of(self.machine(), &self.tenant(idx).registry)
    }

    /// Total bytes tenant `idx` has registered.
    pub fn tenant_total_bytes(&self, idx: usize) -> usize {
        self.tenant(idx).registry.total_bytes()
    }

    /// Bytes resident on `tier` attributed to tenant `idx`, from the
    /// machine's incremental tag counters.
    pub fn tenant_resident(&self, idx: usize, tier: TierId) -> usize {
        self.machine()
            .resident_bytes_by_tag(self.tenant(idx).tag, tier)
    }

    /// Per-tenant byte conservation: every registered byte is resident on
    /// exactly one of the machine's tiers, and the machine's tag counters
    /// agree with the registries. Returns one message per violation.
    pub fn conservation_violations(&self) -> Vec<String> {
        let mut violations = Vec::new();
        let num_tiers = self.machine().num_tiers();
        for idx in 0..self.num_tenants() {
            let per_tier: Vec<usize> = (0..num_tiers)
                .map(|t| self.tenant_resident(idx, TierId::new(t)))
                .collect();
            let resident: usize = per_tier.iter().sum();
            let registered = self.tenant_total_bytes(idx);
            if resident != registered {
                violations.push(format!(
                    "tenant {idx}: per-tier residency {per_tier:?} sums to {resident}, \
                     not the {registered} bytes registered"
                ));
            }
        }
        violations
    }

    /// Full audit: the machine's own invariants plus per-tenant byte
    /// conservation. Empty means clean.
    pub fn audit(&mut self) -> Vec<String> {
        let mut violations = self.machine_mut().audit();
        violations.extend(self.conservation_violations());
        violations
    }

    /// Consumes the scheduler, returning the machine for post-mortem
    /// inspection.
    pub fn into_machine(self) -> Machine {
        self.machine.expect("machine checked out")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atmem_hms::TrackedVec;

    fn skewed_reads(rt: &mut Atmem, v: &TrackedVec<u64>, reads: usize, hot_frac: f64) {
        let n = v.len();
        let hot = ((n as f64 * hot_frac) as usize).max(1);
        for i in 0..reads {
            let idx = if i % 10 < 9 {
                (i * 7919) % hot
            } else {
                hot + (i * 104729) % (n - hot)
            };
            let _ = v.get(rt.machine_mut(), idx);
        }
    }

    #[test]
    fn single_tenant_round_matches_solo_optimize() {
        // The same profile driven through a solo runtime and through a
        // one-tenant scheduler must produce the identical placement.
        let config = AtmemConfig::default();
        let migration = config.migration;

        let mut solo = Atmem::new(Platform::testing(), config.clone()).unwrap();
        let v = solo.malloc::<u64>(256 * 1024, "data").unwrap();
        solo.profiling_start().unwrap();
        skewed_reads(&mut solo, &v, 120_000, 0.1);
        solo.profiling_stop().unwrap();
        let solo_report = solo.optimize().unwrap();

        let mut sched = Scheduler::new(Platform::testing(), migration);
        let t = sched.add_tenant(config).unwrap();
        sched.run_quantum(t, |rt| {
            let v = rt.malloc::<u64>(256 * 1024, "data").unwrap();
            rt.profiling_start().unwrap();
            skewed_reads(rt, &v, 120_000, 0.1);
            rt.profiling_stop().unwrap();
        });
        let round = sched.optimize_round().unwrap();

        assert_eq!(round.promotion, solo_report.migration);
        assert_eq!(round.dropped_bytes, solo_report.plan.dropped_bytes);
        assert_eq!(round.tenants[0].fast_data_ratio, solo_report.data_ratio);
        assert!(sched.audit().is_empty());
    }

    #[test]
    fn two_tenants_conserve_bytes_and_share_the_tier() {
        let mut sched = Scheduler::new(Platform::testing(), MigrationConfig::default());
        let a = sched.add_tenant(AtmemConfig::default()).unwrap();
        let b = sched.add_tenant(AtmemConfig::default()).unwrap();
        for (idx, reads) in [(a, 100_000), (b, 20_000)] {
            sched.run_quantum(idx, |rt| {
                let v = rt.malloc::<u64>(128 * 1024, "data").unwrap();
                rt.profiling_start().unwrap();
                skewed_reads(rt, &v, reads, 0.1);
                rt.profiling_stop().unwrap();
            });
        }
        let round = sched.optimize_round().unwrap();
        assert!(round.promotion.bytes_moved > 0);
        assert_eq!(
            round.tenants[a].bytes_promoted + round.tenants[b].bytes_promoted,
            round.promotion.bytes_moved
        );
        // The hot tenant wins more of the shared tier.
        assert!(round.tenants[a].bytes_promoted >= round.tenants[b].bytes_promoted);
        assert!(sched.audit().is_empty(), "{:?}", sched.audit());
        for idx in [a, b] {
            assert_eq!(
                sched.tenant_resident(idx, TierId::FAST) + sched.tenant_resident(idx, TierId::SLOW),
                sched.tenant_total_bytes(idx)
            );
        }
    }

    #[test]
    fn optimize_round_rejects_active_profiling() {
        let mut sched = Scheduler::new(Platform::testing(), MigrationConfig::default());
        let t = sched.add_tenant(AtmemConfig::default()).unwrap();
        sched.run_quantum(t, |rt| {
            rt.malloc::<u64>(1024, "x").unwrap();
            rt.profiling_start().unwrap();
        });
        assert!(matches!(
            sched.optimize_round(),
            Err(AtmemError::ProfilingActive)
        ));
    }

    #[test]
    fn latency_percentiles_use_nearest_rank() {
        let mut stats = TenantStats::default();
        assert_eq!(stats.latency_percentile(50.0).as_ns(), 0.0);
        for ns in [40.0, 10.0, 30.0, 20.0] {
            stats.latencies.push(SimDuration::from_ns(ns));
        }
        assert_eq!(stats.latency_percentile(50.0).as_ns(), 20.0);
        assert_eq!(stats.latency_percentile(99.0).as_ns(), 40.0);
        assert_eq!(stats.latency_percentile(25.0).as_ns(), 10.0);
        assert_eq!(stats.latency_percentile(100.0).as_ns(), 40.0);
    }
}
