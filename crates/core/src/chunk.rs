//! Adaptive data-chunk geometry (paper §4.1).
//!
//! A data object is split into `N` equal-sized chunks; chunks in different
//! objects may differ in size. The runtime picks the granularity from the
//! object size: large objects get page-multiple chunks near the configured
//! target count, tiny objects become a single chunk. Coarsening the
//! granularity bounds metadata and profiling overhead.

use crate::config::ChunkConfig;

/// Chunk geometry of one data object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkGeometry {
    /// Bytes per chunk (a power of two, except possibly when the object is
    /// a single chunk).
    pub chunk_bytes: usize,
    /// Number of chunks (the last chunk may be partially filled).
    pub num_chunks: usize,
}

/// Computes the chunk geometry for an object of `object_bytes` bytes.
///
/// The chunk size is `object_bytes / target_chunks` rounded up to a power
/// of two and clamped to `[min_chunk_bytes, object_bytes]`.
///
/// # Panics
///
/// Panics if `object_bytes` is zero.
pub fn chunk_geometry(object_bytes: usize, config: &ChunkConfig) -> ChunkGeometry {
    assert!(object_bytes > 0, "objects are non-empty");
    let ideal = object_bytes.div_ceil(config.target_chunks);
    let chunk_bytes = ideal
        .next_power_of_two()
        .max(config.min_chunk_bytes)
        .min(object_bytes.next_power_of_two());
    let num_chunks = object_bytes.div_ceil(chunk_bytes);
    ChunkGeometry {
        chunk_bytes,
        num_chunks,
    }
}

impl ChunkGeometry {
    /// The chunk index containing byte `offset` of the object.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the offset is beyond the object.
    #[inline]
    pub fn chunk_of(&self, offset: usize) -> usize {
        let idx = offset / self.chunk_bytes;
        debug_assert!(idx < self.num_chunks, "offset beyond object");
        idx
    }

    /// Byte range `[start, end)` of chunk `idx` within an object of
    /// `object_bytes` bytes (the final chunk is truncated).
    pub fn chunk_span(&self, idx: usize, object_bytes: usize) -> (usize, usize) {
        let start = idx * self.chunk_bytes;
        let end = (start + self.chunk_bytes).min(object_bytes);
        (start, end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(target: usize, min: usize) -> ChunkConfig {
        ChunkConfig {
            target_chunks: target,
            min_chunk_bytes: min,
        }
    }

    #[test]
    fn large_object_hits_target_count() {
        let g = chunk_geometry(64 * 1024 * 1024, &cfg(1024, 4096));
        assert_eq!(g.chunk_bytes, 64 * 1024);
        assert_eq!(g.num_chunks, 1024);
    }

    #[test]
    fn chunk_size_is_clamped_to_minimum() {
        let g = chunk_geometry(1024 * 1024, &cfg(4096, 4096));
        assert_eq!(g.chunk_bytes, 4096);
        assert_eq!(g.num_chunks, 256);
    }

    #[test]
    fn tiny_object_is_one_chunk() {
        let g = chunk_geometry(100, &cfg(1024, 4096));
        assert_eq!(g.num_chunks, 1);
        assert!(g.chunk_bytes >= 100);
    }

    #[test]
    fn non_power_of_two_object_rounds_up() {
        let g = chunk_geometry(3 * 4096 + 17, &cfg(2, 4096));
        // ideal = ceil(12305/2) = 6153 -> 8192.
        assert_eq!(g.chunk_bytes, 8192);
        assert_eq!(g.num_chunks, 2);
    }

    #[test]
    fn chunk_of_and_span_agree() {
        let bytes = 10 * 4096 + 100;
        let g = chunk_geometry(bytes, &cfg(8, 4096));
        for off in [0, 4095, 4096, bytes - 1] {
            let c = g.chunk_of(off);
            let (s, e) = g.chunk_span(c, bytes);
            assert!(off >= s && off < e, "offset {off} chunk {c} span {s}..{e}");
        }
        // Last chunk is truncated to the object size.
        let (_, e) = g.chunk_span(g.num_chunks - 1, bytes);
        assert_eq!(e, bytes);
    }

    #[test]
    fn more_target_chunks_means_finer_chunks() {
        let coarse = chunk_geometry(1 << 24, &cfg(64, 4096));
        let fine = chunk_geometry(1 << 24, &cfg(4096, 4096));
        assert!(fine.chunk_bytes < coarse.chunk_bytes);
        assert!(fine.num_chunks > coarse.num_chunks);
    }
}
