//! The lightweight sampling profiler (paper §5.1).
//!
//! The profiler programs the machine's PEBS unit to sample LLC read misses
//! and, when profiling stops, drains the sample buffer and attributes every
//! record to a (data object, chunk) pair in the registry. The sampling
//! period is chosen empirically from the total chunk count and the
//! application thread count, unless the configuration pins it.

use atmem_hms::{Machine, SampleRecord};

use crate::config::SamplingConfig;
use crate::registry::Registry;

/// Outcome of one profiling session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProfileSummary {
    /// Records drained from the sampling buffer.
    pub samples: u64,
    /// Records that landed inside a registered object.
    pub attributed: u64,
    /// The sampling period used.
    pub period: u64,
}

/// Controls a profiling session over one machine.
#[derive(Debug, Default)]
pub struct Profiler {
    active: bool,
    period: u64,
    summary: ProfileSummary,
    last_records: Vec<SampleRecord>,
}

impl Profiler {
    /// Creates an idle profiler.
    pub fn new() -> Self {
        Profiler::default()
    }

    /// Whether a session is active.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// The summary of the most recently completed session.
    pub fn last_summary(&self) -> ProfileSummary {
        self.summary
    }

    /// The raw sample records of the most recently completed session, in
    /// buffer (access) order. The ATMem analyzer works from the attributed
    /// per-chunk counts; the AutoNUMA baseline consumes this raw stream
    /// directly for its page-touch bookkeeping.
    pub fn last_records(&self) -> &[SampleRecord] {
        &self.last_records
    }

    /// Picks the empirical sampling period: enough expected samples to give
    /// every chunk a chance to be observed, without flooding the buffer.
    ///
    /// The heuristic targets ~64 samples per chunk if misses were spread
    /// evenly, assuming roughly one LLC miss per 16 bytes of registered
    /// data per iteration (graph kernels touch each edge once or twice and
    /// the cache absorbs part of it), and scales the period up with the
    /// thread count, as the paper's runtime does to bound per-PMU
    /// interrupt pressure.
    pub fn auto_period(registry: &Registry, app_threads: usize) -> u64 {
        let chunks = registry.total_chunks().max(1) as u64;
        let bytes = registry.total_bytes().max(1) as u64;
        let expected_misses = bytes / 16;
        let wanted_samples = (64 * chunks).min(1 << 21);
        let period = expected_misses / wanted_samples.max(1);
        let thread_scale = (app_threads as u64 / 32).max(1);
        // The floor keeps profiling overhead under the paper's 10% bound:
        // one in `period` misses pays the PMU interrupt, so overhead is
        // roughly 1/period of the iteration.
        (period * thread_scale).clamp(16, 65_536)
    }

    /// Starts sampling on `machine`.
    ///
    /// # Panics
    ///
    /// Panics if a session is already active (callers gate on
    /// [`Profiler::is_active`]).
    pub fn start(&mut self, machine: &mut Machine, registry: &Registry, config: &SamplingConfig) {
        assert!(!self.active, "profiling already active");
        let period = config
            .period
            .unwrap_or_else(|| Self::auto_period(registry, machine.platform().cost.app_threads));
        let jitter = (period as f64 * config.jitter_frac) as u64;
        machine.pebs_reseed(config.rng_seed);
        machine.pebs_enable(period, jitter);
        self.active = true;
        self.period = period;
    }

    /// Stops sampling and attributes all drained records to the registry.
    ///
    /// # Panics
    ///
    /// Panics if no session is active.
    pub fn stop(&mut self, machine: &mut Machine, registry: &mut Registry) -> ProfileSummary {
        assert!(self.active, "profiling not active");
        machine.pebs_disable();
        let records = machine.pebs_drain();
        let mut attributed = 0u64;
        for rec in &records {
            if registry.attribute(rec.vaddr).is_some() {
                attributed += 1;
            }
        }
        self.active = false;
        self.summary = ProfileSummary {
            samples: records.len() as u64,
            attributed,
            period: self.period,
        };
        self.last_records = records;
        self.summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::chunk_geometry;
    use crate::config::ChunkConfig;
    use atmem_hms::{Placement, Platform};

    fn setup() -> (Machine, Registry) {
        let mut machine = Machine::new(Platform::testing());
        let range = machine.alloc(1024 * 1024, Placement::Slow).unwrap();
        let mut registry = Registry::new();
        let g = chunk_geometry(range.len, &ChunkConfig::default());
        registry.register("data", range, g);
        (machine, registry)
    }

    #[test]
    fn profile_session_attributes_samples() {
        let (mut machine, mut registry) = setup();
        let range = registry.iter().next().unwrap().range();
        let mut profiler = Profiler::new();
        profiler.start(
            &mut machine,
            &registry,
            &SamplingConfig {
                period: Some(4),
                jitter_frac: 0.0,
                rng_seed: 1,
            },
        );
        assert!(profiler.is_active());
        // Strided reads: every access misses (stride > line).
        for i in 0..4096u64 {
            let _ = machine
                .read::<u64>(range.start.add((i * 256) % range.len as u64))
                .unwrap();
        }
        let summary = profiler.stop(&mut machine, &mut registry);
        assert!(!profiler.is_active());
        assert!(summary.samples > 100, "samples {}", summary.samples);
        assert_eq!(summary.samples, summary.attributed);
        let obj = registry.iter().next().unwrap();
        assert_eq!(obj.total_samples(), summary.attributed);
    }

    #[test]
    fn auto_period_scales_with_data_size() {
        let (_machine, registry) = setup();
        let small = Profiler::auto_period(&registry, 1);
        assert!((16..=65_536).contains(&small));
        // An empty registry still yields a sane period.
        let empty = Registry::new();
        let p = Profiler::auto_period(&empty, 48);
        assert!((16..=65_536).contains(&p));
    }

    #[test]
    #[should_panic(expected = "not active")]
    fn stop_without_start_panics() {
        let (mut machine, mut registry) = setup();
        Profiler::new().stop(&mut machine, &mut registry);
    }

    #[test]
    fn samples_outside_registry_are_unattributed() {
        let mut machine = Machine::new(Platform::testing());
        let range = machine.alloc(256 * 1024, Placement::Slow).unwrap();
        let mut registry = Registry::new(); // nothing registered
        let mut profiler = Profiler::new();
        profiler.start(
            &mut machine,
            &registry,
            &SamplingConfig {
                period: Some(2),
                jitter_frac: 0.0,
                rng_seed: 1,
            },
        );
        for i in 0..512u64 {
            let _ = machine
                .read::<u64>(range.start.add((i * 512) % range.len as u64))
                .unwrap();
        }
        let summary = profiler.stop(&mut machine, &mut registry);
        assert!(summary.samples > 0);
        assert_eq!(summary.attributed, 0);
    }
}
