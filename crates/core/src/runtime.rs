//! The ATMem runtime facade.
//!
//! [`Atmem`] mirrors the paper's minimal API (Listing 1):
//!
//! | paper                     | here                         |
//! |---------------------------|------------------------------|
//! | `atmem_malloc(size)`      | [`Atmem::malloc`]            |
//! | `atmem_free(ptr)`         | [`Atmem::free`]              |
//! | `atmem_profiling_start()` | [`Atmem::profiling_start`]   |
//! | `atmem_profiling_stop()`  | [`Atmem::profiling_stop`]    |
//! | `atmem_optimize()`        | [`Atmem::optimize`]          |
//!
//! The runtime owns the simulated [`Machine`]; applications allocate their
//! data structures through it (registering them as data objects), run one
//! iteration under profiling, call [`Atmem::optimize`], and keep running —
//! the paper's experimental protocol (§6).

use atmem_hms::{Machine, Platform, Scalar, SimDuration, TierId, TrackedVec, VirtRange};

use crate::analyzer::{analyze, Analysis};
use crate::autonuma;
use crate::chunk::chunk_geometry;
use crate::config::{AtmemConfig, OptimizePolicy};
use crate::error::{AtmemError, Result};
use crate::migrate::{
    build_demotion_cascade, build_plan, execute_plan, promotion_budget, MigrationOutcome,
    MigrationPlan,
};
use crate::profiler::{ProfileSummary, Profiler};
use crate::registry::Registry;

/// Report returned by [`Atmem::optimize`].
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizeReport {
    /// Analyzer outcome per object.
    pub analysis: Analysis,
    /// The plan that was executed.
    pub plan: MigrationPlan,
    /// Migration execution outcome.
    pub migration: MigrationOutcome,
    /// Demotion outcome, when `migration.allow_demotion` evicted stale
    /// regions before promotion.
    pub demotion: Option<MigrationOutcome>,
    /// Bytes registered across all data objects.
    pub total_bytes: usize,
    /// Fraction of registered bytes now resident on the fast tier
    /// (the paper's "data ratio", Figures 7–10).
    pub data_ratio: f64,
    /// Fraction of registered bytes resident on each tier, hottest first.
    /// Element 0 equals `data_ratio`; on a two-tier machine the vector is
    /// `[data_ratio, 1 - data_ratio]` up to rounding.
    pub data_ratio_vector: Vec<f64>,
    /// Profiling summary of the session feeding this optimization.
    pub profile: ProfileSummary,
}

impl std::fmt::Display for OptimizeReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "optimize: {} sampled + {} promoted chunks -> {} regions, \
             {:.2} MiB moved in {} ({} skipped, {} failed, {:.2} MiB over budget)",
            self.analysis.sampled_chunks(),
            self.analysis.promoted_chunks(),
            self.migration.regions,
            self.migration.bytes_moved as f64 / (1 << 20) as f64,
            self.migration.time,
            self.migration.regions_skipped,
            self.migration.regions_failed,
            self.plan.dropped_bytes as f64 / (1 << 20) as f64,
        )?;
        if let Some(d) = &self.demotion {
            writeln!(
                f,
                "demotion: {:.2} MiB evicted in {}",
                d.bytes_moved as f64 / (1 << 20) as f64,
                d.time
            )?;
        }
        write!(
            f,
            "placement: {:.1}% of {:.2} MiB registered data on the fast tier \
             ({} samples at period {})",
            self.data_ratio * 100.0,
            self.total_bytes as f64 / (1 << 20) as f64,
            self.profile.samples,
            self.profile.period,
        )?;
        if self.data_ratio_vector.len() > 2 {
            let tiers: Vec<String> = self
                .data_ratio_vector
                .iter()
                .map(|r| format!("{:.1}%", r * 100.0))
                .collect();
            write!(f, "\nresidency (hottest tier first): {}", tiers.join(" / "))?;
        }
        Ok(())
    }
}

/// The per-tenant half of the runtime: everything one protocol instance
/// owns — its data-object registry, profiler, configuration and allocation
/// handles — without the machine underneath.
///
/// A solo [`Atmem`] bundles one `TenantRt` with a private machine. The
/// multi-tenant [`Scheduler`](crate::serve::Scheduler) instead keeps many
/// `TenantRt`s and time-shares a single machine between them, assembling a
/// full `Atmem` for the duration of one quantum via [`Atmem::from_parts`]
/// and taking it apart again with [`Atmem::into_parts`].
#[derive(Debug)]
pub struct TenantRt {
    pub(crate) registry: Registry,
    pub(crate) profiler: Profiler,
    pub(crate) config: AtmemConfig,
    pub(crate) handles: Vec<VirtRange>,
    pub(crate) tag: u32,
}

impl TenantRt {
    /// Creates tenant state for `config`, tagged `tag`. The machine's
    /// residency accounting attributes every allocation made while this
    /// tenant holds the machine to `tag`, so per-tenant byte queries never
    /// rescan the mapping table.
    ///
    /// # Errors
    ///
    /// [`AtmemError::InvalidConfig`] if `config` fails validation.
    pub fn new(config: AtmemConfig, tag: u32) -> Result<Self> {
        config.validate()?;
        Ok(TenantRt {
            registry: Registry::new(),
            profiler: Profiler::new(),
            config,
            handles: Vec::new(),
            tag,
        })
    }

    /// The allocation tag the machine attributes this tenant's bytes to.
    pub fn tag(&self) -> u32 {
        self.tag
    }

    /// The tenant's data-object registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The tenant's runtime configuration.
    pub fn config(&self) -> &AtmemConfig {
        &self.config
    }
}

/// The ATMem runtime: registry + profiler + analyzer + optimizer over one
/// simulated machine.
#[derive(Debug)]
pub struct Atmem {
    machine: Machine,
    tenant: TenantRt,
}

impl Atmem {
    /// Creates a runtime on a fresh machine.
    ///
    /// # Errors
    ///
    /// [`AtmemError::InvalidConfig`] if `config` fails validation.
    pub fn new(platform: Platform, config: AtmemConfig) -> Result<Self> {
        Ok(Atmem::from_parts(
            Machine::new(platform),
            TenantRt::new(config, 0)?,
        ))
    }

    /// Assembles a runtime from a machine and one tenant's state, pointing
    /// the machine's allocation tagging at the tenant. The scheduler calls
    /// this at the start of every quantum; pairing it with
    /// [`Atmem::into_parts`] round-trips both halves unchanged.
    pub fn from_parts(mut machine: Machine, tenant: TenantRt) -> Self {
        machine.set_alloc_tag(tenant.tag);
        Atmem { machine, tenant }
    }

    /// Disassembles the runtime into the machine and the tenant state (the
    /// inverse of [`Atmem::from_parts`]).
    pub fn into_parts(self) -> (Machine, TenantRt) {
        (self.machine, self.tenant)
    }

    /// The tenant half of the runtime.
    pub fn tenant(&self) -> &TenantRt {
        &self.tenant
    }

    /// The runtime configuration.
    pub fn config(&self) -> &AtmemConfig {
        &self.tenant.config
    }

    /// Shared access to the underlying machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable access to the underlying machine (kernels pass this to
    /// [`TrackedVec`] accessors).
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// The data-object registry.
    pub fn registry(&self) -> &Registry {
        &self.tenant.registry
    }

    /// Allocates and registers a typed array of `len` elements
    /// (`atmem_malloc`). Placement follows the configured policy; the
    /// runtime chooses the adaptive chunk granularity from the object size
    /// (§4.1).
    ///
    /// # Errors
    ///
    /// Allocation failures from the memory system.
    pub fn malloc<T: Scalar>(&mut self, len: usize, name: &str) -> Result<TrackedVec<T>> {
        let placement = self.tenant.config.default_placement.placement();
        let mut vec = TrackedVec::<T>::new(&mut self.machine, len, placement)?;
        vec.set_name(name);
        let geometry = chunk_geometry(vec.range().len, &self.tenant.config.chunks);
        self.tenant.registry.register(name, vec.range(), geometry);
        self.tenant.handles.push(vec.range());
        Ok(vec)
    }

    /// Frees and unregisters an array (`atmem_free`).
    ///
    /// # Errors
    ///
    /// [`AtmemError::Unregistered`] if the array was not allocated through
    /// this runtime; memory-system failures otherwise.
    pub fn free<T: Scalar>(&mut self, vec: TrackedVec<T>) -> Result<()> {
        let id = self
            .tenant
            .registry
            .object_at(vec.range().start)
            .ok_or(AtmemError::Unregistered(vec.range().start))?;
        self.tenant.registry.unregister(id);
        self.tenant.handles.retain(|r| r.start != vec.range().start);
        vec.free(&mut self.machine)?;
        Ok(())
    }

    /// Starts hardware sampling (`atmem_profiling_start`).
    ///
    /// # Errors
    ///
    /// [`AtmemError::ProfilingActive`] if already profiling.
    pub fn profiling_start(&mut self) -> Result<()> {
        if self.tenant.profiler.is_active() {
            return Err(AtmemError::ProfilingActive);
        }
        self.tenant.registry.reset_samples();
        self.tenant.profiler.start(
            &mut self.machine,
            &self.tenant.registry,
            &self.tenant.config.sampling,
        );
        Ok(())
    }

    /// Stops sampling and attributes samples (`atmem_profiling_stop`).
    ///
    /// # Errors
    ///
    /// [`AtmemError::ProfilingNotActive`] if not profiling.
    pub fn profiling_stop(&mut self) -> Result<ProfileSummary> {
        if !self.tenant.profiler.is_active() {
            return Err(AtmemError::ProfilingNotActive);
        }
        Ok(self
            .tenant
            .profiler
            .stop(&mut self.machine, &mut self.tenant.registry))
    }

    /// Analyzes the profile and migrates critical regions toward the hot
    /// end of the tier order (`atmem_optimize`), under the configured
    /// [`OptimizePolicy`] — the paper's protocol by default, the AutoNUMA
    /// OS-tiering baseline when selected.
    ///
    /// # Errors
    ///
    /// [`AtmemError::ProfilingActive`] if called mid-profiling; migration
    /// failures otherwise.
    pub fn optimize(&mut self) -> Result<OptimizeReport> {
        if self.tenant.profiler.is_active() {
            return Err(AtmemError::ProfilingActive);
        }
        match self.tenant.config.policy {
            OptimizePolicy::Atmem => self.optimize_atmem(),
            OptimizePolicy::Autonuma => self.optimize_autonuma(),
        }
    }

    /// The tier promotion aims at: the hottest tier whose prospective
    /// budget admits anything. With demotion enabled the answer is always
    /// the hottest tier — the cascade exists to make room there. On a
    /// two-tier machine the answer is the fast tier in every case.
    fn promotion_target(&self) -> TierId {
        if self.tenant.config.migration.allow_demotion {
            return TierId::FAST;
        }
        for i in 0..self.machine.num_tiers().saturating_sub(1) {
            let tier = TierId::new(i);
            let budget =
                promotion_budget(self.machine.free_bytes(tier), &self.tenant.config.migration);
            if budget > 0 {
                return tier;
            }
        }
        TierId::FAST
    }

    /// The paper's protocol: analyze, plan, staged migration — generalized
    /// to N tiers (multi-hop demotion cascade, tier-aware promotion
    /// target).
    fn optimize_atmem(&mut self) -> Result<OptimizeReport> {
        let analysis = analyze(&self.tenant.registry, &self.tenant.config.analyzer);
        let target = self.promotion_target();
        // Phase adaptivity (extension): evict regions that are no longer
        // critical, making room for the new selection. The cascade is
        // demand-driven: the hottest hop frees only enough space (a
        // coldest-first prefix of the stale residue) to admit the bytes the
        // new selection actually wants to move, and each colder hop absorbs
        // what the hop above it pushes down. On two tiers this is a single
        // fast-to-slow demotion.
        let demotion = if self.tenant.config.migration.allow_demotion {
            let wanted = build_plan(
                &self.tenant.registry,
                &analysis,
                &self.tenant.config.migration,
                usize::MAX,
            );
            let demand: usize = wanted
                .regions
                .iter()
                .map(|r| r.range.len - self.machine.resident_bytes(r.range, target))
                .sum();
            let hops = build_demotion_cascade(
                &self.tenant.registry,
                &analysis,
                &self.machine,
                &self.tenant.config.migration,
                demand,
            );
            let coldest = self.machine.coldest_tier();
            let mut merged: Option<MigrationOutcome> = None;
            for hop in &hops {
                // Each hop's regions carry their own destination; the
                // call-level tier is only the fallback.
                let out = execute_plan(
                    &mut self.machine,
                    hop,
                    &self.tenant.config.migration,
                    coldest,
                )?;
                merged = Some(match merged {
                    Some(acc) => acc.merged(out),
                    None => out,
                });
            }
            merged
        } else {
            None
        };
        // The budget covers the final placement; the staging transient is
        // bounded separately by max_region_bytes.
        let budget = promotion_budget(
            self.machine.free_bytes(target),
            &self.tenant.config.migration,
        );
        let plan = build_plan(
            &self.tenant.registry,
            &analysis,
            &self.tenant.config.migration,
            budget,
        );
        let migration = execute_plan(
            &mut self.machine,
            &plan,
            &self.tenant.config.migration,
            target,
        )?;
        let total_bytes = self.tenant.registry.total_bytes();
        Ok(OptimizeReport {
            data_ratio: self.fast_data_ratio(),
            data_ratio_vector: self.data_ratio_vector(),
            analysis,
            plan,
            migration,
            demotion,
            total_bytes,
            profile: self.tenant.profiler.last_summary(),
        })
    }

    /// The AutoNUMA baseline: page-granular promote-on-second-touch from
    /// the raw sample stream, then watermark demotion, both through
    /// `mbind` (see [`crate::config::OptimizePolicy::Autonuma`]).
    fn optimize_autonuma(&mut self) -> Result<OptimizeReport> {
        let records = self.tenant.profiler.last_records().to_vec();
        let outcome = autonuma::run(
            &mut self.machine,
            &self.tenant.registry,
            &records,
            &self.tenant.config.autonuma,
        )?;
        let total_bytes = self.tenant.registry.total_bytes();
        Ok(OptimizeReport {
            data_ratio: self.fast_data_ratio(),
            data_ratio_vector: self.data_ratio_vector(),
            // The OS baseline has no chunk analysis; the report carries an
            // empty one.
            analysis: Analysis {
                objects: Vec::new(),
            },
            plan: outcome.plan,
            migration: outcome.promotion,
            demotion: outcome.demotion,
            total_bytes,
            profile: self.tenant.profiler.last_summary(),
        })
    }

    /// Fraction of registered bytes currently resident on the fast tier,
    /// served from the machine's incremental residency counters.
    pub fn fast_data_ratio(&self) -> f64 {
        fast_ratio_of(&self.machine, &self.tenant.registry)
    }

    /// Fraction of registered bytes resident on each tier, hottest first.
    /// Element 0 is computed exactly like [`Atmem::fast_data_ratio`] (same
    /// accumulation order).
    pub fn data_ratio_vector(&self) -> Vec<f64> {
        ratio_vector_of(&self.machine, &self.tenant.registry)
    }

    /// Current simulated time (convenience passthrough).
    pub fn now(&self) -> SimDuration {
        self.machine.now()
    }

    /// Consumes the runtime, returning the machine (for post-mortem
    /// inspection in tests and harnesses).
    pub fn into_machine(self) -> Machine {
        self.machine
    }
}

/// Fraction of `registry`'s bytes resident on the fast tier. Each object
/// is answered from the machine's incremental per-allocation residency
/// counter (constant-time); the page rescan remains only as a fallback for
/// ranges the cache does not cover, so per-tenant per-quantum ratio
/// queries no longer walk the mapping table.
pub(crate) fn fast_ratio_of(machine: &Machine, registry: &Registry) -> f64 {
    let total = registry.total_bytes();
    if total == 0 {
        return 0.0;
    }
    let fast: usize = registry
        .iter()
        .map(|o| {
            machine
                .allocation_resident(o.range().start, TierId::FAST)
                .unwrap_or_else(|| machine.resident_bytes(o.range(), TierId::FAST))
        })
        .sum();
    fast as f64 / total as f64
}

/// Per-tier generalization of [`fast_ratio_of`]: one residency fraction
/// per tier, hottest first. Each element is accumulated in the same object
/// order as the fast ratio, so element 0 is bit-identical to it.
pub(crate) fn ratio_vector_of(machine: &Machine, registry: &Registry) -> Vec<f64> {
    let total = registry.total_bytes();
    if total == 0 {
        return vec![0.0; machine.num_tiers()];
    }
    (0..machine.num_tiers())
        .map(|t| {
            let tier = TierId::new(t);
            let bytes: usize = registry
                .iter()
                .map(|o| {
                    machine
                        .allocation_resident(o.range().start, tier)
                        .unwrap_or_else(|| machine.resident_bytes(o.range(), tier))
                })
                .sum();
            bytes as f64 / total as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PlacementPolicy;

    fn runtime() -> Atmem {
        Atmem::new(Platform::testing(), AtmemConfig::default()).unwrap()
    }

    /// Drives a skewed access pattern over one array: 90% of reads hit the
    /// first `hot_frac` of the elements.
    fn skewed_reads(rt: &mut Atmem, v: &TrackedVec<u64>, reads: usize, hot_frac: f64) {
        let n = v.len();
        let hot = ((n as f64 * hot_frac) as usize).max(1);
        for i in 0..reads {
            let idx = if i % 10 < 9 {
                (i * 7919) % hot
            } else {
                hot + (i * 104729) % (n - hot)
            };
            let _ = v.get(rt.machine_mut(), idx);
        }
    }

    #[test]
    fn full_pipeline_selects_and_migrates_the_hot_region() {
        let mut rt = runtime();
        let v = rt.malloc::<u64>(512 * 1024, "data").unwrap(); // 4 MiB
        rt.profiling_start().unwrap();
        skewed_reads(&mut rt, &v, 200_000, 0.10);
        let summary = rt.profiling_stop().unwrap();
        assert!(summary.attributed > 0);

        let report = rt.optimize().unwrap();
        assert!(
            report.migration.bytes_moved > 0,
            "hot region should migrate: {report:?}"
        );
        let ratio = report.data_ratio;
        assert!(
            ratio > 0.05 && ratio < 0.5,
            "expected a selective ratio, got {ratio}"
        );
        // The hot prefix should now be fast.
        let hot_addr = v.addr_of(100);
        assert_eq!(rt.machine_mut().tier_of(hot_addr).unwrap(), TierId::FAST);
    }

    #[test]
    fn optimize_speeds_up_the_next_iteration() {
        let mut rt = runtime();
        let v = rt.malloc::<u64>(512 * 1024, "data").unwrap();
        rt.profiling_start().unwrap();
        skewed_reads(&mut rt, &v, 100_000, 0.08);
        rt.profiling_stop().unwrap();

        // Unoptimized iteration time.
        let t0 = rt.now();
        skewed_reads(&mut rt, &v, 100_000, 0.08);
        let before = rt.now().as_ns() - t0.as_ns();

        rt.optimize().unwrap();

        let t1 = rt.now();
        skewed_reads(&mut rt, &v, 100_000, 0.08);
        let after = rt.now().as_ns() - t1.as_ns();
        assert!(
            after < 0.8 * before,
            "optimized iteration {after} vs baseline {before}"
        );
    }

    #[test]
    fn data_intact_after_optimize() {
        let mut rt = runtime();
        let v = rt.malloc::<u64>(64 * 1024, "data").unwrap();
        for i in 0..v.len() {
            v.poke(rt.machine_mut(), i, (i as u64) << 7 | 1);
        }
        rt.profiling_start().unwrap();
        skewed_reads(&mut rt, &v, 50_000, 0.15);
        rt.profiling_stop().unwrap();
        rt.optimize().unwrap();
        for i in 0..v.len() {
            assert_eq!(v.peek(rt.machine_mut(), i), (i as u64) << 7 | 1);
        }
    }

    #[test]
    fn optimize_report_displays_a_summary() {
        let mut rt = runtime();
        let v = rt.malloc::<u64>(256 * 1024, "data").unwrap();
        rt.profiling_start().unwrap();
        skewed_reads(&mut rt, &v, 80_000, 0.1);
        rt.profiling_stop().unwrap();
        let report = rt.optimize().unwrap();
        let text = report.to_string();
        assert!(text.contains("optimize:"), "{text}");
        assert!(text.contains("placement:"), "{text}");
        assert!(text.contains("fast tier"), "{text}");
    }

    #[test]
    fn failed_regions_are_retried_on_the_next_optimize() {
        use atmem_hms::{FaultPlan, FaultSite};
        let mut rt = runtime();
        let v = rt.malloc::<u64>(512 * 1024, "data").unwrap();
        rt.profiling_start().unwrap();
        skewed_reads(&mut rt, &v, 100_000, 0.08);
        rt.profiling_stop().unwrap();

        // Fail the first remap: that region rolls back to the slow tier and
        // is counted as failed, not silently dropped.
        rt.machine_mut()
            .set_fault_plan(Some(FaultPlan::new().fail_at(FaultSite::Remap, 0)));
        let r1 = rt.optimize().unwrap();
        assert!(r1.migration.regions_failed >= 1, "{r1:?}");
        assert_eq!(
            r1.migration.bytes_moved + r1.migration.bytes_skipped + r1.migration.bytes_failed,
            r1.plan.total_bytes
        );
        let degraded = rt.fast_data_ratio();

        // Samples persist until the next profiling_start, so the next round
        // replans the rolled-back region; the scripted fault is consumed and
        // the retry lands it on the fast tier.
        let r2 = rt.optimize().unwrap();
        assert!(r2.migration.bytes_moved > 0, "{r2:?}");
        assert_eq!(r2.migration.regions_failed, 0, "{r2:?}");
        assert!(
            rt.fast_data_ratio() > degraded,
            "retry should recover placement: {} -> {}",
            degraded,
            rt.fast_data_ratio()
        );
        let violations = rt.machine_mut().audit();
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn api_misuse_is_rejected() {
        let mut rt = runtime();
        assert!(matches!(
            rt.profiling_stop(),
            Err(AtmemError::ProfilingNotActive)
        ));
        rt.profiling_start().unwrap();
        assert!(matches!(
            rt.profiling_start(),
            Err(AtmemError::ProfilingActive)
        ));
        assert!(matches!(rt.optimize(), Err(AtmemError::ProfilingActive)));
        rt.profiling_stop().unwrap();
    }

    #[test]
    fn malloc_respects_placement_policy() {
        let mut rt = Atmem::new(
            Platform::testing(),
            AtmemConfig::default().with_placement(PlacementPolicy::AllFast),
        )
        .unwrap();
        let v = rt.malloc::<u32>(1024, "x").unwrap();
        assert_eq!(rt.fast_data_ratio(), 1.0);
        rt.free(v).unwrap();
        assert_eq!(rt.registry().len(), 0);
    }

    #[test]
    fn optimize_without_profiling_is_a_noop_plan() {
        let mut rt = runtime();
        let _v = rt.malloc::<u64>(64 * 1024, "cold").unwrap();
        let report = rt.optimize().unwrap();
        assert!(report.plan.is_empty());
        assert_eq!(report.migration.bytes_moved, 0);
        assert_eq!(report.data_ratio, 0.0);
    }

    #[test]
    fn parts_round_trip_preserves_state_and_cached_ratio() {
        let mut rt = runtime();
        let v = rt.malloc::<u64>(128 * 1024, "data").unwrap();
        rt.profiling_start().unwrap();
        skewed_reads(&mut rt, &v, 60_000, 0.1);
        rt.profiling_stop().unwrap();
        rt.optimize().unwrap();
        let ratio = rt.fast_data_ratio();
        assert!(ratio > 0.0);
        // The incremental counters agree with a full mapping-table rescan.
        let rescan: usize = rt
            .registry()
            .iter()
            .map(|o| rt.machine().resident_bytes(o.range(), TierId::FAST))
            .sum();
        let total = rt.registry().total_bytes();
        assert_eq!(ratio, rescan as f64 / total as f64);
        // Disassemble and reassemble: nothing observable changes.
        let (machine, tenant) = rt.into_parts();
        assert_eq!(tenant.tag(), 0);
        let rt = Atmem::from_parts(machine, tenant);
        assert_eq!(rt.fast_data_ratio(), ratio);
    }

    #[test]
    fn free_unknown_vec_is_an_error() {
        let mut rt = runtime();
        let mut other = Machine::new(Platform::testing());
        let foreign = TrackedVec::<u32>::new(&mut other, 16, atmem_hms::Placement::Slow).unwrap();
        assert!(matches!(rt.free(foreign), Err(AtmemError::Unregistered(_))));
    }
}
