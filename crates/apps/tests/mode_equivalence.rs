//! Scalar vs. bulk access-mode equivalence for every kernel.
//!
//! The bulk fast paths must be *invisible* in simulation space: for each of
//! the ten kernels, running the same workload under [`AccessMode::Scalar`]
//! and [`AccessMode::Bulk`] contexts has to produce identical outputs and
//! bit-identical machine state — counters, simulated clock, and the
//! PEBS/trace streams (which are order-sensitive, so they catch reorderings
//! the aggregate counters would miss). Any divergence means a block walk or
//! the window engine mishandles some boundary case the per-element loop
//! gets right.

use atmem::{Atmem, AtmemConfig};
use atmem_apps::{
    AccessMode, Bc, Bfs, BfsDir, Cc, HmsGraph, KCore, Kernel, MemCtx, PageRank, PageRankPull, Spmv,
    Sssp, Triangles,
};
use atmem_graph::{rmat, Csr, Dataset};
use atmem_hms::{MachineStats, Platform, SampleRecord, SimDuration};

fn runtime() -> Atmem {
    Atmem::new(Platform::testing(), AtmemConfig::default()).unwrap()
}

fn plain_graph() -> Csr {
    Dataset::Twitter.build_small(7) // 2048 vertices, skewed
}

fn weighted_graph() -> Csr {
    plain_graph().with_random_weights(16.0, 1)
}

fn symmetric_graph() -> Csr {
    let mut config = Dataset::Pokec.config();
    config.scale = 9;
    config.symmetrize = true;
    rmat(&config, 11)
}

/// Runs `iters` iterations of the kernel `build` constructs with a context
/// in `mode`, and returns the checksum plus every piece of simulated state
/// a divergent fast path could disturb.
fn run_mode(
    csr: &Csr,
    mode: AccessMode,
    iters: usize,
    build: impl FnOnce(&mut Atmem, &Csr) -> Box<dyn Kernel>,
) -> (f64, MachineStats, SimDuration, Vec<SampleRecord>) {
    let mut rt = runtime();
    let mut kernel = build(&mut rt, csr);
    kernel.reset(&mut rt);
    rt.machine_mut().pebs_enable(7, 3);
    for _ in 0..iters {
        kernel.run_iteration(&mut MemCtx::new(rt.machine_mut(), mode));
    }
    let sum = kernel.checksum(&mut rt);
    let stats = rt.machine().stats();
    let now = rt.now();
    let pebs = rt.machine_mut().pebs_drain();
    (sum, stats, now, pebs)
}

/// Asserts both modes agree on output, counters, clock and PEBS stream.
fn assert_modes_agree(
    name: &str,
    csr: &Csr,
    iters: usize,
    build: impl Fn(&mut Atmem, &Csr) -> Box<dyn Kernel>,
) {
    let (scalar_sum, scalar_stats, scalar_now, scalar_pebs) =
        run_mode(csr, AccessMode::Scalar, iters, &build);
    let (bulk_sum, bulk_stats, bulk_now, bulk_pebs) =
        run_mode(csr, AccessMode::Bulk, iters, &build);
    assert_eq!(scalar_sum, bulk_sum, "{name}: checksums diverge");
    assert_eq!(
        scalar_stats, bulk_stats,
        "{name}: machine counters diverge between access modes"
    );
    assert_eq!(
        scalar_now, bulk_now,
        "{name}: simulated clocks diverge between access modes"
    );
    assert_eq!(
        scalar_pebs, bulk_pebs,
        "{name}: PEBS sample streams diverge between access modes"
    );
    assert!(scalar_stats.accesses > 0, "{name} performed no work");
    assert!(!scalar_pebs.is_empty(), "{name} produced no PEBS samples");
}

fn load(rt: &mut Atmem, csr: &Csr) -> HmsGraph {
    HmsGraph::load(rt, csr).unwrap()
}

#[test]
fn pagerank_modes_agree() {
    assert_modes_agree("PR", &plain_graph(), 2, |rt, csr| {
        let g = load(rt, csr);
        Box::new(PageRank::new(rt, g).unwrap())
    });
}

#[test]
fn pagerank_pull_modes_agree() {
    assert_modes_agree("PR-pull", &plain_graph(), 2, |rt, csr| {
        Box::new(PageRankPull::new(rt, csr).unwrap())
    });
}

#[test]
fn spmv_modes_agree() {
    assert_modes_agree("SpMV", &weighted_graph(), 2, |rt, csr| {
        let g = load(rt, csr);
        Box::new(Spmv::new(rt, g).unwrap())
    });
}

#[test]
fn bfs_modes_agree() {
    assert_modes_agree("BFS", &plain_graph(), 1, |rt, csr| {
        let g = load(rt, csr);
        Box::new(Bfs::new(rt, g, 0).unwrap())
    });
}

#[test]
fn bfs_dir_modes_agree() {
    assert_modes_agree("BFS-dir", &symmetric_graph(), 1, |rt, csr| {
        Box::new(BfsDir::new(rt, csr, 0).unwrap())
    });
}

#[test]
fn sssp_modes_agree() {
    assert_modes_agree("SSSP", &weighted_graph(), 1, |rt, csr| {
        let g = load(rt, csr);
        Box::new(Sssp::new(rt, g, 0).unwrap())
    });
}

#[test]
fn cc_modes_agree() {
    assert_modes_agree("CC", &plain_graph(), 2, |rt, csr| {
        let g = load(rt, csr);
        Box::new(Cc::new(rt, g).unwrap())
    });
}

#[test]
fn bc_modes_agree() {
    assert_modes_agree("BC", &plain_graph(), 2, |rt, csr| {
        let g = load(rt, csr);
        Box::new(Bc::new(rt, g, 0).unwrap())
    });
}

#[test]
fn kcore_modes_agree() {
    assert_modes_agree("kCore", &symmetric_graph(), 1, |rt, csr| {
        let g = load(rt, csr);
        Box::new(KCore::new(rt, g).unwrap())
    });
}

#[test]
fn triangles_modes_agree() {
    assert_modes_agree("TC", &symmetric_graph(), 1, |rt, csr| {
        let g = load(rt, csr);
        Box::new(Triangles::new(rt, g).unwrap())
    });
}
