//! Scalar vs. bulk access-mode equivalence for every kernel.
//!
//! The bulk fast path must be *invisible* in simulation space: for each of
//! the ten kernels, running the same workload in [`AccessMode::Scalar`] and
//! [`AccessMode::Bulk`] has to produce identical outputs and bit-identical
//! machine counters (accesses, TLB and LLC hits/misses, simulated time).
//! Any divergence means the block walk miscounts some boundary case the
//! per-element loop handles.

use atmem::{Atmem, AtmemConfig};
use atmem_apps::{
    AccessMode, Bc, Bfs, BfsDir, Cc, HmsGraph, KCore, Kernel, PageRank, PageRankPull, Spmv, Sssp,
    Triangles,
};
use atmem_graph::{rmat, Csr, Dataset};
use atmem_hms::{MachineStats, Platform};

fn runtime() -> Atmem {
    Atmem::new(Platform::testing(), AtmemConfig::default()).unwrap()
}

fn plain_graph() -> Csr {
    Dataset::Twitter.build_small(7) // 2048 vertices, skewed
}

fn weighted_graph() -> Csr {
    plain_graph().with_random_weights(16.0, 1)
}

fn symmetric_graph() -> Csr {
    let mut config = Dataset::Pokec.config();
    config.scale = 9;
    config.symmetrize = true;
    rmat(&config, 11)
}

/// Runs `iters` iterations of the kernel `build` constructs under `mode`
/// and returns the checksum plus the machine counters at the end.
fn run_mode(
    csr: &Csr,
    mode: AccessMode,
    iters: usize,
    build: impl FnOnce(&mut Atmem, &Csr, AccessMode) -> Box<dyn Kernel>,
) -> (f64, MachineStats) {
    let mut rt = runtime();
    let mut kernel = build(&mut rt, csr, mode);
    kernel.reset(&mut rt);
    for _ in 0..iters {
        kernel.run_iteration(&mut rt);
    }
    (kernel.checksum(&mut rt), rt.machine().stats())
}

/// Asserts both modes agree on output and counters.
fn assert_modes_agree(
    name: &str,
    csr: &Csr,
    iters: usize,
    build: impl Fn(&mut Atmem, &Csr, AccessMode) -> Box<dyn Kernel>,
) {
    let (scalar_sum, scalar_stats) = run_mode(csr, AccessMode::Scalar, iters, &build);
    let (bulk_sum, bulk_stats) = run_mode(csr, AccessMode::Bulk, iters, &build);
    assert_eq!(scalar_sum, bulk_sum, "{name}: checksums diverge");
    assert_eq!(
        scalar_stats, bulk_stats,
        "{name}: machine counters diverge between access modes"
    );
    assert!(scalar_stats.accesses > 0, "{name} performed no work");
}

fn load(rt: &mut Atmem, csr: &Csr) -> HmsGraph {
    HmsGraph::load(rt, csr).unwrap()
}

#[test]
fn pagerank_modes_agree() {
    assert_modes_agree("PR", &plain_graph(), 2, |rt, csr, mode| {
        let g = load(rt, csr);
        let mut k = PageRank::new(rt, g).unwrap();
        k.set_mode(mode);
        Box::new(k)
    });
}

#[test]
fn pagerank_pull_modes_agree() {
    assert_modes_agree("PR-pull", &plain_graph(), 2, |rt, csr, mode| {
        let mut k = PageRankPull::new(rt, csr).unwrap();
        k.set_mode(mode);
        Box::new(k)
    });
}

#[test]
fn spmv_modes_agree() {
    assert_modes_agree("SpMV", &weighted_graph(), 2, |rt, csr, mode| {
        let g = load(rt, csr);
        let mut k = Spmv::new(rt, g).unwrap();
        k.set_mode(mode);
        Box::new(k)
    });
}

#[test]
fn bfs_modes_agree() {
    assert_modes_agree("BFS", &plain_graph(), 1, |rt, csr, mode| {
        let g = load(rt, csr);
        let mut k = Bfs::new(rt, g, 0).unwrap();
        k.set_mode(mode);
        Box::new(k)
    });
}

#[test]
fn bfs_dir_modes_agree() {
    assert_modes_agree("BFS-dir", &symmetric_graph(), 1, |rt, csr, mode| {
        let mut k = BfsDir::new(rt, csr, 0).unwrap();
        k.set_mode(mode);
        Box::new(k)
    });
}

#[test]
fn sssp_modes_agree() {
    assert_modes_agree("SSSP", &weighted_graph(), 1, |rt, csr, mode| {
        let g = load(rt, csr);
        let mut k = Sssp::new(rt, g, 0).unwrap();
        k.set_mode(mode);
        Box::new(k)
    });
}

#[test]
fn cc_modes_agree() {
    assert_modes_agree("CC", &plain_graph(), 2, |rt, csr, mode| {
        let g = load(rt, csr);
        let mut k = Cc::new(rt, g).unwrap();
        k.set_mode(mode);
        Box::new(k)
    });
}

#[test]
fn bc_modes_agree() {
    assert_modes_agree("BC", &plain_graph(), 2, |rt, csr, mode| {
        let g = load(rt, csr);
        let mut k = Bc::new(rt, g, 0).unwrap();
        k.set_mode(mode);
        Box::new(k)
    });
}

#[test]
fn kcore_modes_agree() {
    assert_modes_agree("kCore", &symmetric_graph(), 1, |rt, csr, mode| {
        let g = load(rt, csr);
        let mut k = KCore::new(rt, g).unwrap();
        k.set_mode(mode);
        Box::new(k)
    });
}

#[test]
fn triangles_modes_agree() {
    assert_modes_agree("TC", &symmetric_graph(), 1, |rt, csr, mode| {
        let g = load(rt, csr);
        let mut k = Triangles::new(rt, g).unwrap();
        k.set_mode(mode);
        Box::new(k)
    });
}
