//! The kernel abstraction and the application roster.

use atmem::{Atmem, Result};

use crate::access::MemCtx;
use crate::bc::Bc;
use crate::bfs::Bfs;
use crate::cc::Cc;
use crate::graph_data::HmsGraph;
use crate::pagerank::PageRank;
use crate::spmv::Spmv;
use crate::sssp::Sssp;

/// A graph kernel runnable under the paper's iteration protocol.
///
/// One *iteration* is the unit the paper times: a full traversal for BFS
/// and SSSP, one power iteration for PageRank, one source for BC, one full
/// edge pass for CC, one multiply for SpMV.
pub trait Kernel {
    /// Kernel name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Re-initialises kernel state so the next iteration starts fresh.
    /// Unaccounted (happens outside the measured region).
    fn reset(&mut self, rt: &mut Atmem);

    /// Runs one iteration through the accounted access path. The access
    /// mode lives in the context, chosen once by the runner or harness —
    /// kernels carry no mode state of their own.
    fn run_iteration(&mut self, ctx: &mut MemCtx);

    /// A checksum over the kernel's output arrays, for correctness
    /// comparisons across placements (unaccounted).
    fn checksum(&self, rt: &mut Atmem) -> f64;
}

/// The applications evaluated in the paper (§6) plus SpMV (§9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum App {
    /// Breadth-first search.
    Bfs,
    /// Single-source shortest paths.
    Sssp,
    /// PageRank.
    PageRank,
    /// Betweenness centrality (Brandes, one source per iteration).
    Bc,
    /// Connected components (label propagation).
    Cc,
    /// Sparse matrix-vector multiply (the paper's generalisation example).
    Spmv,
}

impl App {
    /// The five applications of the paper's evaluation, in figure order.
    pub const FIVE: [App; 5] = [App::Bfs, App::Sssp, App::PageRank, App::Bc, App::Cc];

    /// Name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            App::Bfs => "BFS",
            App::Sssp => "SSSP",
            App::PageRank => "PR",
            App::Bc => "BC",
            App::Cc => "CC",
            App::Spmv => "SpMV",
        }
    }

    /// Whether the kernel consumes edge weights.
    pub fn needs_weights(self) -> bool {
        matches!(self, App::Sssp | App::Spmv)
    }

    /// Instantiates the kernel over a loaded graph. The default query
    /// source (for BFS/SSSP/BC) is vertex 0 of the largest-degree region —
    /// deterministic and connected in R-MAT inputs.
    ///
    /// # Errors
    ///
    /// Allocation failures while creating the kernel's property arrays.
    pub fn instantiate(self, rt: &mut Atmem, graph: HmsGraph) -> Result<Box<dyn Kernel>> {
        let source = 0u32;
        Ok(match self {
            App::Bfs => Box::new(Bfs::new(rt, graph, source)?),
            App::Sssp => Box::new(Sssp::new(rt, graph, source)?),
            App::PageRank => Box::new(PageRank::new(rt, graph)?),
            App::Bc => Box::new(Bc::new(rt, graph, source)?),
            App::Cc => Box::new(Cc::new(rt, graph)?),
            App::Spmv => Box::new(Spmv::new(rt, graph)?),
        })
    }
}

impl std::fmt::Display for App {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_matches_paper() {
        let names: Vec<_> = App::FIVE.iter().map(|a| a.name()).collect();
        assert_eq!(names, ["BFS", "SSSP", "PR", "BC", "CC"]);
    }

    #[test]
    fn weight_requirements() {
        assert!(App::Sssp.needs_weights());
        assert!(App::Spmv.needs_weights());
        assert!(!App::Bfs.needs_weights());
        assert!(!App::PageRank.needs_weights());
    }
}
