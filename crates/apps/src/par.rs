//! Deterministic contiguous partitions for sharded kernel phases.
//!
//! `Machine::run_cores` requires each phase to respect the partition
//! contract: bytes written by one core must not be accessed by any other
//! core in the same phase. The kernels therefore split their vertex (or
//! destination) spaces into **contiguous** per-core ranges, which keeps
//! ownership checks trivial (a range comparison), keeps every per-core
//! stream sequential (the block fast path stays effective), and — because
//! the split depends only on the input sizes — makes the partition itself
//! deterministic, a prerequisite for the engine's run-to-run determinism.
//!
//! Two splitters cover the kernels' needs:
//!
//! * [`even_cuts`] — equal element counts; used for property-array sweeps
//!   (damping steps, accumulator ownership) where work is uniform per
//!   element.
//! * [`edge_cuts`] — equal *edge* counts derived from a CSR row-bounds
//!   prefix array; used for traversal phases where per-vertex work follows
//!   the (skewed) degree distribution.
//!
//! All functions return `cores + 1` cut points; core `c` owns
//! `cuts[c]..cuts[c + 1]`. Ranges may be empty (more cores than work) but
//! always concatenate to `0..n` in core order.

/// Splits `0..n` into `cores` contiguous ranges of near-equal length.
///
/// # Panics
///
/// Panics if `cores == 0`.
pub fn even_cuts(n: usize, cores: usize) -> Vec<usize> {
    assert!(cores >= 1, "core count must be positive");
    (0..=cores).map(|c| n * c / cores).collect()
}

/// Splits the vertex range of a CSR prefix array `bounds` (length
/// `n + 1`, monotone) into `cores` contiguous ranges of near-equal
/// **edge** count: each cut lands on the first vertex at or past the next
/// `total_edges / cores` quantile.
///
/// # Panics
///
/// Panics if `cores == 0` or `bounds` is empty.
pub fn edge_cuts(bounds: &[u64], cores: usize) -> Vec<usize> {
    assert!(cores >= 1, "core count must be positive");
    assert!(!bounds.is_empty(), "bounds must hold at least one entry");
    let n = bounds.len() - 1;
    let total = bounds[n] - bounds[0];
    let mut cuts = Vec::with_capacity(cores + 1);
    cuts.push(0usize);
    for c in 1..cores {
        let target = bounds[0] + total * c as u64 / cores as u64;
        let cut = bounds.partition_point(|&b| b < target).min(n);
        let prev = *cuts.last().expect("cuts is non-empty");
        cuts.push(cut.max(prev));
    }
    cuts.push(n);
    cuts
}

/// The core owning index `i` under the partition `cuts` (the unique `c`
/// with `cuts[c] <= i < cuts[c + 1]`, skipping empty ranges).
///
/// # Panics
///
/// Debug-asserts that `i` falls inside the partitioned range.
pub fn owner(cuts: &[usize], i: usize) -> usize {
    debug_assert!(cuts.len() >= 2, "partition needs at least one range");
    debug_assert!(
        i < *cuts.last().expect("cuts is non-empty"),
        "index {i} outside partition"
    );
    cuts.partition_point(|&c| c <= i).saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_cuts_cover_and_balance() {
        let cuts = even_cuts(10, 4);
        assert_eq!(cuts.first(), Some(&0));
        assert_eq!(cuts.last(), Some(&10));
        for w in cuts.windows(2) {
            assert!(w[0] <= w[1]);
            assert!(w[1] - w[0] <= 3);
        }
    }

    #[test]
    fn even_cuts_with_more_cores_than_items() {
        let cuts = even_cuts(2, 4);
        assert_eq!(cuts, vec![0, 0, 1, 1, 2]);
    }

    #[test]
    fn edge_cuts_balance_by_degree() {
        // Vertex 0 holds 90 of 100 edges: it gets its own range and the
        // remaining vertices split the tail.
        let bounds = [0u64, 90, 92, 94, 96, 98, 100];
        let cuts = edge_cuts(&bounds, 2);
        assert_eq!(cuts.first(), Some(&0));
        assert_eq!(cuts.last(), Some(&6));
        assert_eq!(cuts[1], 1, "the hub alone exceeds the per-core quota");
    }

    #[test]
    fn edge_cuts_handle_empty_graph() {
        let bounds = [0u64, 0, 0, 0];
        let cuts = edge_cuts(&bounds, 3);
        assert_eq!(cuts.first(), Some(&0));
        assert_eq!(cuts.last(), Some(&3));
        for w in cuts.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn owner_is_consistent_with_cuts() {
        let cuts = vec![0, 3, 3, 7, 10];
        for i in 0..10 {
            let c = owner(&cuts, i);
            assert!(cuts[c] <= i && i < cuts[c + 1], "index {i} -> core {c}");
        }
    }

    #[test]
    fn every_index_has_exactly_one_owner() {
        let bounds: Vec<u64> = (0..=17u64).map(|v| v * v).collect();
        let cuts = edge_cuts(&bounds, 4);
        let mut counts = [0usize; 17];
        for (c, w) in cuts.windows(2).enumerate() {
            for (i, count) in counts.iter_mut().enumerate().take(w[1]).skip(w[0]) {
                *count += 1;
                assert_eq!(owner(&cuts, i), c);
            }
        }
        assert!(counts.iter().all(|&k| k == 1));
    }
}
