//! Deterministic contiguous partitions for sharded kernel phases.
//!
//! `Machine::run_cores` requires each phase to respect the partition
//! contract: bytes written by one core must not be accessed by any other
//! core in the same phase. The kernels therefore split their vertex (or
//! destination) spaces into **contiguous** per-core ranges, which keeps
//! ownership checks trivial (a range comparison), keeps every per-core
//! stream sequential (the block fast path stays effective), and — because
//! the split depends only on the input sizes — makes the partition itself
//! deterministic, a prerequisite for the engine's run-to-run determinism.
//!
//! Two splitters cover the kernels' needs:
//!
//! * [`even_cuts`] — equal element counts; used for property-array sweeps
//!   (damping steps, accumulator ownership) where work is uniform per
//!   element.
//! * [`edge_cuts`] — equal *edge* counts derived from a CSR row-bounds
//!   prefix array; used for traversal phases where per-vertex work follows
//!   the (skewed) degree distribution.
//!
//! All functions return `cores + 1` cut points; core `c` owns
//! `cuts[c]..cuts[c + 1]`. Ranges may be empty (more cores than work) but
//! always concatenate to `0..n` in core order.

/// Splits `0..n` into `cores` contiguous ranges of near-equal length.
///
/// # Panics
///
/// Panics if `cores == 0`.
pub fn even_cuts(n: usize, cores: usize) -> Vec<usize> {
    assert!(cores >= 1, "core count must be positive");
    (0..=cores).map(|c| n * c / cores).collect()
}

/// Splits the vertex range of a CSR prefix array `bounds` (length
/// `n + 1`, monotone) into `cores` contiguous ranges of near-equal
/// **edge** count: each cut lands on the first vertex at or past the next
/// `total_edges / cores` quantile.
///
/// # Panics
///
/// Panics if `cores == 0` or `bounds` is empty.
pub fn edge_cuts(bounds: &[u64], cores: usize) -> Vec<usize> {
    assert!(cores >= 1, "core count must be positive");
    assert!(!bounds.is_empty(), "bounds must hold at least one entry");
    let n = bounds.len() - 1;
    let total = bounds[n] - bounds[0];
    let mut cuts = Vec::with_capacity(cores + 1);
    cuts.push(0usize);
    for c in 1..cores {
        // The quantile product can exceed u64 for edge counts near
        // u64::MAX / cores, so widen before multiplying.
        let target = bounds[0] + (u128::from(total) * c as u128 / cores as u128) as u64;
        let cut = bounds.partition_point(|&b| b < target).min(n);
        let prev = *cuts.last().expect("cuts is non-empty");
        cuts.push(cut.max(prev));
    }
    cuts.push(n);
    cuts
}

/// The core owning index `i` under the partition `cuts` (the unique `c`
/// with `cuts[c] <= i < cuts[c + 1]`, skipping empty ranges).
///
/// # Panics
///
/// Panics in every build profile when `i` falls outside the partitioned
/// range: a silently misrouted index would be folded by the wrong core,
/// corrupting the deterministic merge with no diagnostic, so the check
/// must survive release builds.
pub fn owner(cuts: &[usize], i: usize) -> usize {
    assert!(cuts.len() >= 2, "partition needs at least one range");
    assert!(
        i < *cuts.last().expect("cuts is non-empty"),
        "index {i} outside partition"
    );
    cuts.partition_point(|&c| c <= i).saturating_sub(1)
}

/// Slices a **sorted** frontier along the vertex partition `cuts`:
/// returns `cuts.len()` positions into `frontier` such that core `c` owns
/// the frontier slice `out[c]..out[c + 1]`.
///
/// Because the partition ranges are contiguous and the frontier is sorted
/// ascending, each core's share of the frontier is itself contiguous —
/// the sharded traversal kernels rely on this to hand every core a plain
/// subslice instead of a filtered copy.
///
/// # Panics
///
/// Panics if `frontier` is not sorted in ascending order.
pub fn frontier_cuts(cuts: &[usize], frontier: &[u32]) -> Vec<usize> {
    assert!(
        frontier.windows(2).all(|w| w[0] <= w[1]),
        "frontier must be sorted for contiguous owner slices"
    );
    cuts.iter()
        .map(|&c| frontier.partition_point(|&v| (v as usize) < c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_cuts_cover_and_balance() {
        let cuts = even_cuts(10, 4);
        assert_eq!(cuts.first(), Some(&0));
        assert_eq!(cuts.last(), Some(&10));
        for w in cuts.windows(2) {
            assert!(w[0] <= w[1]);
            assert!(w[1] - w[0] <= 3);
        }
    }

    #[test]
    fn even_cuts_with_more_cores_than_items() {
        let cuts = even_cuts(2, 4);
        assert_eq!(cuts, vec![0, 0, 1, 1, 2]);
    }

    #[test]
    fn edge_cuts_balance_by_degree() {
        // Vertex 0 holds 90 of 100 edges: it gets its own range and the
        // remaining vertices split the tail.
        let bounds = [0u64, 90, 92, 94, 96, 98, 100];
        let cuts = edge_cuts(&bounds, 2);
        assert_eq!(cuts.first(), Some(&0));
        assert_eq!(cuts.last(), Some(&6));
        assert_eq!(cuts[1], 1, "the hub alone exceeds the per-core quota");
    }

    #[test]
    fn edge_cuts_handle_empty_graph() {
        let bounds = [0u64, 0, 0, 0];
        let cuts = edge_cuts(&bounds, 3);
        assert_eq!(cuts.first(), Some(&0));
        assert_eq!(cuts.last(), Some(&3));
        for w in cuts.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn owner_is_consistent_with_cuts() {
        let cuts = vec![0, 3, 3, 7, 10];
        for i in 0..10 {
            let c = owner(&cuts, i);
            assert!(cuts[c] <= i && i < cuts[c + 1], "index {i} -> core {c}");
        }
    }

    #[test]
    fn edge_cuts_survive_near_max_edge_counts() {
        // total * c used to overflow u64 before the divide; with u128
        // quantile math the hub vertex still takes the first range and the
        // remaining cuts stay monotone.
        let bounds = [0u64, u64::MAX / 2, u64::MAX - 1];
        let cuts = edge_cuts(&bounds, 3);
        assert_eq!(cuts, vec![0, 1, 2, 2]);
    }

    #[test]
    #[should_panic(expected = "outside partition")]
    fn owner_rejects_out_of_range_index_in_all_profiles() {
        // Must panic even in release builds: silently attributing an
        // out-of-range index to the last core corrupts the merge.
        let cuts = vec![0, 3, 7];
        let _ = owner(&cuts, 7);
    }

    #[test]
    fn frontier_cuts_give_contiguous_owner_slices() {
        let cuts = vec![0, 3, 3, 7, 10];
        let frontier = vec![0u32, 2, 4, 5, 6, 9];
        let slices = frontier_cuts(&cuts, &frontier);
        assert_eq!(slices, vec![0, 2, 2, 5, 6]);
        for (c, w) in slices.windows(2).enumerate() {
            for &v in &frontier[w[0]..w[1]] {
                assert_eq!(owner(&cuts, v as usize), c);
            }
        }
    }

    #[test]
    fn frontier_cuts_handle_empty_frontier_and_idle_cores() {
        let cuts = vec![0, 5, 10];
        assert_eq!(frontier_cuts(&cuts, &[]), vec![0, 0, 0]);
        // More cores than frontier vertices: trailing cores own nothing.
        let cuts = vec![0, 1, 2, 3, 4];
        assert_eq!(frontier_cuts(&cuts, &[0]), vec![0, 1, 1, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn frontier_cuts_reject_unsorted_frontiers() {
        let _ = frontier_cuts(&[0, 5], &[3, 1]);
    }

    #[test]
    fn every_index_has_exactly_one_owner() {
        let bounds: Vec<u64> = (0..=17u64).map(|v| v * v).collect();
        let cuts = edge_cuts(&bounds, 4);
        let mut counts = [0usize; 17];
        for (c, w) in cuts.windows(2).enumerate() {
            for (i, count) in counts.iter_mut().enumerate().take(w[1]).skip(w[0]) {
                *count += 1;
                assert_eq!(owner(&cuts, i), c);
            }
        }
        assert!(counts.iter().all(|&k| k == 1));
    }
}
