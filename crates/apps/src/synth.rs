//! Synthetic access-pattern workloads.
//!
//! Graph kernels are the paper's evaluation vehicle, but controlled
//! synthetic patterns are what isolate the runtime's behaviour in tests,
//! examples, and microbenchmarks: a Zipf-distributed pointer chase, a
//! hot-window pattern with a configurable skew, and a phased variant whose
//! window moves. All run over a [`TrackedVec`] through the accounted path.

use atmem::{Atmem, Result};
use atmem_hms::TrackedVec;
use atmem_rng::SmallRng;

/// Approximate Zipf(θ) sampler over `0..n` via inverse-CDF on a power-law
/// envelope — standard for memory-trace synthesis (exact Zipf needs the
/// harmonic normaliser; the envelope keeps the same tail shape).
#[derive(Debug)]
pub struct Zipf {
    n: usize,
    exponent: f64,
    rng: SmallRng,
}

impl Zipf {
    /// Creates a sampler over `0..n` with skew `theta` in `(0, 1)`
    /// (higher = more skewed toward low indices).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `theta` is outside `(0, 1)`.
    pub fn new(n: usize, theta: f64, seed: u64) -> Self {
        assert!(n > 0, "domain must be non-empty");
        assert!(
            (0.0..1.0).contains(&theta) && theta > 0.0,
            "theta in (0, 1)"
        );
        Zipf {
            n,
            exponent: 1.0 / (1.0 - theta),
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Draws the next index.
    pub fn next_index(&mut self) -> usize {
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        // Inverse CDF of p(x) ~ x^(-theta) on [1, n].
        let x = (self.n as f64).powf(1.0 - 1.0 / self.exponent);
        let v = u.powf(self.exponent) * x.max(1.0);
        ((v as usize).min(self.n - 1) * 2654435761) % self.n
    }
}

/// A hot-window pattern: `hot_fraction` of accesses land uniformly in the
/// window, the rest uniformly over the whole array.
#[derive(Debug, Clone, Copy)]
pub struct HotWindow {
    /// First element of the window.
    pub start: usize,
    /// Window length in elements.
    pub len: usize,
    /// Fraction of accesses that stay inside the window, `[0, 1]`.
    pub hot_fraction: f64,
}

impl HotWindow {
    /// Runs `accesses` accounted reads over `v` with this pattern.
    ///
    /// # Panics
    ///
    /// Panics if the window exceeds the array.
    pub fn drive(&self, rt: &mut Atmem, v: &TrackedVec<u64>, accesses: usize, seed: u64) {
        assert!(self.start + self.len <= v.len(), "window exceeds array");
        assert!((0.0..=1.0).contains(&self.hot_fraction));
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..accesses {
            let idx = if rng.gen::<f64>() < self.hot_fraction {
                self.start + rng.gen_range(0..self.len)
            } else {
                rng.gen_range(0..v.len())
            };
            let _ = v.get(rt.machine_mut(), idx);
        }
    }
}

/// Drives `accesses` Zipf-distributed reads over `v`.
pub fn drive_zipf(
    rt: &mut Atmem,
    v: &TrackedVec<u64>,
    accesses: usize,
    theta: f64,
    seed: u64,
) -> Result<()> {
    let mut zipf = Zipf::new(v.len(), theta, seed);
    for _ in 0..accesses {
        let idx = zipf.next_index();
        let _ = v.get(rt.machine_mut(), idx);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use atmem::AtmemConfig;
    use atmem_hms::Platform;

    fn runtime() -> Atmem {
        Atmem::new(Platform::testing(), AtmemConfig::default()).unwrap()
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let mut z = Zipf::new(10_000, 0.8, 7);
        let mut counts = vec![0u32; 10];
        for _ in 0..100_000 {
            let i = z.next_index();
            assert!(i < 10_000);
            counts[i * 10 / 10_000] += 1;
        }
        let total: u32 = counts.iter().sum();
        let max = *counts.iter().max().unwrap();
        // Skew: some decile holds far more than its uniform share.
        assert!(
            max as f64 > 2.0 * total as f64 / 10.0,
            "no skew visible: {counts:?}"
        );
    }

    #[test]
    fn zipf_is_deterministic() {
        let collect = |seed| {
            let mut z = Zipf::new(1000, 0.7, seed);
            (0..100).map(|_| z.next_index()).collect::<Vec<_>>()
        };
        assert_eq!(collect(3), collect(3));
        assert_ne!(collect(3), collect(4));
    }

    #[test]
    fn hot_window_concentrates_samples() {
        let mut rt = runtime();
        let v = rt.malloc::<u64>(64 * 1024, "synth").unwrap();
        rt.profiling_start().unwrap();
        HotWindow {
            start: 8192,
            len: 4096,
            hot_fraction: 0.9,
        }
        .drive(&mut rt, &v, 100_000, 11);
        rt.profiling_stop().unwrap();
        let obj = rt.registry().iter().next().unwrap();
        let geometry = obj.geometry();
        let window_chunks =
            (8192 * 8 / geometry.chunk_bytes)..((8192 + 4096) * 8 / geometry.chunk_bytes + 1);
        let in_window: u64 = obj.samples()[window_chunks.clone()].iter().sum();
        let total = obj.total_samples();
        assert!(
            in_window as f64 > 0.5 * total as f64,
            "window {window_chunks:?} got {in_window}/{total}"
        );
    }

    #[test]
    fn drive_zipf_runs_through_the_accounted_path() {
        let mut rt = runtime();
        let v = rt.malloc::<u64>(16 * 1024, "zipf").unwrap();
        let t0 = rt.now();
        drive_zipf(&mut rt, &v, 10_000, 0.6, 3).unwrap();
        assert!(rt.now() > t0);
        assert_eq!(rt.machine().stats().reads, 10_000);
    }

    #[test]
    #[should_panic(expected = "window exceeds array")]
    fn oversized_window_rejected() {
        let mut rt = runtime();
        let v = rt.malloc::<u64>(100, "tiny").unwrap();
        HotWindow {
            start: 50,
            len: 100,
            hot_fraction: 0.5,
        }
        .drive(&mut rt, &v, 1, 0);
    }
}
