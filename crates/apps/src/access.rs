//! Mode-dispatched access helpers shared by the kernels.
//!
//! Every kernel drives its *sequential* streams (CSR arrays, property-array
//! fills, damping sweeps) through these helpers and keeps genuinely random
//! accesses (neighbour-indexed gathers and scatters) on the per-element
//! path. [`AccessMode::Bulk`] routes the streams through the simulator's
//! block fast path — one translation per page, one LLC probe per cache
//! line — which produces bit-identical simulated counters to
//! [`AccessMode::Scalar`]'s per-element loops (the fidelity guarantee of
//! `Machine::access_block`), at a fraction of the host cost.

use atmem_hms::{Machine, Scalar, TrackedVec};

/// How a kernel drives its sequential streams through the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AccessMode {
    /// One simulated access per element (the historical path).
    Scalar,
    /// Block-translated accesses through the bulk fast path.
    #[default]
    Bulk,
}

/// Accounted read of `out.len()` consecutive elements starting at `start`.
pub fn read_run<T: Scalar>(
    v: &TrackedVec<T>,
    m: &mut Machine,
    mode: AccessMode,
    start: usize,
    out: &mut [T],
) {
    if out.is_empty() {
        return;
    }
    match mode {
        AccessMode::Bulk => v.read_slice(m, start, out),
        AccessMode::Scalar => {
            for (k, slot) in out.iter_mut().enumerate() {
                *slot = v.get(m, start + k);
            }
        }
    }
}

/// Accounted write of `values` to consecutive elements starting at `start`.
pub fn write_run<T: Scalar>(
    v: &TrackedVec<T>,
    m: &mut Machine,
    mode: AccessMode,
    start: usize,
    values: &[T],
) {
    if values.is_empty() {
        return;
    }
    match mode {
        AccessMode::Bulk => v.write_slice(m, start, values),
        AccessMode::Scalar => {
            for (k, &value) in values.iter().enumerate() {
                v.set(m, start + k, value);
            }
        }
    }
}

/// Accounted indexed gather: reads element `indices[k]` into `out[k]`.
///
/// The accesses are genuinely random (neighbour-indexed), so both modes
/// perform one simulated access per element in index order; `Bulk` merely
/// routes them through the machine's gather loop, which hoists per-call
/// host overhead without touching the simulated composition.
pub fn gather_run<T: Scalar>(
    v: &TrackedVec<T>,
    m: &mut Machine,
    mode: AccessMode,
    indices: &[u32],
    out: &mut [T],
) {
    match mode {
        AccessMode::Bulk => v.gather(m, indices, out),
        AccessMode::Scalar => {
            for (&i, slot) in indices.iter().zip(out.iter_mut()) {
                *slot = v.get(m, i as usize);
            }
        }
    }
}

/// Accounted read-modify-write of element `i`, returning the old value.
///
/// Both modes perform exactly one read access followed by one write access
/// to the element; `Bulk` folds the pair into the machine's fused RMW path
/// (one translation, one storage round-trip) with identical counters.
pub fn update_at<T: Scalar>(
    v: &TrackedVec<T>,
    m: &mut Machine,
    mode: AccessMode,
    i: usize,
    f: impl FnOnce(T) -> T,
) -> T {
    match mode {
        AccessMode::Bulk => v.update(m, i, f),
        AccessMode::Scalar => {
            let old = v.get(m, i);
            v.set(m, i, f(old));
            old
        }
    }
}
