//! The kernel-facing access API: [`MemCtx`] bundles a memory port (the
//! machine, or one simulated core of it) with an [`AccessMode`] so kernels
//! take *one* context parameter instead of threading `(machine, mode)`
//! pairs through every call.
//!
//! Kernels drive their *sequential* streams (CSR arrays, property-array
//! fills, damping sweeps) through [`MemCtx::read_run`]/[`MemCtx::write_run`]
//! and their *irregular* phases (neighbour-indexed gathers, scatters and
//! scatter-updates) through [`MemCtx::gather`], [`MemCtx::scatter`] and
//! [`MemCtx::gather_update`]. [`AccessMode::Bulk`] routes both through the
//! simulator's batched fast paths — block translation for streams, the
//! window engine for irregular index windows — which produce bit-identical
//! simulated state to [`AccessMode::Scalar`]'s per-element loops (the
//! fidelity guarantee of `Machine::access_block` and
//! `Machine::access_window`), at a fraction of the host cost.
//!
//! ## Sharded execution
//!
//! `MemCtx` is generic over any [`MemPort`] — the concrete `Machine` (the
//! default) or a per-core `CoreHandle` inside a `Machine::run_cores` phase.
//! The [`par_cores`](MemCtx::par_cores) knob, set once by the runner or
//! harness via [`with_cores`](MemCtx::with_cores), tells sharded-capable
//! kernels how many simulated cores to partition each phase over. The
//! regular kernels split their streaming phases by contiguous range; the
//! traversal kernels (BFS, BFS-dir, SSSP, BC) partition each frontier
//! level, routing discovered vertices through per-owner queues
//! (`atmem_hms::OwnerQueues`) so every property write stays single-writer
//! and the next frontier is canonical for any core count. Kernels without
//! a sharded body simply ignore the knob and run scalar. At
//! `par_cores == 1` every kernel takes its historical scalar path, which
//! `Machine::run_cores` guarantees is bit-identical to the pre-sharding
//! engine.

use atmem_hms::{Machine, MemPort, Scalar, SweepPlan, TrackedVec, WindowPlan};

/// How a kernel's accesses are driven through the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AccessMode {
    /// One simulated access per element (the historical path).
    Scalar,
    /// Batched accesses through the bulk fast paths.
    #[default]
    Bulk,
    /// Like [`Bulk`](AccessMode::Bulk), but kernels that declare whole
    /// iteration spaces through the `*_planned` helpers additionally cache
    /// compiled per-tier run plans (`atmem_hms::plan`) and replay them while
    /// the mapping table is unchanged. Falls back to the window/block
    /// engines whenever per-access detail is observable (PEBS, tracing,
    /// fault plans) or a plan goes stale; simulated state is bit-identical
    /// to `Bulk` in every case.
    Planned,
}

/// Accessor context handed to kernels: a memory port plus the access mode
/// and simulated-core count, chosen once by the runner or harness. This
/// (with [`AccessMode`]) is the only mode surface — kernels have no mode
/// state of their own.
#[derive(Debug)]
pub struct MemCtx<'a, M: MemPort = Machine> {
    machine: &'a mut M,
    mode: AccessMode,
    par_cores: usize,
}

impl<'a, M: MemPort> MemCtx<'a, M> {
    /// Wraps `machine` with an explicit access mode.
    pub fn new(machine: &'a mut M, mode: AccessMode) -> Self {
        MemCtx {
            machine,
            mode,
            par_cores: 1,
        }
    }

    /// Wraps `machine` with the default [`AccessMode::Bulk`].
    pub fn bulk(machine: &'a mut M) -> Self {
        MemCtx::new(machine, AccessMode::Bulk)
    }

    /// Wraps `machine` with [`AccessMode::Scalar`].
    pub fn scalar(machine: &'a mut M) -> Self {
        MemCtx::new(machine, AccessMode::Scalar)
    }

    /// Sets the number of simulated cores sharded-capable kernels should
    /// partition their phases over (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0`.
    #[must_use]
    pub fn with_cores(mut self, cores: usize) -> Self {
        assert!(cores >= 1, "core count must be positive");
        self.par_cores = cores;
        self
    }

    /// The simulated-core count sharded kernels partition over (1 = the
    /// historical scalar path).
    pub fn par_cores(&self) -> usize {
        self.par_cores
    }

    /// The access mode this context dispatches on.
    pub fn mode(&self) -> AccessMode {
        self.mode
    }

    /// Escape hatch to the underlying memory port (e.g. for stats
    /// snapshots, unaccounted peeks mid-kernel, or `run_cores` phases).
    pub fn machine(&mut self) -> &mut M {
        self.machine
    }

    /// Accounted read of element `i` — identical in both modes.
    #[inline]
    pub fn get<T: Scalar>(&mut self, v: &TrackedVec<T>, i: usize) -> T {
        v.get(self.machine, i)
    }

    /// Accounted write of element `i` — identical in both modes.
    #[inline]
    pub fn set<T: Scalar>(&mut self, v: &TrackedVec<T>, i: usize, value: T) {
        v.set(self.machine, i, value);
    }

    /// Accounted read-modify-write of element `i`, returning the old value.
    ///
    /// Both modes perform exactly one read access followed by one write
    /// access to the element; `Bulk` folds the pair into the machine's
    /// fused RMW path (one translation, one storage round-trip) with
    /// identical counters.
    #[inline]
    pub fn update<T: Scalar>(&mut self, v: &TrackedVec<T>, i: usize, f: impl FnOnce(T) -> T) -> T {
        match self.mode {
            AccessMode::Bulk | AccessMode::Planned => v.update(self.machine, i, f),
            AccessMode::Scalar => {
                let old = v.get(self.machine, i);
                v.set(self.machine, i, f(old));
                old
            }
        }
    }

    /// Accounted read of `out.len()` consecutive elements starting at
    /// `start`.
    pub fn read_run<T: Scalar>(&mut self, v: &TrackedVec<T>, start: usize, out: &mut [T]) {
        if out.is_empty() {
            return;
        }
        match self.mode {
            AccessMode::Bulk | AccessMode::Planned => v.read_slice(self.machine, start, out),
            AccessMode::Scalar => {
                for (k, slot) in out.iter_mut().enumerate() {
                    *slot = v.get(self.machine, start + k);
                }
            }
        }
    }

    /// Accounted write of `values` to consecutive elements starting at
    /// `start`.
    pub fn write_run<T: Scalar>(&mut self, v: &TrackedVec<T>, start: usize, values: &[T]) {
        if values.is_empty() {
            return;
        }
        match self.mode {
            AccessMode::Bulk | AccessMode::Planned => v.write_slice(self.machine, start, values),
            AccessMode::Scalar => {
                for (k, &value) in values.iter().enumerate() {
                    v.set(self.machine, start + k, value);
                }
            }
        }
    }

    /// Accounted indexed gather: reads element `indices[k]` into `out[k]`,
    /// in window order.
    pub fn gather<T: Scalar>(&mut self, v: &TrackedVec<T>, indices: &[u32], out: &mut [T]) {
        if indices.is_empty() {
            return;
        }
        match self.mode {
            AccessMode::Bulk | AccessMode::Planned => v.gather(self.machine, indices, out),
            AccessMode::Scalar => {
                for (&i, slot) in indices.iter().zip(out.iter_mut()) {
                    *slot = v.get(self.machine, i as usize);
                }
            }
        }
    }

    /// Accounted indexed scatter: writes `values[k]` to element
    /// `indices[k]`, in window order (duplicates: last write wins).
    pub fn scatter<T: Scalar>(&mut self, v: &TrackedVec<T>, indices: &[u32], values: &[T]) {
        if indices.is_empty() {
            return;
        }
        match self.mode {
            AccessMode::Bulk | AccessMode::Planned => v.scatter(self.machine, indices, values),
            AccessMode::Scalar => {
                for (&i, &value) in indices.iter().zip(values.iter()) {
                    v.set(self.machine, i as usize, value);
                }
            }
        }
    }

    /// Accounted indexed scatter-update: replaces element `indices[k]` with
    /// `f(k, old)` for every `k` in window order. Duplicate indices observe
    /// earlier updates from the same window.
    pub fn gather_update<T: Scalar>(
        &mut self,
        v: &TrackedVec<T>,
        indices: &[u32],
        mut f: impl FnMut(usize, T) -> T,
    ) {
        if indices.is_empty() {
            return;
        }
        match self.mode {
            AccessMode::Bulk | AccessMode::Planned => v.gather_update(self.machine, indices, f),
            AccessMode::Scalar => {
                for (k, &i) in indices.iter().enumerate() {
                    let i = i as usize;
                    let old = v.get(self.machine, i);
                    v.set(self.machine, i, f(k, old));
                }
            }
        }
    }

    /// [`gather`](MemCtx::gather) with a caller-owned plan slot: in
    /// [`AccessMode::Planned`] the window is compiled once into `slot` and
    /// replayed while the mapping table and indices are unchanged; other
    /// modes ignore `slot` and take their usual path. Simulated state is
    /// bit-identical across all modes.
    pub fn gather_planned<T: Scalar>(
        &mut self,
        v: &TrackedVec<T>,
        slot: &mut Option<WindowPlan>,
        indices: &[u32],
        out: &mut [T],
    ) {
        if indices.is_empty() {
            return;
        }
        match self.mode {
            AccessMode::Planned => v.gather_planned(self.machine, slot, indices, out),
            _ => self.gather(v, indices, out),
        }
    }

    /// [`scatter`](MemCtx::scatter) with a caller-owned plan slot (see
    /// [`gather_planned`](MemCtx::gather_planned)).
    pub fn scatter_planned<T: Scalar>(
        &mut self,
        v: &TrackedVec<T>,
        slot: &mut Option<WindowPlan>,
        indices: &[u32],
        values: &[T],
    ) {
        if indices.is_empty() {
            return;
        }
        match self.mode {
            AccessMode::Planned => v.scatter_planned(self.machine, slot, indices, values),
            _ => self.scatter(v, indices, values),
        }
    }

    /// [`gather_update`](MemCtx::gather_update) with a caller-owned plan
    /// slot (see [`gather_planned`](MemCtx::gather_planned)).
    pub fn gather_update_planned<T: Scalar>(
        &mut self,
        v: &TrackedVec<T>,
        slot: &mut Option<WindowPlan>,
        indices: &[u32],
        f: impl FnMut(usize, T) -> T,
    ) {
        if indices.is_empty() {
            return;
        }
        match self.mode {
            AccessMode::Planned => v.gather_update_planned(self.machine, slot, indices, f),
            _ => self.gather_update(v, indices, f),
        }
    }

    /// [`read_run`](MemCtx::read_run) with a caller-owned sweep-plan slot
    /// (see [`gather_planned`](MemCtx::gather_planned)).
    pub fn read_run_planned<T: Scalar>(
        &mut self,
        v: &TrackedVec<T>,
        slot: &mut Option<SweepPlan>,
        start: usize,
        out: &mut [T],
    ) {
        if out.is_empty() {
            return;
        }
        match self.mode {
            AccessMode::Planned => v.read_slice_planned(self.machine, slot, start, out),
            _ => self.read_run(v, start, out),
        }
    }

    /// [`write_run`](MemCtx::write_run) with a caller-owned sweep-plan slot
    /// (see [`gather_planned`](MemCtx::gather_planned)).
    pub fn write_run_planned<T: Scalar>(
        &mut self,
        v: &TrackedVec<T>,
        slot: &mut Option<SweepPlan>,
        start: usize,
        values: &[T],
    ) {
        if values.is_empty() {
            return;
        }
        match self.mode {
            AccessMode::Planned => v.write_slice_planned(self.machine, slot, start, values),
            _ => self.write_run(v, start, values),
        }
    }
}
