//! PageRank (push-style power iteration).
//!
//! Each iteration pushes `rank(v) / deg(v)` along every out-edge into a
//! `next` accumulator, then applies the damping step. The scattered writes
//! into `next` indexed by neighbour id are the classic skewed access
//! pattern of PageRank on power-law graphs: high-degree vertices'
//! accumulator entries become the hot region.

use atmem::{Atmem, Result};
use atmem_hms::{SweepPlan, TrackedVec, WindowPlan};

use crate::access::MemCtx;
use crate::graph_data::HmsGraph;
use crate::kernel::Kernel;
use crate::par;

/// Damping factor (the classic 0.85).
pub const DAMPING: f64 = 0.85;

/// PageRank kernel state.
#[derive(Debug)]
pub struct PageRank {
    graph: HmsGraph,
    rank: TrackedVec<f64>,
    next: TrackedVec<f64>,
    iterations_run: usize,
    // Host-side staging buffers, reused across iterations.
    bounds: Vec<u64>,
    nbrs: Vec<u32>,
    ranks: Vec<f64>,
    shares: Vec<f64>,
    accs: Vec<f64>,
    zeros: Vec<f64>,
    // Compiled-plan slots (`AccessMode::Planned`). The push window's
    // indices are the whole neighbour array — identical every iteration —
    // so every stream and the push window compile once and replay until a
    // migration bumps the mapping generation. Sweep plans are
    // direction-agnostic, so `rank` and `next` each need one slot for both
    // their read and write sweeps.
    plan_bounds: Option<SweepPlan>,
    plan_nbrs: Option<SweepPlan>,
    plan_rank: Option<SweepPlan>,
    plan_next: Option<SweepPlan>,
    plan_push: Option<WindowPlan>,
}

impl PageRank {
    /// Allocates PageRank state over `graph`.
    ///
    /// # Errors
    ///
    /// Allocation failures for the rank accumulators.
    pub fn new(rt: &mut Atmem, graph: HmsGraph) -> Result<Self> {
        let n = graph.num_vertices();
        let e = graph.num_edges();
        let rank = rt.malloc::<f64>(n, "pr.rank")?;
        let next = rt.malloc::<f64>(n, "pr.next")?;
        Ok(PageRank {
            graph,
            rank,
            next,
            iterations_run: 0,
            bounds: vec![0; n + 1],
            nbrs: vec![0; e],
            ranks: vec![0.0; n],
            shares: vec![0.0; e],
            accs: vec![0.0; n],
            zeros: vec![0.0; n],
            plan_bounds: None,
            plan_nbrs: None,
            plan_rank: None,
            plan_next: None,
            plan_push: None,
        })
    }

    /// Number of power iterations run since the last reset.
    pub fn iterations_run(&self) -> usize {
        self.iterations_run
    }

    /// Copies the rank vector out of simulated memory (unaccounted).
    pub fn ranks(&self, rt: &mut Atmem) -> Vec<f64> {
        self.rank.to_vec(rt.machine_mut())
    }

    /// One power iteration partitioned over `ctx.par_cores()` simulated
    /// cores, in two `run_cores` phases.
    ///
    /// **Phase A** splits the *source* vertices into contiguous
    /// edge-balanced ranges: each core streams its row bounds, ranks and
    /// neighbour ids through its own accounted core, then buckets the
    /// resulting `(dest, share)` contributions by destination owner
    /// (host-side, unaccounted routing). **Phase B** gives each core a
    /// contiguous slice of the accumulator: it applies the buckets routed
    /// to it — source cores in core order, each bucket already in edge
    /// order, so every accumulator entry folds in **global edge order**
    /// (f64 addition is non-associative; this ordering is what keeps the
    /// output bit-identical to the scalar body for any core count) — and
    /// finishes with the damping sweep over the same owned slice.
    fn run_iteration_sharded(&mut self, ctx: &mut MemCtx) {
        let n = self.graph.num_vertices();
        let cores = ctx.par_cores();
        let mode = ctx.mode();
        let machine = ctx.machine();
        let host_bounds = self.graph.host_bounds(machine);
        let src_cuts = par::edge_cuts(&host_bounds, cores);
        let dst_cuts = par::even_cuts(n, cores);
        let graph = &self.graph;
        let rank = &self.rank;
        let next = &self.next;

        // Phase A: partitioned streams + host-side contribution routing.
        let buckets: Vec<Vec<(Vec<u32>, Vec<f64>)>> = machine.run_cores(cores, |c, h| {
            let mut ctx = MemCtx::new(h, mode);
            let (lo, hi) = (src_cuts[c], src_cuts[c + 1]);
            let mut out: Vec<(Vec<u32>, Vec<f64>)> = vec![(Vec::new(), Vec::new()); cores];
            if lo == hi {
                return out;
            }
            let mut b = vec![0u64; hi - lo + 1];
            graph.bounds_run(&mut ctx, lo, &mut b);
            let mut ranks = vec![0.0f64; hi - lo];
            ctx.read_run(rank, lo, &mut ranks);
            let (es, ee) = (b[0] as usize, b[hi - lo] as usize);
            let mut nbrs = vec![0u32; ee - es];
            graph.neighbor_run(&mut ctx, es as u64, &mut nbrs);
            for v in lo..hi {
                let (s, e) = (b[v - lo] as usize, b[v - lo + 1] as usize);
                if s == e {
                    continue;
                }
                let share = ranks[v - lo] / (e - s) as f64;
                for &u in &nbrs[s - es..e - es] {
                    let owner = par::owner(&dst_cuts, u as usize);
                    out[owner].0.push(u);
                    out[owner].1.push(share);
                }
            }
            out
        });

        // Phase B: owned accumulation in global edge order, then damping.
        let base = (1.0 - DAMPING) / n as f64;
        let buckets = &buckets;
        machine.run_cores(cores, |c, h| {
            let mut ctx = MemCtx::new(h, mode);
            for per_src in buckets {
                let (indices, shares) = &per_src[c];
                ctx.gather_update(next, indices, |k, acc| acc + shares[k]);
            }
            let (lo, hi) = (dst_cuts[c], dst_cuts[c + 1]);
            if lo == hi {
                return;
            }
            let mut accs = vec![0.0f64; hi - lo];
            ctx.read_run(next, lo, &mut accs);
            for acc in accs.iter_mut() {
                *acc = base + DAMPING * *acc;
            }
            ctx.write_run(rank, lo, &accs);
            ctx.write_run(next, lo, &vec![0.0f64; hi - lo]);
        });
        self.iterations_run += 1;
    }
}

impl Kernel for PageRank {
    fn name(&self) -> &'static str {
        "PR"
    }

    fn reset(&mut self, rt: &mut Atmem) {
        let n = self.graph.num_vertices() as f64;
        self.rank.fill(rt.machine_mut(), 1.0 / n);
        self.next.fill(rt.machine_mut(), 0.0);
        self.iterations_run = 0;
    }

    fn run_iteration(&mut self, ctx: &mut MemCtx) {
        if ctx.par_cores() > 1 {
            self.run_iteration_sharded(ctx);
            return;
        }
        let n = self.graph.num_vertices();
        // Stream phase: row bounds, current ranks, then all neighbour ids.
        self.graph
            .bounds_into_planned(ctx, &mut self.plan_bounds, &mut self.bounds);
        self.ranks.resize(n, 0.0);
        ctx.read_run_planned(&self.rank, &mut self.plan_rank, 0, &mut self.ranks);
        self.nbrs.resize(self.graph.num_edges(), 0);
        self.graph
            .neighbor_run_planned(ctx, &mut self.plan_nbrs, 0, &mut self.nbrs);
        // Push phase: the whole edge list is one scatter-update window over
        // the accumulator, in global edge order, with per-edge shares staged
        // host-side. Each window is bit-identical to its per-element scalar
        // loop, so the historical per-vertex window boundaries were
        // unobservable in simulated state — concatenating them changes
        // nothing — and the single window's indices never change across
        // iterations, which is what lets planned mode compile the push once.
        self.shares.resize(self.graph.num_edges(), 0.0);
        for v in 0..n {
            let (start, end) = (self.bounds[v] as usize, self.bounds[v + 1] as usize);
            if start == end {
                continue;
            }
            let share = self.ranks[v] / (end - start) as f64;
            self.shares[start..end].fill(share);
        }
        let shares = &self.shares;
        ctx.gather_update_planned(&self.next, &mut self.plan_push, &self.nbrs, |k, acc| {
            acc + shares[k]
        });
        // Damping + swap phase: three sequential streams.
        let base = (1.0 - DAMPING) / n as f64;
        self.accs.resize(n, 0.0);
        ctx.read_run_planned(&self.next, &mut self.plan_next, 0, &mut self.accs);
        for acc in self.accs.iter_mut() {
            *acc = base + DAMPING * *acc;
        }
        ctx.write_run_planned(&self.rank, &mut self.plan_rank, 0, &self.accs);
        self.zeros.resize(n, 0.0);
        ctx.write_run_planned(&self.next, &mut self.plan_next, 0, &self.zeros);
        self.iterations_run += 1;
    }

    fn checksum(&self, rt: &mut Atmem) -> f64 {
        let m = rt.machine_mut();
        (0..self.graph.num_vertices())
            .map(|v| self.rank.peek(m, v))
            .sum()
    }
}

/// Host-side reference implementation of one push iteration for validation.
pub fn reference_pagerank(csr: &atmem_graph::Csr, iterations: usize) -> Vec<f64> {
    let n = csr.num_vertices();
    let mut rank = vec![1.0 / n as f64; n];
    let mut next = vec![0.0; n];
    for _ in 0..iterations {
        for (v, rank_v) in rank.iter().enumerate() {
            let nbrs = csr.neighbors_of(v);
            if nbrs.is_empty() {
                continue;
            }
            let share = rank_v / nbrs.len() as f64;
            for &u in nbrs {
                next[u as usize] += share;
            }
        }
        let base = (1.0 - DAMPING) / n as f64;
        for v in 0..n {
            rank[v] = base + DAMPING * next[v];
            next[v] = 0.0;
        }
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use atmem::AtmemConfig;
    use atmem_graph::{Dataset, GraphBuilder};
    use atmem_hms::Platform;

    fn runtime() -> Atmem {
        Atmem::new(Platform::testing(), AtmemConfig::default()).unwrap()
    }

    #[test]
    fn matches_reference_after_three_iterations() {
        let csr = Dataset::Pokec.build_small(7); // 256 vertices
        let mut rt = runtime();
        let g = HmsGraph::load(&mut rt, &csr).unwrap();
        let mut pr = PageRank::new(&mut rt, g).unwrap();
        pr.reset(&mut rt);
        for _ in 0..3 {
            pr.run_iteration(&mut MemCtx::bulk(rt.machine_mut()));
        }
        let expect = reference_pagerank(&csr, 3);
        for (got, want) in pr.ranks(&mut rt).iter().zip(&expect) {
            assert!((got - want).abs() < 1e-12, "{got} vs {want}");
        }
        assert_eq!(pr.iterations_run(), 3);
    }

    #[test]
    fn rank_mass_stays_bounded() {
        let csr = GraphBuilder::new(3).edges([(0, 1), (1, 2), (2, 0)]).build();
        let mut rt = runtime();
        let g = HmsGraph::load(&mut rt, &csr).unwrap();
        let mut pr = PageRank::new(&mut rt, g).unwrap();
        pr.reset(&mut rt);
        for _ in 0..10 {
            pr.run_iteration(&mut MemCtx::bulk(rt.machine_mut()));
        }
        // On a cycle (no dangling mass), total rank is conserved at 1.
        assert!((pr.checksum(&mut rt) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hub_accumulates_rank() {
        // Star pointing at vertex 0.
        let csr = GraphBuilder::new(5)
            .edges([(1, 0), (2, 0), (3, 0), (4, 0), (0, 1)])
            .build();
        let mut rt = runtime();
        let g = HmsGraph::load(&mut rt, &csr).unwrap();
        let mut pr = PageRank::new(&mut rt, g).unwrap();
        pr.reset(&mut rt);
        for _ in 0..5 {
            pr.run_iteration(&mut MemCtx::bulk(rt.machine_mut()));
        }
        let ranks = pr.ranks(&mut rt);
        assert!(ranks[0] > ranks[2] * 2.0, "hub rank {:?}", ranks);
    }
}
