//! PageRank (push-style power iteration).
//!
//! Each iteration pushes `rank(v) / deg(v)` along every out-edge into a
//! `next` accumulator, then applies the damping step. The scattered writes
//! into `next` indexed by neighbour id are the classic skewed access
//! pattern of PageRank on power-law graphs: high-degree vertices'
//! accumulator entries become the hot region.

use atmem::{Atmem, Result};
use atmem_hms::TrackedVec;

use crate::access::MemCtx;
use crate::graph_data::HmsGraph;
use crate::kernel::Kernel;

/// Damping factor (the classic 0.85).
pub const DAMPING: f64 = 0.85;

/// PageRank kernel state.
#[derive(Debug)]
pub struct PageRank {
    graph: HmsGraph,
    rank: TrackedVec<f64>,
    next: TrackedVec<f64>,
    iterations_run: usize,
    // Host-side staging buffers, reused across iterations.
    bounds: Vec<u64>,
    nbrs: Vec<u32>,
    ranks: Vec<f64>,
    accs: Vec<f64>,
    zeros: Vec<f64>,
}

impl PageRank {
    /// Allocates PageRank state over `graph`.
    ///
    /// # Errors
    ///
    /// Allocation failures for the rank accumulators.
    pub fn new(rt: &mut Atmem, graph: HmsGraph) -> Result<Self> {
        let n = graph.num_vertices();
        let e = graph.num_edges();
        let rank = rt.malloc::<f64>(n, "pr.rank")?;
        let next = rt.malloc::<f64>(n, "pr.next")?;
        Ok(PageRank {
            graph,
            rank,
            next,
            iterations_run: 0,
            bounds: vec![0; n + 1],
            nbrs: vec![0; e],
            ranks: vec![0.0; n],
            accs: vec![0.0; n],
            zeros: vec![0.0; n],
        })
    }

    /// Number of power iterations run since the last reset.
    pub fn iterations_run(&self) -> usize {
        self.iterations_run
    }

    /// Copies the rank vector out of simulated memory (unaccounted).
    pub fn ranks(&self, rt: &mut Atmem) -> Vec<f64> {
        self.rank.to_vec(rt.machine_mut())
    }
}

impl Kernel for PageRank {
    fn name(&self) -> &'static str {
        "PR"
    }

    fn reset(&mut self, rt: &mut Atmem) {
        let n = self.graph.num_vertices() as f64;
        self.rank.fill(rt.machine_mut(), 1.0 / n);
        self.next.fill(rt.machine_mut(), 0.0);
        self.iterations_run = 0;
    }

    fn run_iteration(&mut self, ctx: &mut MemCtx) {
        let n = self.graph.num_vertices();
        // Stream phase: row bounds, current ranks, then all neighbour ids.
        self.graph.bounds_into(ctx, &mut self.bounds);
        self.ranks.resize(n, 0.0);
        ctx.read_run(&self.rank, 0, &mut self.ranks);
        self.nbrs.resize(self.graph.num_edges(), 0);
        self.graph.neighbor_run(ctx, 0, &mut self.nbrs);
        // Push phase: each vertex's out-edges form one scatter-update
        // window over the accumulator, in edge order — the window engine
        // batches it in bulk mode with bit-identical simulated state.
        for v in 0..n {
            let (start, end) = (self.bounds[v] as usize, self.bounds[v + 1] as usize);
            if start == end {
                continue;
            }
            let share = self.ranks[v] / (end - start) as f64;
            ctx.gather_update(&self.next, &self.nbrs[start..end], |_, acc| acc + share);
        }
        // Damping + swap phase: three sequential streams.
        let base = (1.0 - DAMPING) / n as f64;
        self.accs.resize(n, 0.0);
        ctx.read_run(&self.next, 0, &mut self.accs);
        for acc in self.accs.iter_mut() {
            *acc = base + DAMPING * *acc;
        }
        ctx.write_run(&self.rank, 0, &self.accs);
        self.zeros.resize(n, 0.0);
        ctx.write_run(&self.next, 0, &self.zeros);
        self.iterations_run += 1;
    }

    fn checksum(&self, rt: &mut Atmem) -> f64 {
        let m = rt.machine_mut();
        (0..self.graph.num_vertices())
            .map(|v| self.rank.peek(m, v))
            .sum()
    }
}

/// Host-side reference implementation of one push iteration for validation.
pub fn reference_pagerank(csr: &atmem_graph::Csr, iterations: usize) -> Vec<f64> {
    let n = csr.num_vertices();
    let mut rank = vec![1.0 / n as f64; n];
    let mut next = vec![0.0; n];
    for _ in 0..iterations {
        for (v, rank_v) in rank.iter().enumerate() {
            let nbrs = csr.neighbors_of(v);
            if nbrs.is_empty() {
                continue;
            }
            let share = rank_v / nbrs.len() as f64;
            for &u in nbrs {
                next[u as usize] += share;
            }
        }
        let base = (1.0 - DAMPING) / n as f64;
        for v in 0..n {
            rank[v] = base + DAMPING * next[v];
            next[v] = 0.0;
        }
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use atmem::AtmemConfig;
    use atmem_graph::{Dataset, GraphBuilder};
    use atmem_hms::Platform;

    fn runtime() -> Atmem {
        Atmem::new(Platform::testing(), AtmemConfig::default()).unwrap()
    }

    #[test]
    fn matches_reference_after_three_iterations() {
        let csr = Dataset::Pokec.build_small(7); // 256 vertices
        let mut rt = runtime();
        let g = HmsGraph::load(&mut rt, &csr).unwrap();
        let mut pr = PageRank::new(&mut rt, g).unwrap();
        pr.reset(&mut rt);
        for _ in 0..3 {
            pr.run_iteration(&mut MemCtx::bulk(rt.machine_mut()));
        }
        let expect = reference_pagerank(&csr, 3);
        for (got, want) in pr.ranks(&mut rt).iter().zip(&expect) {
            assert!((got - want).abs() < 1e-12, "{got} vs {want}");
        }
        assert_eq!(pr.iterations_run(), 3);
    }

    #[test]
    fn rank_mass_stays_bounded() {
        let csr = GraphBuilder::new(3).edges([(0, 1), (1, 2), (2, 0)]).build();
        let mut rt = runtime();
        let g = HmsGraph::load(&mut rt, &csr).unwrap();
        let mut pr = PageRank::new(&mut rt, g).unwrap();
        pr.reset(&mut rt);
        for _ in 0..10 {
            pr.run_iteration(&mut MemCtx::bulk(rt.machine_mut()));
        }
        // On a cycle (no dangling mass), total rank is conserved at 1.
        assert!((pr.checksum(&mut rt) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hub_accumulates_rank() {
        // Star pointing at vertex 0.
        let csr = GraphBuilder::new(5)
            .edges([(1, 0), (2, 0), (3, 0), (4, 0), (0, 1)])
            .build();
        let mut rt = runtime();
        let g = HmsGraph::load(&mut rt, &csr).unwrap();
        let mut pr = PageRank::new(&mut rt, g).unwrap();
        pr.reset(&mut rt);
        for _ in 0..5 {
            pr.run_iteration(&mut MemCtx::bulk(rt.machine_mut()));
        }
        let ranks = pr.ranks(&mut rt);
        assert!(ranks[0] > ranks[2] * 2.0, "hub rank {:?}", ranks);
    }
}
