//! Breadth-first search.
//!
//! Frontier-driven BFS over the HMS-resident CSR. The distance array and
//! every CSR access go through the accounted path; the frontier queues are
//! small, sequentially-scanned host buffers (on the real testbeds they are
//! cache-resident and never candidates for placement).

use atmem::{Atmem, Result};

use crate::access::MemCtx;
use crate::graph_data::HmsGraph;
use crate::kernel::Kernel;
use crate::par;
use atmem_hms::{merge_owner_queues, OwnerQueues, SweepPlan, TrackedVec, WindowPlan};

/// Distance value for unreached vertices.
pub const UNREACHED: u32 = u32::MAX;

/// BFS kernel state.
#[derive(Debug)]
pub struct Bfs {
    graph: HmsGraph,
    source: u32,
    dist: TrackedVec<u32>,
    /// Vertices reached by the last iteration (for assertions/reporting).
    reached: usize,
    // Compiled-plan slots (`AccessMode::Planned`), one per frontier level:
    // repeat traversals from the same source produce the same frontier at
    // every level, so each level's distance-gather and level-scatter
    // windows compile on the first traversal and replay on later ones.
    plan_init: Option<SweepPlan>,
    plan_gather: Vec<Option<WindowPlan>>,
    plan_scatter: Vec<Option<WindowPlan>>,
}

impl Bfs {
    /// Allocates BFS state over `graph`.
    ///
    /// # Errors
    ///
    /// Allocation failures for the distance array.
    pub fn new(rt: &mut Atmem, graph: HmsGraph, source: u32) -> Result<Self> {
        let dist = rt.malloc::<u32>(graph.num_vertices(), "bfs.dist")?;
        Ok(Bfs {
            graph,
            source,
            dist,
            reached: 0,
            plan_init: None,
            plan_gather: Vec::new(),
            plan_scatter: Vec::new(),
        })
    }

    /// The graph being traversed.
    pub fn graph(&self) -> &HmsGraph {
        &self.graph
    }

    /// Vertices reached by the last completed iteration.
    pub fn reached(&self) -> usize {
        self.reached
    }

    /// Copies the distance array out of simulated memory (unaccounted).
    pub fn distances(&self, rt: &mut Atmem) -> Vec<u32> {
        self.dist.to_vec(rt.machine_mut())
    }

    /// One full traversal partitioned over `ctx.par_cores()` simulated
    /// cores via deterministic level-synchronous frontier partitioning.
    ///
    /// The frontier is kept in **canonical ascending-vertex order**, so
    /// `par::frontier_cuts` hands each core a contiguous slice of it —
    /// core `c` owns the edge-balanced vertex range `cuts[c]..cuts[c+1]`.
    /// Each level runs two `run_cores` phases:
    ///
    /// * **Expand** (reads only): every core streams the adjacency runs of
    ///   its owned frontier slice, gathers the neighbour distances, and
    ///   routes each still-unreached neighbour into the per-owner queue of
    ///   the core owning its distance entry.
    /// * **Settle** (owner-only writes): the merged queues are replayed by
    ///   their owners in `(source core, emission)` order; first touch wins,
    ///   the owner scatters `level` into its discovered vertices and sorts
    ///   its list. Per-owner sorted lists concatenate — owner ranges are
    ///   contiguous and ascending — into the next globally-sorted frontier.
    ///
    /// The level a vertex is discovered at is independent of expansion
    /// order, and the canonical frontier order is a pure function of the
    /// discovered *set*, so distances (and the next frontier) are
    /// bit-identical for every core count and to the scalar body.
    fn run_iteration_sharded(&mut self, ctx: &mut MemCtx) {
        let n = self.graph.num_vertices();
        let cores = ctx.par_cores();
        let mode = ctx.mode();
        let machine = ctx.machine();
        let host_bounds = self.graph.host_bounds(machine);
        let cuts = par::edge_cuts(&host_bounds, cores);
        let fill_cuts = par::even_cuts(n, cores);
        let graph = &self.graph;
        let dist = &self.dist;
        let src = self.source as usize;

        // Accounted re-init, partitioned: each core rewrites its slice of
        // the distance array and the source's owner seeds it.
        machine.run_cores(cores, |c, h| {
            let mut cctx = MemCtx::new(h, mode);
            let (lo, hi) = (fill_cuts[c], fill_cuts[c + 1]);
            cctx.write_run(dist, lo, &vec![UNREACHED; hi - lo]);
            if (lo..hi).contains(&src) {
                cctx.set(dist, src, 0);
            }
        });

        let mut frontier = vec![self.source];
        let mut level = 0u32;
        let mut reached = 1usize;
        while !frontier.is_empty() {
            level += 1;
            let slices = par::frontier_cuts(&cuts, &frontier);
            let cur = &frontier;
            // Expand: owned frontier slices -> owner-routed candidates.
            let per_core = machine.run_cores(cores, |c, h| {
                let mut cctx = MemCtx::new(h, mode);
                let mut queues = OwnerQueues::new(cores);
                let mut nbrs: Vec<u32> = Vec::new();
                let mut dbuf: Vec<u32> = Vec::new();
                for &v in &cur[slices[c]..slices[c + 1]] {
                    let (start, end) = graph.edge_bounds(&mut cctx, v as usize);
                    nbrs.resize((end - start) as usize, 0);
                    graph.neighbor_run(&mut cctx, start, &mut nbrs);
                    dbuf.resize(nbrs.len(), 0);
                    cctx.gather(dist, &nbrs, &mut dbuf);
                    for (&u, &du) in nbrs.iter().zip(&dbuf) {
                        if du == UNREACHED {
                            queues.push(par::owner(&cuts, u as usize), u);
                        }
                    }
                }
                queues
            });
            let routed = merge_owner_queues(per_core);
            let routed = &routed;
            // Settle: owners dedup first-touch, write the level, and emit
            // their slice of the next frontier in canonical order.
            let discovered = machine.run_cores(cores, |c, h| {
                let mut cctx = MemCtx::new(h, mode);
                let mut seen = std::collections::HashSet::new();
                let mut new: Vec<u32> = Vec::new();
                for &u in &routed[c] {
                    if seen.insert(u) {
                        new.push(u);
                    }
                }
                cctx.scatter(dist, &new, &vec![level; new.len()]);
                new.sort_unstable();
                new
            });
            frontier = discovered.concat();
            reached += frontier.len();
        }
        self.reached = reached;
    }
}

impl Kernel for Bfs {
    fn name(&self) -> &'static str {
        "BFS"
    }

    fn reset(&mut self, rt: &mut Atmem) {
        self.dist.fill(rt.machine_mut(), UNREACHED);
        self.reached = 0;
    }

    fn run_iteration(&mut self, ctx: &mut MemCtx) {
        if ctx.par_cores() > 1 {
            self.run_iteration_sharded(ctx);
            return;
        }
        // Per-iteration re-init through the accounted path (the same
        // policy as BC: every traversal kernel rewrites its state each
        // source, so repeat-iteration timings are comparable).
        let n = self.graph.num_vertices();
        ctx.write_run_planned(&self.dist, &mut self.plan_init, 0, &vec![UNREACHED; n]);
        let mut frontier = vec![self.source];
        ctx.set(&self.dist, self.source as usize, 0);
        let mut level = 0u32;
        let mut reached = 1usize;
        let mut nbrs: Vec<u32> = Vec::new();
        let mut all_nbrs: Vec<u32> = Vec::new();
        let mut dbuf: Vec<u32> = Vec::new();
        // Level-synchronous expansion (the scalar mirror of the sharded
        // expand/settle split): stream the level's adjacency runs, check
        // all candidate distances in one gather window, dedup first-touch
        // host-side in first-occurrence order, then write the level to the
        // discovered set in one scatter window. A vertex's discovery level
        // is independent of expansion order, so distances and the next
        // frontier are identical to the interleaved per-edge loop.
        while !frontier.is_empty() {
            level += 1;
            let lvl = level as usize - 1;
            if self.plan_gather.len() <= lvl {
                self.plan_gather.push(None);
                self.plan_scatter.push(None);
            }
            all_nbrs.clear();
            for &v in &frontier {
                let (start, end) = self.graph.edge_bounds(ctx, v as usize);
                nbrs.resize((end - start) as usize, 0);
                self.graph.neighbor_run(ctx, start, &mut nbrs);
                all_nbrs.extend_from_slice(&nbrs);
            }
            dbuf.resize(all_nbrs.len(), 0);
            ctx.gather_planned(&self.dist, &mut self.plan_gather[lvl], &all_nbrs, &mut dbuf);
            let mut seen = std::collections::HashSet::new();
            let mut next = Vec::new();
            for (&u, &du) in all_nbrs.iter().zip(&dbuf) {
                if du == UNREACHED && seen.insert(u) {
                    next.push(u);
                }
            }
            ctx.scatter_planned(
                &self.dist,
                &mut self.plan_scatter[lvl],
                &next,
                &vec![level; next.len()],
            );
            reached += next.len();
            frontier = next;
        }
        self.reached = reached;
    }

    fn checksum(&self, rt: &mut Atmem) -> f64 {
        let m = rt.machine_mut();
        let mut sum = 0.0;
        for v in 0..self.graph.num_vertices() {
            let d = self.dist.peek(m, v);
            if d != UNREACHED {
                sum += d as f64;
            }
        }
        sum
    }
}

/// Host-side reference BFS for validation.
pub fn reference_bfs(csr: &atmem_graph::Csr, source: u32) -> Vec<u32> {
    let mut dist = vec![UNREACHED; csr.num_vertices()];
    dist[source as usize] = 0;
    let mut frontier = vec![source];
    let mut level = 0;
    while !frontier.is_empty() {
        level += 1;
        let mut next = Vec::new();
        for &v in &frontier {
            for &u in csr.neighbors_of(v as usize) {
                if dist[u as usize] == UNREACHED {
                    dist[u as usize] = level;
                    next.push(u);
                }
            }
        }
        frontier = next;
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use atmem::AtmemConfig;
    use atmem_graph::{Dataset, GraphBuilder};
    use atmem_hms::Platform;

    fn runtime() -> Atmem {
        Atmem::new(Platform::testing(), AtmemConfig::default()).unwrap()
    }

    #[test]
    fn bfs_matches_reference_on_chain() {
        let csr = GraphBuilder::new(4).edges([(0, 1), (1, 2), (2, 3)]).build();
        let mut rt = runtime();
        let g = HmsGraph::load(&mut rt, &csr).unwrap();
        let mut bfs = Bfs::new(&mut rt, g, 0).unwrap();
        bfs.reset(&mut rt);
        bfs.run_iteration(&mut MemCtx::bulk(rt.machine_mut()));
        assert_eq!(bfs.distances(&mut rt), vec![0, 1, 2, 3]);
        assert_eq!(bfs.reached(), 4);
    }

    #[test]
    fn bfs_matches_reference_on_rmat() {
        let csr = Dataset::Pokec.build_small(6); // 512 vertices
        let mut rt = runtime();
        let g = HmsGraph::load(&mut rt, &csr).unwrap();
        let mut bfs = Bfs::new(&mut rt, g, 0).unwrap();
        bfs.reset(&mut rt);
        bfs.run_iteration(&mut MemCtx::bulk(rt.machine_mut()));
        assert_eq!(bfs.distances(&mut rt), reference_bfs(&csr, 0));
    }

    #[test]
    fn unreachable_vertices_stay_unreached() {
        let csr = GraphBuilder::new(3).edges([(0, 1)]).build();
        let mut rt = runtime();
        let g = HmsGraph::load(&mut rt, &csr).unwrap();
        let mut bfs = Bfs::new(&mut rt, g, 0).unwrap();
        bfs.reset(&mut rt);
        bfs.run_iteration(&mut MemCtx::bulk(rt.machine_mut()));
        assert_eq!(bfs.distances(&mut rt), vec![0, 1, UNREACHED]);
    }

    #[test]
    fn reset_makes_iterations_repeatable() {
        let csr = Dataset::Pokec.build_small(7);
        let mut rt = runtime();
        let g = HmsGraph::load(&mut rt, &csr).unwrap();
        let mut bfs = Bfs::new(&mut rt, g, 0).unwrap();
        bfs.reset(&mut rt);
        bfs.run_iteration(&mut MemCtx::bulk(rt.machine_mut()));
        let first = bfs.checksum(&mut rt);
        bfs.reset(&mut rt);
        bfs.run_iteration(&mut MemCtx::bulk(rt.machine_mut()));
        assert_eq!(bfs.checksum(&mut rt), first);
    }
}
