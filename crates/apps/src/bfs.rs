//! Breadth-first search.
//!
//! Frontier-driven BFS over the HMS-resident CSR. The distance array and
//! every CSR access go through the accounted path; the frontier queues are
//! small, sequentially-scanned host buffers (on the real testbeds they are
//! cache-resident and never candidates for placement).

use atmem::{Atmem, Result};

use crate::access::MemCtx;
use crate::graph_data::HmsGraph;
use crate::kernel::Kernel;
use atmem_hms::TrackedVec;

/// Distance value for unreached vertices.
pub const UNREACHED: u32 = u32::MAX;

/// BFS kernel state.
#[derive(Debug)]
pub struct Bfs {
    graph: HmsGraph,
    source: u32,
    dist: TrackedVec<u32>,
    /// Vertices reached by the last iteration (for assertions/reporting).
    reached: usize,
}

impl Bfs {
    /// Allocates BFS state over `graph`.
    ///
    /// # Errors
    ///
    /// Allocation failures for the distance array.
    pub fn new(rt: &mut Atmem, graph: HmsGraph, source: u32) -> Result<Self> {
        let dist = rt.malloc::<u32>(graph.num_vertices(), "bfs.dist")?;
        Ok(Bfs {
            graph,
            source,
            dist,
            reached: 0,
        })
    }

    /// The graph being traversed.
    pub fn graph(&self) -> &HmsGraph {
        &self.graph
    }

    /// Vertices reached by the last completed iteration.
    pub fn reached(&self) -> usize {
        self.reached
    }

    /// Copies the distance array out of simulated memory (unaccounted).
    pub fn distances(&self, rt: &mut Atmem) -> Vec<u32> {
        self.dist.to_vec(rt.machine_mut())
    }
}

impl Kernel for Bfs {
    fn name(&self) -> &'static str {
        "BFS"
    }

    fn reset(&mut self, rt: &mut Atmem) {
        self.dist.fill(rt.machine_mut(), UNREACHED);
        self.reached = 0;
    }

    fn run_iteration(&mut self, ctx: &mut MemCtx) {
        let mut frontier = vec![self.source];
        ctx.set(&self.dist, self.source as usize, 0);
        let mut level = 0u32;
        let mut reached = 1usize;
        let mut nbrs: Vec<u32> = Vec::new();
        while !frontier.is_empty() {
            level += 1;
            let mut next = Vec::new();
            for &v in &frontier {
                let (start, end) = self.graph.edge_bounds(ctx, v as usize);
                // The adjacency list is a sequential run; the distance
                // checks it drives are data-dependent (a write only happens
                // on first touch) and stay per-element.
                nbrs.resize((end - start) as usize, 0);
                self.graph.neighbor_run(ctx, start, &mut nbrs);
                for &u in &nbrs {
                    if ctx.get(&self.dist, u as usize) == UNREACHED {
                        ctx.set(&self.dist, u as usize, level);
                        next.push(u);
                        reached += 1;
                    }
                }
            }
            frontier = next;
        }
        self.reached = reached;
    }

    fn checksum(&self, rt: &mut Atmem) -> f64 {
        let m = rt.machine_mut();
        let mut sum = 0.0;
        for v in 0..self.graph.num_vertices() {
            let d = self.dist.peek(m, v);
            if d != UNREACHED {
                sum += d as f64;
            }
        }
        sum
    }
}

/// Host-side reference BFS for validation.
pub fn reference_bfs(csr: &atmem_graph::Csr, source: u32) -> Vec<u32> {
    let mut dist = vec![UNREACHED; csr.num_vertices()];
    dist[source as usize] = 0;
    let mut frontier = vec![source];
    let mut level = 0;
    while !frontier.is_empty() {
        level += 1;
        let mut next = Vec::new();
        for &v in &frontier {
            for &u in csr.neighbors_of(v as usize) {
                if dist[u as usize] == UNREACHED {
                    dist[u as usize] = level;
                    next.push(u);
                }
            }
        }
        frontier = next;
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use atmem::AtmemConfig;
    use atmem_graph::{Dataset, GraphBuilder};
    use atmem_hms::Platform;

    fn runtime() -> Atmem {
        Atmem::new(Platform::testing(), AtmemConfig::default()).unwrap()
    }

    #[test]
    fn bfs_matches_reference_on_chain() {
        let csr = GraphBuilder::new(4).edges([(0, 1), (1, 2), (2, 3)]).build();
        let mut rt = runtime();
        let g = HmsGraph::load(&mut rt, &csr).unwrap();
        let mut bfs = Bfs::new(&mut rt, g, 0).unwrap();
        bfs.reset(&mut rt);
        bfs.run_iteration(&mut MemCtx::bulk(rt.machine_mut()));
        assert_eq!(bfs.distances(&mut rt), vec![0, 1, 2, 3]);
        assert_eq!(bfs.reached(), 4);
    }

    #[test]
    fn bfs_matches_reference_on_rmat() {
        let csr = Dataset::Pokec.build_small(6); // 512 vertices
        let mut rt = runtime();
        let g = HmsGraph::load(&mut rt, &csr).unwrap();
        let mut bfs = Bfs::new(&mut rt, g, 0).unwrap();
        bfs.reset(&mut rt);
        bfs.run_iteration(&mut MemCtx::bulk(rt.machine_mut()));
        assert_eq!(bfs.distances(&mut rt), reference_bfs(&csr, 0));
    }

    #[test]
    fn unreachable_vertices_stay_unreached() {
        let csr = GraphBuilder::new(3).edges([(0, 1)]).build();
        let mut rt = runtime();
        let g = HmsGraph::load(&mut rt, &csr).unwrap();
        let mut bfs = Bfs::new(&mut rt, g, 0).unwrap();
        bfs.reset(&mut rt);
        bfs.run_iteration(&mut MemCtx::bulk(rt.machine_mut()));
        assert_eq!(bfs.distances(&mut rt), vec![0, 1, UNREACHED]);
    }

    #[test]
    fn reset_makes_iterations_repeatable() {
        let csr = Dataset::Pokec.build_small(7);
        let mut rt = runtime();
        let g = HmsGraph::load(&mut rt, &csr).unwrap();
        let mut bfs = Bfs::new(&mut rt, g, 0).unwrap();
        bfs.reset(&mut rt);
        bfs.run_iteration(&mut MemCtx::bulk(rt.machine_mut()));
        let first = bfs.checksum(&mut rt);
        bfs.reset(&mut rt);
        bfs.run_iteration(&mut MemCtx::bulk(rt.machine_mut()));
        assert_eq!(bfs.checksum(&mut rt), first);
    }
}
