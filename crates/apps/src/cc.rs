//! Connected components (label propagation).
//!
//! Each iteration performs one full pass over every edge, lowering each
//! endpoint's label to the minimum of the pair (treating edges as
//! undirected for connectivity). Repeated iterations converge to the
//! connected-component labelling; the harness times single passes.

use atmem::{Atmem, Result};
use atmem_hms::TrackedVec;

use crate::access::MemCtx;
use crate::graph_data::HmsGraph;
use crate::kernel::Kernel;
use crate::par;

/// CC kernel state.
#[derive(Debug)]
pub struct Cc {
    graph: HmsGraph,
    labels: TrackedVec<u32>,
    changed_last: u64,
}

impl Cc {
    /// Allocates CC state over `graph`.
    ///
    /// # Errors
    ///
    /// Allocation failures for the label array.
    pub fn new(rt: &mut Atmem, graph: HmsGraph) -> Result<Self> {
        let labels = rt.malloc::<u32>(graph.num_vertices(), "cc.labels")?;
        Ok(Cc {
            graph,
            labels,
            changed_last: 0,
        })
    }

    /// Label updates performed by the last iteration (0 = converged).
    pub fn changed_last(&self) -> u64 {
        self.changed_last
    }

    /// Runs passes until convergence; returns the number of passes.
    pub fn run_to_convergence(&mut self, ctx: &mut MemCtx, max_passes: usize) -> usize {
        for pass in 1..=max_passes {
            self.run_iteration(ctx);
            if self.changed_last == 0 {
                return pass;
            }
        }
        max_passes
    }

    /// Copies the label array out of simulated memory (unaccounted).
    pub fn labels(&self, rt: &mut Atmem) -> Vec<u32> {
        self.labels.to_vec(rt.machine_mut())
    }

    /// The propagation phase over pre-staged bounds/neighbour data. Label
    /// lowering is Gauss–Seidel: every vertex observes lowerings made
    /// earlier *in the same pass*, a sequential dependency chain that
    /// admits no deterministic partition — so this phase always runs on
    /// one core and both the scalar and sharded paths share it verbatim
    /// (which is what keeps the output bit-identical across core counts).
    fn propagate(&mut self, ctx: &mut MemCtx, bounds: &[u64], nbrs: &[u32]) {
        let mut changed = 0u64;
        let mut lbuf: Vec<u32> = Vec::new();
        let mut widx: Vec<u32> = Vec::new();
        let mut wvals: Vec<u32> = Vec::new();
        let mut overlay: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        for v in 0..self.graph.num_vertices() {
            let (start, end) = (bounds[v] as usize, bounds[v + 1] as usize);
            if start == end {
                continue;
            }
            let window = &nbrs[start..end];
            let mut lv = ctx.get(&self.labels, v);
            lbuf.resize(window.len(), 0);
            ctx.gather(&self.labels, window, &mut lbuf);
            widx.clear();
            wvals.clear();
            overlay.clear();
            for (&u, &read) in window.iter().zip(&lbuf) {
                let lu = overlay.get(&u).copied().unwrap_or(read);
                if lu < lv {
                    lv = lu;
                    changed += 1;
                } else if lv < lu {
                    overlay.insert(u, lv);
                    widx.push(u);
                    wvals.push(lv);
                    changed += 1;
                }
            }
            ctx.scatter(&self.labels, &widx, &wvals);
            ctx.set(&self.labels, v, lv);
        }
        self.changed_last = changed;
    }

    /// One pass with the CSR streams partitioned over `ctx.par_cores()`
    /// simulated cores (each core reads its edge-balanced slice of the
    /// bounds and neighbour arrays through its own accounted core), then
    /// the sequential [`propagate`](Cc::propagate) phase on the resident
    /// core over the reassembled host staging.
    fn run_iteration_sharded(&mut self, ctx: &mut MemCtx) {
        let cores = ctx.par_cores();
        let mode = ctx.mode();
        let machine = ctx.machine();
        let host_bounds = self.graph.host_bounds(machine);
        let cuts = par::edge_cuts(&host_bounds, cores);
        let graph = &self.graph;
        let slices: Vec<(Vec<u64>, Vec<u32>)> = machine.run_cores(cores, |c, h| {
            let mut ctx = MemCtx::new(h, mode);
            let (lo, hi) = (cuts[c], cuts[c + 1]);
            if lo == hi {
                return (Vec::new(), Vec::new());
            }
            let mut b = vec![0u64; hi - lo + 1];
            graph.bounds_run(&mut ctx, lo, &mut b);
            let (es, ee) = (b[0] as usize, b[hi - lo] as usize);
            let mut nbrs = vec![0u32; ee - es];
            graph.neighbor_run(&mut ctx, es as u64, &mut nbrs);
            (b, nbrs)
        });
        let mut bounds = vec![0u64; self.graph.num_vertices() + 1];
        let mut nbrs = Vec::with_capacity(self.graph.num_edges());
        for (c, (b, ns)) in slices.into_iter().enumerate() {
            if !b.is_empty() {
                bounds[cuts[c]..=cuts[c + 1]].copy_from_slice(&b);
            }
            nbrs.extend_from_slice(&ns);
        }
        self.propagate(ctx, &bounds, &nbrs);
    }
}

impl Kernel for Cc {
    fn name(&self) -> &'static str {
        "CC"
    }

    fn reset(&mut self, rt: &mut Atmem) {
        let m = rt.machine_mut();
        for v in 0..self.graph.num_vertices() {
            self.labels.poke(m, v, v as u32);
        }
        self.changed_last = 0;
    }

    fn run_iteration(&mut self, ctx: &mut MemCtx) {
        if ctx.par_cores() > 1 {
            self.run_iteration_sharded(ctx);
            return;
        }
        // Stream phase: row bounds and neighbour ids.
        let bounds = self.graph.bounds(ctx);
        let mut nbrs = vec![0u32; self.graph.num_edges()];
        self.graph.neighbor_run(ctx, 0, &mut nbrs);
        // Propagation phase: each vertex's neighbour labels are gathered as
        // one window, the min/lower decisions replay host-side (an overlay
        // map makes duplicate neighbours observe in-window lowerings), and
        // the accepted lowerings scatter back in decision order — one read
        // per edge and one write per lowering, like the per-element loop.
        self.propagate(ctx, &bounds, &nbrs);
    }

    fn checksum(&self, rt: &mut Atmem) -> f64 {
        let m = rt.machine_mut();
        (0..self.graph.num_vertices())
            .map(|v| self.labels.peek(m, v) as f64)
            .sum()
    }
}

/// Host-side reference components via union-find (ignoring direction).
pub fn reference_components(csr: &atmem_graph::Csr) -> Vec<u32> {
    let n = csr.num_vertices();
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], v: u32) -> u32 {
        let mut v = v;
        while parent[v as usize] != v {
            parent[v as usize] = parent[parent[v as usize] as usize];
            v = parent[v as usize];
        }
        v
    }
    for (u, v) in csr.edges() {
        let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
        if ru != rv {
            parent[ru.max(rv) as usize] = ru.min(rv);
        }
    }
    (0..n as u32).map(|v| find(&mut parent, v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use atmem::AtmemConfig;
    use atmem_graph::{Dataset, GraphBuilder};
    use atmem_hms::Platform;

    fn runtime() -> Atmem {
        Atmem::new(Platform::testing(), AtmemConfig::default()).unwrap()
    }

    #[test]
    fn two_components_get_two_labels() {
        let csr = GraphBuilder::new(5).edges([(0, 1), (1, 2), (3, 4)]).build();
        let mut rt = runtime();
        let g = HmsGraph::load(&mut rt, &csr).unwrap();
        let mut cc = Cc::new(&mut rt, g).unwrap();
        cc.reset(&mut rt);
        let passes = cc.run_to_convergence(&mut MemCtx::bulk(rt.machine_mut()), 50);
        assert!(passes < 50);
        let labels = cc.labels(&mut rt);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
    }

    #[test]
    fn matches_union_find_on_rmat() {
        let csr = Dataset::Friendster.build_small(10); // 512 vertices
        let mut rt = runtime();
        let g = HmsGraph::load(&mut rt, &csr).unwrap();
        let mut cc = Cc::new(&mut rt, g).unwrap();
        cc.reset(&mut rt);
        cc.run_to_convergence(&mut MemCtx::bulk(rt.machine_mut()), 200);
        let got = cc.labels(&mut rt);
        let expect = reference_components(&csr);
        // Same partition: labels equal iff reference labels equal.
        for v in 0..got.len() {
            for u in (v + 1)..got.len().min(v + 50) {
                assert_eq!(
                    got[v] == got[u],
                    expect[v] == expect[u],
                    "partition mismatch at ({v}, {u})"
                );
            }
        }
    }

    #[test]
    fn converged_pass_reports_no_changes() {
        let csr = GraphBuilder::new(3).edges([(0, 1), (1, 2)]).build();
        let mut rt = runtime();
        let g = HmsGraph::load(&mut rt, &csr).unwrap();
        let mut cc = Cc::new(&mut rt, g).unwrap();
        cc.reset(&mut rt);
        let mut ctx = MemCtx::bulk(rt.machine_mut());
        cc.run_to_convergence(&mut ctx, 10);
        cc.run_iteration(&mut ctx);
        assert_eq!(cc.changed_last(), 0);
    }
}
