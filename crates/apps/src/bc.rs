//! Betweenness centrality (Brandes' algorithm, one source per iteration).
//!
//! Each iteration runs a forward BFS from the source computing shortest-
//! path counts (`sigma`) and depths, then a backward sweep over the
//! traversal order accumulating dependencies (`delta`) into the centrality
//! scores. Both sweeps stream the CSR and scatter into per-vertex arrays —
//! the heaviest of the five kernels.

use atmem::{Atmem, Result};
use atmem_hms::{merge_owner_queues, OwnerQueues, TrackedVec};

use crate::access::MemCtx;
use crate::graph_data::HmsGraph;
use crate::kernel::Kernel;
use crate::par;

/// BC kernel state.
#[derive(Debug)]
pub struct Bc {
    graph: HmsGraph,
    source: u32,
    sigma: TrackedVec<f64>,
    depth: TrackedVec<i32>,
    delta: TrackedVec<f64>,
    bc: TrackedVec<f64>,
}

impl Bc {
    /// Allocates BC state over `graph`.
    ///
    /// # Errors
    ///
    /// Allocation failures for the four property arrays.
    pub fn new(rt: &mut Atmem, graph: HmsGraph, source: u32) -> Result<Self> {
        let n = graph.num_vertices();
        let sigma = rt.malloc::<f64>(n, "bc.sigma")?;
        let depth = rt.malloc::<i32>(n, "bc.depth")?;
        let delta = rt.malloc::<f64>(n, "bc.delta")?;
        let bc = rt.malloc::<f64>(n, "bc.scores")?;
        Ok(Bc {
            graph,
            source,
            sigma,
            depth,
            delta,
            bc,
        })
    }

    /// Copies the centrality scores out of simulated memory (unaccounted).
    pub fn scores(&self, rt: &mut Atmem) -> Vec<f64> {
        self.bc.to_vec(rt.machine_mut())
    }

    /// One Brandes source partitioned over `ctx.par_cores()` simulated
    /// cores.
    ///
    /// **Forward** levels shard like BFS with a payload: each core expands
    /// its slice of the sorted frontier and routes `(u, sigma[v])`
    /// contributions to the core owning `depth[u]`/`sigma[u]`; the owner
    /// replays its merged queue single-writer — first touch stamps the
    /// depth and seeds sigma, later hits accumulate. Path counts are
    /// integers carried in f64, so the accumulation is exact and the final
    /// sigma is independent of fold order — bit-identical to scalar.
    ///
    /// **Backward**, the scalar reverse-order sweep becomes one phase per
    /// depth level, deepest first (the per-level frontiers recorded on the
    /// way down are exactly the depth-aligned slabs of `order`). All
    /// cross-vertex dependencies go through `delta` of *strictly deeper*
    /// vertices — finalized a phase earlier — and every slab vertex is
    /// visited exactly once, so each core can sweep a contiguous slab
    /// slice with the scalar per-vertex body, writing only its own
    /// `delta[v]`/`bc[v]` entries. Each vertex folds its children in edge
    /// order either way, so the scores are bit-identical to scalar too.
    fn run_iteration_sharded(&mut self, ctx: &mut MemCtx) {
        let n = self.graph.num_vertices();
        let cores = ctx.par_cores();
        let mode = ctx.mode();
        let machine = ctx.machine();
        let host_bounds = self.graph.host_bounds(machine);
        let cuts = par::edge_cuts(&host_bounds, cores);
        let fill_cuts = par::even_cuts(n, cores);
        let graph = &self.graph;
        let sigma = &self.sigma;
        let depth = &self.depth;
        let delta = &self.delta;
        let bc = &self.bc;
        let src = self.source as usize;

        // Accounted re-init, partitioned, with the source seeded by its
        // owner (same totals as the scalar body's three fills).
        machine.run_cores(cores, |c, h| {
            let mut cctx = MemCtx::new(h, mode);
            let (lo, hi) = (fill_cuts[c], fill_cuts[c + 1]);
            cctx.write_run(sigma, lo, &vec![0.0f64; hi - lo]);
            cctx.write_run(depth, lo, &vec![-1i32; hi - lo]);
            cctx.write_run(delta, lo, &vec![0.0f64; hi - lo]);
            if (lo..hi).contains(&src) {
                cctx.set(sigma, src, 1.0);
                cctx.set(depth, src, 0);
            }
        });

        // Forward: record the sorted frontier of every level (the
        // depth-aligned slabs the backward sweep partitions over).
        let mut levels: Vec<Vec<u32>> = Vec::new();
        let mut frontier = vec![self.source];
        let mut level = 0i32;
        while !frontier.is_empty() {
            level += 1;
            let slices = par::frontier_cuts(&cuts, &frontier);
            let cur = &frontier;
            let per_core = machine.run_cores(cores, |c, h| {
                let mut cctx = MemCtx::new(h, mode);
                let mut queues = OwnerQueues::new(cores);
                let mut nbrs: Vec<u32> = Vec::new();
                let mut dbuf: Vec<i32> = Vec::new();
                for &v in &cur[slices[c]..slices[c + 1]] {
                    let sv = cctx.get(sigma, v as usize);
                    let (start, end) = graph.edge_bounds(&mut cctx, v as usize);
                    nbrs.resize((end - start) as usize, 0);
                    graph.neighbor_run(&mut cctx, start, &mut nbrs);
                    dbuf.resize(nbrs.len(), 0);
                    cctx.gather(depth, &nbrs, &mut dbuf);
                    for (&u, &du) in nbrs.iter().zip(&dbuf) {
                        if du < 0 {
                            queues.push(par::owner(&cuts, u as usize), (u, sv));
                        }
                    }
                }
                queues
            });
            let routed = merge_owner_queues(per_core);
            let routed = &routed;
            let discovered = machine.run_cores(cores, |c, h| {
                let mut cctx = MemCtx::new(h, mode);
                let mut new: Vec<u32> = Vec::new();
                for &(u, sv) in &routed[c] {
                    let u = u as usize;
                    if cctx.get(depth, u) < 0 {
                        cctx.set(depth, u, level);
                        cctx.set(sigma, u, sv);
                        new.push(u as u32);
                    } else {
                        cctx.update(sigma, u, |x| x + sv);
                    }
                }
                new.sort_unstable();
                new
            });
            levels.push(std::mem::take(&mut frontier));
            frontier = discovered.concat();
        }

        // Backward: one phase per slab, deepest first; cores sweep
        // contiguous slab slices with the scalar per-vertex body.
        for slab in levels.iter().rev() {
            let slab_cuts = par::even_cuts(slab.len(), cores);
            machine.run_cores(cores, |c, h| {
                let mut cctx = MemCtx::new(h, mode);
                let mut nbrs: Vec<u32> = Vec::new();
                let mut dbuf: Vec<i32> = Vec::new();
                let mut matched: Vec<u32> = Vec::new();
                let mut sbuf: Vec<f64> = Vec::new();
                let mut delbuf: Vec<f64> = Vec::new();
                for &v in &slab[slab_cuts[c]..slab_cuts[c + 1]] {
                    let v = v as usize;
                    let dv = cctx.get(depth, v);
                    let sv = cctx.get(sigma, v);
                    let (start, end) = graph.edge_bounds(&mut cctx, v);
                    nbrs.resize((end - start) as usize, 0);
                    graph.neighbor_run(&mut cctx, start, &mut nbrs);
                    let mut acc = cctx.get(delta, v);
                    dbuf.resize(nbrs.len(), 0);
                    cctx.gather(depth, &nbrs, &mut dbuf);
                    matched.clear();
                    matched.extend(
                        nbrs.iter()
                            .zip(&dbuf)
                            .filter(|&(_, &d)| d == dv + 1)
                            .map(|(&u, _)| u),
                    );
                    sbuf.resize(matched.len(), 0.0);
                    cctx.gather(sigma, &matched, &mut sbuf);
                    delbuf.resize(matched.len(), 0.0);
                    cctx.gather(delta, &matched, &mut delbuf);
                    for (&su, &du) in sbuf.iter().zip(&delbuf) {
                        if su > 0.0 {
                            acc += sv / su * (1.0 + du);
                        }
                    }
                    cctx.set(delta, v, acc);
                    if v != src {
                        cctx.update(bc, v, |b| b + acc);
                    }
                }
            });
        }
    }
}

impl Kernel for Bc {
    fn name(&self) -> &'static str {
        "BC"
    }

    fn reset(&mut self, rt: &mut Atmem) {
        let m = rt.machine_mut();
        self.sigma.fill(m, 0.0);
        self.depth.fill(m, -1);
        self.delta.fill(m, 0.0);
        self.bc.fill(m, 0.0);
    }

    fn run_iteration(&mut self, ctx: &mut MemCtx) {
        if ctx.par_cores() > 1 {
            self.run_iteration_sharded(ctx);
            return;
        }
        let n = self.graph.num_vertices();
        // Per-iteration re-init through the accounted path (the arrays are
        // rewritten every source on real runs too): three sequential fills.
        ctx.write_run(&self.sigma, 0, &vec![0.0f64; n]);
        ctx.write_run(&self.depth, 0, &vec![-1i32; n]);
        ctx.write_run(&self.delta, 0, &vec![0.0f64; n]);
        // Forward phase. Depth checks gate every write, so the sweep is
        // data-dependent and stays per-element.
        let s = self.source as usize;
        ctx.set(&self.sigma, s, 1.0);
        ctx.set(&self.depth, s, 0);
        let mut order: Vec<u32> = Vec::new();
        let mut frontier = vec![self.source];
        let mut level = 0i32;
        let mut nbrs: Vec<u32> = Vec::new();
        let mut dbuf: Vec<i32> = Vec::new();
        let mut matched: Vec<u32> = Vec::new();
        let mut sbuf: Vec<f64> = Vec::new();
        let mut delbuf: Vec<f64> = Vec::new();
        while !frontier.is_empty() {
            order.extend_from_slice(&frontier);
            level += 1;
            let mut next = Vec::new();
            for &v in &frontier {
                let sv = ctx.get(&self.sigma, v as usize);
                let (start, end) = self.graph.edge_bounds(ctx, v as usize);
                nbrs.resize((end - start) as usize, 0);
                self.graph.neighbor_run(ctx, start, &mut nbrs);
                for &u in &nbrs {
                    let u = u as usize;
                    let du = ctx.get(&self.depth, u);
                    if du < 0 {
                        ctx.set(&self.depth, u, level);
                        next.push(u as u32);
                        ctx.set(&self.sigma, u, sv);
                    } else if du == level {
                        let su = ctx.get(&self.sigma, u);
                        ctx.set(&self.sigma, u, su + sv);
                    }
                }
            }
            frontier = next;
        }
        // Backward phase: accumulate dependencies in reverse BFS order. Each
        // vertex gathers its neighbours' depths in one window, filters the
        // children (depth == dv + 1), then gathers their sigma and delta
        // windows and accumulates host-side in window order.
        for &v in order.iter().rev() {
            let v = v as usize;
            let dv = ctx.get(&self.depth, v);
            let sv = ctx.get(&self.sigma, v);
            let (start, end) = self.graph.edge_bounds(ctx, v);
            nbrs.resize((end - start) as usize, 0);
            self.graph.neighbor_run(ctx, start, &mut nbrs);
            let mut acc = ctx.get(&self.delta, v);
            dbuf.resize(nbrs.len(), 0);
            ctx.gather(&self.depth, &nbrs, &mut dbuf);
            matched.clear();
            matched.extend(
                nbrs.iter()
                    .zip(&dbuf)
                    .filter(|&(_, &d)| d == dv + 1)
                    .map(|(&u, _)| u),
            );
            sbuf.resize(matched.len(), 0.0);
            ctx.gather(&self.sigma, &matched, &mut sbuf);
            delbuf.resize(matched.len(), 0.0);
            ctx.gather(&self.delta, &matched, &mut delbuf);
            for (&su, &du) in sbuf.iter().zip(&delbuf) {
                if su > 0.0 {
                    acc += sv / su * (1.0 + du);
                }
            }
            ctx.set(&self.delta, v, acc);
            if v != s {
                ctx.update(&self.bc, v, |b| b + acc);
            }
        }
    }

    fn checksum(&self, rt: &mut Atmem) -> f64 {
        let m = rt.machine_mut();
        (0..self.graph.num_vertices())
            .map(|v| self.bc.peek(m, v))
            .sum()
    }
}

/// Host-side reference Brandes (single source) for validation.
pub fn reference_bc(csr: &atmem_graph::Csr, source: u32) -> Vec<f64> {
    let n = csr.num_vertices();
    let mut sigma = vec![0.0f64; n];
    let mut depth = vec![-1i32; n];
    let mut delta = vec![0.0f64; n];
    let mut bc = vec![0.0f64; n];
    sigma[source as usize] = 1.0;
    depth[source as usize] = 0;
    let mut order: Vec<u32> = Vec::new();
    let mut frontier = vec![source];
    let mut level = 0;
    while !frontier.is_empty() {
        order.extend_from_slice(&frontier);
        level += 1;
        let mut next = Vec::new();
        for &v in &frontier {
            for &u in csr.neighbors_of(v as usize) {
                let u = u as usize;
                if depth[u] < 0 {
                    depth[u] = level;
                    next.push(u as u32);
                    sigma[u] += sigma[v as usize];
                } else if depth[u] == level {
                    sigma[u] += sigma[v as usize];
                }
            }
        }
        frontier = next;
    }
    for &v in order.iter().rev() {
        let v = v as usize;
        for &u in csr.neighbors_of(v) {
            let u = u as usize;
            if depth[u] == depth[v] + 1 && sigma[u] > 0.0 {
                delta[v] += sigma[v] / sigma[u] * (1.0 + delta[u]);
            }
        }
        if v != source as usize {
            bc[v] += delta[v];
        }
    }
    bc
}

#[cfg(test)]
mod tests {
    use super::*;
    use atmem::AtmemConfig;
    use atmem_graph::{Dataset, GraphBuilder};
    use atmem_hms::Platform;

    fn runtime() -> Atmem {
        Atmem::new(Platform::testing(), AtmemConfig::default()).unwrap()
    }

    #[test]
    fn path_graph_centrality() {
        // 0 -> 1 -> 2 -> 3: vertex 1 lies on paths 0->2, 0->3; vertex 2 on
        // 0->3, 1->3 (only source-0 paths count in single-source BC).
        let csr = GraphBuilder::new(4).edges([(0, 1), (1, 2), (2, 3)]).build();
        let mut rt = runtime();
        let g = HmsGraph::load(&mut rt, &csr).unwrap();
        let mut bc = Bc::new(&mut rt, g, 0).unwrap();
        bc.reset(&mut rt);
        bc.run_iteration(&mut MemCtx::bulk(rt.machine_mut()));
        assert_eq!(bc.scores(&mut rt), reference_bc(&csr, 0));
        assert_eq!(bc.scores(&mut rt), vec![0.0, 2.0, 1.0, 0.0]);
    }

    #[test]
    fn matches_reference_on_rmat() {
        let csr = Dataset::Rmat24.build_small(7); // 1024 vertices
        let mut rt = runtime();
        let g = HmsGraph::load(&mut rt, &csr).unwrap();
        let mut bc = Bc::new(&mut rt, g, 0).unwrap();
        bc.reset(&mut rt);
        bc.run_iteration(&mut MemCtx::bulk(rt.machine_mut()));
        let got = bc.scores(&mut rt);
        let expect = reference_bc(&csr, 0);
        for (v, (a, b)) in got.iter().zip(&expect).enumerate() {
            assert!((a - b).abs() < 1e-6, "vertex {v}: {a} vs {b}");
        }
    }

    #[test]
    fn repeated_iterations_accumulate() {
        let csr = GraphBuilder::new(3).edges([(0, 1), (1, 2)]).build();
        let mut rt = runtime();
        let g = HmsGraph::load(&mut rt, &csr).unwrap();
        let mut bc = Bc::new(&mut rt, g, 0).unwrap();
        bc.reset(&mut rt);
        bc.run_iteration(&mut MemCtx::bulk(rt.machine_mut()));
        let once = bc.checksum(&mut rt);
        bc.run_iteration(&mut MemCtx::bulk(rt.machine_mut()));
        assert!((bc.checksum(&mut rt) - 2.0 * once).abs() < 1e-9);
    }
}
