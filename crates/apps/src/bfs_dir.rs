//! Direction-optimizing BFS (Beamer-style top-down / bottom-up switching).
//!
//! When the frontier is small, classic top-down expansion is cheapest; when
//! it covers a large fraction of the graph, *bottom-up* — every unvisited
//! vertex scanning its in-edges for a visited parent — touches far fewer
//! edges. The two phases have opposite access patterns (scatter vs gather),
//! so the kernel exercises both directions of the CSR and its transpose —
//! a stress test for placement decisions that must serve both.

use atmem::{Atmem, Result};
use atmem_graph::{transpose, Csr};
use atmem_hms::{merge_owner_queues, OwnerQueues, TrackedVec};

use crate::access::MemCtx;
use crate::bfs::UNREACHED;
use crate::graph_data::HmsGraph;
use crate::kernel::Kernel;
use crate::par;

/// Frontier-to-unvisited ratio above which the kernel switches bottom-up.
const SWITCH_THRESHOLD: f64 = 0.05;

/// Direction-optimizing BFS state. Holds both edge directions.
#[derive(Debug)]
pub struct BfsDir {
    out_graph: HmsGraph,
    in_graph: HmsGraph,
    source: u32,
    dist: TrackedVec<u32>,
    /// (top-down levels, bottom-up levels) executed by the last iteration.
    phases: (u32, u32),
}

impl BfsDir {
    /// Builds the kernel from the original CSR (loads both the graph and
    /// its transpose into simulated memory).
    ///
    /// # Errors
    ///
    /// Allocation failures for either direction or the distance array.
    pub fn new(rt: &mut Atmem, csr: &Csr, source: u32) -> Result<Self> {
        let out_graph = HmsGraph::load(rt, csr)?;
        let in_graph = HmsGraph::load(rt, &transpose(csr))?;
        let dist = rt.malloc::<u32>(csr.num_vertices(), "bfsdir.dist")?;
        Ok(BfsDir {
            out_graph,
            in_graph,
            source,
            dist,
            phases: (0, 0),
        })
    }

    /// (top-down, bottom-up) level counts of the last iteration.
    pub fn phases(&self) -> (u32, u32) {
        self.phases
    }

    /// Copies the distance array out of simulated memory (unaccounted).
    pub fn distances(&self, rt: &mut Atmem) -> Vec<u32> {
        self.dist.to_vec(rt.machine_mut())
    }

    /// Direction-optimizing traversal partitioned over `ctx.par_cores()`
    /// simulated cores.
    ///
    /// Top-down levels shard exactly like classic BFS (owned slices of the
    /// sorted frontier expand over the out-graph, discovered vertices are
    /// owner-routed and settled single-writer). Bottom-up levels split
    /// into a read-only **scan** phase — each core sweeps its in-edge-
    /// balanced vertex range, reads its distance slice as a level-start
    /// snapshot, and probes unvisited vertices' in-edges for a parent at
    /// `level - 1` — and an owner-only **claim** phase that scatters the
    /// level into each core's found list. The naive scalar interleaving
    /// (writing `dist[v]` while other vertices' probes read `dist`) would
    /// violate the partition contract, which is why the scan phase works
    /// from the immutable snapshot.
    ///
    /// Both directions produce the per-level discovered *set* of the
    /// level-synchronous traversal, and the frontier is kept in canonical
    /// ascending order, so the direction switch (a pure function of
    /// frontier/unvisited counts) and the distances are bit-identical for
    /// every core count and to the scalar body.
    fn run_iteration_sharded(&mut self, ctx: &mut MemCtx) {
        let n = self.out_graph.num_vertices();
        let cores = ctx.par_cores();
        let mode = ctx.mode();
        let machine = ctx.machine();
        let out_cuts = par::edge_cuts(&self.out_graph.host_bounds(machine), cores);
        let in_cuts = par::edge_cuts(&self.in_graph.host_bounds(machine), cores);
        let fill_cuts = par::even_cuts(n, cores);
        let out_graph = &self.out_graph;
        let in_graph = &self.in_graph;
        let dist = &self.dist;
        let src = self.source as usize;

        machine.run_cores(cores, |c, h| {
            let mut cctx = MemCtx::new(h, mode);
            let (lo, hi) = (fill_cuts[c], fill_cuts[c + 1]);
            cctx.write_run(dist, lo, &vec![UNREACHED; hi - lo]);
            if (lo..hi).contains(&src) {
                cctx.set(dist, src, 0);
            }
        });

        let mut frontier = vec![self.source];
        let mut unvisited = n - 1;
        let mut level = 0u32;
        let mut top_down_levels = 0u32;
        let mut bottom_up_levels = 0u32;
        while !frontier.is_empty() {
            level += 1;
            let go_bottom_up = frontier.len() as f64 > SWITCH_THRESHOLD * (unvisited.max(1)) as f64;
            if go_bottom_up {
                bottom_up_levels += 1;
                // Scan (reads only): owned in-edge-balanced vertex ranges
                // probe for parents against the level-start snapshot.
                let found = machine.run_cores(cores, |c, h| {
                    let mut cctx = MemCtx::new(h, mode);
                    let (lo, hi) = (in_cuts[c], in_cuts[c + 1]);
                    let mut mine = vec![0u32; hi - lo];
                    cctx.read_run(dist, lo, &mut mine);
                    let mut found: Vec<u32> = Vec::new();
                    for (v, &dv) in (lo..hi).zip(&mine) {
                        if dv != UNREACHED {
                            continue;
                        }
                        let (s, e) = in_graph.edge_bounds(&mut cctx, v);
                        for edge in s..e {
                            let u = in_graph.neighbor(&mut cctx, edge) as usize;
                            if cctx.get(dist, u) == level - 1 {
                                found.push(v as u32);
                                break;
                            }
                        }
                    }
                    found
                });
                let found = &found;
                // Claim (owner-only writes): each core stamps the level
                // into the vertices its own scan discovered.
                machine.run_cores(cores, |c, h| {
                    let mut cctx = MemCtx::new(h, mode);
                    cctx.scatter(dist, &found[c], &vec![level; found[c].len()]);
                });
                // Scan ranges are contiguous and ascending, so the found
                // lists concatenate into the canonical sorted frontier.
                frontier = found.concat();
            } else {
                top_down_levels += 1;
                let slices = par::frontier_cuts(&out_cuts, &frontier);
                let cur = &frontier;
                let per_core = machine.run_cores(cores, |c, h| {
                    let mut cctx = MemCtx::new(h, mode);
                    let mut queues = OwnerQueues::new(cores);
                    let mut nbrs: Vec<u32> = Vec::new();
                    let mut dbuf: Vec<u32> = Vec::new();
                    for &v in &cur[slices[c]..slices[c + 1]] {
                        let (s, e) = out_graph.edge_bounds(&mut cctx, v as usize);
                        nbrs.resize((e - s) as usize, 0);
                        out_graph.neighbor_run(&mut cctx, s, &mut nbrs);
                        dbuf.resize(nbrs.len(), 0);
                        cctx.gather(dist, &nbrs, &mut dbuf);
                        for (&u, &du) in nbrs.iter().zip(&dbuf) {
                            if du == UNREACHED {
                                queues.push(par::owner(&out_cuts, u as usize), u);
                            }
                        }
                    }
                    queues
                });
                let routed = merge_owner_queues(per_core);
                let routed = &routed;
                let discovered = machine.run_cores(cores, |c, h| {
                    let mut cctx = MemCtx::new(h, mode);
                    let mut seen = std::collections::HashSet::new();
                    let mut new: Vec<u32> = Vec::new();
                    for &u in &routed[c] {
                        if seen.insert(u) {
                            new.push(u);
                        }
                    }
                    cctx.scatter(dist, &new, &vec![level; new.len()]);
                    new.sort_unstable();
                    new
                });
                frontier = discovered.concat();
            }
            unvisited -= frontier.len().min(unvisited);
        }
        self.phases = (top_down_levels, bottom_up_levels);
    }
}

impl Kernel for BfsDir {
    fn name(&self) -> &'static str {
        "BFS-dir"
    }

    fn reset(&mut self, rt: &mut Atmem) {
        self.dist.fill(rt.machine_mut(), UNREACHED);
        self.phases = (0, 0);
    }

    fn run_iteration(&mut self, ctx: &mut MemCtx) {
        if ctx.par_cores() > 1 {
            self.run_iteration_sharded(ctx);
            return;
        }
        let n = self.out_graph.num_vertices();
        // Per-iteration re-init through the accounted path (the same
        // policy as BC: every traversal kernel rewrites its state each
        // source, so repeat-iteration timings are comparable).
        ctx.write_run(&self.dist, 0, &vec![UNREACHED; n]);
        ctx.set(&self.dist, self.source as usize, 0);
        let mut frontier = vec![self.source];
        let mut unvisited = n - 1;
        let mut level = 0u32;
        let mut top_down_levels = 0u32;
        let mut bottom_up_levels = 0u32;
        let mut nbrs: Vec<u32> = Vec::new();
        while !frontier.is_empty() {
            level += 1;
            let go_bottom_up = frontier.len() as f64 > SWITCH_THRESHOLD * (unvisited.max(1)) as f64;
            let mut next = Vec::new();
            if go_bottom_up {
                bottom_up_levels += 1;
                // Bottom-up: every unvisited vertex gathers over in-edges.
                for v in 0..n {
                    if ctx.get(&self.dist, v) != UNREACHED {
                        continue;
                    }
                    let (s, e) = self.in_graph.edge_bounds(ctx, v);
                    for edge in s..e {
                        let u = self.in_graph.neighbor(ctx, edge) as usize;
                        if ctx.get(&self.dist, u) == level - 1 {
                            ctx.set(&self.dist, v, level);
                            next.push(v as u32);
                            break;
                        }
                    }
                }
            } else {
                top_down_levels += 1;
                for &v in &frontier {
                    let (s, e) = self.out_graph.edge_bounds(ctx, v as usize);
                    // Out-adjacency runs are sequential; the bottom-up
                    // search loops above stay per-element because they
                    // terminate early on the first visited parent.
                    nbrs.resize((e - s) as usize, 0);
                    self.out_graph.neighbor_run(ctx, s, &mut nbrs);
                    for &u in &nbrs {
                        let u = u as usize;
                        if ctx.get(&self.dist, u) == UNREACHED {
                            ctx.set(&self.dist, u, level);
                            next.push(u as u32);
                        }
                    }
                }
            }
            unvisited -= next.len().min(unvisited);
            frontier = next;
        }
        self.phases = (top_down_levels, bottom_up_levels);
    }

    fn checksum(&self, rt: &mut Atmem) -> f64 {
        let m = rt.machine_mut();
        let mut sum = 0.0;
        for v in 0..self.out_graph.num_vertices() {
            let d = self.dist.peek(m, v);
            if d != UNREACHED {
                sum += d as f64;
            }
        }
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::reference_bfs;
    use atmem::AtmemConfig;
    use atmem_graph::Dataset;
    use atmem_hms::Platform;

    fn runtime() -> Atmem {
        Atmem::new(Platform::testing(), AtmemConfig::default()).unwrap()
    }

    #[test]
    fn matches_classic_bfs_on_rmat() {
        let csr = Dataset::Rmat24.build_small(8);
        let mut rt = runtime();
        let mut bfs = BfsDir::new(&mut rt, &csr, 0).unwrap();
        bfs.reset(&mut rt);
        bfs.run_iteration(&mut MemCtx::bulk(rt.machine_mut()));
        assert_eq!(bfs.distances(&mut rt), reference_bfs(&csr, 0));
    }

    #[test]
    fn uses_both_directions_on_dense_graphs() {
        // Dense R-MAT: the frontier explodes quickly, forcing bottom-up.
        let mut config = Dataset::Rmat24.config();
        config.scale = 10;
        config.edge_factor = 16;
        let csr = atmem_graph::rmat(&config, 5);
        let mut rt = runtime();
        let mut bfs = BfsDir::new(&mut rt, &csr, 0).unwrap();
        bfs.reset(&mut rt);
        bfs.run_iteration(&mut MemCtx::bulk(rt.machine_mut()));
        let (td, bu) = bfs.phases();
        assert!(td >= 1, "starts top-down");
        assert!(
            bu >= 1,
            "dense graph must trigger bottom-up: td={td} bu={bu}"
        );
        assert_eq!(bfs.distances(&mut rt), reference_bfs(&csr, 0));
    }

    #[test]
    fn reset_is_repeatable() {
        let csr = Dataset::Pokec.build_small(7);
        let mut rt = runtime();
        let mut bfs = BfsDir::new(&mut rt, &csr, 0).unwrap();
        bfs.reset(&mut rt);
        bfs.run_iteration(&mut MemCtx::bulk(rt.machine_mut()));
        let a = bfs.checksum(&mut rt);
        bfs.reset(&mut rt);
        bfs.run_iteration(&mut MemCtx::bulk(rt.machine_mut()));
        assert_eq!(bfs.checksum(&mut rt), a);
    }
}
