//! Single-source shortest paths.
//!
//! Frontier-based Bellman-Ford over the weighted HMS-resident CSR: each
//! iteration relaxes outgoing edges of the active frontier until no
//! distance improves. Distances and all CSR arrays (including weights) go
//! through the accounted path.

use atmem::{Atmem, Result};
use atmem_hms::{merge_owner_queues, OwnerQueues, TrackedVec};

use crate::access::MemCtx;
use crate::graph_data::HmsGraph;
use crate::kernel::Kernel;
use crate::par;

/// SSSP kernel state.
#[derive(Debug)]
pub struct Sssp {
    graph: HmsGraph,
    source: u32,
    dist: TrackedVec<f32>,
    relaxations: u64,
}

impl Sssp {
    /// Allocates SSSP state over a weighted `graph`.
    ///
    /// # Panics
    ///
    /// Panics if the graph was loaded without weights.
    ///
    /// # Errors
    ///
    /// Allocation failures for the distance array.
    pub fn new(rt: &mut Atmem, graph: HmsGraph, source: u32) -> Result<Self> {
        assert!(graph.is_weighted(), "SSSP requires a weighted graph");
        let dist = rt.malloc::<f32>(graph.num_vertices(), "sssp.dist")?;
        Ok(Sssp {
            graph,
            source,
            dist,
            relaxations: 0,
        })
    }

    /// Edge relaxations performed by the last iteration.
    pub fn relaxations(&self) -> u64 {
        self.relaxations
    }

    /// Copies the distance array out of simulated memory (unaccounted).
    pub fn distances(&self, rt: &mut Atmem) -> Vec<f32> {
        self.dist.to_vec(rt.machine_mut())
    }

    /// Frontier-sharded Bellman-Ford over `ctx.par_cores()` simulated
    /// cores.
    ///
    /// Each level runs two phases. **Relax-scan** (reads only): every core
    /// streams its contiguous slice of the sorted frontier, reads each
    /// `dist[v]` plus the neighbour/weight runs, gathers the target
    /// distances as a level-start snapshot, and routes every improving
    /// candidate `(u, dist[v] + w)` to the core owning `dist[u]`.
    /// **Tighten** (owner-only writes): each owner replays its merged
    /// candidate queue through the same compare-and-tighten overlay as the
    /// scalar body — single-writer, so no cross-core ordering hazard —
    /// scatters the accepted writes, and emits its slice of the next
    /// frontier sorted ascending.
    ///
    /// Candidate queues merge in `(source core, emission)` order, which
    /// for contiguous slices of a sorted frontier **is** global
    /// `(vertex, edge)` order — identical for every core count, so the
    /// accepted writes and the relaxation counter are too. Against the
    /// scalar body the per-level schedule differs (scalar lets later
    /// frontier vertices observe earlier in-level writes), but both are
    /// monotone descents to the same least fixed point of the f32
    /// relaxation, so the final distances are bit-identical.
    fn run_iteration_sharded(&mut self, ctx: &mut MemCtx) {
        let n = self.graph.num_vertices();
        let cores = ctx.par_cores();
        let mode = ctx.mode();
        let machine = ctx.machine();
        let host_bounds = self.graph.host_bounds(machine);
        let cuts = par::edge_cuts(&host_bounds, cores);
        let fill_cuts = par::even_cuts(n, cores);
        let graph = &self.graph;
        let dist = &self.dist;
        let src = self.source as usize;

        machine.run_cores(cores, |c, h| {
            let mut cctx = MemCtx::new(h, mode);
            let (lo, hi) = (fill_cuts[c], fill_cuts[c + 1]);
            cctx.write_run(dist, lo, &vec![f32::INFINITY; hi - lo]);
            if (lo..hi).contains(&src) {
                cctx.set(dist, src, 0.0);
            }
        });

        let mut frontier = vec![self.source];
        let mut relaxations = 0u64;
        while !frontier.is_empty() {
            let slices = par::frontier_cuts(&cuts, &frontier);
            let cur = &frontier;
            // Relax-scan: emit owner-routed improving candidates.
            let per_core = machine.run_cores(cores, |c, h| {
                let mut cctx = MemCtx::new(h, mode);
                let mut queues = OwnerQueues::new(cores);
                let mut nbrs: Vec<u32> = Vec::new();
                let mut ws: Vec<f32> = Vec::new();
                let mut dbuf: Vec<f32> = Vec::new();
                for &v in &cur[slices[c]..slices[c + 1]] {
                    let dv = cctx.get(dist, v as usize);
                    let (start, end) = graph.edge_bounds(&mut cctx, v as usize);
                    let deg = (end - start) as usize;
                    nbrs.resize(deg, 0);
                    ws.resize(deg, 0.0);
                    graph.neighbor_run(&mut cctx, start, &mut nbrs);
                    graph.weight_run(&mut cctx, start, &mut ws);
                    dbuf.resize(deg, 0.0);
                    cctx.gather(dist, &nbrs, &mut dbuf);
                    for ((&u, &w), &du) in nbrs.iter().zip(&ws).zip(&dbuf) {
                        let candidate = dv + w;
                        if candidate < du {
                            queues.push(par::owner(&cuts, u as usize), (u, candidate));
                        }
                    }
                }
                queues
            });
            let routed = merge_owner_queues(per_core);
            let routed = &routed;
            // Tighten: owners replay their queue single-writer.
            let settled = machine.run_cores(cores, |c, h| {
                let mut cctx = MemCtx::new(h, mode);
                let bucket = &routed[c];
                let idx: Vec<u32> = bucket.iter().map(|&(u, _)| u).collect();
                let mut dbuf = vec![0.0f32; idx.len()];
                cctx.gather(dist, &idx, &mut dbuf);
                let mut overlay: std::collections::HashMap<u32, f32> =
                    std::collections::HashMap::new();
                let mut widx: Vec<u32> = Vec::new();
                let mut wvals: Vec<f32> = Vec::new();
                let mut next: Vec<u32> = Vec::new();
                let mut in_next = std::collections::HashSet::new();
                let mut relaxed = 0u64;
                for (k, &(u, candidate)) in bucket.iter().enumerate() {
                    let current = overlay.get(&u).copied().unwrap_or(dbuf[k]);
                    if candidate < current {
                        overlay.insert(u, candidate);
                        widx.push(u);
                        wvals.push(candidate);
                        relaxed += 1;
                        if in_next.insert(u) {
                            next.push(u);
                        }
                    }
                }
                cctx.scatter(dist, &widx, &wvals);
                next.sort_unstable();
                (next, relaxed)
            });
            frontier = Vec::new();
            for (next, relaxed) in settled {
                frontier.extend_from_slice(&next);
                relaxations += relaxed;
            }
        }
        self.relaxations = relaxations;
    }
}

impl Kernel for Sssp {
    fn name(&self) -> &'static str {
        "SSSP"
    }

    fn reset(&mut self, rt: &mut Atmem) {
        self.dist.fill(rt.machine_mut(), f32::INFINITY);
        self.relaxations = 0;
    }

    fn run_iteration(&mut self, ctx: &mut MemCtx) {
        if ctx.par_cores() > 1 {
            self.run_iteration_sharded(ctx);
            return;
        }
        // Per-iteration re-init through the accounted path (the same
        // policy as BC: every traversal kernel rewrites its state each
        // source, so repeat-iteration timings are comparable).
        let n = self.graph.num_vertices();
        ctx.write_run(&self.dist, 0, &vec![f32::INFINITY; n]);
        ctx.set(&self.dist, self.source as usize, 0.0);
        let mut frontier = vec![self.source];
        let mut relaxations = 0u64;
        let mut nbrs: Vec<u32> = Vec::new();
        let mut ws: Vec<f32> = Vec::new();
        let mut dbuf: Vec<f32> = Vec::new();
        let mut widx: Vec<u32> = Vec::new();
        let mut wvals: Vec<f32> = Vec::new();
        let mut overlay: std::collections::HashMap<u32, f32> = std::collections::HashMap::new();
        while !frontier.is_empty() {
            let mut next = Vec::new();
            let mut in_next = std::collections::HashSet::new();
            for &v in &frontier {
                let dv = ctx.get(&self.dist, v as usize);
                let (start, end) = self.graph.edge_bounds(ctx, v as usize);
                let deg = (end - start) as usize;
                nbrs.resize(deg, 0);
                ws.resize(deg, 0.0);
                self.graph.neighbor_run(ctx, start, &mut nbrs);
                self.graph.weight_run(ctx, start, &mut ws);
                // Relaxation: gather the neighbour distances as one window,
                // replay the compare-and-tighten decisions host-side (an
                // overlay map makes duplicate targets observe the in-window
                // writes before them), then scatter the accepted writes in
                // decision order — one read per edge and one write per
                // relaxation, exactly like the per-element loop.
                dbuf.resize(deg, 0.0);
                ctx.gather(&self.dist, &nbrs, &mut dbuf);
                widx.clear();
                wvals.clear();
                overlay.clear();
                for ((&u, &w), &du) in nbrs.iter().zip(&ws).zip(&dbuf) {
                    let cur = overlay.get(&u).copied().unwrap_or(du);
                    let candidate = dv + w;
                    if candidate < cur {
                        overlay.insert(u, candidate);
                        widx.push(u);
                        wvals.push(candidate);
                        relaxations += 1;
                        if in_next.insert(u) {
                            next.push(u);
                        }
                    }
                }
                ctx.scatter(&self.dist, &widx, &wvals);
            }
            frontier = next;
        }
        self.relaxations = relaxations;
    }

    fn checksum(&self, rt: &mut Atmem) -> f64 {
        let m = rt.machine_mut();
        let mut sum = 0.0;
        for v in 0..self.graph.num_vertices() {
            let d = self.dist.peek(m, v);
            if d.is_finite() {
                sum += d as f64;
            }
        }
        sum
    }
}

/// Host-side reference (Dijkstra via binary heap) for validation.
pub fn reference_sssp(csr: &atmem_graph::Csr, source: u32) -> Vec<f32> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    #[derive(PartialEq)]
    struct Entry(f32, u32);
    impl Eq for Entry {}
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0.partial_cmp(&other.0).expect("finite distances")
        }
    }

    let mut dist = vec![f32::INFINITY; csr.num_vertices()];
    dist[source as usize] = 0.0;
    let mut heap = BinaryHeap::new();
    heap.push(Reverse(Entry(0.0, source)));
    while let Some(Reverse(Entry(d, v))) = heap.pop() {
        if d > dist[v as usize] {
            continue;
        }
        let nbrs = csr.neighbors_of(v as usize);
        let ws = csr.weights_of(v as usize);
        for (&u, &w) in nbrs.iter().zip(ws) {
            let nd = d + w;
            if nd < dist[u as usize] {
                dist[u as usize] = nd;
                heap.push(Reverse(Entry(nd, u)));
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use atmem::AtmemConfig;
    use atmem_graph::{Dataset, GraphBuilder};
    use atmem_hms::Platform;

    fn runtime() -> Atmem {
        Atmem::new(Platform::testing(), AtmemConfig::default()).unwrap()
    }

    #[test]
    fn sssp_finds_shorter_indirect_path() {
        // 0->2 costs 10 direct, 3 via 1.
        let csr = GraphBuilder::new(3)
            .weighted_edges([(0, 2, 10.0), (0, 1, 1.0), (1, 2, 2.0)])
            .build();
        let mut rt = runtime();
        let g = HmsGraph::load(&mut rt, &csr).unwrap();
        let mut sssp = Sssp::new(&mut rt, g, 0).unwrap();
        sssp.reset(&mut rt);
        sssp.run_iteration(&mut MemCtx::bulk(rt.machine_mut()));
        assert_eq!(sssp.distances(&mut rt), vec![0.0, 1.0, 3.0]);
        assert!(sssp.relaxations() >= 3);
    }

    #[test]
    fn sssp_matches_dijkstra_on_rmat() {
        let csr = Dataset::Pokec.build_small(6).with_random_weights(16.0, 3);
        let mut rt = runtime();
        let g = HmsGraph::load(&mut rt, &csr).unwrap();
        let mut sssp = Sssp::new(&mut rt, g, 0).unwrap();
        sssp.reset(&mut rt);
        sssp.run_iteration(&mut MemCtx::bulk(rt.machine_mut()));
        let got = sssp.distances(&mut rt);
        let expect = reference_sssp(&csr, 0);
        for (v, (a, b)) in got.iter().zip(&expect).enumerate() {
            assert!(
                (a - b).abs() < 1e-3 || (a.is_infinite() && b.is_infinite()),
                "vertex {v}: {a} vs {b}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "requires a weighted graph")]
    fn unweighted_graph_rejected() {
        let csr = GraphBuilder::new(2).edges([(0, 1)]).build();
        let mut rt = runtime();
        let g = HmsGraph::load(&mut rt, &csr).unwrap();
        let _ = Sssp::new(&mut rt, g, 0);
    }
}
