//! The paper's experimental protocol (§6).
//!
//! "For each test, ATMem turns on hardware profiling in the first iteration
//! and migrates data before the second iteration starts. The evaluation
//! uses the benchmark run time from the second iteration as the optimized
//! execution time."
//!
//! [`run_protocol`] reproduces exactly that, for any of the placement
//! modes the figures compare.

use atmem::{
    AnalyzerKind, Atmem, AtmemConfig, AtmemError, OptimizePolicy, OptimizeReport, PlacementPolicy,
    Result,
};
use atmem_graph::Csr;
use atmem_hms::{MachineStats, Platform, SimDuration};

use crate::access::MemCtx;
use crate::graph_data::HmsGraph;
use crate::kernel::App;

/// Placement strategy of one experimental run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Everything on the large-capacity tier (the paper's baseline).
    Baseline,
    /// Everything on the fast tier (the all-DRAM ideal; infeasible for
    /// large data on MCDRAM).
    Ideal,
    /// `numactl --preferred` fast-tier-first fill (the MCDRAM-p reference).
    Preferred,
    /// ATMem: profile iteration 1, migrate, measure iteration 2.
    Atmem,
}

impl Mode {
    /// Name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Mode::Baseline => "baseline",
            Mode::Ideal => "ideal",
            Mode::Preferred => "preferred",
            Mode::Atmem => "atmem",
        }
    }

    fn placement_policy(self) -> PlacementPolicy {
        match self {
            Mode::Baseline | Mode::Atmem => PlacementPolicy::AllSlow,
            Mode::Ideal => PlacementPolicy::AllFast,
            Mode::Preferred => PlacementPolicy::PreferFast,
        }
    }
}

/// Result of one protocol run.
#[derive(Debug)]
pub struct ProtocolResult {
    /// Simulated time of iteration 1 (profiled under [`Mode::Atmem`]).
    pub first_iter: SimDuration,
    /// Simulated time of iteration 2 — the number the figures report.
    pub second_iter: SimDuration,
    /// Optimization report of the last round (only for [`Mode::Atmem`]).
    pub optimize: Option<OptimizeReport>,
    /// Fast-data ratio after each profile→optimize round (one entry per
    /// round under [`Mode::Atmem`], empty otherwise). Convergence tests
    /// read this to watch a policy climb towards its fixpoint.
    pub round_ratios: Vec<f64>,
    /// Machine counter deltas over iteration 2 (TLB misses for Table 4).
    pub second_iter_stats: MachineStats,
    /// Fraction of registered data on the fast tier during iteration 2.
    pub data_ratio: f64,
    /// Kernel output checksum, for cross-mode correctness checks.
    pub checksum: f64,
    /// Memory-system invariant violations found by [`Machine::audit`] after
    /// the run (empty on a healthy run). Tests assert on this so every
    /// end-to-end scenario doubles as an invariant check.
    ///
    /// [`Machine::audit`]: atmem_hms::Machine::audit
    pub audit: Vec<String>,
}

/// Runs the two-iteration protocol of the paper for `app` on `csr`.
///
/// # Errors
///
/// Propagates allocation and migration failures. [`Mode::Ideal`] fails with
/// an out-of-memory error when the data does not fit the fast tier — the
/// same reason the paper cannot report an MCDRAM ideal for large inputs.
pub fn run_protocol(
    platform: Platform,
    config: AtmemConfig,
    csr: &Csr,
    app: App,
    mode: Mode,
) -> Result<ProtocolResult> {
    run_protocol_cores(platform, config, csr, app, mode, 1)
}

/// Like [`run_protocol`], but drives both measured iterations with
/// `par_cores` simulated cores. Every protocol app is sharded-capable:
/// the regular kernels (PageRank, CC, SpMV) partition their streaming
/// phases and the traversal kernels (BFS, BFS-dir, SSSP, BC) partition
/// each frontier level with owner-routed next-frontier queues, all under
/// the deterministic reduction contract. The
/// profiler consumes the merged (core-order-concatenated) PEBS stream
/// exactly as it consumes the scalar one, and `par_cores == 1` is
/// bit-identical to [`run_protocol`].
///
/// # Errors
///
/// Same failure modes as [`run_protocol`], plus
/// [`AtmemError::InvalidConfig`] when the caller's
/// `config.default_placement` contradicts the placement `mode`
/// prescribes: each mode *is* a placement experiment, so the runner used
/// to overwrite the field silently — a caller comparing, say, an
/// `AllFast` config across modes got `AllSlow` without any indication.
/// Now the mode's placement applies only when the caller left the field
/// at its default, and an explicit conflicting policy is an error.
pub fn run_protocol_cores(
    platform: Platform,
    config: AtmemConfig,
    csr: &Csr,
    app: App,
    mode: Mode,
    par_cores: usize,
) -> Result<ProtocolResult> {
    run_protocol_rounds(platform, config, csr, app, mode, par_cores, 1)
}

/// Like [`run_protocol_cores`], but runs `rounds` profile→optimize rounds
/// before the measured iteration (the multi-round protocol). One round is
/// the paper's protocol; more rounds let incremental policies converge —
/// the AutoNUMA baseline promotes at most one tier per touch-threshold
/// epoch, so on an N-tier machine it needs up to N−1 rounds to lift the
/// hot set to the top, and phase-adaptive configurations (demotion on)
/// get one re-ranking opportunity per round. `round_ratios` in the result
/// records the fast-data ratio after every round.
///
/// # Errors
///
/// Same failure modes as [`run_protocol_cores`], plus
/// [`AtmemError::InvalidConfig`] for `rounds == 0` or multi-round requests
/// under a mode that never optimizes.
pub fn run_protocol_rounds(
    platform: Platform,
    mut config: AtmemConfig,
    csr: &Csr,
    app: App,
    mode: Mode,
    par_cores: usize,
    rounds: usize,
) -> Result<ProtocolResult> {
    if rounds == 0 {
        return Err(AtmemError::InvalidConfig {
            what: "rounds",
            reason: "must be positive",
        });
    }
    if mode != Mode::Atmem && rounds != 1 {
        return Err(AtmemError::InvalidConfig {
            what: "rounds",
            reason: "only the atmem mode runs optimize rounds; \
                     use rounds = 1 for other modes",
        });
    }
    let prescribed = mode.placement_policy();
    if config.default_placement == PlacementPolicy::default() {
        config.default_placement = prescribed;
    } else if config.default_placement != prescribed {
        return Err(AtmemError::InvalidConfig {
            what: "default_placement",
            reason: "conflicts with the placement the mode prescribes; \
                     leave it at the default to run a mode experiment",
        });
    }
    // Same contract for the optimize policy: only [`Mode::Atmem`] runs an
    // optimize step, so an explicit non-default policy under any other mode
    // would be silently ignored — reject it instead.
    if mode != Mode::Atmem && config.policy != OptimizePolicy::default() {
        return Err(AtmemError::InvalidConfig {
            what: "policy",
            reason: "only the atmem mode runs an optimize step; \
                     leave the policy at the default for other modes",
        });
    }
    // And for the analyzer choice: no analyzer ever runs outside
    // [`Mode::Atmem`], so an explicit non-default kind would be silently
    // ignored — reject it instead.
    if mode != Mode::Atmem && config.analyzer.kind != AnalyzerKind::default() {
        return Err(AtmemError::InvalidConfig {
            what: "analyzer.kind",
            reason: "only the atmem mode runs the analyzer; \
                     leave the kind at the default for other modes",
        });
    }
    let mut rt = Atmem::new(platform, config)?;
    let graph = HmsGraph::load(&mut rt, csr)?;
    let mut kernel = app.instantiate(&mut rt, graph)?;

    // Profile→optimize rounds (iteration 1 of the paper's protocol; more
    // when the caller asked for the multi-round variant).
    let mut first_iter = SimDuration::from_ns(0.0);
    let mut optimize = None;
    let mut round_ratios = Vec::new();
    for round in 0..rounds {
        kernel.reset(&mut rt);
        if mode == Mode::Atmem {
            rt.profiling_start()?;
        }
        let t0 = rt.now();
        kernel.run_iteration(&mut MemCtx::bulk(rt.machine_mut()).with_cores(par_cores));
        if round == 0 {
            first_iter = SimDuration::from_ns(rt.now().as_ns() - t0.as_ns());
        }
        if mode == Mode::Atmem {
            rt.profiling_stop()?;
            optimize = Some(rt.optimize()?);
            round_ratios.push(rt.fast_data_ratio());
        }
    }

    // Iteration 2 — the measured run.
    kernel.reset(&mut rt);
    let before = rt.machine().stats();
    let t1 = rt.now();
    kernel.run_iteration(&mut MemCtx::bulk(rt.machine_mut()).with_cores(par_cores));
    let second_iter = SimDuration::from_ns(rt.now().as_ns() - t1.as_ns());
    let second_iter_stats = rt.machine().stats().delta(&before);
    let data_ratio = rt.fast_data_ratio();
    let checksum = kernel.checksum(&mut rt);
    let audit = rt.machine_mut().audit();

    Ok(ProtocolResult {
        first_iter,
        second_iter,
        optimize,
        round_ratios,
        second_iter_stats,
        data_ratio,
        checksum,
        audit,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use atmem_graph::Dataset;

    fn small_graph(app: App) -> Csr {
        let g = Dataset::Twitter.build_small(7); // 2048 vertices, skewed
        if app.needs_weights() {
            g.with_random_weights(16.0, 1)
        } else {
            g
        }
    }

    #[test]
    fn atmem_beats_baseline_on_bfs() {
        let csr = small_graph(App::Bfs);
        let base = run_protocol(
            Platform::testing(),
            AtmemConfig::default(),
            &csr,
            App::Bfs,
            Mode::Baseline,
        )
        .unwrap();
        let atm = run_protocol(
            Platform::testing(),
            AtmemConfig::default(),
            &csr,
            App::Bfs,
            Mode::Atmem,
        )
        .unwrap();
        assert_eq!(
            base.checksum, atm.checksum,
            "placement must not change results"
        );
        assert!(
            atm.second_iter.as_ns() < base.second_iter.as_ns(),
            "atmem {} vs baseline {}",
            atm.second_iter,
            base.second_iter
        );
        assert!(atm.data_ratio > 0.0 && atm.data_ratio < 1.0);
        assert!(atm.optimize.is_some());
    }

    #[test]
    fn explicit_conflicting_placement_is_rejected_not_overwritten() {
        let csr = small_graph(App::Bfs);
        // An explicit policy that contradicts the mode errors out instead
        // of being silently replaced (the old behavior).
        let conflicting = AtmemConfig::default().with_placement(PlacementPolicy::AllFast);
        let err = run_protocol(
            Platform::testing(),
            conflicting.clone(),
            &csr,
            App::Bfs,
            Mode::Atmem,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            AtmemError::InvalidConfig {
                what: "default_placement",
                ..
            }
        ));
        // The same explicit policy is fine when it agrees with the mode.
        let ideal = run_protocol(
            Platform::testing(),
            conflicting,
            &csr,
            App::Bfs,
            Mode::Ideal,
        )
        .unwrap();
        assert!((ideal.data_ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn explicit_policy_under_non_optimizing_mode_is_rejected() {
        let csr = small_graph(App::Bfs);
        let config = AtmemConfig::default().with_policy(OptimizePolicy::Autonuma);
        let err = run_protocol(
            Platform::testing(),
            config.clone(),
            &csr,
            App::Bfs,
            Mode::Baseline,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            AtmemError::InvalidConfig { what: "policy", .. }
        ));
        // The same policy is accepted (and exercised) under Mode::Atmem.
        let run = run_protocol(Platform::testing(), config, &csr, App::Bfs, Mode::Atmem).unwrap();
        assert!(run.optimize.is_some());
        assert!(run.audit.is_empty(), "audit: {:?}", run.audit);
    }

    #[test]
    fn explicit_analyzer_under_non_optimizing_mode_is_rejected() {
        let csr = small_graph(App::Bfs);
        let config = AtmemConfig::default().with_analyzer(AnalyzerKind::Learned);
        let err = run_protocol(
            Platform::testing(),
            config.clone(),
            &csr,
            App::Bfs,
            Mode::Baseline,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            AtmemError::InvalidConfig {
                what: "analyzer.kind",
                ..
            }
        ));
        // Under Mode::Atmem the learned analyzer runs the full protocol.
        let run = run_protocol(Platform::testing(), config, &csr, App::Bfs, Mode::Atmem).unwrap();
        assert!(run.optimize.is_some());
        assert!(run.data_ratio > 0.0 && run.data_ratio < 1.0);
        assert!(run.audit.is_empty(), "audit: {:?}", run.audit);
    }

    #[test]
    fn multi_round_protocol_records_every_round() {
        let csr = small_graph(App::PageRank);
        let r = run_protocol_rounds(
            Platform::testing(),
            AtmemConfig::default(),
            &csr,
            App::PageRank,
            Mode::Atmem,
            1,
            3,
        )
        .unwrap();
        assert_eq!(r.round_ratios.len(), 3);
        assert!(r.round_ratios.iter().all(|&x| x > 0.0));
        assert!(r.audit.is_empty(), "audit: {:?}", r.audit);
        // Single-round results report exactly one entry…
        let one = run_protocol(
            Platform::testing(),
            AtmemConfig::default(),
            &csr,
            App::PageRank,
            Mode::Atmem,
        )
        .unwrap();
        assert_eq!(one.round_ratios.len(), 1);
        // …and invalid round counts are named errors.
        for (mode, rounds) in [(Mode::Atmem, 0usize), (Mode::Baseline, 2)] {
            let err = run_protocol_rounds(
                Platform::testing(),
                AtmemConfig::default(),
                &csr,
                App::PageRank,
                mode,
                1,
                rounds,
            )
            .unwrap_err();
            assert!(matches!(
                err,
                AtmemError::InvalidConfig { what: "rounds", .. }
            ));
        }
    }

    #[test]
    fn ideal_is_fastest() {
        let csr = small_graph(App::PageRank);
        let ideal = run_protocol(
            Platform::testing(),
            AtmemConfig::default(),
            &csr,
            App::PageRank,
            Mode::Ideal,
        )
        .unwrap();
        let base = run_protocol(
            Platform::testing(),
            AtmemConfig::default(),
            &csr,
            App::PageRank,
            Mode::Baseline,
        )
        .unwrap();
        assert!(ideal.second_iter.as_ns() < base.second_iter.as_ns());
        assert!((ideal.data_ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn all_apps_run_the_protocol() {
        for app in App::FIVE {
            let csr = small_graph(app);
            let r = run_protocol(
                Platform::testing(),
                AtmemConfig::default(),
                &csr,
                app,
                Mode::Atmem,
            )
            .unwrap();
            assert!(r.second_iter.as_ns() > 0.0, "{app} produced no work");
            assert!(r.audit.is_empty(), "{app} audit: {:?}", r.audit);
        }
    }
}
