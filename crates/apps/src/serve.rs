//! Multi-tenant serving of the experimental protocol.
//!
//! [`run_protocol`](crate::run_protocol) assumes the machine belongs to
//! one benchmark. A serving deployment co-locates several protocol
//! instances — mixed kernels, mixed datasets, independently configured —
//! on one box with a single shared fast tier. [`serve_protocols`] drives
//! that scenario over the core [`Scheduler`]:
//!
//! 1. every tenant loads its graph and instantiates its kernel in its own
//!    quantum (bytes tagged per tenant by the machine);
//! 2. every tenant runs one profiled iteration (the paper's iteration 1);
//! 3. one **server-wide optimize round** arbitrates the shared fast tier
//!    across all tenants' candidate regions, hottest-first;
//! 4. a seeded arrival stream interleaves query quanta — each query is
//!    one kernel iteration — advancing the simulated clock through idle
//!    gaps and recording per-query latency from arrival to completion
//!    (queueing wait included: a query that arrives while another tenant
//!    holds the machine waits its turn);
//! 5. per-tenant accounting is collected: fast-data ratio, migrated
//!    bytes, and nearest-rank p50/p99 latency.
//!
//! The machine audit plus per-tenant byte conservation runs after *every*
//! query quantum; violations accumulate in [`ServeReport::audit`]. With
//! one tenant the whole schedule is bit-identical to
//! [`run_protocol_cores`](crate::run_protocol_cores) under
//! [`Mode::Atmem`](crate::Mode::Atmem) — same profile, same counters,
//! same placement, same checksum.

use atmem::{AtmemConfig, MigrationConfig, ProfileSummary, Result, RoundReport, Scheduler};
use atmem_graph::Csr;
use atmem_hms::{MachineStats, Platform, SimDuration, TierId};
use atmem_rng::SmallRng;

use crate::access::MemCtx;
use crate::graph_data::HmsGraph;
use crate::kernel::App;

/// One tenant of a serving run.
#[derive(Debug, Clone)]
pub struct TenantSpec<'a> {
    /// The tenant's graph.
    pub csr: &'a Csr,
    /// The kernel the tenant serves.
    pub app: App,
    /// The tenant's runtime configuration (chunking, sampling, analysis;
    /// the *server* owns the migration policy).
    pub config: AtmemConfig,
    /// Seed of the tenant's arrival stream.
    pub arrival_seed: u64,
    /// Number of queries to serve after the optimize round.
    pub queries: usize,
    /// Mean gap between arrivals in simulated nanoseconds; actual gaps
    /// are uniform in `[0.5, 1.5) ×` this.
    pub mean_gap_ns: f64,
}

/// Per-tenant outcome of a serving run.
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// The kernel served.
    pub app: App,
    /// Simulated time of the profiled warm-up iteration.
    pub first_iter: SimDuration,
    /// Profiling summary feeding the optimize round.
    pub profile: ProfileSummary,
    /// Machine counter deltas over the tenant's first query (the
    /// optimized-iteration counters of the solo protocol).
    pub first_query_stats: MachineStats,
    /// Fraction of the tenant's registered bytes fast-resident at the end.
    pub fast_data_ratio: f64,
    /// Bytes the tenant registered.
    pub total_bytes: usize,
    /// Tenant bytes on the fast tier at the end (tag counters).
    pub fast_bytes: usize,
    /// Tenant bytes on the slow tier at the end (tag counters).
    pub slow_bytes: usize,
    /// Bytes promoted for this tenant by the optimize round.
    pub bytes_promoted: usize,
    /// Bytes demoted for this tenant by the optimize round.
    pub bytes_demoted: usize,
    /// Queries served.
    pub queries: usize,
    /// Median query latency (arrival to completion, nearest rank).
    pub p50_latency: SimDuration,
    /// 99th-percentile query latency (nearest rank).
    pub p99_latency: SimDuration,
    /// Kernel output checksum after the last query.
    pub checksum: f64,
}

/// Outcome of [`serve_protocols`].
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Per-tenant reports, in `tenants` order.
    pub tenants: Vec<TenantReport>,
    /// The server-wide optimize round.
    pub round: RoundReport,
    /// Invariant violations found by the machine audit and the per-tenant
    /// byte-conservation check after the round and after every query
    /// quantum. Empty on a healthy run.
    pub audit: Vec<String>,
    /// Simulated time at the end of the run.
    pub total_time: SimDuration,
}

/// Serves `tenants` over one machine: per-tenant profiled warm-up, one
/// server-wide optimize round, then a seeded interleaved query stream.
/// See the [module docs](self) for the phase structure.
///
/// # Errors
///
/// Config validation, allocation, profiling and migration failures from
/// any tenant's quanta or the shared round.
pub fn serve_protocols(
    platform: Platform,
    migration: MigrationConfig,
    tenants: &[TenantSpec<'_>],
) -> Result<ServeReport> {
    let mut sched = Scheduler::new(platform, migration);

    // Phase 1: load graphs and instantiate kernels, one quantum each.
    let mut kernels = Vec::with_capacity(tenants.len());
    for spec in tenants {
        let idx = sched.add_tenant(spec.config.clone())?;
        let kernel = sched.run_quantum(idx, |rt| {
            let graph = HmsGraph::load(rt, spec.csr)?;
            spec.app.instantiate(rt, graph)
        })?;
        kernels.push(kernel);
    }

    // Phase 2: one profiled iteration per tenant (the paper's iteration 1).
    let mut first_iters = Vec::with_capacity(tenants.len());
    let mut profiles = Vec::with_capacity(tenants.len());
    for (idx, kernel) in kernels.iter_mut().enumerate() {
        let (first_iter, profile) = sched.run_quantum(idx, |rt| -> Result<_> {
            kernel.reset(rt);
            rt.profiling_start()?;
            let t0 = rt.now();
            kernel.run_iteration(&mut MemCtx::bulk(rt.machine_mut()));
            let first_iter = SimDuration::from_ns(rt.now().as_ns() - t0.as_ns());
            let profile = rt.profiling_stop()?;
            Ok((first_iter, profile))
        })?;
        first_iters.push(first_iter);
        profiles.push(profile);
    }

    // Phase 3: the shared fast tier is arbitrated across all tenants.
    let round = sched.optimize_round()?;
    let mut audit = sched.audit();

    // Phase 4: seeded arrival streams, earliest-arrival-first interleave
    // (ties go to the lower tenant id — deterministic).
    let serving_start = sched.now().as_ns();
    let mut arrivals: Vec<std::collections::VecDeque<f64>> = tenants
        .iter()
        .map(|spec| {
            let mut rng = SmallRng::seed_from_u64(spec.arrival_seed);
            let mut t = serving_start;
            (0..spec.queries)
                .map(|_| {
                    let at = t;
                    t += spec.mean_gap_ns * (0.5 + rng.gen::<f64>());
                    at
                })
                .collect()
        })
        .collect();
    let mut first_query_stats: Vec<Option<MachineStats>> = vec![None; tenants.len()];
    loop {
        let mut next: Option<(usize, f64)> = None;
        for (i, queue) in arrivals.iter().enumerate() {
            if let Some(&at) = queue.front() {
                if next.is_none_or(|(_, best)| at < best) {
                    next = Some((i, at));
                }
            }
        }
        let Some((idx, arrival)) = next else { break };
        arrivals[idx].pop_front();
        let now = sched.now().as_ns();
        if arrival > now {
            sched.advance_clock(SimDuration::from_ns(arrival - now));
        }
        let kernel = &mut kernels[idx];
        let (delta, completion) = sched.run_quantum(idx, |rt| {
            kernel.reset(rt);
            let before = rt.machine().stats();
            kernel.run_iteration(&mut MemCtx::bulk(rt.machine_mut()));
            (rt.machine().stats().delta(&before), rt.now())
        });
        let latency = (completion.as_ns() - arrival).max(0.0);
        sched.record_latency(idx, SimDuration::from_ns(latency));
        first_query_stats[idx].get_or_insert(delta);
        audit.extend(sched.audit());
    }

    // Phase 5: accounting.
    let mut reports = Vec::with_capacity(tenants.len());
    for (idx, spec) in tenants.iter().enumerate() {
        let checksum = sched.run_quantum(idx, |rt| kernels[idx].checksum(rt));
        let stats = sched.stats(idx);
        reports.push(TenantReport {
            app: spec.app,
            first_iter: first_iters[idx],
            profile: profiles[idx],
            first_query_stats: first_query_stats[idx].unwrap_or_default(),
            fast_data_ratio: sched.fast_data_ratio(idx),
            total_bytes: sched.tenant_total_bytes(idx),
            fast_bytes: sched.tenant_resident(idx, TierId::FAST),
            slow_bytes: sched.tenant_resident(idx, TierId::SLOW),
            bytes_promoted: round.tenants[idx].bytes_promoted,
            bytes_demoted: round.tenants[idx].bytes_demoted,
            queries: stats.latencies.len(),
            p50_latency: stats.latency_percentile(50.0),
            p99_latency: stats.latency_percentile(99.0),
            checksum,
        });
    }
    Ok(ServeReport {
        tenants: reports,
        round,
        audit,
        total_time: sched.now(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use atmem_graph::Dataset;

    #[test]
    fn two_tenants_serve_cleanly() {
        let a = Dataset::Twitter.build_small(6);
        let b = Dataset::Pokec.build_small(6);
        let specs = [
            TenantSpec {
                csr: &a,
                app: App::PageRank,
                config: AtmemConfig::default(),
                arrival_seed: 11,
                queries: 3,
                mean_gap_ns: 50_000.0,
            },
            TenantSpec {
                csr: &b,
                app: App::Bfs,
                config: AtmemConfig::default(),
                arrival_seed: 22,
                queries: 3,
                mean_gap_ns: 80_000.0,
            },
        ];
        let report =
            serve_protocols(Platform::testing(), MigrationConfig::default(), &specs).unwrap();
        assert!(report.audit.is_empty(), "{:?}", report.audit);
        for t in &report.tenants {
            assert_eq!(t.queries, 3);
            assert_eq!(t.fast_bytes + t.slow_bytes, t.total_bytes);
            assert!(t.p50_latency.as_ns() > 0.0);
            assert!(t.p99_latency.as_ns() >= t.p50_latency.as_ns());
        }
        assert!(report.round.promotion.bytes_moved > 0);
    }

    #[test]
    fn serving_is_deterministic() {
        let g = Dataset::Twitter.build_small(6);
        let spec = || {
            [TenantSpec {
                csr: &g,
                app: App::Cc,
                config: AtmemConfig::default(),
                arrival_seed: 7,
                queries: 4,
                mean_gap_ns: 30_000.0,
            }]
        };
        let r1 = serve_protocols(Platform::testing(), MigrationConfig::default(), &spec()).unwrap();
        let r2 = serve_protocols(Platform::testing(), MigrationConfig::default(), &spec()).unwrap();
        assert_eq!(r1.tenants[0].checksum, r2.tenants[0].checksum);
        assert_eq!(
            r1.tenants[0].p99_latency.as_ns(),
            r2.tenants[0].p99_latency.as_ns()
        );
        assert_eq!(r1.total_time.as_ns(), r2.total_time.as_ns());
        assert_eq!(r1.tenants[0].fast_data_ratio, r2.tenants[0].fast_data_ratio);
    }
}
