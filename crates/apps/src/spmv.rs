//! Sparse matrix-vector multiply (the paper's §9 generalisation example).
//!
//! The CSR graph is interpreted as a sparse matrix; each iteration computes
//! `y = A·x`. Column accesses `x[col]` follow the neighbour distribution,
//! so skewed graphs produce the same hot-region structure the graph kernels
//! have, while uniform matrices degenerate to coarse-grained placement —
//! exactly the behaviour §9 describes.

use atmem::{Atmem, Result};
use atmem_hms::{SweepPlan, TrackedVec, WindowPlan};

use crate::access::MemCtx;
use crate::graph_data::HmsGraph;
use crate::kernel::Kernel;
use crate::par;

/// SpMV kernel state.
#[derive(Debug)]
pub struct Spmv {
    graph: HmsGraph,
    x: TrackedVec<f64>,
    y: TrackedVec<f64>,
    // Host-side staging buffers, reused across iterations.
    bounds: Vec<u64>,
    cols: Vec<u32>,
    vals: Vec<f32>,
    xs: Vec<f64>,
    ybuf: Vec<f64>,
    // Compiled-plan slots (used in `AccessMode::Planned`): SpMV's iteration
    // space is identical every iteration, so each stream compiles once and
    // replays until a migration bumps the mapping generation.
    plan_bounds: Option<SweepPlan>,
    plan_cols: Option<SweepPlan>,
    plan_vals: Option<SweepPlan>,
    plan_x: Option<WindowPlan>,
    plan_y: Option<SweepPlan>,
}

impl Spmv {
    /// Allocates SpMV state over a weighted `graph`.
    ///
    /// # Panics
    ///
    /// Panics if the graph was loaded without weights.
    ///
    /// # Errors
    ///
    /// Allocation failures for the vectors.
    pub fn new(rt: &mut Atmem, graph: HmsGraph) -> Result<Self> {
        assert!(graph.is_weighted(), "SpMV requires matrix values (weights)");
        let n = graph.num_vertices();
        let e = graph.num_edges();
        let x = rt.malloc::<f64>(n, "spmv.x")?;
        let y = rt.malloc::<f64>(n, "spmv.y")?;
        Ok(Spmv {
            graph,
            x,
            y,
            bounds: vec![0; n + 1],
            cols: vec![0; e],
            vals: vec![0.0; e],
            xs: vec![0.0; e],
            ybuf: vec![0.0; n],
            plan_bounds: None,
            plan_cols: None,
            plan_vals: None,
            plan_x: None,
            plan_y: None,
        })
    }

    /// Copies the output vector out of simulated memory (unaccounted).
    pub fn output(&self, rt: &mut Atmem) -> Vec<f64> {
        self.y.to_vec(rt.machine_mut())
    }

    /// One multiply partitioned over `ctx.par_cores()` simulated cores in a
    /// single `run_cores` phase: rows split into contiguous edge-balanced
    /// ranges, each core streaming its bounds/column/value slices, gathering
    /// `x[col]` (read-only, so shared reads are safe under the partition
    /// contract) and writing its owned slice of `y`. Each row reduces in
    /// edge order exactly as the scalar body does, so the output is
    /// bit-identical for any core count.
    fn run_iteration_sharded(&mut self, ctx: &mut MemCtx) {
        let cores = ctx.par_cores();
        let mode = ctx.mode();
        let machine = ctx.machine();
        let host_bounds = self.graph.host_bounds(machine);
        let cuts = par::edge_cuts(&host_bounds, cores);
        let graph = &self.graph;
        let x = &self.x;
        let y = &self.y;
        machine.run_cores(cores, |c, h| {
            let mut ctx = MemCtx::new(h, mode);
            let (lo, hi) = (cuts[c], cuts[c + 1]);
            if lo == hi {
                return;
            }
            let mut b = vec![0u64; hi - lo + 1];
            graph.bounds_run(&mut ctx, lo, &mut b);
            let (es, ee) = (b[0] as usize, b[hi - lo] as usize);
            let mut cols = vec![0u32; ee - es];
            let mut vals = vec![0.0f32; ee - es];
            let mut xs = vec![0.0f64; ee - es];
            if ee > es {
                graph.neighbor_run(&mut ctx, es as u64, &mut cols);
                graph.weight_run(&mut ctx, es as u64, &mut vals);
                ctx.gather(x, &cols, &mut xs);
            }
            let mut ybuf = vec![0.0f64; hi - lo];
            for (row, y_row) in ybuf.iter_mut().enumerate() {
                let mut acc = 0.0f64;
                for e in (b[row] as usize - es)..(b[row + 1] as usize - es) {
                    acc += vals[e] as f64 * xs[e];
                }
                *y_row = acc;
            }
            ctx.write_run(y, lo, &ybuf);
        });
    }
}

impl Kernel for Spmv {
    fn name(&self) -> &'static str {
        "SpMV"
    }

    fn reset(&mut self, rt: &mut Atmem) {
        let m = rt.machine_mut();
        for v in 0..self.graph.num_vertices() {
            self.x.poke(m, v, 1.0 + (v % 7) as f64);
            self.y.poke(m, v, 0.0);
        }
    }

    fn run_iteration(&mut self, ctx: &mut MemCtx) {
        if ctx.par_cores() > 1 {
            self.run_iteration_sharded(ctx);
            return;
        }
        let n = self.graph.num_vertices();
        // Stream phase: row bounds, column indices, matrix values. The
        // `_planned` variants behave exactly like the plain ones outside
        // `AccessMode::Planned`; in planned mode they compile each stream
        // once and replay the per-tier run plan every iteration.
        self.graph
            .bounds_into_planned(ctx, &mut self.plan_bounds, &mut self.bounds);
        let num_edges = self.graph.num_edges();
        self.cols.resize(num_edges, 0);
        self.graph
            .neighbor_run_planned(ctx, &mut self.plan_cols, 0, &mut self.cols);
        self.vals.resize(num_edges, 0.0);
        self.graph
            .weight_run_planned(ctx, &mut self.plan_vals, 0, &mut self.vals);
        // Gather phase: x[col] accesses follow the neighbour distribution —
        // one simulated access per edge in order, batched by the window
        // engine in bulk mode; the row reduction then runs host-side on the
        // staged values.
        self.xs.resize(num_edges, 0.0);
        ctx.gather_planned(&self.x, &mut self.plan_x, &self.cols, &mut self.xs);
        self.ybuf.resize(n, 0.0);
        for (row, y_row) in self.ybuf.iter_mut().enumerate() {
            let mut acc = 0.0f64;
            for e in self.bounds[row] as usize..self.bounds[row + 1] as usize {
                acc += self.vals[e] as f64 * self.xs[e];
            }
            *y_row = acc;
        }
        // Store phase: one sequential stream into y.
        ctx.write_run_planned(&self.y, &mut self.plan_y, 0, &self.ybuf);
    }

    fn checksum(&self, rt: &mut Atmem) -> f64 {
        let m = rt.machine_mut();
        (0..self.graph.num_vertices())
            .map(|v| self.y.peek(m, v))
            .sum()
    }
}

/// Host-side reference multiply for validation.
pub fn reference_spmv(csr: &atmem_graph::Csr, x: &[f64]) -> Vec<f64> {
    let n = csr.num_vertices();
    let mut y = vec![0.0; n];
    for (row, y_row) in y.iter_mut().enumerate() {
        let nbrs = csr.neighbors_of(row);
        let ws = csr.weights_of(row);
        *y_row = nbrs
            .iter()
            .zip(ws)
            .map(|(&c, &a)| a as f64 * x[c as usize])
            .sum();
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use atmem::AtmemConfig;
    use atmem_graph::{Dataset, GraphBuilder};
    use atmem_hms::Platform;

    fn runtime() -> Atmem {
        Atmem::new(Platform::testing(), AtmemConfig::default()).unwrap()
    }

    #[test]
    fn small_multiply_is_exact() {
        let csr = GraphBuilder::new(2)
            .weighted_edges([(0, 1, 2.0), (1, 0, 3.0)])
            .build();
        let mut rt = runtime();
        let g = HmsGraph::load(&mut rt, &csr).unwrap();
        let mut spmv = Spmv::new(&mut rt, g).unwrap();
        spmv.reset(&mut rt);
        spmv.run_iteration(&mut MemCtx::bulk(rt.machine_mut()));
        // x = [1, 2]; y[0] = 2*x[1] = 4; y[1] = 3*x[0] = 3.
        assert_eq!(spmv.output(&mut rt), vec![4.0, 3.0]);
    }

    #[test]
    fn matches_reference_on_rmat() {
        let csr = Dataset::Rmat24.build_small(8).with_random_weights(8.0, 5);
        let mut rt = runtime();
        let g = HmsGraph::load(&mut rt, &csr).unwrap();
        let mut spmv = Spmv::new(&mut rt, g).unwrap();
        spmv.reset(&mut rt);
        spmv.run_iteration(&mut MemCtx::bulk(rt.machine_mut()));
        let x: Vec<f64> = (0..csr.num_vertices())
            .map(|v| 1.0 + (v % 7) as f64)
            .collect();
        let expect = reference_spmv(&csr, &x);
        for (got, want) in spmv.output(&mut rt).iter().zip(&expect) {
            assert!((got - want).abs() < 1e-6, "{got} vs {want}");
        }
    }
}
