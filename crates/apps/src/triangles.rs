//! Triangle counting (sorted-adjacency intersection).
//!
//! For every edge `(u, v)` with `u < v`, counts common neighbours greater
//! than `v` by merge-intersecting the two sorted adjacency lists. The
//! intersection re-reads high-degree vertices' adjacency lists over and
//! over — the most read-reuse-heavy kernel in the suite, and the one where
//! placing hub adjacency lists on the fast tier pays off most per byte.

use atmem::{Atmem, Result};

use crate::access::MemCtx;
use crate::graph_data::HmsGraph;
use crate::kernel::Kernel;
use crate::par;

/// Triangle-counting kernel state.
#[derive(Debug)]
pub struct Triangles {
    graph: HmsGraph,
    count: u64,
}

impl Triangles {
    /// Builds the kernel over a loaded graph. For meaningful counts the
    /// graph should be undirected (symmetrised); the kernel orients edges
    /// internally.
    ///
    /// # Errors
    ///
    /// Currently infallible; returns `Result` for symmetry with the other
    /// kernels (future property arrays).
    pub fn new(_rt: &mut Atmem, graph: HmsGraph) -> Result<Self> {
        Ok(Triangles { graph, count: 0 })
    }

    /// Triangles found by the last iteration.
    pub fn count(&self) -> u64 {
        self.count
    }
}

impl Kernel for Triangles {
    fn name(&self) -> &'static str {
        "TC"
    }

    fn reset(&mut self, _rt: &mut Atmem) {
        self.count = 0;
    }

    fn run_iteration(&mut self, ctx: &mut MemCtx) {
        let n = self.graph.num_vertices();
        let cores = ctx.par_cores();
        if cores > 1 {
            // Read-only kernel: every phase access is a read, so any
            // partition satisfies the contract. Anchor vertices split into
            // contiguous edge-balanced ranges, each core intersecting its
            // own anchors; per-core u64 counts sum in core order (integer
            // addition is associative, so the count is bit-identical to
            // the scalar loop for any core count).
            let mode = ctx.mode();
            let machine = ctx.machine();
            let host_bounds = self.graph.host_bounds(machine);
            let cuts = par::edge_cuts(&host_bounds, cores);
            let graph = &self.graph;
            let counts: Vec<u64> = machine.run_cores(cores, |c, h| {
                let mut ctx = MemCtx::new(h, mode);
                count_range(graph, &mut ctx, cuts[c], cuts[c + 1])
            });
            self.count = counts.iter().sum();
            return;
        }
        self.count = count_range(&self.graph, ctx, 0, n);
    }

    fn checksum(&self, _rt: &mut Atmem) -> f64 {
        self.count as f64
    }
}

/// Counts triangles anchored at vertices `lo..hi` — the whole graph for
/// the scalar path, one partition range per core for the sharded path.
fn count_range<M: atmem_hms::MemPort>(
    graph: &HmsGraph,
    ctx: &mut MemCtx<'_, M>,
    lo: usize,
    hi: usize,
) -> u64 {
    let mut triangles = 0u64;
    let mut adj_u: Vec<u32> = Vec::new();
    for u in lo..hi {
        let (us, ue) = graph.edge_bounds(ctx, u);
        // One sequential pass enumerates u's edges; the merge loops
        // below deliberately keep their per-element re-reads (the
        // read-reuse the kernel exists to exercise).
        adj_u.resize((ue - us) as usize, 0);
        graph.neighbor_run(ctx, us, &mut adj_u);
        for &v32 in &adj_u {
            let v = v32 as usize;
            if v <= u {
                continue; // orient: count each edge once
            }
            // Merge-intersect adj(u) and adj(v), counting w > v.
            let (vs, ve) = graph.edge_bounds(ctx, v);
            let mut i = us;
            let mut j = vs;
            while i < ue && j < ve {
                let a = graph.neighbor(ctx, i);
                let b = graph.neighbor(ctx, j);
                if (a as usize) <= v {
                    i += 1;
                } else if a == b {
                    triangles += 1;
                    i += 1;
                    j += 1;
                } else if a < b {
                    i += 1;
                } else {
                    j += 1;
                }
            }
        }
    }
    triangles
}

/// Host-side reference count for validation (same orientation rule).
pub fn reference_triangles(csr: &atmem_graph::Csr) -> u64 {
    let n = csr.num_vertices();
    let mut count = 0u64;
    for u in 0..n {
        for &v in csr.neighbors_of(u) {
            let v = v as usize;
            if v <= u {
                continue;
            }
            let (mut i, mut j) = (0, 0);
            let a = csr.neighbors_of(u);
            let b = csr.neighbors_of(v);
            while i < a.len() && j < b.len() {
                if (a[i] as usize) <= v {
                    i += 1;
                } else if a[i] == b[j] {
                    count += 1;
                    i += 1;
                    j += 1;
                } else if a[i] < b[j] {
                    i += 1;
                } else {
                    j += 1;
                }
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use atmem::AtmemConfig;
    use atmem_graph::{Dataset, GraphBuilder};
    use atmem_hms::Platform;

    fn runtime() -> Atmem {
        Atmem::new(Platform::testing(), AtmemConfig::default()).unwrap()
    }

    #[test]
    fn counts_one_triangle() {
        // Undirected triangle 0-1-2 plus a dangling edge 2-3.
        let csr = GraphBuilder::new(4)
            .edges([(0, 1), (0, 2), (1, 2), (2, 3)])
            .symmetrize(true)
            .deduplicate(true)
            .build();
        let mut rt = runtime();
        let g = HmsGraph::load(&mut rt, &csr).unwrap();
        let mut tc = Triangles::new(&mut rt, g).unwrap();
        tc.reset(&mut rt);
        tc.run_iteration(&mut MemCtx::bulk(rt.machine_mut()));
        assert_eq!(tc.count(), 1);
        assert_eq!(reference_triangles(&csr), 1);
    }

    #[test]
    fn complete_graph_count() {
        // K5 has C(5,3) = 10 triangles.
        let mut edges = Vec::new();
        for u in 0..5u32 {
            for v in 0..5u32 {
                if u != v {
                    edges.push((u, v));
                }
            }
        }
        let csr = GraphBuilder::new(5).edges(edges).deduplicate(true).build();
        let mut rt = runtime();
        let g = HmsGraph::load(&mut rt, &csr).unwrap();
        let mut tc = Triangles::new(&mut rt, g).unwrap();
        tc.reset(&mut rt);
        tc.run_iteration(&mut MemCtx::bulk(rt.machine_mut()));
        assert_eq!(tc.count(), 10);
    }

    #[test]
    fn matches_reference_on_rmat() {
        let mut config = Dataset::Pokec.config();
        config.scale = 8;
        config.symmetrize = true;
        let csr = atmem_graph::rmat(&config, 3);
        let mut rt = runtime();
        let g = HmsGraph::load(&mut rt, &csr).unwrap();
        let mut tc = Triangles::new(&mut rt, g).unwrap();
        tc.reset(&mut rt);
        tc.run_iteration(&mut MemCtx::bulk(rt.machine_mut()));
        assert_eq!(tc.count(), reference_triangles(&csr));
        assert!(
            tc.count() > 0,
            "R-MAT at this density should close triangles"
        );
    }
}
