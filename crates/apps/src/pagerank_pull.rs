//! Pull-direction PageRank.
//!
//! The pull variant iterates destinations and gathers `rank/deg` over
//! *in*-edges (the transposed CSR). Reads of the rank array follow the
//! in-neighbour distribution — the mirror image of the push variant's
//! scattered writes — giving the profiler a read-dominated hot region,
//! which is the pattern PEBS (read-miss sampling) sees most directly.

use atmem::{Atmem, Result};
use atmem_graph::{transpose, Csr};
use atmem_hms::{SweepPlan, TrackedVec, WindowPlan};

use crate::access::MemCtx;
use crate::graph_data::HmsGraph;
use crate::kernel::Kernel;
use crate::pagerank::DAMPING;
use crate::par;

/// Pull-based PageRank kernel state. Holds the *transposed* graph plus the
/// original out-degrees.
#[derive(Debug)]
pub struct PageRankPull {
    /// In-edge CSR (transpose of the input graph).
    graph: HmsGraph,
    degree: TrackedVec<u32>,
    rank: TrackedVec<f64>,
    next: TrackedVec<f64>,
    // Host-side staging buffers, reused across iterations.
    bounds: Vec<u64>,
    nbrs: Vec<u32>,
    dbuf: Vec<u32>,
    live: Vec<u32>,
    degs: Vec<u32>,
    live_off: Vec<usize>,
    gathered: Vec<f64>,
    rbuf: Vec<f64>,
    accs: Vec<f64>,
    zeros: Vec<f64>,
    // Compiled-plan slots (`AccessMode::Planned`). Out-degrees are static,
    // so the live-source window — and every other iteration space here —
    // is identical across iterations.
    plan_bounds: Option<SweepPlan>,
    plan_nbrs: Option<SweepPlan>,
    plan_deg: Option<WindowPlan>,
    plan_rank_window: Option<WindowPlan>,
    plan_rank_sweep: Option<SweepPlan>,
    plan_next: Option<SweepPlan>,
}

impl PageRankPull {
    /// Builds the kernel from the *original* (out-edge) graph: transposes
    /// it host-side, loads the transpose into simulated memory, and stores
    /// the out-degrees needed for the gather.
    ///
    /// # Errors
    ///
    /// Allocation failures for the transposed arrays.
    pub fn new(rt: &mut Atmem, csr: &Csr) -> Result<Self> {
        let n = csr.num_vertices();
        let reversed = transpose(csr);
        let graph = HmsGraph::load(rt, &reversed)?;
        let degree = rt.malloc::<u32>(n, "prpull.degree")?;
        for v in 0..n {
            degree.poke(rt.machine_mut(), v, csr.degree(v) as u32);
        }
        let rank = rt.malloc::<f64>(n, "prpull.rank")?;
        let next = rt.malloc::<f64>(n, "prpull.next")?;
        Ok(PageRankPull {
            graph,
            degree,
            rank,
            next,
            bounds: Vec::new(),
            nbrs: Vec::new(),
            dbuf: Vec::new(),
            live: Vec::new(),
            degs: Vec::new(),
            live_off: Vec::new(),
            gathered: Vec::new(),
            rbuf: Vec::new(),
            accs: Vec::new(),
            zeros: Vec::new(),
            plan_bounds: None,
            plan_nbrs: None,
            plan_deg: None,
            plan_rank_window: None,
            plan_rank_sweep: None,
            plan_next: None,
        })
    }

    /// Copies the rank vector out of simulated memory (unaccounted).
    pub fn ranks(&self, rt: &mut Atmem) -> Vec<f64> {
        self.rank.to_vec(rt.machine_mut())
    }

    /// One pull iteration partitioned over `ctx.par_cores()` simulated
    /// cores, in two `run_cores` phases.
    ///
    /// **Phase A** splits the destinations into contiguous in-edge-balanced
    /// ranges; each core streams its in-bounds and source ids, gathers
    /// degree and rank windows (both read-only this phase) and writes its
    /// owned slice of `next`. The damping sweep cannot be fused here — it
    /// writes `rank`, which other cores are still gathering — so **phase B**
    /// re-partitions evenly and applies damping over owned slices. Each
    /// destination reduces in in-edge order exactly as the scalar body
    /// does, so the output is bit-identical for any core count.
    fn run_iteration_sharded(&mut self, ctx: &mut MemCtx) {
        let n = self.graph.num_vertices();
        let cores = ctx.par_cores();
        let mode = ctx.mode();
        let machine = ctx.machine();
        let host_bounds = self.graph.host_bounds(machine);
        let cuts = par::edge_cuts(&host_bounds, cores);
        let vcuts = par::even_cuts(n, cores);
        let graph = &self.graph;
        let degree = &self.degree;
        let rank = &self.rank;
        let next = &self.next;

        // Phase A: partitioned gather into owned slices of `next`.
        machine.run_cores(cores, |c, h| {
            let mut ctx = MemCtx::new(h, mode);
            let (lo, hi) = (cuts[c], cuts[c + 1]);
            if lo == hi {
                return;
            }
            let mut b = vec![0u64; hi - lo + 1];
            graph.bounds_run(&mut ctx, lo, &mut b);
            let (es, ee) = (b[0] as usize, b[hi - lo] as usize);
            let mut nbrs = vec![0u32; ee - es];
            graph.neighbor_run(&mut ctx, es as u64, &mut nbrs);
            let mut gathered = vec![0.0f64; hi - lo];
            let mut dbuf: Vec<u32> = Vec::new();
            let mut live: Vec<u32> = Vec::new();
            let mut degs: Vec<u32> = Vec::new();
            let mut rbuf: Vec<f64> = Vec::new();
            for (v, slot) in gathered.iter_mut().enumerate() {
                let window = &nbrs[b[v] as usize - es..b[v + 1] as usize - es];
                dbuf.resize(window.len(), 0);
                ctx.gather(degree, window, &mut dbuf);
                live.clear();
                degs.clear();
                for (&u, &deg) in window.iter().zip(&dbuf) {
                    if deg > 0 {
                        live.push(u);
                        degs.push(deg);
                    }
                }
                rbuf.resize(live.len(), 0.0);
                ctx.gather(rank, &live, &mut rbuf);
                let mut acc = 0.0f64;
                for (&r, &deg) in rbuf.iter().zip(&degs) {
                    acc += r / deg as f64;
                }
                *slot = acc;
            }
            ctx.write_run(next, lo, &gathered);
        });

        // Phase B: damping + swap over evenly owned slices.
        let base = (1.0 - DAMPING) / n as f64;
        machine.run_cores(cores, |c, h| {
            let mut ctx = MemCtx::new(h, mode);
            let (lo, hi) = (vcuts[c], vcuts[c + 1]);
            if lo == hi {
                return;
            }
            let mut accs = vec![0.0f64; hi - lo];
            ctx.read_run(next, lo, &mut accs);
            for acc in accs.iter_mut() {
                *acc = base + DAMPING * *acc;
            }
            ctx.write_run(rank, lo, &accs);
            ctx.write_run(next, lo, &vec![0.0f64; hi - lo]);
        });
    }
}

impl Kernel for PageRankPull {
    fn name(&self) -> &'static str {
        "PR-pull"
    }

    fn reset(&mut self, rt: &mut Atmem) {
        let n = self.graph.num_vertices() as f64;
        self.rank.fill(rt.machine_mut(), 1.0 / n);
        self.next.fill(rt.machine_mut(), 0.0);
    }

    fn run_iteration(&mut self, ctx: &mut MemCtx) {
        if ctx.par_cores() > 1 {
            self.run_iteration_sharded(ctx);
            return;
        }
        let n = self.graph.num_vertices();
        let num_edges = self.graph.num_edges();
        // Stream phase: in-edge row bounds and source ids.
        self.graph
            .bounds_into_planned(ctx, &mut self.plan_bounds, &mut self.bounds);
        self.nbrs.resize(num_edges, 0);
        self.graph
            .neighbor_run_planned(ctx, &mut self.plan_nbrs, 0, &mut self.nbrs);
        // Gather phase, pass 1: the whole in-neighbour list is one degree
        // window (per-row windows concatenate — each window is bit-identical
        // to its scalar loop, so row boundaries are unobservable in
        // simulated state).
        self.dbuf.resize(num_edges, 0);
        ctx.gather_planned(&self.degree, &mut self.plan_deg, &self.nbrs, &mut self.dbuf);
        // Host-side live filter: per destination row, the sources with
        // deg > 0, concatenated in row order.
        self.live.clear();
        self.degs.clear();
        self.live_off.clear();
        self.live_off.push(0);
        for v in 0..n {
            for e in self.bounds[v] as usize..self.bounds[v + 1] as usize {
                let deg = self.dbuf[e];
                if deg > 0 {
                    self.live.push(self.nbrs[e]);
                    self.degs.push(deg);
                }
            }
            self.live_off.push(self.live.len());
        }
        // Gather phase, pass 2: one rank window over the concatenated live
        // sources. Degrees are static, so this window's indices — and hence
        // the compiled plan — are identical every iteration.
        self.rbuf.resize(self.live.len(), 0.0);
        ctx.gather_planned(
            &self.rank,
            &mut self.plan_rank_window,
            &self.live,
            &mut self.rbuf,
        );
        self.gathered.resize(n, 0.0);
        for v in 0..n {
            let mut acc = 0.0f64;
            for k in self.live_off[v]..self.live_off[v + 1] {
                acc += self.rbuf[k] / self.degs[k] as f64;
            }
            self.gathered[v] = acc;
        }
        ctx.write_run_planned(&self.next, &mut self.plan_next, 0, &self.gathered);
        // Damping + swap phase: three sequential streams.
        let base = (1.0 - DAMPING) / n as f64;
        self.accs.resize(n, 0.0);
        ctx.read_run_planned(&self.next, &mut self.plan_next, 0, &mut self.accs);
        for acc in self.accs.iter_mut() {
            *acc = base + DAMPING * *acc;
        }
        ctx.write_run_planned(&self.rank, &mut self.plan_rank_sweep, 0, &self.accs);
        self.zeros.resize(n, 0.0);
        ctx.write_run_planned(&self.next, &mut self.plan_next, 0, &self.zeros);
    }

    fn checksum(&self, rt: &mut Atmem) -> f64 {
        let m = rt.machine_mut();
        (0..self.graph.num_vertices())
            .map(|v| self.rank.peek(m, v))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagerank::{reference_pagerank, PageRank};
    use atmem::AtmemConfig;
    use atmem_graph::Dataset;
    use atmem_hms::Platform;

    fn runtime() -> Atmem {
        Atmem::new(Platform::testing(), AtmemConfig::default()).unwrap()
    }

    #[test]
    fn pull_matches_reference() {
        let csr = Dataset::Pokec.build_small(7);
        let mut rt = runtime();
        let mut pr = PageRankPull::new(&mut rt, &csr).unwrap();
        pr.reset(&mut rt);
        for _ in 0..3 {
            pr.run_iteration(&mut MemCtx::bulk(rt.machine_mut()));
        }
        let expect = reference_pagerank(&csr, 3);
        for (v, (got, want)) in pr.ranks(&mut rt).iter().zip(&expect).enumerate() {
            assert!((got - want).abs() < 1e-10, "vertex {v}: {got} vs {want}");
        }
    }

    #[test]
    fn pull_and_push_agree() {
        let csr = Dataset::Rmat24.build_small(9);
        let mut rt1 = runtime();
        let mut pull = PageRankPull::new(&mut rt1, &csr).unwrap();
        pull.reset(&mut rt1);
        let mut rt2 = runtime();
        let g = HmsGraph::load(&mut rt2, &csr).unwrap();
        let mut push = PageRank::new(&mut rt2, g).unwrap();
        push.reset(&mut rt2);
        for _ in 0..2 {
            pull.run_iteration(&mut MemCtx::bulk(rt1.machine_mut()));
            push.run_iteration(&mut MemCtx::bulk(rt2.machine_mut()));
        }
        let a = pull.ranks(&mut rt1);
        let b = push.ranks(&mut rt2);
        for (v, (x, y)) in a.iter().zip(&b).enumerate() {
            assert!((x - y).abs() < 1e-10, "vertex {v}: pull {x} vs push {y}");
        }
    }
}
