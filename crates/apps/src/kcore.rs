//! k-core decomposition (iterative peeling).
//!
//! Computes each vertex's core number: the largest `k` such that the
//! vertex belongs to a subgraph where every vertex has degree ≥ `k`.
//! Peeling repeatedly removes the minimum-degree frontier; the degree
//! array takes scattered decrements driven by the neighbour distribution —
//! a write-heavy mirror of BFS's read pattern, and the access shape where
//! NVM's poor write bandwidth hurts most.

use atmem::{Atmem, Result};
use atmem_hms::TrackedVec;

use crate::access::MemCtx;
use crate::graph_data::HmsGraph;
use crate::kernel::Kernel;
use crate::par;

/// k-core kernel state. The graph should be symmetrised (undirected
/// degrees) for the classic definition.
#[derive(Debug)]
pub struct KCore {
    graph: HmsGraph,
    degree: TrackedVec<u32>,
    core: TrackedVec<u32>,
    max_core: u32,
}

impl KCore {
    /// Allocates k-core state over `graph`.
    ///
    /// # Errors
    ///
    /// Allocation failures for the degree/core arrays.
    pub fn new(rt: &mut Atmem, graph: HmsGraph) -> Result<Self> {
        let n = graph.num_vertices();
        let degree = rt.malloc::<u32>(n, "kcore.degree")?;
        let core = rt.malloc::<u32>(n, "kcore.core")?;
        Ok(KCore {
            graph,
            degree,
            core,
            max_core: 0,
        })
    }

    /// The maximum core number found by the last iteration.
    pub fn max_core(&self) -> u32 {
        self.max_core
    }

    /// Copies the core numbers out of simulated memory (unaccounted).
    pub fn core_numbers(&self, rt: &mut Atmem) -> Vec<u32> {
        self.core.to_vec(rt.machine_mut())
    }

    /// The peeling phase over pre-staged bounds. Each removal immediately
    /// decrements live neighbours' degrees, and those decrements gate what
    /// the frontier admits next — a data-dependent sequential chain that
    /// admits no deterministic partition — so this phase always runs on one
    /// core and both the scalar and sharded paths share it verbatim (which
    /// is what keeps the output bit-identical across core counts).
    fn peel(&mut self, ctx: &mut MemCtx, bounds: &[u64]) {
        let n = self.graph.num_vertices();
        let mut alive = n;
        let mut k = 0u32;
        let mut removed = vec![false; n];
        let mut nbrs: Vec<u32> = Vec::new();
        let mut live: Vec<u32> = Vec::new();
        let mut olds: Vec<u32> = Vec::new();
        while alive > 0 {
            // Peel every vertex with degree <= k until none remain, then
            // raise k. Degree reads are data-dependent: per-element.
            let mut frontier: Vec<u32> = (0..n as u32)
                .filter(|&v| !removed[v as usize] && ctx.get(&self.degree, v as usize) <= k)
                .collect();
            if frontier.is_empty() {
                k += 1;
                continue;
            }
            while let Some(v) = frontier.pop() {
                let vi = v as usize;
                if removed[vi] {
                    continue;
                }
                removed[vi] = true;
                alive -= 1;
                ctx.set(&self.core, vi, k);
                let (s, e) = (bounds[vi], bounds[vi + 1]);
                nbrs.resize((e - s) as usize, 0);
                self.graph.neighbor_run(ctx, s, &mut nbrs);
                // Decrement phase: the still-live neighbours form one
                // scatter-update window (removal only happens in the outer
                // pop loop, so the filter commutes with the accesses);
                // frontier admission replays host-side on the old values in
                // window order.
                live.clear();
                live.extend(nbrs.iter().copied().filter(|&u| !removed[u as usize]));
                olds.clear();
                ctx.gather_update(&self.degree, &live, |_, d| {
                    olds.push(d);
                    d.saturating_sub(1)
                });
                for (&u, &d) in live.iter().zip(&olds) {
                    if d.saturating_sub(1) <= k {
                        frontier.push(u);
                    }
                }
            }
        }
        self.max_core = k;
    }

    /// One decomposition with the degree initialisation partitioned over
    /// `ctx.par_cores()` simulated cores (each core streams its
    /// edge-balanced bounds slice and writes its owned degree slice), then
    /// the sequential [`peel`](KCore::peel) phase on the resident core.
    fn run_iteration_sharded(&mut self, ctx: &mut MemCtx) {
        let cores = ctx.par_cores();
        let mode = ctx.mode();
        let machine = ctx.machine();
        let host_bounds = self.graph.host_bounds(machine);
        let cuts = par::edge_cuts(&host_bounds, cores);
        let graph = &self.graph;
        let degree = &self.degree;
        let slices: Vec<Vec<u64>> = machine.run_cores(cores, |c, h| {
            let mut ctx = MemCtx::new(h, mode);
            let (lo, hi) = (cuts[c], cuts[c + 1]);
            if lo == hi {
                return Vec::new();
            }
            let mut b = vec![0u64; hi - lo + 1];
            graph.bounds_run(&mut ctx, lo, &mut b);
            let degrees: Vec<u32> = (0..hi - lo).map(|v| (b[v + 1] - b[v]) as u32).collect();
            ctx.write_run(degree, lo, &degrees);
            b
        });
        let mut bounds = vec![0u64; self.graph.num_vertices() + 1];
        for (c, b) in slices.into_iter().enumerate() {
            if !b.is_empty() {
                bounds[cuts[c]..=cuts[c + 1]].copy_from_slice(&b);
            }
        }
        self.peel(ctx, &bounds);
    }
}

impl Kernel for KCore {
    fn name(&self) -> &'static str {
        "kCore"
    }

    fn reset(&mut self, rt: &mut Atmem) {
        let m = rt.machine_mut();
        for v in 0..self.graph.num_vertices() {
            self.core.poke(m, v, 0);
        }
        self.max_core = 0;
    }

    fn run_iteration(&mut self, ctx: &mut MemCtx) {
        if ctx.par_cores() > 1 {
            self.run_iteration_sharded(ctx);
            return;
        }
        let n = self.graph.num_vertices();
        // Initialise degrees through the accounted path (part of the work):
        // one bounds stream in, one degree stream out.
        let bounds = self.graph.bounds(ctx);
        let degrees: Vec<u32> = (0..n).map(|v| (bounds[v + 1] - bounds[v]) as u32).collect();
        ctx.write_run(&self.degree, 0, &degrees);
        self.peel(ctx, &bounds);
    }

    fn checksum(&self, rt: &mut Atmem) -> f64 {
        let m = rt.machine_mut();
        (0..self.graph.num_vertices())
            .map(|v| self.core.peek(m, v) as f64)
            .sum()
    }
}

/// Host-side reference core numbers (bucket peeling).
pub fn reference_kcore(csr: &atmem_graph::Csr) -> Vec<u32> {
    let n = csr.num_vertices();
    let mut degree: Vec<u32> = (0..n).map(|v| csr.degree(v) as u32).collect();
    let mut core = vec![0u32; n];
    let mut removed = vec![false; n];
    let mut alive = n;
    let mut k = 0u32;
    while alive > 0 {
        let mut frontier: Vec<u32> = (0..n as u32)
            .filter(|&v| !removed[v as usize] && degree[v as usize] <= k)
            .collect();
        if frontier.is_empty() {
            k += 1;
            continue;
        }
        while let Some(v) = frontier.pop() {
            let vi = v as usize;
            if removed[vi] {
                continue;
            }
            removed[vi] = true;
            alive -= 1;
            core[vi] = k;
            for &u in csr.neighbors_of(vi) {
                let u = u as usize;
                if removed[u] {
                    continue;
                }
                degree[u] = degree[u].saturating_sub(1);
                if degree[u] <= k {
                    frontier.push(u as u32);
                }
            }
        }
    }
    core
}

#[cfg(test)]
mod tests {
    use super::*;
    use atmem::AtmemConfig;
    use atmem_graph::GraphBuilder;
    use atmem_hms::Platform;

    fn runtime() -> Atmem {
        Atmem::new(Platform::testing(), AtmemConfig::default()).unwrap()
    }

    #[test]
    fn triangle_with_tail_cores() {
        // Triangle 0-1-2 (core 2) with tail 2-3 (vertex 3: core 1).
        let csr = GraphBuilder::new(4)
            .edges([(0, 1), (0, 2), (1, 2), (2, 3)])
            .symmetrize(true)
            .deduplicate(true)
            .build();
        let mut rt = runtime();
        let g = HmsGraph::load(&mut rt, &csr).unwrap();
        let mut kc = KCore::new(&mut rt, g).unwrap();
        kc.reset(&mut rt);
        kc.run_iteration(&mut MemCtx::bulk(rt.machine_mut()));
        assert_eq!(kc.core_numbers(&mut rt), vec![2, 2, 2, 1]);
        assert_eq!(kc.max_core(), 2);
    }

    #[test]
    fn isolated_vertices_are_core_zero() {
        let csr = GraphBuilder::new(3).edges([(0, 1), (1, 0)]).build();
        let mut rt = runtime();
        let g = HmsGraph::load(&mut rt, &csr).unwrap();
        let mut kc = KCore::new(&mut rt, g).unwrap();
        kc.reset(&mut rt);
        kc.run_iteration(&mut MemCtx::bulk(rt.machine_mut()));
        let cores = kc.core_numbers(&mut rt);
        assert_eq!(cores[2], 0);
        assert_eq!(cores[0], 1);
    }

    #[test]
    fn matches_reference_on_rmat() {
        let mut config = atmem_graph::Dataset::Pokec.config();
        config.scale = 9;
        config.symmetrize = true;
        let csr = atmem_graph::rmat(&config, 11);
        let mut rt = runtime();
        let g = HmsGraph::load(&mut rt, &csr).unwrap();
        let mut kc = KCore::new(&mut rt, g).unwrap();
        kc.reset(&mut rt);
        kc.run_iteration(&mut MemCtx::bulk(rt.machine_mut()));
        assert_eq!(kc.core_numbers(&mut rt), reference_kcore(&csr));
        assert!(kc.max_core() >= 2, "R-MAT at this density has dense cores");
    }

    #[test]
    fn iterations_are_repeatable() {
        let csr = GraphBuilder::new(4)
            .edges([(0, 1), (1, 2), (2, 3), (3, 0)])
            .symmetrize(true)
            .deduplicate(true)
            .build();
        let mut rt = runtime();
        let g = HmsGraph::load(&mut rt, &csr).unwrap();
        let mut kc = KCore::new(&mut rt, g).unwrap();
        kc.reset(&mut rt);
        kc.run_iteration(&mut MemCtx::bulk(rt.machine_mut()));
        let first = kc.checksum(&mut rt);
        kc.reset(&mut rt);
        kc.run_iteration(&mut MemCtx::bulk(rt.machine_mut()));
        assert_eq!(kc.checksum(&mut rt), first);
    }
}
