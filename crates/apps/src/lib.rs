//! # atmem-apps — graph applications over the ATMem runtime
//!
//! The five applications of the ATMem paper's evaluation (BFS, SSSP,
//! PageRank, Betweenness Centrality, Connected Components) plus SpMV (§9),
//! implemented over HMS-resident CSR graphs allocated through the ATMem
//! API, and the two-iteration experimental protocol of §6.
//!
//! ## Example
//!
//! ```
//! use atmem::AtmemConfig;
//! use atmem_apps::{run_protocol, App, Mode};
//! use atmem_graph::Dataset;
//! use atmem_hms::Platform;
//!
//! # fn main() -> atmem::Result<()> {
//! let csr = Dataset::Pokec.build_small(7); // tiny variant for doctests
//! let result = run_protocol(
//!     Platform::testing(),
//!     AtmemConfig::default(),
//!     &csr,
//!     App::Bfs,
//!     Mode::Atmem,
//! )?;
//! assert!(result.second_iter.as_ns() > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod access;
pub mod bc;
pub mod bfs;
pub mod bfs_dir;
pub mod cc;
pub mod graph_data;
pub mod kcore;
pub mod kernel;
pub mod pagerank;
pub mod pagerank_pull;
pub mod par;
pub mod runner;
pub mod serve;
pub mod spmv;
pub mod sssp;
pub mod synth;
pub mod triangles;

pub use access::{AccessMode, MemCtx};
pub use bc::Bc;
pub use bfs::Bfs;
pub use bfs_dir::BfsDir;
pub use cc::Cc;
pub use graph_data::HmsGraph;
pub use kcore::KCore;
pub use kernel::{App, Kernel};
pub use pagerank::PageRank;
pub use pagerank_pull::PageRankPull;
pub use runner::{run_protocol, run_protocol_cores, run_protocol_rounds, Mode, ProtocolResult};
pub use serve::{serve_protocols, ServeReport, TenantReport, TenantSpec};
pub use spmv::Spmv;
pub use sssp::Sssp;
pub use synth::{drive_zipf, HotWindow, Zipf};
pub use triangles::Triangles;
