//! CSR graph resident in simulated heterogeneous memory.
//!
//! [`HmsGraph`] registers the three CSR arrays as ATMem data objects
//! (`atmem_malloc`), so the profiler sees accesses to them and the
//! optimizer can migrate their hot regions. Neighbour arrays of skewed
//! graphs are exactly the "massive data structures with skewed access
//! patterns" the paper targets.

use atmem::{Atmem, Result};
use atmem_graph::Csr;
use atmem_hms::{MemPort, SweepPlan, TrackedVec};

use crate::access::MemCtx;

/// A CSR graph whose arrays live in simulated memory.
#[derive(Debug)]
pub struct HmsGraph {
    num_vertices: usize,
    num_edges: usize,
    offsets: TrackedVec<u64>,
    neighbors: TrackedVec<u32>,
    weights: Option<TrackedVec<f32>>,
}

impl HmsGraph {
    /// Loads `csr` into simulated memory through the runtime, registering
    /// each array as a data object (`offsets`, `neighbors`, `weights`).
    ///
    /// Bulk initialisation is unaccounted (it happens before the measured
    /// region in every experiment).
    ///
    /// # Errors
    ///
    /// Allocation failures from the memory system.
    pub fn load(rt: &mut Atmem, csr: &Csr) -> Result<Self> {
        let offsets = rt.malloc::<u64>(csr.offsets().len(), "csr.offsets")?;
        offsets.fill_from(rt.machine_mut(), csr.offsets());
        let neighbors = rt.malloc::<u32>(csr.num_edges().max(1), "csr.neighbors")?;
        if csr.num_edges() > 0 {
            neighbors.fill_from(rt.machine_mut(), csr.neighbors());
        }
        let weights = match csr.weights() {
            Some(ws) => {
                let w = rt.malloc::<f32>(ws.len().max(1), "csr.weights")?;
                if !ws.is_empty() {
                    w.fill_from(rt.machine_mut(), ws);
                }
                Some(w)
            }
            None => None,
        };
        Ok(HmsGraph {
            num_vertices: csr.num_vertices(),
            num_edges: csr.num_edges(),
            offsets,
            neighbors,
            weights,
        })
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Whether edge weights are resident.
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// Accounted read of the edge-range bounds of vertex `v`.
    #[inline]
    pub fn edge_bounds<M: MemPort>(&self, ctx: &mut MemCtx<'_, M>, v: usize) -> (u64, u64) {
        (ctx.get(&self.offsets, v), ctx.get(&self.offsets, v + 1))
    }

    /// Accounted read of the destination of edge `e`.
    #[inline]
    pub fn neighbor<M: MemPort>(&self, ctx: &mut MemCtx<'_, M>, e: u64) -> u32 {
        ctx.get(&self.neighbors, e as usize)
    }

    /// Accounted read of the weight of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if the graph is unweighted.
    #[inline]
    pub fn weight<M: MemPort>(&self, ctx: &mut MemCtx<'_, M>, e: u64) -> f32 {
        let w = self.weights.as_ref().expect("graph loaded without weights");
        ctx.get(w, e as usize)
    }

    /// Accounted sequential read of all `n + 1` CSR row bounds.
    pub fn bounds<M: MemPort>(&self, ctx: &mut MemCtx<'_, M>) -> Vec<u64> {
        let mut out = Vec::new();
        self.bounds_into(ctx, &mut out);
        out
    }

    /// Like [`bounds`](HmsGraph::bounds), but reuses `out`'s allocation
    /// (kernels that stream the offsets every iteration keep one scratch
    /// buffer instead of reallocating).
    pub fn bounds_into<M: MemPort>(&self, ctx: &mut MemCtx<'_, M>, out: &mut Vec<u64>) {
        out.resize(self.num_vertices + 1, 0);
        ctx.read_run(&self.offsets, 0, out);
    }

    /// Accounted sequential read of `out.len()` row bounds starting at
    /// vertex `start` (sharded kernels stream just their partition's
    /// slice; a core covering `lo..hi` reads `hi - lo + 1` bounds).
    pub fn bounds_run<M: MemPort>(&self, ctx: &mut MemCtx<'_, M>, start: usize, out: &mut [u64]) {
        ctx.read_run(&self.offsets, start, out);
    }

    /// Unaccounted host copy of all row bounds. Partitioning metadata for
    /// the sharded kernels: the split points must be known *before* the
    /// cores fork, and the cores then re-read their own slices through the
    /// accounted path ([`bounds_run`](HmsGraph::bounds_run)).
    pub fn host_bounds(&self, machine: &mut impl MemPort) -> Vec<u64> {
        self.offsets.to_vec(machine)
    }

    /// Accounted sequential read of `buf.len()` neighbour ids starting at
    /// edge `start`.
    pub fn neighbor_run<M: MemPort>(&self, ctx: &mut MemCtx<'_, M>, start: u64, buf: &mut [u32]) {
        ctx.read_run(&self.neighbors, start as usize, buf);
    }

    /// Accounted sequential read of `buf.len()` edge weights starting at
    /// edge `start`.
    ///
    /// # Panics
    ///
    /// Panics if the graph is unweighted.
    pub fn weight_run<M: MemPort>(&self, ctx: &mut MemCtx<'_, M>, start: u64, buf: &mut [f32]) {
        let w = self.weights.as_ref().expect("graph loaded without weights");
        ctx.read_run(w, start as usize, buf);
    }

    /// [`bounds_into`](HmsGraph::bounds_into) with a caller-owned sweep-plan
    /// slot: kernels that stream the offsets every iteration compile the
    /// sweep once and replay it while the mapping table is unchanged (see
    /// [`MemCtx::read_run_planned`]).
    pub fn bounds_into_planned<M: MemPort>(
        &self,
        ctx: &mut MemCtx<'_, M>,
        slot: &mut Option<SweepPlan>,
        out: &mut Vec<u64>,
    ) {
        out.resize(self.num_vertices + 1, 0);
        ctx.read_run_planned(&self.offsets, slot, 0, out);
    }

    /// [`neighbor_run`](HmsGraph::neighbor_run) with a caller-owned
    /// sweep-plan slot (see [`MemCtx::read_run_planned`]).
    pub fn neighbor_run_planned<M: MemPort>(
        &self,
        ctx: &mut MemCtx<'_, M>,
        slot: &mut Option<SweepPlan>,
        start: u64,
        buf: &mut [u32],
    ) {
        ctx.read_run_planned(&self.neighbors, slot, start as usize, buf);
    }

    /// [`weight_run`](HmsGraph::weight_run) with a caller-owned sweep-plan
    /// slot (see [`MemCtx::read_run_planned`]).
    ///
    /// # Panics
    ///
    /// Panics if the graph is unweighted.
    pub fn weight_run_planned<M: MemPort>(
        &self,
        ctx: &mut MemCtx<'_, M>,
        slot: &mut Option<SweepPlan>,
        start: u64,
        buf: &mut [f32],
    ) {
        let w = self.weights.as_ref().expect("graph loaded without weights");
        ctx.read_run_planned(w, slot, start as usize, buf);
    }

    /// Total bytes of the resident CSR arrays.
    pub fn footprint(&self) -> usize {
        self.offsets.range().len
            + self.neighbors.range().len
            + self.weights.as_ref().map_or(0, |w| w.range().len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atmem::AtmemConfig;
    use atmem_graph::GraphBuilder;
    use atmem_hms::Platform;

    fn runtime() -> Atmem {
        Atmem::new(Platform::testing(), AtmemConfig::default()).unwrap()
    }

    #[test]
    fn load_round_trips_structure() {
        let csr = GraphBuilder::new(4).edges([(0, 1), (0, 2), (2, 3)]).build();
        let mut rt = runtime();
        let g = HmsGraph::load(&mut rt, &csr).unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3);
        assert!(!g.is_weighted());
        let mut ctx = MemCtx::bulk(rt.machine_mut());
        let (s, e) = g.edge_bounds(&mut ctx, 0);
        assert_eq!((s, e), (0, 2));
        assert_eq!(g.neighbor(&mut ctx, 0), 1);
        assert_eq!(g.neighbor(&mut ctx, 2), 3);
    }

    #[test]
    fn weighted_load_reads_weights() {
        let csr = GraphBuilder::new(3)
            .weighted_edges([(0, 1, 1.5), (1, 2, 2.5)])
            .build();
        let mut rt = runtime();
        let g = HmsGraph::load(&mut rt, &csr).unwrap();
        assert!(g.is_weighted());
        assert_eq!(g.weight(&mut MemCtx::bulk(rt.machine_mut()), 1), 2.5);
    }

    #[test]
    fn arrays_are_registered_with_the_runtime() {
        let csr = GraphBuilder::new(3).edges([(0, 1)]).build();
        let mut rt = runtime();
        let g = HmsGraph::load(&mut rt, &csr).unwrap();
        assert_eq!(rt.registry().len(), 2); // offsets + neighbors
        assert_eq!(rt.registry().total_bytes(), g.footprint());
    }

    #[test]
    fn empty_graph_loads() {
        let csr = GraphBuilder::new(2).build();
        let mut rt = runtime();
        let g = HmsGraph::load(&mut rt, &csr).unwrap();
        assert_eq!(g.num_edges(), 0);
        let (s, e) = g.edge_bounds(&mut MemCtx::bulk(rt.machine_mut()), 0);
        assert_eq!((s, e), (0, 0));
    }
}
