//! Wall-clock micro-benchmarks of one kernel iteration through the full
//! simulated access path (host simulator throughput, not simulated time).
//!
//! Each kernel runs twice — once forcing the scalar per-element path and
//! once on the bulk block fast path — and the two must agree on both the
//! kernel checksum and the machine counters (the fast path is invisible in
//! simulation space). SpMV and PageRank, whose iterations are dominated by
//! sequential CSR streams, additionally assert the ≥3x host speedup the
//! bulk path exists to deliver.

use atmem::{Atmem, AtmemConfig};
use atmem_apps::{AccessMode, HmsGraph, Kernel, PageRank, Spmv};
use atmem_bench::harness::{bench_with_setup, black_box};
use atmem_graph::{rmat, Csr, Dataset};
use atmem_hms::{MachineStats, Platform};

const SAMPLES: usize = 15;

/// R-MAT input sized so one iteration takes milliseconds host-side. The
/// low edge factor keeps the iterations stream-dominated (road-network-like
/// sparsity), which is the regime the bulk path targets.
fn bench_graph(weighted: bool) -> Csr {
    let mut config = Dataset::Rmat24.config();
    config.scale = 13; // 8192 vertices
    config.edge_factor = 2;
    let g = rmat(&config, 42);
    if weighted {
        g.with_random_weights(16.0, 7)
    } else {
        g
    }
}

fn fresh_kernel(
    csr: &Csr,
    mode: AccessMode,
    make: &dyn Fn(&mut Atmem, HmsGraph, AccessMode) -> Box<dyn Kernel>,
) -> (Atmem, Box<dyn Kernel>) {
    let mut rt = Atmem::new(Platform::testing(), AtmemConfig::default()).expect("runtime");
    let graph = HmsGraph::load(&mut rt, csr).expect("load");
    let mut kernel = make(&mut rt, graph, mode);
    kernel.reset(&mut rt);
    (rt, kernel)
}

fn run_once(
    csr: &Csr,
    mode: AccessMode,
    make: &dyn Fn(&mut Atmem, HmsGraph, AccessMode) -> Box<dyn Kernel>,
) -> (f64, MachineStats) {
    let (mut rt, mut kernel) = fresh_kernel(csr, mode, make);
    kernel.run_iteration(&mut rt);
    (kernel.checksum(&mut rt), rt.machine().stats())
}

/// Times one iteration in both modes, verifying the simulated results are
/// unchanged, and returns the bulk-over-scalar host speedup.
fn compare_modes(
    name: &str,
    csr: &Csr,
    make: &dyn Fn(&mut Atmem, HmsGraph, AccessMode) -> Box<dyn Kernel>,
) -> f64 {
    let (scalar_sum, scalar_stats) = run_once(csr, AccessMode::Scalar, make);
    let (bulk_sum, bulk_stats) = run_once(csr, AccessMode::Bulk, make);
    assert_eq!(scalar_sum, bulk_sum, "{name}: checksums diverge");
    assert_eq!(scalar_stats, bulk_stats, "{name}: counters diverge");

    let mut results = Vec::new();
    for (label, mode) in [("scalar", AccessMode::Scalar), ("bulk", AccessMode::Bulk)] {
        let r = bench_with_setup(
            &format!("kernel_iteration/{name}/{label}"),
            SAMPLES,
            || fresh_kernel(csr, mode, make),
            |(mut rt, mut kernel)| {
                // Time the iteration only; checksum equality was asserted
                // above and state teardown happens after the clock stops.
                kernel.run_iteration(&mut rt);
                black_box((rt, kernel))
            },
        );
        results.push(r);
    }
    // Fastest-sample comparison: the host is a shared single core, so
    // medians absorb scheduler interference that has nothing to do with
    // either access path.
    let speedup = results[0].min_ns() / results[1].min_ns();
    println!("kernel_iteration/{name}: bulk speedup {speedup:.2}x\n");
    speedup
}

fn main() {
    let weighted = bench_graph(true);
    let plain = bench_graph(false);

    let spmv_speedup = compare_modes("SpMV", &weighted, &|rt, g, mode| {
        let mut k = Spmv::new(rt, g).expect("kernel");
        k.set_mode(mode);
        Box::new(k)
    });
    let pr_speedup = compare_modes("PR", &plain, &|rt, g, mode| {
        let mut k = PageRank::new(rt, g).expect("kernel");
        k.set_mode(mode);
        Box::new(k)
    });

    assert!(
        spmv_speedup >= 3.0,
        "SpMV bulk path must be >= 3x faster host-side, got {spmv_speedup:.2}x"
    );
    assert!(
        pr_speedup >= 3.0,
        "PageRank bulk path must be >= 3x faster host-side, got {pr_speedup:.2}x"
    );
}
