//! Wall-clock micro-benchmarks of one kernel iteration through the full
//! simulated access path (host simulator throughput, not simulated time).
//!
//! Each kernel runs three times — through a [`AccessMode::Scalar`] context
//! (per-element path), through [`AccessMode::Bulk`] (block walks and the
//! window engine), and through [`AccessMode::Planned`] (compiled per-tier
//! run plans) — and all three must agree on the kernel checksum, the
//! machine counters and the simulated clock (the fast paths are invisible
//! in simulation space). SpMV and PageRank full iterations assert the ≥3x
//! host speedup of the stream-dominated path; the isolated PageRank
//! scatter and SpMV gather phases assert ≥2x on the window engine alone.
//!
//! The plan-migrated kernels (SpMV, PR push, PR pull, BFS) compare
//! *steady-state* plan replay against the window engine (first iteration
//! compiles, subsequent iterations replay). The attainable replay speedup
//! is bounded by the bit-identity contract: both paths pay the identical
//! per-line TLB walk and LLC probe — the dominant cost — so replay only
//! removes the per-element mapping lookup, translation-key and bounds
//! work. Measured steady-state speedups are 1.05–1.5x (gather-heavy
//! kernels highest, sweep-dominated traversals lowest); the gates pin
//! that reality: replay must never regress below 0.85x on any kernel and
//! the geometric mean across the four must stay ≥1x (see
//! `EXPERIMENTS.md`).
//!
//! The **core sweep** runs PageRank, SpMV and the traversal kernels (BFS,
//! SSSP, BC) at 1 and 4 simulated cores: kernel checksums must be
//! bit-identical at every core count (always asserted, even under
//! `--smoke`), the 4-core run of the regular kernels must be ≥2x faster
//! wall-clock, and at least one frontier-sharded traversal kernel must
//! show a wall-clock speedup — gates that only arm when the host actually
//! has ≥4 hardware threads to shard over (and never under `--smoke`).
//!
//! `--smoke` runs only the equality half on a reduced graph (no timing, no
//! speedup gates) so CI can verify Scalar/Bulk equivalence on every push
//! without inheriting wall-clock flakiness.
//!
//! Every run snapshots its measurements to `BENCH_kernels.json` at the repo
//! root (override with `--json PATH`).

use atmem::{Atmem, AtmemConfig};
use atmem_apps::{
    AccessMode, Bc, Bfs, HmsGraph, Kernel, MemCtx, PageRank, PageRankPull, Spmv, Sssp,
};
use atmem_bench::harness::{bench_with_setup, black_box};
use atmem_graph::{rmat, Csr, Dataset};
use atmem_hms::{MachineStats, Placement, Platform, SimDuration, TrackedVec};

const SAMPLES: usize = 15;

/// R-MAT input sized so one iteration takes milliseconds host-side. The
/// low edge factor keeps the iterations stream-dominated (road-network-like
/// sparsity), which is the regime the bulk path targets.
fn bench_graph(weighted: bool, smoke: bool) -> Csr {
    let mut config = Dataset::Rmat24.config();
    config.scale = if smoke { 9 } else { 13 }; // 512 or 8192 vertices
    config.edge_factor = 2;
    let g = rmat(&config, 42);
    if weighted {
        g.with_random_weights(16.0, 7)
    } else {
        g
    }
}

/// Denser R-MAT for the traversal sweeps: each frontier level must carry
/// enough edge work to amortize the sharded engine's per-level fork and
/// merge, which the low-edge-factor stream graph above would not (its
/// levels are a few hundred vertices — thread-spawn territory).
fn traversal_graph(weighted: bool, smoke: bool) -> Csr {
    let mut config = Dataset::Rmat24.config();
    config.scale = if smoke { 9 } else { 13 }; // 512 or 8192 vertices
    config.edge_factor = 16;
    let g = rmat(&config, 24);
    if weighted {
        g.with_random_weights(16.0, 5)
    } else {
        g
    }
}

/// Kernel factory over the raw CSR (some kernels, like PR-pull, build
/// their own transposed simulator-resident graph).
type Make = dyn Fn(&mut Atmem, &Csr) -> Box<dyn Kernel>;

fn fresh_kernel(csr: &Csr, make: &Make) -> (Atmem, Box<dyn Kernel>) {
    let mut rt = Atmem::new(Platform::testing(), AtmemConfig::default()).expect("runtime");
    let mut kernel = make(&mut rt, csr);
    kernel.reset(&mut rt);
    (rt, kernel)
}

fn run_once(csr: &Csr, mode: AccessMode, make: &Make) -> (f64, MachineStats, SimDuration) {
    let (mut rt, mut kernel) = fresh_kernel(csr, make);
    // Two iterations: in planned mode the first compiles the plans and the
    // second replays them, so both plan-tier phases must be invisible.
    for _ in 0..2 {
        kernel.run_iteration(&mut MemCtx::new(rt.machine_mut(), mode));
    }
    let sum = kernel.checksum(&mut rt);
    (sum, rt.machine().stats(), rt.now())
}

/// Runs two iterations in all three modes and asserts the simulated
/// results are bit-identical — the plan-vs-window equivalence gate CI
/// runs on every push (`--smoke`).
fn assert_modes_agree(name: &str, csr: &Csr, make: &Make) {
    let (scalar_sum, scalar_stats, scalar_now) = run_once(csr, AccessMode::Scalar, make);
    for (label, mode) in [("bulk", AccessMode::Bulk), ("planned", AccessMode::Planned)] {
        let (sum, stats, now) = run_once(csr, mode, make);
        assert_eq!(scalar_sum, sum, "{name}: {label} checksum diverges");
        assert_eq!(scalar_stats, stats, "{name}: {label} counters diverge");
        assert_eq!(scalar_now, now, "{name}: {label} simulated clock diverges");
    }
    println!(
        "equivalence/{name}: scalar/bulk/planned ok ({} accesses)",
        scalar_stats.accesses
    );
}

/// Times one iteration in both modes (equality already asserted) and
/// returns the bulk-over-scalar host speedup.
fn compare_modes(name: &str, csr: &Csr, make: &Make) -> f64 {
    let mut results = Vec::new();
    for (label, mode) in [("scalar", AccessMode::Scalar), ("bulk", AccessMode::Bulk)] {
        let r = bench_with_setup(
            &format!("kernel_iteration/{name}/{label}"),
            SAMPLES,
            || fresh_kernel(csr, make),
            |(mut rt, mut kernel)| {
                // Time the iteration only; checksum equality was asserted
                // separately and state teardown happens after the clock
                // stops.
                kernel.run_iteration(&mut MemCtx::new(rt.machine_mut(), mode));
                black_box((rt, kernel))
            },
        );
        results.push(r);
    }
    // Fastest-sample comparison: the host is a shared single core, so
    // medians absorb scheduler interference that has nothing to do with
    // either access path.
    let speedup = results[0].min_ns() / results[1].min_ns();
    println!("kernel_iteration/{name}: bulk speedup {speedup:.2}x\n");
    speedup
}

/// Times a *steady-state* iteration — setup runs one warmup iteration in
/// the same mode, so planned runs replay compiled plans instead of
/// compiling them — in Bulk vs Planned, and returns the planned-over-bulk
/// host speedup. This is the plan tier's whole value proposition: the
/// compile cost is paid once, the replay skips the window engine's
/// per-element mapping, translation-key and bounds work on every
/// subsequent iteration.
fn compare_planned(name: &str, csr: &Csr, make: &Make) -> f64 {
    let mut results = Vec::new();
    for (label, mode) in [("bulk", AccessMode::Bulk), ("planned", AccessMode::Planned)] {
        let r = bench_with_setup(
            &format!("steady_iteration/{name}/{label}"),
            SAMPLES,
            || {
                let (mut rt, mut kernel) = fresh_kernel(csr, make);
                kernel.run_iteration(&mut MemCtx::new(rt.machine_mut(), mode));
                (rt, kernel)
            },
            |(mut rt, mut kernel)| {
                kernel.run_iteration(&mut MemCtx::new(rt.machine_mut(), mode));
                black_box((rt, kernel))
            },
        );
        results.push(r);
    }
    let speedup = results[0].min_ns() / results[1].min_ns();
    println!("steady_iteration/{name}: planned speedup {speedup:.2}x\n");
    speedup
}

/// State for the isolated random-access phase benchmarks: a property array
/// plus the graph's adjacency, both simulator-resident, and the host-side
/// staging the kernels keep.
struct PhaseState {
    rt: Atmem,
    array: TrackedVec<f64>,
    cols: TrackedVec<u32>,
    bounds: Vec<u64>,
    nbrs: Vec<u32>,
    colbuf: Vec<u32>,
}

fn phase_state(csr: &Csr) -> PhaseState {
    let mut rt = Atmem::new(Platform::testing(), AtmemConfig::default()).expect("runtime");
    let array = TrackedVec::<f64>::new(
        rt.machine_mut(),
        csr.num_vertices(),
        Placement::Preferred(atmem_hms::TierId::FAST),
    )
    .expect("alloc");
    array.fill(rt.machine_mut(), 1.0);
    let nbrs: Vec<u32> = csr.neighbors().to_vec();
    let cols = TrackedVec::<u32>::new(
        rt.machine_mut(),
        nbrs.len(),
        Placement::Preferred(atmem_hms::TierId::FAST),
    )
    .expect("alloc");
    for (e, &c) in nbrs.iter().enumerate() {
        cols.poke(rt.machine_mut(), e, c);
    }
    let bounds: Vec<u64> = csr.offsets().to_vec();
    PhaseState {
        rt,
        array,
        cols,
        bounds,
        nbrs,
        colbuf: Vec::new(),
    }
}

/// The PageRank push kernel's scatter phase exactly as the kernel executes
/// it: the neighbour windows are already host-staged (the kernel streams
/// them once per iteration, outside this phase), so this is the pure window
/// engine — one `gather_update` window per vertex over its out-neighbours.
fn pr_scatter_phase(st: &mut PhaseState, mode: AccessMode) {
    let mut ctx = MemCtx::new(st.rt.machine_mut(), mode);
    for v in 0..st.bounds.len() - 1 {
        let (s, e) = (st.bounds[v] as usize, st.bounds[v + 1] as usize);
        if s == e {
            continue;
        }
        let share = 1.0 / (e - s) as f64;
        ctx.gather_update(&st.array, &st.nbrs[s..e], |_, acc| acc + share);
    }
}

/// The SpMV kernel's gather phase exactly as the kernel executes it: the
/// accounted column-index stream followed by the `x[col]` gather over the
/// whole edge list (the kernel cannot gather without first reading the
/// indices through the accounted path).
fn spmv_gather_phase(st: &mut PhaseState, out: &mut Vec<f64>, mode: AccessMode) {
    let mut ctx = MemCtx::new(st.rt.machine_mut(), mode);
    st.colbuf.resize(st.nbrs.len(), 0);
    ctx.read_run(&st.cols, 0, &mut st.colbuf);
    out.resize(st.colbuf.len(), 0.0);
    ctx.gather(&st.array, &st.colbuf, out);
}

/// Asserts Scalar/Bulk equality of a phase and (unless `smoke`) times it,
/// returning the bulk-over-scalar host speedup (1.0 under `smoke`).
fn compare_phase(
    name: &str,
    csr: &Csr,
    smoke: bool,
    run: impl Fn(&mut PhaseState, AccessMode),
) -> f64 {
    let mut scalar = phase_state(csr);
    run(&mut scalar, AccessMode::Scalar);
    let mut bulk = phase_state(csr);
    run(&mut bulk, AccessMode::Bulk);
    assert_eq!(
        scalar.rt.machine().stats(),
        bulk.rt.machine().stats(),
        "{name}: phase counters diverge"
    );
    assert_eq!(
        scalar.rt.now(),
        bulk.rt.now(),
        "{name}: phase clocks diverge"
    );
    assert_eq!(
        scalar.array.to_vec(scalar.rt.machine_mut()),
        bulk.array.to_vec(bulk.rt.machine_mut()),
        "{name}: phase contents diverge"
    );
    println!(
        "equivalence/{name}: ok ({} accesses)",
        bulk.rt.machine().stats().accesses
    );
    if smoke {
        return 1.0;
    }
    let mut results = Vec::new();
    for (label, mode) in [("scalar", AccessMode::Scalar), ("bulk", AccessMode::Bulk)] {
        let r = bench_with_setup(
            &format!("phase/{name}/{label}"),
            SAMPLES,
            || phase_state(csr),
            |mut st| {
                run(&mut st, mode);
                black_box(st)
            },
        );
        results.push(r);
    }
    let speedup = results[0].min_ns() / results[1].min_ns();
    println!("phase/{name}: bulk speedup {speedup:.2}x\n");
    speedup
}

/// Runs `iters` iterations at `cores` simulated cores and returns the
/// checksum (used by the sweep's invariance assertion).
fn checksum_at_cores(csr: &Csr, make: &Make, cores: usize) -> f64 {
    let (mut rt, mut kernel) = fresh_kernel(csr, make);
    kernel.run_iteration(&mut MemCtx::bulk(rt.machine_mut()).with_cores(cores));
    kernel.checksum(&mut rt)
}

/// One kernel's core-count sweep: asserts checksum invariance across
/// 1/2/4 simulated cores, then (unless `smoke`) times 1-core vs 4-core
/// iterations and returns `(cores1_min_ns, cores4_min_ns)`.
fn core_sweep(name: &str, csr: &Csr, smoke: bool, make: &Make) -> Option<(f64, f64)> {
    let scalar = checksum_at_cores(csr, make, 1);
    for cores in [2usize, 4] {
        let sharded = checksum_at_cores(csr, make, cores);
        assert_eq!(
            scalar.to_bits(),
            sharded.to_bits(),
            "{name}: checksum diverges at {cores} cores"
        );
    }
    println!("core_sweep/{name}: checksums invariant across 1/2/4 cores");
    if smoke {
        return None;
    }
    let mut mins = Vec::new();
    for cores in [1usize, 4] {
        let r = bench_with_setup(
            &format!("core_sweep/{name}/cores{cores}"),
            SAMPLES,
            || fresh_kernel(csr, make),
            |(mut rt, mut kernel)| {
                kernel.run_iteration(&mut MemCtx::bulk(rt.machine_mut()).with_cores(cores));
                black_box((rt, kernel))
            },
        );
        mins.push(r.min_ns());
    }
    let speedup = mins[0] / mins[1];
    println!("core_sweep/{name}: 4-core speedup {speedup:.2}x\n");
    Some((mins[0], mins[1]))
}

/// Hand-rolled JSON snapshot of the run's measurements (no serde in-tree).
fn write_snapshot(path: &str, smoke: bool, entries: &[(String, f64)]) {
    let mut body = String::from("{\n");
    body.push_str(&format!("  \"smoke\": {smoke},\n"));
    body.push_str(&format!(
        "  \"host_parallelism\": {},\n",
        host_parallelism()
    ));
    body.push_str("  \"measurements\": {\n");
    for (i, (key, value)) in entries.iter().enumerate() {
        let sep = if i + 1 == entries.len() { "" } else { "," };
        body.push_str(&format!("    \"{key}\": {value}{sep}\n"));
    }
    body.push_str("  }\n}\n");
    if let Err(e) = std::fs::write(path, body) {
        eprintln!("warning: could not write {path}: {e}");
    }
}

fn host_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn main() {
    let mut smoke = false;
    let mut json_path =
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json").to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--json" => json_path = args.next().expect("missing value for --json"),
            _ => {}
        }
    }
    let weighted = bench_graph(true, smoke);
    let plain = bench_graph(false, smoke);

    let make_spmv = |rt: &mut Atmem, csr: &Csr| -> Box<dyn Kernel> {
        let g = HmsGraph::load(rt, csr).expect("load");
        Box::new(Spmv::new(rt, g).expect("kernel"))
    };
    let make_pr = |rt: &mut Atmem, csr: &Csr| -> Box<dyn Kernel> {
        let g = HmsGraph::load(rt, csr).expect("load");
        Box::new(PageRank::new(rt, g).expect("kernel"))
    };
    let make_prpull = |rt: &mut Atmem, csr: &Csr| -> Box<dyn Kernel> {
        Box::new(PageRankPull::new(rt, csr).expect("kernel"))
    };

    assert_modes_agree("SpMV", &weighted, &make_spmv);
    assert_modes_agree("PR", &plain, &make_pr);
    assert_modes_agree("PR-pull", &plain, &make_prpull);
    let pr_scatter = compare_phase("PR-scatter", &plain, smoke, pr_scatter_phase);
    let spmv_gather = compare_phase("SpMV-gather", &weighted, smoke, |st, mode| {
        let mut out = Vec::new();
        spmv_gather_phase(st, &mut out, mode);
        black_box(out);
    });

    // Core-count sweep: output invariance always, timings unless --smoke.
    // The traversal kernels run their frontier-sharded bodies here — the
    // smoke half is the CI gate that distances/scores survive the
    // partition bit-for-bit at 1/2/4 cores.
    let trav = traversal_graph(false, smoke);
    let trav_weighted = traversal_graph(true, smoke);
    let make_bfs = |rt: &mut Atmem, csr: &Csr| -> Box<dyn Kernel> {
        let g = HmsGraph::load(rt, csr).expect("load");
        Box::new(Bfs::new(rt, g, 0).expect("kernel"))
    };
    let make_sssp = |rt: &mut Atmem, csr: &Csr| -> Box<dyn Kernel> {
        let g = HmsGraph::load(rt, csr).expect("load");
        Box::new(Sssp::new(rt, g, 0).expect("kernel"))
    };
    let make_bc = |rt: &mut Atmem, csr: &Csr| -> Box<dyn Kernel> {
        let g = HmsGraph::load(rt, csr).expect("load");
        Box::new(Bc::new(rt, g, 0).expect("kernel"))
    };
    assert_modes_agree("BFS", &trav, &make_bfs);
    let pr_sweep = core_sweep("PR", &plain, smoke, &make_pr);
    let spmv_sweep = core_sweep("SpMV", &weighted, smoke, &make_spmv);
    let bfs_sweep = core_sweep("BFS", &trav, smoke, &make_bfs);
    let sssp_sweep = core_sweep("SSSP", &trav_weighted, smoke, &make_sssp);
    let bc_sweep = core_sweep("BC", &trav, smoke, &make_bc);

    if smoke {
        write_snapshot(&json_path, smoke, &[]);
        println!("smoke run: equivalence checks passed, timing gates skipped");
        println!("snapshot: {json_path}");
        return;
    }

    let spmv_speedup = compare_modes("SpMV", &weighted, &make_spmv);
    let pr_speedup = compare_modes("PR", &plain, &make_pr);

    // Steady-state plan-vs-window comparison for the plan-migrated kernels.
    let plan_speedups = [
        ("SpMV", compare_planned("SpMV", &weighted, &make_spmv)),
        ("PR", compare_planned("PR", &plain, &make_pr)),
        ("PR-pull", compare_planned("PR-pull", &plain, &make_prpull)),
        ("BFS", compare_planned("BFS", &trav, &make_bfs)),
    ];

    let mut entries = vec![
        ("bulk_speedup_SpMV".to_string(), spmv_speedup),
        ("bulk_speedup_PR".to_string(), pr_speedup),
        ("bulk_speedup_PR_scatter".to_string(), pr_scatter),
        ("bulk_speedup_SpMV_gather".to_string(), spmv_gather),
    ];
    for (name, speedup) in plan_speedups {
        entries.push((format!("plan_speedup_{name}"), speedup));
    }
    for (name, sweep) in [
        ("PR", pr_sweep),
        ("SpMV", spmv_sweep),
        ("BFS", bfs_sweep),
        ("SSSP", sssp_sweep),
        ("BC", bc_sweep),
    ] {
        if let Some((one, four)) = sweep {
            entries.push((format!("core_sweep_{name}_cores1_ns"), one));
            entries.push((format!("core_sweep_{name}_cores4_ns"), four));
            entries.push((format!("core_sweep_{name}_speedup"), one / four));
        }
    }
    write_snapshot(&json_path, smoke, &entries);
    println!("snapshot: {json_path}");

    assert!(
        spmv_speedup >= 3.0,
        "SpMV bulk path must be >= 3x faster host-side, got {spmv_speedup:.2}x"
    );
    assert!(
        pr_speedup >= 3.0,
        "PageRank bulk path must be >= 3x faster host-side, got {pr_speedup:.2}x"
    );
    assert!(
        pr_scatter >= 2.0,
        "PageRank scatter phase must be >= 2x faster in bulk, got {pr_scatter:.2}x"
    );
    assert!(
        spmv_gather >= 2.0,
        "SpMV gather phase must be >= 2x faster in bulk, got {spmv_gather:.2}x"
    );
    // Plan-replay gates. Bit-identity caps the ceiling: the per-line
    // TLB/LLC simulation dominates both paths, so replay only sheds the
    // per-element mapping-lookup/translation/bounds work (~1.05–1.5x
    // measured; see the module doc and EXPERIMENTS.md). Gate what holds
    // robustly across hosts and runs: no kernel regresses, and replay is
    // a net win on average. (Per-kernel ratios wobble run to run — the
    // absolute deltas are tens of microseconds on a shared host — so the
    // positive gate averages across kernels instead of picking one.)
    for (name, speedup) in plan_speedups {
        assert!(
            speedup >= 0.85,
            "{name} steady-state plan replay must not regress below the \
             window engine (>= 0.85x), got {speedup:.2}x"
        );
    }
    let geomean = (plan_speedups.iter().map(|&(_, s)| s.ln()).sum::<f64>()
        / plan_speedups.len() as f64)
        .exp();
    assert!(
        geomean >= 1.0,
        "plan replay must be a net win across the plan-migrated kernels; \
         geometric-mean speedup was {geomean:.2}x"
    );

    // The sharded-engine wall-clock gate needs real hardware threads to
    // shard over; on smaller hosts the sweep still reports, but only the
    // invariance half gates.
    if host_parallelism() >= 4 {
        for (name, sweep) in [("PR", pr_sweep), ("SpMV", spmv_sweep)] {
            let (one, four) = sweep.expect("sweep timings present outside --smoke");
            let speedup = one / four;
            assert!(
                speedup >= 2.0,
                "{name} at 4 simulated cores must be >= 2x faster wall-clock, got {speedup:.2}x"
            );
        }
        // Frontier-sharded traversals pay a fork/merge barrier per level,
        // so the bar is lower than the streaming kernels' 2x — but at
        // least one of them must come out ahead of scalar wall-clock.
        let best = [("BFS", bfs_sweep), ("SSSP", sssp_sweep), ("BC", bc_sweep)]
            .into_iter()
            .map(|(name, sweep)| {
                let (one, four) = sweep.expect("sweep timings present outside --smoke");
                (name, one / four)
            })
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("traversal sweeps ran");
        assert!(
            best.1 >= 1.1,
            "at least one frontier-sharded traversal kernel must beat scalar \
             wall-clock at 4 cores; best was {} at {:.2}x",
            best.0,
            best.1
        );
        println!(
            "core_sweep traversal gate: best {} at {:.2}x",
            best.0, best.1
        );
    } else {
        println!(
            "core-sweep timing gate skipped: host parallelism {} < 4",
            host_parallelism()
        );
    }
}
