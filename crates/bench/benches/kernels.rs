//! Criterion micro-benchmarks of one kernel iteration through the full
//! simulated access path (wall-clock simulator throughput).

use atmem::{Atmem, AtmemConfig};
use atmem_apps::{App, HmsGraph};
use atmem_graph::Dataset;
use atmem_hms::Platform;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_kernel_iteration(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_iteration");
    group.sample_size(10);
    for app in [App::Bfs, App::PageRank, App::Cc] {
        let csr = {
            let g = Dataset::Rmat24.build_small(6);
            if app.needs_weights() {
                g.with_random_weights(16.0, 1)
            } else {
                g
            }
        };
        group.bench_with_input(BenchmarkId::from_parameter(app.name()), &app, |b, &app| {
            b.iter_with_setup(
                || {
                    let mut rt =
                        Atmem::new(Platform::testing(), AtmemConfig::default()).expect("runtime");
                    let graph = HmsGraph::load(&mut rt, &csr).expect("load");
                    let mut kernel = app.instantiate(&mut rt, graph).expect("kernel");
                    kernel.reset(&mut rt);
                    (rt, kernel)
                },
                |(mut rt, mut kernel)| {
                    kernel.run_iteration(&mut rt);
                    black_box(kernel.checksum(&mut rt));
                },
            );
        });
    }
    group.finish();
}

fn bench_extension_kernels(c: &mut Criterion) {
    use atmem_apps::{KCore, Kernel, Triangles};
    let mut group = c.benchmark_group("extension_kernels");
    group.sample_size(10);
    let csr = {
        let mut config = Dataset::Pokec.config();
        config.scale = 10;
        config.symmetrize = true;
        atmem_graph::rmat(&config, 3)
    };
    group.bench_function("TC", |b| {
        b.iter_with_setup(
            || {
                let mut rt =
                    Atmem::new(Platform::testing(), AtmemConfig::default()).expect("runtime");
                let graph = HmsGraph::load(&mut rt, &csr).expect("load");
                let kernel = Triangles::new(&mut rt, graph).expect("kernel");
                (rt, kernel)
            },
            |(mut rt, mut kernel)| {
                kernel.reset(&mut rt);
                kernel.run_iteration(&mut rt);
                black_box(kernel.checksum(&mut rt));
            },
        );
    });
    group.bench_function("kCore", |b| {
        b.iter_with_setup(
            || {
                let mut rt =
                    Atmem::new(Platform::testing(), AtmemConfig::default()).expect("runtime");
                let graph = HmsGraph::load(&mut rt, &csr).expect("load");
                let kernel = KCore::new(&mut rt, graph).expect("kernel");
                (rt, kernel)
            },
            |(mut rt, mut kernel)| {
                kernel.reset(&mut rt);
                kernel.run_iteration(&mut rt);
                black_box(kernel.checksum(&mut rt));
            },
        );
    });
    group.finish();
}

criterion_group!(benches, bench_kernel_iteration, bench_extension_kernels);
criterion_main!(benches);
