//! Criterion micro-benchmarks of the migration engines (wall-clock cost of
//! the simulator's real work: copies, remaps, bookkeeping — not simulated
//! time, which the fig/table binaries report).

use atmem::migrate::plan::{MigrationPlan, PlannedRegion};
use atmem::migrate::staged::execute_plan;
use atmem::{MigrationConfig, ObjectId};
use atmem_hms::{Machine, Placement, Platform, TierId, VirtRange};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn machine_with_region(bytes: usize) -> (Machine, VirtRange) {
    let mut m = Machine::new(Platform::testing());
    let r = m.alloc(bytes, Placement::Slow).expect("alloc");
    (m, VirtRange::new(r.start, bytes))
}

fn bench_staged_migration(c: &mut Criterion) {
    let mut group = c.benchmark_group("staged_migration");
    group.sample_size(20);
    for mib in [1usize, 4] {
        let bytes = mib * 1024 * 1024;
        group.bench_with_input(BenchmarkId::from_parameter(mib), &bytes, |b, &bytes| {
            b.iter_with_setup(
                || machine_with_region(bytes),
                |(mut m, range)| {
                    let plan = MigrationPlan {
                        regions: vec![PlannedRegion {
                            object: ObjectId::from_index(0),
                            range,
                            priority: 1.0,
                        }],
                        total_bytes: range.len,
                        dropped_bytes: 0,
                    };
                    let out =
                        execute_plan(&mut m, &plan, &MigrationConfig::default(), TierId::FAST)
                            .expect("migration");
                    black_box(out);
                },
            );
        });
    }
    group.finish();
}

fn bench_mbind_migration(c: &mut Criterion) {
    let mut group = c.benchmark_group("mbind_migration");
    group.sample_size(20);
    for mib in [1usize, 4] {
        let bytes = mib * 1024 * 1024;
        group.bench_with_input(BenchmarkId::from_parameter(mib), &bytes, |b, &bytes| {
            b.iter_with_setup(
                || machine_with_region(bytes),
                |(mut m, range)| {
                    black_box(m.migrate_mbind(range, TierId::FAST).expect("mbind"));
                },
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_staged_migration, bench_mbind_migration);
criterion_main!(benches);
