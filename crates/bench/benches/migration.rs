//! Micro-benchmarks of the migration engines (wall-clock cost of the
//! simulator's real work: copies, remaps, bookkeeping — not simulated
//! time, which the fig/table binaries report).

use atmem::migrate::plan::{MigrationPlan, PlannedRegion};
use atmem::migrate::staged::execute_plan;
use atmem::{MigrationConfig, ObjectId};
use atmem_bench::harness::{bench_with_setup, black_box};
use atmem_hms::{Machine, Placement, Platform, TierId, VirtRange};

fn machine_with_region(bytes: usize) -> (Machine, VirtRange) {
    let mut m = Machine::new(Platform::testing());
    let r = m.alloc(bytes, Placement::Slow).expect("alloc");
    (m, VirtRange::new(r.start, bytes))
}

fn main() {
    for mib in [1usize, 4] {
        let bytes = mib * 1024 * 1024;
        bench_with_setup(
            &format!("staged_migration/{mib}MiB"),
            20,
            || machine_with_region(bytes),
            |(mut m, range)| {
                let plan = MigrationPlan {
                    regions: vec![PlannedRegion {
                        object: ObjectId::from_index(0),
                        range,
                        priority: 1.0,
                        dst: None,
                    }],
                    total_bytes: range.len,
                    dropped_bytes: 0,
                };
                let out = execute_plan(&mut m, &plan, &MigrationConfig::default(), TierId::FAST)
                    .expect("migration");
                black_box(out);
            },
        );
    }

    for mib in [1usize, 4] {
        let bytes = mib * 1024 * 1024;
        bench_with_setup(
            &format!("mbind_migration/{mib}MiB"),
            20,
            || machine_with_region(bytes),
            |(mut m, range)| {
                black_box(m.migrate_mbind(range, TierId::FAST).expect("mbind"));
            },
        );
    }
}
