//! Micro-benchmarks of the analyzer stages: local selection, tree
//! construction, and promotion, across chunk counts and arities.

use atmem::analyzer::tree::MaryTree;
use atmem::analyzer::{analyze, promote::promote};
use atmem::{chunk_geometry, AnalyzerConfig, ChunkConfig, Registry};
use atmem_bench::harness::{bench, black_box};
use atmem_hms::{VirtAddr, VirtRange};

/// A registry with one object of `chunks` chunks and a skewed sample
/// distribution (hot cluster + noise), mimicking a profiled graph kernel.
fn skewed_registry(chunks: usize) -> Registry {
    let mut registry = Registry::new();
    let bytes = chunks * 4096;
    let geometry = chunk_geometry(
        bytes,
        &ChunkConfig {
            target_chunks: chunks,
            min_chunk_bytes: 4096,
        },
    );
    let id = registry.register(
        "bench",
        VirtRange::new(VirtAddr::new(0x4000_0000), bytes),
        geometry,
    );
    for c in 0..chunks {
        let samples = if c % 16 < 2 { 100 } else { c as u64 % 3 };
        let va = registry.get(id).unwrap().chunk_range(c).start;
        for _ in 0..samples {
            registry.attribute(va).unwrap();
        }
    }
    registry
}

fn main() {
    for chunks in [256usize, 1024, 4096] {
        let registry = skewed_registry(chunks);
        let config = AnalyzerConfig::default();
        bench(&format!("analyze/{chunks}"), 50, || {
            black_box(analyze(&registry, &config))
        });
    }

    let leaves: Vec<bool> = (0..8192).map(|i| i % 16 < 2).collect();
    for arity in [2usize, 4, 8] {
        bench(&format!("tree_build/{arity}"), 50, || {
            black_box(MaryTree::build(&leaves, arity))
        });
    }

    let tree = MaryTree::build(&leaves, 4);
    bench("promote_8192", 50, || {
        black_box(promote(&tree, &leaves, 0.4))
    });
}
