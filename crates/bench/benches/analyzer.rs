//! Criterion micro-benchmarks of the analyzer stages: local selection,
//! tree construction, and promotion, across chunk counts and arities.

use atmem::analyzer::tree::MaryTree;
use atmem::analyzer::{analyze, promote::promote};
use atmem::{chunk_geometry, AnalyzerConfig, ChunkConfig, Registry};
use atmem_hms::{VirtAddr, VirtRange};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

/// A registry with one object of `chunks` chunks and a skewed sample
/// distribution (hot cluster + noise), mimicking a profiled graph kernel.
fn skewed_registry(chunks: usize) -> Registry {
    let mut registry = Registry::new();
    let bytes = chunks * 4096;
    let geometry = chunk_geometry(
        bytes,
        &ChunkConfig {
            target_chunks: chunks,
            min_chunk_bytes: 4096,
        },
    );
    let id = registry.register(
        "bench",
        VirtRange::new(VirtAddr::new(0x4000_0000), bytes),
        geometry,
    );
    for c in 0..chunks {
        let samples = if c % 16 < 2 { 100 } else { c as u64 % 3 };
        let va = registry.get(id).unwrap().chunk_range(c).start;
        for _ in 0..samples {
            registry.attribute(va).unwrap();
        }
    }
    registry
}

fn bench_analyze(c: &mut Criterion) {
    let mut group = c.benchmark_group("analyze");
    for chunks in [256usize, 1024, 4096] {
        let registry = skewed_registry(chunks);
        let config = AnalyzerConfig::default();
        group.bench_with_input(BenchmarkId::from_parameter(chunks), &chunks, |b, _| {
            b.iter(|| black_box(analyze(&registry, &config)));
        });
    }
    group.finish();
}

fn bench_tree_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_build");
    let leaves: Vec<bool> = (0..8192).map(|i| i % 16 < 2).collect();
    for arity in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(arity), &arity, |b, &m| {
            b.iter(|| black_box(MaryTree::build(&leaves, m)));
        });
    }
    group.finish();
}

fn bench_promotion(c: &mut Criterion) {
    let leaves: Vec<bool> = (0..8192).map(|i| i % 16 < 2).collect();
    let tree = MaryTree::build(&leaves, 4);
    c.bench_function("promote_8192", |b| {
        b.iter(|| black_box(promote(&tree, &leaves, 0.4)));
    });
}

criterion_group!(benches, bench_analyze, bench_tree_build, bench_promotion);
criterion_main!(benches);
