//! Ablation studies of ATMem's design choices.
//!
//! The paper motivates each design but only sweeps ε; these ablations cover
//! the rest, as called out in DESIGN.md:
//!
//! * tree-based promotion on/off (sampled selection only);
//! * globally adaptive vs fixed tree-ratio threshold (§4.3.2's "naive
//!   design");
//! * promotion-tree arity m ∈ {2, 4, 8};
//! * chunk granularity (target chunks per object);
//! * sampling period (profiling accuracy vs overhead);
//! * migration mechanism (staged / direct / mbind) × thread count;
//! * profiling overhead on the first iteration (§7.4).

use atmem::{AtmemConfig, MigrationMechanism};
use atmem_apps::{run_protocol, App, Mode};
use atmem_graph::Dataset;
use atmem_hms::Platform;

use crate::{build_dataset, emit, ResultTable};

fn bfs_run(config: AtmemConfig, csr: &atmem_graph::Csr) -> atmem::Result<(f64, f64, f64)> {
    let r = run_protocol(Platform::nvm_dram(), config, csr, App::Bfs, Mode::Atmem)?;
    let mig = r
        .optimize
        .as_ref()
        .map(|o| o.migration.time.as_ms())
        .unwrap_or(0.0);
    Ok((r.second_iter.as_ms(), r.data_ratio, mig))
}

/// Promotion and threshold-adaption ablations.
///
/// # Errors
///
/// Propagates protocol failures.
pub fn run_analyzer_ablation() -> atmem::Result<ResultTable> {
    let csr = build_dataset(Dataset::Twitter, false);
    let mut table = ResultTable::new(
        "Ablation: analyzer variants (BFS on twitter, NVM-DRAM)",
        &["time_ms", "data_ratio", "migration_ms"],
    );
    let (t, r, m) = bfs_run(AtmemConfig::default(), &csr)?;
    table.push_row("full (promotion + adaptive TR)", vec![t, r, m]);

    let mut no_promo = AtmemConfig::default();
    no_promo.analyzer.promotion_enabled = false;
    let (t, r, m) = bfs_run(no_promo, &csr)?;
    table.push_row("no promotion (sampled only)", vec![t, r, m]);

    let mut fixed_tr = AtmemConfig::default();
    fixed_tr.analyzer.adaptive_tr = false;
    let (t, r, m) = bfs_run(fixed_tr, &csr)?;
    table.push_row("fixed TR threshold", vec![t, r, m]);

    for arity in [2usize, 4, 8] {
        let (t, r, m) = bfs_run(AtmemConfig::default().with_arity(arity), &csr)?;
        table.push_row(format!("arity m={arity}"), vec![t, r, m]);
    }
    emit(&table, "ablation_analyzer").expect("write results");
    Ok(table)
}

/// Chunk-granularity sweep (§4.1: granularity trades placement precision
/// against metadata/profiling overhead).
///
/// # Errors
///
/// Propagates protocol failures.
pub fn run_granularity_ablation() -> atmem::Result<ResultTable> {
    let csr = build_dataset(Dataset::Twitter, false);
    let mut table = ResultTable::new(
        "Ablation: chunk granularity (BFS on twitter, NVM-DRAM)",
        &["time_ms", "data_ratio", "migration_ms"],
    );
    for target in [16usize, 64, 256, 1024, 4096] {
        let (t, r, m) = bfs_run(AtmemConfig::default().with_target_chunks(target), &csr)?;
        table.push_row(format!("target_chunks={target}"), vec![t, r, m]);
    }
    emit(&table, "ablation_granularity").expect("write results");
    Ok(table)
}

/// Sampling-period sweep.
///
/// # Errors
///
/// Propagates protocol failures.
pub fn run_sampling_ablation() -> atmem::Result<ResultTable> {
    let csr = build_dataset(Dataset::Twitter, false);
    let mut table = ResultTable::new(
        "Ablation: sampling period (BFS on twitter, NVM-DRAM)",
        &["time_ms", "data_ratio", "samples"],
    );
    for period in [16u64, 64, 256, 1024, 4096, 16384] {
        let r = run_protocol(
            Platform::nvm_dram(),
            AtmemConfig::default().with_sampling_period(period),
            &csr,
            App::Bfs,
            Mode::Atmem,
        )?;
        let samples = r
            .optimize
            .as_ref()
            .map(|o| o.profile.samples as f64)
            .unwrap_or(0.0);
        table.push_row(
            format!("period={period}"),
            vec![r.second_iter.as_ms(), r.data_ratio, samples],
        );
    }
    emit(&table, "ablation_sampling").expect("write results");
    Ok(table)
}

/// Migration mechanism × concurrency ablation.
///
/// # Errors
///
/// Propagates protocol failures.
pub fn run_migration_ablation() -> atmem::Result<ResultTable> {
    let csr = build_dataset(Dataset::Rmat24, false);
    let mut table = ResultTable::new(
        "Ablation: migration mechanism (PR on rmat24, NVM-DRAM)",
        &["migration_ms", "iter2_ms", "iter2_tlb_misses"],
    );
    let variants: [(&str, MigrationMechanism, Option<usize>); 4] = [
        ("staged, platform threads", MigrationMechanism::Staged, None),
        ("staged, 1 thread", MigrationMechanism::Staged, Some(1)),
        ("direct, platform threads", MigrationMechanism::Direct, None),
        ("mbind", MigrationMechanism::Mbind, None),
    ];
    for (label, mechanism, threads) in variants {
        let mut config = AtmemConfig::default();
        config.migration.mechanism = mechanism;
        config.migration.threads = threads;
        let r = run_protocol(
            Platform::nvm_dram(),
            config,
            &csr,
            App::PageRank,
            Mode::Atmem,
        )?;
        let mig = r
            .optimize
            .as_ref()
            .map(|o| o.migration.time.as_ms())
            .unwrap_or(0.0);
        table.push_row(
            label,
            vec![
                mig,
                r.second_iter.as_ms(),
                r.second_iter_stats.tlb_misses as f64,
            ],
        );
    }
    emit(&table, "ablation_migration").expect("write results");
    Ok(table)
}

/// Sampling accuracy against the full-information oracle.
///
/// The related work profiles offline with full traces (Pin); ATMem argues
/// sampled profiles suffice once the tree promotion patches the gaps. A
/// sampling period of 1 records *every* LLC read miss — the oracle. This
/// study scores each period's final selection (sampled ∪ promoted) against
/// the oracle's by Jaccard similarity, alongside the resulting time.
///
/// # Errors
///
/// Propagates protocol failures.
pub fn run_sampling_accuracy() -> atmem::Result<ResultTable> {
    let csr = build_dataset(Dataset::Twitter, false);
    let selection_of = |period: u64| -> atmem::Result<(Vec<bool>, f64, f64)> {
        let r = run_protocol(
            Platform::nvm_dram(),
            AtmemConfig::default().with_sampling_period(period),
            &csr,
            App::Bfs,
            Mode::Atmem,
        )?;
        let report = r.optimize.as_ref().expect("atmem mode optimizes");
        let bitmap: Vec<bool> = report
            .analysis
            .objects
            .iter()
            .flat_map(|o| o.critical.iter().copied())
            .collect();
        Ok((bitmap, r.second_iter.as_ms(), r.data_ratio))
    };
    let (oracle, oracle_ms, oracle_ratio) = selection_of(1)?;
    let mut table = ResultTable::new(
        "Ablation: sampling accuracy vs full-information oracle (BFS on twitter)",
        &["jaccard_vs_oracle", "time_ms", "data_ratio"],
    );
    table.push_row("oracle (period=1)", vec![1.0, oracle_ms, oracle_ratio]);
    for period in [16u64, 64, 256, 1024, 4096, 16384] {
        let (sel, ms, ratio) = selection_of(period)?;
        let inter = sel.iter().zip(&oracle).filter(|&(&a, &b)| a && b).count();
        let union = sel.iter().zip(&oracle).filter(|&(&a, &b)| a || b).count();
        let jaccard = if union == 0 {
            1.0
        } else {
            inter as f64 / union as f64
        };
        table.push_row(format!("period={period}"), vec![jaccard, ms, ratio]);
    }
    emit(&table, "ablation_accuracy").expect("write results");
    Ok(table)
}

/// Profiling overhead (§7.4: "less than 10% of the first iteration").
///
/// # Errors
///
/// Propagates protocol failures.
pub fn run_overhead_study() -> atmem::Result<ResultTable> {
    let mut table = ResultTable::new(
        "Overhead (paper 7.4): profiled vs unprofiled first iteration",
        &["unprofiled_ms", "profiled_ms", "overhead_pct"],
    );
    for app in App::FIVE {
        let csr = build_dataset(Dataset::Rmat24, app.needs_weights());
        let profiled = run_protocol(
            Platform::nvm_dram(),
            AtmemConfig::default(),
            &csr,
            app,
            Mode::Atmem,
        )?;
        let plain = run_protocol(
            Platform::nvm_dram(),
            AtmemConfig::default(),
            &csr,
            app,
            Mode::Baseline,
        )?;
        let a = plain.first_iter.as_ms();
        let b = profiled.first_iter.as_ms();
        table.push_row(app.name(), vec![a, b, (b / a - 1.0) * 100.0]);
    }
    emit(&table, "overhead").expect("write results");
    Ok(table)
}

/// Amortisation analysis (§7.4: "most benchmarks can get enough benefits
/// to compensate the overhead caused by ATMem within a few iterations").
/// Iterations to amortise = (profiling overhead + migration time) /
/// per-iteration gain.
///
/// # Errors
///
/// Propagates protocol failures.
pub fn run_amortization_study() -> atmem::Result<ResultTable> {
    let mut table = ResultTable::new(
        "Amortisation (paper 7.4): one-time cost vs per-iteration gain",
        &["one_time_ms", "gain_per_iter_ms", "iters_to_amortise"],
    );
    for app in App::FIVE {
        let csr = build_dataset(Dataset::Friendster, app.needs_weights());
        let atm = run_protocol(
            Platform::nvm_dram(),
            AtmemConfig::default(),
            &csr,
            app,
            Mode::Atmem,
        )?;
        let base = run_protocol(
            Platform::nvm_dram(),
            AtmemConfig::default(),
            &csr,
            app,
            Mode::Baseline,
        )?;
        let profiling_overhead = atm.first_iter.as_ms() - base.first_iter.as_ms();
        let migration = atm
            .optimize
            .as_ref()
            .map(|o| o.migration.time.as_ms())
            .unwrap_or(0.0);
        let one_time = profiling_overhead.max(0.0) + migration;
        let gain = base.second_iter.as_ms() - atm.second_iter.as_ms();
        let iters = if gain > 0.0 {
            one_time / gain
        } else {
            f64::INFINITY
        };
        table.push_row(app.name(), vec![one_time, gain, iters]);
    }
    emit(&table, "amortization").expect("write results");
    Ok(table)
}

/// Runs every ablation.
///
/// # Errors
///
/// Propagates protocol and I/O failures.
pub fn run() -> atmem::Result<Vec<ResultTable>> {
    Ok(vec![
        run_analyzer_ablation()?,
        run_granularity_ablation()?,
        run_sampling_ablation()?,
        run_migration_ablation()?,
        run_sampling_accuracy()?,
        run_overhead_study()?,
        run_amortization_study()?,
    ])
}
