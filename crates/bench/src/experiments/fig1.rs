//! Figure 1 — the motivating slowdown study (paper §2.1).
//!
//! * Figure 1a: execution time with all data on Optane NVM, normalised to
//!   all data on DRAM (the larger the bar, the more placement matters).
//! * Figure 1b: execution time with all data on DRAM, normalised to the
//!   `numactl -p MCDRAM` preferred policy on the KNL testbed.

use atmem::AtmemConfig;
use atmem_apps::{run_protocol, App, Mode};
use atmem_hms::Platform;

use crate::{build_dataset, emit, ResultTable};
use atmem_graph::Dataset;

/// Runs both panels and emits `fig1a.csv` / `fig1b.csv`.
///
/// # Errors
///
/// Propagates protocol and I/O failures.
pub fn run() -> atmem::Result<Vec<ResultTable>> {
    let apps = App::FIVE;
    let app_names: Vec<&str> = apps.iter().map(|a| a.name()).collect();

    let mut fig1a = ResultTable::new(
        "Figure 1a: all-NVM time normalised to all-DRAM (NVM-DRAM testbed)",
        &app_names,
    );
    let mut fig1b = ResultTable::new(
        "Figure 1b: all-DRAM time normalised to MCDRAM-preferred (MCDRAM-DRAM testbed)",
        &app_names,
    );

    for dataset in Dataset::ALL {
        let mut row_a = Vec::new();
        let mut row_b = Vec::new();
        for app in apps {
            let csr = build_dataset(dataset, app.needs_weights());
            // Panel a: NVM baseline vs DRAM ideal.
            let slow = run_protocol(
                Platform::nvm_dram(),
                AtmemConfig::default(),
                &csr,
                app,
                Mode::Baseline,
            )?;
            let fast = run_protocol(
                Platform::nvm_dram(),
                AtmemConfig::default(),
                &csr,
                app,
                Mode::Ideal,
            )?;
            row_a.push(slow.second_iter.as_ns() / fast.second_iter.as_ns());
            // Panel b: DRAM baseline vs MCDRAM-preferred.
            let dram = run_protocol(
                Platform::mcdram_dram(),
                AtmemConfig::default(),
                &csr,
                app,
                Mode::Baseline,
            )?;
            let preferred = run_protocol(
                Platform::mcdram_dram(),
                AtmemConfig::default(),
                &csr,
                app,
                Mode::Preferred,
            )?;
            row_b.push(dram.second_iter.as_ns() / preferred.second_iter.as_ns());
        }
        fig1a.push_row(dataset.name(), row_a);
        fig1b.push_row(dataset.name(), row_b);
    }
    emit(&fig1a, "fig1a").expect("write results");
    emit(&fig1b, "fig1b").expect("write results");
    Ok(vec![fig1a, fig1b])
}
