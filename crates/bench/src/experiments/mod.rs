//! Drivers for every table and figure of the paper's evaluation, plus the
//! ablations DESIGN.md calls out. Each driver prints its tables and writes
//! matching CSVs under `results/`.

pub mod ablation;
pub mod fig1;
pub mod overall;
pub mod sweep;
pub mod table4;
pub mod variance;
