//! Figures 5–8 and Table 3 — the overall performance evaluation (§7.1).
//!
//! * Figure 5: NVM-DRAM execution time, three bars per (app, dataset):
//!   all-NVM baseline, ATMem, all-DRAM ideal.
//! * Table 3: min/max ATMem slowdown versus the all-DRAM ideal, per app.
//! * Figure 6: MCDRAM-DRAM execution time: all-DRAM baseline, ATMem,
//!   MCDRAM-preferred reference.
//! * Figures 7/8: fraction of data ATMem places on the fast tier.

use atmem::AtmemConfig;
use atmem_apps::{run_protocol, App, Mode, ProtocolResult};
use atmem_graph::Dataset;
use atmem_hms::Platform;

use crate::{build_dataset, emit, ResultTable};

/// One (app, dataset) cell of the overall evaluation.
#[derive(Debug)]
pub struct OverallCell {
    /// Application.
    pub app: App,
    /// Dataset.
    pub dataset: Dataset,
    /// Baseline (all data on the large-capacity tier).
    pub baseline: ProtocolResult,
    /// ATMem placement.
    pub atmem: ProtocolResult,
    /// Reference: all-fast ideal (NVM testbed) or preferred fill (KNL).
    pub reference: ProtocolResult,
}

/// Runs the full grid on one platform. `reference_mode` is [`Mode::Ideal`]
/// on the NVM testbed and [`Mode::Preferred`] on the KNL testbed (MCDRAM
/// cannot hold the large datasets, exactly as in the paper).
///
/// # Errors
///
/// Propagates protocol failures.
pub fn run_grid(platform: &Platform, reference_mode: Mode) -> atmem::Result<Vec<OverallCell>> {
    let mut cells = Vec::new();
    for app in App::FIVE {
        for dataset in Dataset::ALL {
            let csr = build_dataset(dataset, app.needs_weights());
            let baseline = run_protocol(
                platform.clone(),
                AtmemConfig::default(),
                &csr,
                app,
                Mode::Baseline,
            )?;
            let atmem = run_protocol(
                platform.clone(),
                AtmemConfig::default(),
                &csr,
                app,
                Mode::Atmem,
            )?;
            let reference = run_protocol(
                platform.clone(),
                AtmemConfig::default(),
                &csr,
                app,
                reference_mode,
            )?;
            assert_eq!(
                baseline.checksum, atmem.checksum,
                "{app}/{dataset}: ATMem changed the kernel output"
            );
            cells.push(OverallCell {
                app,
                dataset,
                baseline,
                atmem,
                reference,
            });
        }
    }
    Ok(cells)
}

/// Figure 5 + Table 3 + Figure 7 (NVM-DRAM testbed).
///
/// # Errors
///
/// Propagates protocol and I/O failures.
pub fn run_nvm() -> atmem::Result<Vec<ResultTable>> {
    let cells = run_grid(&Platform::nvm_dram(), Mode::Ideal)?;

    let mut fig5 = ResultTable::new(
        "Figure 5: execution time (ms) on NVM-DRAM: baseline(NVM) / ATMem / ideal(DRAM)",
        &["baseline_ms", "atmem_ms", "ideal_ms", "speedup_vs_base"],
    );
    let mut fig7 = ResultTable::new(
        "Figure 7: data ratio ATMem places on DRAM (NVM-DRAM testbed)",
        &["data_ratio"],
    );
    let mut table3 = ResultTable::new(
        "Table 3: ATMem slowdown vs all-DRAM ideal (min/max per app)",
        &["min_slowdown", "max_slowdown"],
    );

    for app in App::FIVE {
        let mut slowdowns = Vec::new();
        for cell in cells.iter().filter(|c| c.app == app) {
            let label = format!("{}/{}", app.name(), cell.dataset.name());
            let base = cell.baseline.second_iter.as_ns();
            let atm = cell.atmem.second_iter.as_ns();
            let ideal = cell.reference.second_iter.as_ns();
            fig5.push_row(
                label.clone(),
                vec![base / 1e6, atm / 1e6, ideal / 1e6, base / atm],
            );
            fig7.push_row(label, vec![cell.atmem.data_ratio]);
            slowdowns.push(atm / ideal - 1.0);
        }
        let min = slowdowns.iter().cloned().fold(f64::MAX, f64::min);
        let max = slowdowns.iter().cloned().fold(f64::MIN, f64::max);
        table3.push_row(app.name(), vec![min, max]);
    }
    emit(&fig5, "fig5").expect("write results");
    emit(&table3, "table3").expect("write results");
    emit(&fig7, "fig7").expect("write results");
    Ok(vec![fig5, table3, fig7])
}

/// Figure 6 + Figure 8 (MCDRAM-DRAM testbed).
///
/// # Errors
///
/// Propagates protocol and I/O failures.
pub fn run_mcdram() -> atmem::Result<Vec<ResultTable>> {
    let cells = run_grid(&Platform::mcdram_dram(), Mode::Preferred)?;

    let mut fig6 = ResultTable::new(
        "Figure 6: execution time (ms) on MCDRAM-DRAM: baseline(DRAM) / ATMem / MCDRAM-p",
        &["baseline_ms", "atmem_ms", "mcdram_p_ms", "speedup_vs_base"],
    );
    let mut fig8 = ResultTable::new(
        "Figure 8: data ratio ATMem places on MCDRAM (MCDRAM-DRAM testbed)",
        &["data_ratio"],
    );
    for cell in &cells {
        let label = format!("{}/{}", cell.app.name(), cell.dataset.name());
        let base = cell.baseline.second_iter.as_ns();
        let atm = cell.atmem.second_iter.as_ns();
        let pref = cell.reference.second_iter.as_ns();
        fig6.push_row(
            label.clone(),
            vec![base / 1e6, atm / 1e6, pref / 1e6, base / atm],
        );
        fig8.push_row(label, vec![cell.atmem.data_ratio]);
    }
    emit(&fig6, "fig6").expect("write results");
    emit(&fig8, "fig8").expect("write results");
    Ok(vec![fig6, fig8])
}
