//! Table 4 — `mbind` vs the multi-stage multi-threaded migration (§7.3).
//!
//! For PageRank on each dataset and testbed, two builds of the experiment
//! differ only in the migration engine. The table reports, as ratios
//! mbind/ATMem: TLB misses of the post-migration iteration, and migration
//! time. Paper bands: NVM-DRAM time 1.3–2.7x (avg 2.07x), TLB up to ~74x;
//! MCDRAM-DRAM time 3.0–8.2x (avg 5.32x), TLB ~1.2–2.5x.

use atmem::{AtmemConfig, MigrationMechanism};
use atmem_apps::{run_protocol, App, Mode};
use atmem_graph::Dataset;
use atmem_hms::Platform;

use crate::{build_dataset, emit, geomean, ResultTable};

/// One dataset's mbind/ATMem ratios.
#[derive(Debug, Clone, Copy)]
pub struct Table4Row {
    /// Post-migration iteration TLB-miss ratio (mbind / ATMem).
    pub tlb_ratio: f64,
    /// Migration time ratio (mbind / ATMem).
    pub time_ratio: f64,
}

/// Runs one testbed's comparison.
///
/// # Errors
///
/// Propagates protocol failures.
pub fn run_platform(platform: &Platform) -> atmem::Result<Vec<(Dataset, Table4Row)>> {
    let mut rows = Vec::new();
    for dataset in Dataset::ALL {
        let csr = build_dataset(dataset, false);
        let mut staged_config = AtmemConfig::default();
        staged_config.migration.mechanism = MigrationMechanism::Staged;
        let staged = run_protocol(
            platform.clone(),
            staged_config,
            &csr,
            App::PageRank,
            Mode::Atmem,
        )?;
        let mut mbind_config = AtmemConfig::default();
        mbind_config.migration.mechanism = MigrationMechanism::Mbind;
        let mbind = run_protocol(
            platform.clone(),
            mbind_config,
            &csr,
            App::PageRank,
            Mode::Atmem,
        )?;
        assert_eq!(staged.checksum, mbind.checksum, "mechanisms must agree");
        let staged_report = staged.optimize.as_ref().expect("atmem mode optimizes");
        let mbind_report = mbind.optimize.as_ref().expect("atmem mode optimizes");
        rows.push((
            dataset,
            Table4Row {
                tlb_ratio: mbind.second_iter_stats.tlb_misses as f64
                    / staged.second_iter_stats.tlb_misses.max(1) as f64,
                time_ratio: mbind_report.migration.time.as_ns()
                    / staged_report.migration.time.as_ns().max(1.0),
            },
        ));
    }
    Ok(rows)
}

/// Runs both testbeds; emits `table4.csv`.
///
/// # Errors
///
/// Propagates protocol and I/O failures.
pub fn run() -> atmem::Result<Vec<ResultTable>> {
    let mut table = ResultTable::new(
        "Table 4: reduction in TLB misses and migration time (mbind / ATMem) for PR",
        &[
            "nvm_tlb_ratio",
            "nvm_time_ratio",
            "mcdram_tlb_ratio",
            "mcdram_time_ratio",
        ],
    );
    let nvm = run_platform(&Platform::nvm_dram())?;
    let knl = run_platform(&Platform::mcdram_dram())?;
    for ((dataset, n), (_, k)) in nvm.iter().zip(&knl) {
        table.push_row(
            dataset.name(),
            vec![n.tlb_ratio, n.time_ratio, k.tlb_ratio, k.time_ratio],
        );
    }
    table.push_row(
        "avg(geomean)",
        vec![
            geomean(nvm.iter().map(|(_, r)| r.tlb_ratio)),
            geomean(nvm.iter().map(|(_, r)| r.time_ratio)),
            geomean(knl.iter().map(|(_, r)| r.tlb_ratio)),
            geomean(knl.iter().map(|(_, r)| r.time_ratio)),
        ],
    );
    emit(&table, "table4").expect("write results");
    Ok(vec![table])
}
