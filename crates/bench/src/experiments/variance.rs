//! Run-to-run variance study (the paper's §6 methodology: "experiments
//! are repeated ten times and the average time is reported").
//!
//! The simulator is deterministic except for the PEBS jitter RNG; sweeping
//! its seed is the run-to-run variation of the sampled profile. This study
//! quantifies how stable ATMem's placement and speedup are across ten
//! sampling realisations — the paper's implicit claim that one profiled
//! iteration suffices.

use atmem::AtmemConfig;
use atmem_apps::{run_protocol, App, Mode};
use atmem_graph::Dataset;
use atmem_hms::Platform;

use crate::{build_dataset, emit, ResultTable};

/// Number of repetitions (the paper's ten).
pub const REPEATS: u64 = 10;

/// Mean and coefficient of variation of a sample.
fn mean_cv(values: &[f64]) -> (f64, f64) {
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
    (mean, var.sqrt() / mean.max(1e-12))
}

/// Runs BFS and PR on two datasets, ten sampling seeds each.
///
/// # Errors
///
/// Propagates protocol and I/O failures.
pub fn run() -> atmem::Result<Vec<ResultTable>> {
    let mut table = ResultTable::new(
        "Variance over 10 sampling seeds (NVM-DRAM testbed)",
        &["mean_iter2_ms", "cv_iter2", "mean_ratio", "cv_ratio"],
    );
    for app in [App::Bfs, App::PageRank] {
        for dataset in [Dataset::Pokec, Dataset::Twitter] {
            let csr = build_dataset(dataset, app.needs_weights());
            let mut times = Vec::new();
            let mut ratios = Vec::new();
            for seed in 0..REPEATS {
                let mut config = AtmemConfig::default();
                config.sampling.rng_seed = 0x5EED + seed;
                let r = run_protocol(Platform::nvm_dram(), config, &csr, app, Mode::Atmem)?;
                times.push(r.second_iter.as_ms());
                ratios.push(r.data_ratio);
            }
            let (mt, cvt) = mean_cv(&times);
            let (mr, cvr) = mean_cv(&ratios);
            table.push_row(
                format!("{}/{}", app.name(), dataset.name()),
                vec![mt, cvt, mr, cvr],
            );
        }
    }
    emit(&table, "variance").expect("write results");
    Ok(vec![table])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_cv_basics() {
        let (m, cv) = mean_cv(&[2.0, 2.0, 2.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!(cv.abs() < 1e-12);
        let (m, cv) = mean_cv(&[1.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((cv - 0.5).abs() < 1e-12);
    }
}
