//! Figures 9 and 10 — data-ratio sensitivity via the ε sweep (§7.2).
//!
//! The paper sweeps the tree-ratio floor ε (Eq. 5), producing different
//! data ratios on the fast tier, and plots BFS time against the ratio. The
//! shape to reproduce: time falls steeply up to an optimal region, then
//! flattens — beyond it, extra fast-tier data buys nothing (and on the
//! capacity-bound KNL testbed the curve stops well before ratio 1).

use atmem::AtmemConfig;
use atmem_apps::{run_protocol, App, Mode};
use atmem_graph::Dataset;
use atmem_hms::Platform;

use crate::{build_dataset, emit, ResultTable};

/// The ε values swept, from most selective to most permissive. ε = 0
/// promotes every span with any criticality (the full-migration endpoint
/// of the paper's x-axis).
pub const EPSILONS: [f64; 11] = [0.98, 0.9, 0.75, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1, 0.02, 0.0];

/// Runs the BFS ε sweep for one platform; emits `<name>.csv`.
///
/// # Errors
///
/// Propagates protocol and I/O failures.
pub fn run_sweep(platform: &Platform, name: &str, title: &str) -> atmem::Result<ResultTable> {
    let mut table = ResultTable::new(title, &["epsilon", "data_ratio", "time_ms"]);
    for dataset in Dataset::ALL {
        let csr = build_dataset(dataset, false);
        for eps in EPSILONS {
            let r = run_protocol(
                platform.clone(),
                AtmemConfig::default().with_epsilon(eps),
                &csr,
                App::Bfs,
                Mode::Atmem,
            )?;
            table.push_row(
                dataset.name(),
                vec![eps, r.data_ratio, r.second_iter.as_ms()],
            );
        }
    }
    emit(&table, name).expect("write results");
    Ok(table)
}

/// Figure 9: NVM-DRAM testbed.
///
/// # Errors
///
/// Propagates protocol and I/O failures.
pub fn run_fig9() -> atmem::Result<Vec<ResultTable>> {
    Ok(vec![run_sweep(
        &Platform::nvm_dram(),
        "fig9",
        "Figure 9: BFS time vs data ratio in DRAM (epsilon sweep, NVM-DRAM testbed)",
    )?])
}

/// Figure 10: MCDRAM-DRAM testbed (capacity-bound for large datasets).
///
/// # Errors
///
/// Propagates protocol and I/O failures.
pub fn run_fig10() -> atmem::Result<Vec<ResultTable>> {
    Ok(vec![run_sweep(
        &Platform::mcdram_dram(),
        "fig10",
        "Figure 10: BFS time vs data ratio in MCDRAM (epsilon sweep, MCDRAM-DRAM testbed)",
    )?])
}
