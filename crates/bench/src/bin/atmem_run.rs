//! `atmem-run` — run one experiment from the command line.
//!
//! ```text
//! atmem_run [--app BFS|SSSP|PR|BC|CC|SpMV] [--dataset pokec|rmat24|twitter|rmat27|friendster]
//!           [--platform nvm|knl|cxl|hbm|quad|testing|testing3]
//!           [--mode baseline|atmem|ideal|preferred] [--policy atmem|autonuma]
//!           [--analyzer paper|learned] [--rounds N]
//!           [--epsilon F] [--arity M] [--chunks N] [--period P]
//!           [--mechanism staged|direct|mbind] [--shrink S] [--cores N]
//!           [--edge-list PATH] [--heatmap]
//! ```
//!
//! Prints the two iteration times, the data ratio, migration statistics,
//! a per-object residency report, and (with `--heatmap`) the chunk-level
//! access heatmap with the analyzer's selection overlaid.

use std::process::ExitCode;

use atmem::{
    chunk_heatmap, AnalyzerKind, AtmemConfig, MigrationMechanism, OptimizePolicy, ResidencyReport,
};
use atmem_apps::{App, HmsGraph, MemCtx, Mode};
use atmem_graph::{Csr, Dataset};
use atmem_hms::Platform;

#[derive(Debug)]
struct Options {
    app: App,
    dataset: Dataset,
    platform_name: String,
    mode: Mode,
    config: AtmemConfig,
    rounds: usize,
    shrink: u32,
    cores: usize,
    edge_list: Option<String>,
    heatmap: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: atmem_run [--app BFS|SSSP|PR|BC|CC|SpMV] [--dataset NAME] \
         [--platform {}] [--mode baseline|atmem|ideal|preferred] \
         [--policy atmem|autonuma] [--analyzer paper|learned] [--rounds N] \
         [--epsilon F] [--arity M] [--chunks N] [--period P] \
         [--mechanism staged|direct|mbind] [--shrink S] [--cores N] \
         [--edge-list PATH] [--heatmap]",
        Platform::PRESET_NAMES.join("|")
    );
    std::process::exit(2);
}

fn parse_options() -> Options {
    let mut opts = Options {
        app: App::Bfs,
        dataset: Dataset::Rmat24,
        platform_name: "nvm".to_string(),
        mode: Mode::Atmem,
        config: AtmemConfig::default(),
        rounds: 1,
        shrink: 2,
        cores: 1,
        edge_list: None,
        heatmap: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |what: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {what}");
                usage()
            })
        };
        match flag.as_str() {
            "--app" => {
                let v = value("--app");
                opts.app = match v.to_uppercase().as_str() {
                    "BFS" => App::Bfs,
                    "SSSP" => App::Sssp,
                    "PR" => App::PageRank,
                    "BC" => App::Bc,
                    "CC" => App::Cc,
                    "SPMV" => App::Spmv,
                    _ => usage(),
                };
            }
            "--dataset" => {
                let v = value("--dataset");
                opts.dataset = *Dataset::ALL
                    .iter()
                    .find(|d| d.name() == v)
                    .unwrap_or_else(|| usage());
            }
            "--platform" => opts.platform_name = value("--platform"),
            "--mode" => {
                opts.mode = match value("--mode").as_str() {
                    "baseline" => Mode::Baseline,
                    "atmem" => Mode::Atmem,
                    "ideal" => Mode::Ideal,
                    "preferred" => Mode::Preferred,
                    _ => usage(),
                };
            }
            "--policy" => {
                opts.config.policy = match value("--policy").as_str() {
                    "atmem" => OptimizePolicy::Atmem,
                    "autonuma" => OptimizePolicy::Autonuma,
                    _ => usage(),
                };
            }
            "--analyzer" => {
                opts.config.analyzer.kind = match value("--analyzer").as_str() {
                    "paper" => AnalyzerKind::Paper,
                    "learned" => AnalyzerKind::Learned,
                    _ => usage(),
                };
            }
            "--rounds" => {
                opts.rounds = value("--rounds").parse().unwrap_or_else(|_| usage());
                if opts.rounds == 0 {
                    usage();
                }
            }
            "--epsilon" => {
                opts.config.analyzer.epsilon =
                    Some(value("--epsilon").parse().unwrap_or_else(|_| usage()));
            }
            "--arity" => {
                opts.config.analyzer.arity = value("--arity").parse().unwrap_or_else(|_| usage());
            }
            "--chunks" => {
                opts.config.chunks.target_chunks =
                    value("--chunks").parse().unwrap_or_else(|_| usage());
            }
            "--period" => {
                opts.config.sampling.period =
                    Some(value("--period").parse().unwrap_or_else(|_| usage()));
            }
            "--mechanism" => {
                opts.config.migration.mechanism = match value("--mechanism").as_str() {
                    "staged" => MigrationMechanism::Staged,
                    "direct" => MigrationMechanism::Direct,
                    "mbind" => MigrationMechanism::Mbind,
                    _ => usage(),
                };
            }
            "--shrink" => opts.shrink = value("--shrink").parse().unwrap_or_else(|_| usage()),
            "--cores" => {
                opts.cores = value("--cores").parse().unwrap_or_else(|_| usage());
                if opts.cores == 0 {
                    usage();
                }
            }
            "--edge-list" => opts.edge_list = Some(value("--edge-list")),
            "--heatmap" => opts.heatmap = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
    }
    opts
}

fn load_graph(opts: &Options) -> Result<Csr, Box<dyn std::error::Error>> {
    let csr = match &opts.edge_list {
        Some(path) => {
            let file = std::fs::File::open(path)?;
            atmem_graph::read_edge_list(std::io::BufReader::new(file))?
        }
        None => opts.dataset.build_small(opts.shrink),
    };
    Ok(if opts.app.needs_weights() && !csr.is_weighted() {
        csr.with_random_weights(64.0, 7)
    } else {
        csr
    })
}

fn main() -> ExitCode {
    let opts = parse_options();
    let platform = Platform::by_name(&opts.platform_name).unwrap_or_else(|| {
        eprintln!("unknown platform {:?}", opts.platform_name);
        usage()
    });
    let csr = match load_graph(&opts) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("failed to load graph: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{} on {} ({} vertices, {} edges, {:.1} MiB) — platform {}, mode {}",
        opts.app,
        opts.edge_list.as_deref().unwrap_or(opts.dataset.name()),
        csr.num_vertices(),
        csr.num_edges(),
        csr.simulated_footprint() as f64 / (1 << 20) as f64,
        platform.name,
        opts.mode.name(),
    );
    if opts.cores > 1 {
        println!("simulated cores: {}", opts.cores);
    }
    if opts.config.policy == OptimizePolicy::Autonuma {
        println!("optimize policy: autonuma (OS-tiering baseline)");
    }
    if opts.config.analyzer.kind == AnalyzerKind::Learned {
        println!("analyzer: learned (learning-to-rank scorer)");
    }

    // Inline protocol (rather than runner::run_protocol) so the runtime
    // stays available for the residency report and heatmap afterwards.
    let mut config = opts.config.clone();
    config.default_placement = match opts.mode {
        Mode::Baseline | Mode::Atmem => atmem::PlacementPolicy::AllSlow,
        Mode::Ideal => atmem::PlacementPolicy::AllFast,
        Mode::Preferred => atmem::PlacementPolicy::PreferFast,
    };
    let run = || -> atmem::Result<()> {
        // Same rule as the mode/placement interplay in the runner: only the
        // atmem mode runs an optimize step, so an explicit non-default
        // --policy under any other mode is a conflict, not a no-op.
        if opts.mode != Mode::Atmem && config.policy != OptimizePolicy::default() {
            return Err(atmem::AtmemError::InvalidConfig {
                what: "policy",
                reason: "only the atmem mode runs an optimize step; \
                         leave the policy at the default for other modes",
            });
        }
        // Same contract for the analyzer choice and the round count.
        if opts.mode != Mode::Atmem && config.analyzer.kind != AnalyzerKind::default() {
            return Err(atmem::AtmemError::InvalidConfig {
                what: "analyzer.kind",
                reason: "only the atmem mode runs the analyzer; \
                         leave the kind at the default for other modes",
            });
        }
        if opts.mode != Mode::Atmem && opts.rounds != 1 {
            return Err(atmem::AtmemError::InvalidConfig {
                what: "rounds",
                reason: "only the atmem mode runs optimize rounds; \
                         use --rounds 1 for other modes",
            });
        }
        let mut rt = atmem::Atmem::new(platform.clone(), config.clone())?;
        let graph = HmsGraph::load(&mut rt, &csr)?;
        let mut kernel = opts.app.instantiate(&mut rt, graph)?;

        for round in 0..opts.rounds {
            kernel.reset(&mut rt);
            if opts.mode == Mode::Atmem {
                rt.profiling_start()?;
            }
            let t0 = rt.now();
            kernel.run_iteration(&mut MemCtx::bulk(rt.machine_mut()).with_cores(opts.cores));
            let first = rt.now().as_ns() - t0.as_ns();
            if opts.mode == Mode::Atmem {
                let profile = rt.profiling_stop()?;
                println!(
                    "iteration {}: {:9.3} ms   ({} samples @ period {})",
                    round + 1,
                    first / 1e6,
                    profile.samples,
                    profile.period
                );
                let report = rt.optimize()?;
                println!(
                    "optimize   : moved {:.2} MiB in {} regions ({} skipped) in {} — data ratio {:.1}%",
                    report.migration.bytes_moved as f64 / (1 << 20) as f64,
                    report.migration.regions,
                    report.migration.regions_skipped,
                    report.migration.time,
                    report.data_ratio * 100.0,
                );
                if opts.heatmap && round + 1 == opts.rounds {
                    print!(
                        "{}",
                        chunk_heatmap(rt.registry(), Some(&report.analysis), 64)
                    );
                }
            } else {
                println!("iteration 1: {:9.3} ms", first / 1e6);
            }
        }

        kernel.reset(&mut rt);
        let t1 = rt.now();
        kernel.run_iteration(&mut MemCtx::bulk(rt.machine_mut()).with_cores(opts.cores));
        let second = rt.now().as_ns() - t1.as_ns();
        println!(
            "iteration {}: {:9.3} ms   (checksum {:.6e})",
            opts.rounds + 1,
            second / 1e6,
            kernel.checksum(&mut rt)
        );
        println!("\n{}", ResidencyReport::collect(&rt));
        Ok(())
    };
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
