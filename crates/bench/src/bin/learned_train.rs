//! `learned_train` — record, train, and check the learned analyzer.
//!
//! ```text
//! learned_train --record PATH   # run the kernel suite + synthetic
//!                               # scenarios, write the training trace
//! learned_train --train PATH    # train on PATH, print weights +
//!                               # train/holdout pairwise accuracy
//! learned_train --check PATH    # CI gate: retrain from the committed
//!                               # trace and assert both the fresh and the
//!                               # shipped pretrained model rank well
//! ```
//!
//! Recording runs every scenario **twice** on the deterministic
//! simulator: once at the configured sparse sampling period (producing
//! the feature vectors, including the lossy and phase-shifted variants)
//! and once at a dense period (producing the ground-truth per-chunk miss
//! densities). Objects are zipped by registration order — determinism
//! guarantees identical layouts — and each object becomes one ranking
//! group. The shipped `LearnedModel::pretrained()` weights are the output
//! of `--record` + `--train` on `traces/analyzer_mini.trace`.

use std::process::ExitCode;

use atmem::analyzer::features::FEATURE_NAMES;
use atmem::analyzer::train::{
    pairwise_accuracy, parse, record_examples, serialize, train, TraceGroup, TrainOptions,
};
use atmem::{Atmem, AtmemConfig, LearnedModel};
use atmem_apps::{App, HmsGraph, MemCtx};
use atmem_graph::{Csr, Dataset};
use atmem_hms::{FaultPlan, FaultSite, Platform, TrackedVec};

/// Sparse (feature-side) sampling period. Deliberately sparse: the model
/// must rank well exactly where sampling is thin.
const SPARSE_PERIOD: u64 = 256;
/// Dense (label-side) sampling period.
const DENSE_PERIOD: u64 = 4;
/// Chunk count per object for recordings — small enough to keep the
/// committed mini-trace reviewable.
const RECORD_CHUNKS: usize = 32;
/// Holdout: every N-th group is excluded from training.
const HOLDOUT_EVERY: usize = 4;
/// Accuracy floors for `--check`. The fresh floor gates generalization
/// (holdout groups the retrained model never saw); the shipped floor is a
/// drift guard — the pretrained constant evaluated on the *full* committed
/// trace, whose lossy groups carry irreducible label noise, so it sits
/// below the holdout bar by design. Both runs are seeded and
/// deterministic; the floors leave margin only for intentional changes to
/// the recorder or trainer.
const FRESH_FLOOR: f64 = 0.70;
const SHIPPED_FLOOR: f64 = 0.60;

fn record_config(period: u64) -> AtmemConfig {
    AtmemConfig::default()
        .with_sampling_period(period)
        .with_target_chunks(RECORD_CHUNKS)
}

fn platform() -> Platform {
    Platform::testing().with_llc(atmem_hms::CacheConfig::new(4096, 4, 64))
}

/// Two profiled rounds of `app` on `csr` (no optimize in between), so the
/// registry ends with round-2 samples plus round-1 history for the
/// phase-delta feature. `loss` installs `SampleLoss` for both rounds.
/// Returns the whole runtime so the caller can borrow its registry.
fn kernel_registry(app: App, csr: &Csr, period: u64, loss: Option<(f64, u64)>) -> Atmem {
    let mut rt = Atmem::new(platform(), record_config(period)).expect("runtime");
    let graph = HmsGraph::load(&mut rt, csr).expect("load");
    let mut kernel = app.instantiate(&mut rt, graph).expect("kernel");
    kernel.reset(&mut rt);
    if let Some((rate, seed)) = loss {
        rt.machine_mut().set_fault_plan(Some(
            FaultPlan::seeded(seed).with_rate(FaultSite::SampleLoss, rate),
        ));
    }
    for _ in 0..2 {
        rt.profiling_start().expect("start");
        kernel.run_iteration(&mut MemCtx::bulk(rt.machine_mut()));
        rt.profiling_stop().expect("stop");
    }
    rt.machine_mut().set_fault_plan(None);
    rt
}

fn window_reads(rt: &mut Atmem, v: &TrackedVec<u64>, reads: usize, lo: f64, hi: f64) {
    let n = v.len();
    let start = (n as f64 * lo) as usize;
    let span = ((n as f64 * (hi - lo)) as usize).max(1);
    for i in 0..reads {
        let _ = v.get(rt.machine_mut(), start + (i * 7919) % span);
    }
}

/// A synthetic phase shift: round 1 reads window A, round 2 reads window
/// B. Labels come from the dense twin's round-2 (phase-B) profile, so
/// the model learns that a positive phase delta predicts hotness.
fn phase_shift_registry(period: u64, loss: Option<(f64, u64)>) -> Atmem {
    let mut rt = Atmem::new(platform(), record_config(period)).expect("runtime");
    let v = rt.malloc::<u64>(64 * 1024, "phase.data").expect("malloc");
    if let Some((rate, seed)) = loss {
        rt.machine_mut().set_fault_plan(Some(
            FaultPlan::seeded(seed).with_rate(FaultSite::SampleLoss, rate),
        ));
    }
    rt.profiling_start().expect("start");
    window_reads(&mut rt, &v, 40_000, 0.0, 0.125);
    rt.profiling_stop().expect("stop");
    rt.profiling_start().expect("start");
    window_reads(&mut rt, &v, 40_000, 0.875, 1.0);
    rt.profiling_stop().expect("stop");
    rt.machine_mut().set_fault_plan(None);
    rt
}

fn record_all() -> Vec<TraceGroup> {
    let mut groups = Vec::new();
    // Kernel suite, clean and lossy sparse profiles, dense clean labels.
    for app in [App::PageRank, App::Spmv, App::Bfs] {
        let g = Dataset::Twitter.build_small(7);
        let csr = if app.needs_weights() {
            g.with_random_weights(16.0, 1)
        } else {
            g
        };
        let dense = kernel_registry(app, &csr, DENSE_PERIOD, None);
        let sparse = kernel_registry(app, &csr, SPARSE_PERIOD, None);
        groups.extend(record_examples(
            sparse.registry(),
            dense.registry(),
            &format!("{app}"),
        ));
        for (rate, seed) in [(0.3, 5u64), (0.5, 17)] {
            let lossy = kernel_registry(app, &csr, SPARSE_PERIOD, Some((rate, seed)));
            groups.extend(record_examples(
                lossy.registry(),
                dense.registry(),
                &format!("{app}+loss{:02}", (rate * 100.0) as u32),
            ));
        }
    }
    // Phase-shift scenarios, clean and lossy.
    let dense = phase_shift_registry(DENSE_PERIOD, None);
    let sparse = phase_shift_registry(SPARSE_PERIOD, None);
    groups.extend(record_examples(
        sparse.registry(),
        dense.registry(),
        "phase",
    ));
    let lossy = phase_shift_registry(SPARSE_PERIOD, Some((0.5, 23)));
    groups.extend(record_examples(
        lossy.registry(),
        dense.registry(),
        "phase+loss50",
    ));
    groups
}

/// Drops groups with no ranking signal (fewer than 2 distinct labels).
fn informative(groups: Vec<TraceGroup>) -> Vec<TraceGroup> {
    groups
        .into_iter()
        .filter(|g| {
            g.examples
                .iter()
                .any(|e| (e.label - g.examples[0].label).abs() > 1e-9)
        })
        .collect()
}

fn split(groups: &[TraceGroup]) -> (Vec<TraceGroup>, Vec<TraceGroup>) {
    let mut tr = Vec::new();
    let mut ho = Vec::new();
    for (i, g) in groups.iter().enumerate() {
        if (i + 1) % HOLDOUT_EVERY == 0 {
            ho.push(g.clone());
        } else {
            tr.push(g.clone());
        }
    }
    (tr, ho)
}

fn print_model(model: &LearnedModel) {
    println!("weights: [");
    for (w, name) in model.weights.iter().zip(FEATURE_NAMES) {
        println!("    {:>9.4}, // {}", w, name);
    }
    println!("]\nbias: {:.4}", model.bias);
}

fn usage() -> ExitCode {
    eprintln!("usage: learned_train [--record PATH] [--train PATH] [--check PATH]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut record = None;
    let mut train_path = None;
    let mut check = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let Some(value) = args.next() else {
            return usage();
        };
        match flag.as_str() {
            "--record" => record = Some(value),
            "--train" => train_path = Some(value),
            "--check" => check = Some(value),
            _ => return usage(),
        }
    }
    if record.is_none() && train_path.is_none() && check.is_none() {
        return usage();
    }

    if let Some(path) = record {
        let groups = informative(record_all());
        let examples: usize = groups.iter().map(|g| g.examples.len()).sum();
        if let Err(e) = std::fs::write(&path, serialize(&groups)) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "recorded {} groups / {examples} examples -> {path}",
            groups.len()
        );
    }

    let load = |path: &str| -> Result<Vec<TraceGroup>, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        parse(&text)
    };

    if let Some(path) = train_path {
        let groups = match load(&path) {
            Ok(g) => g,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        let opts = TrainOptions::default();
        let (tr, ho) = split(&groups);
        let model = train(&tr, &opts);
        print_model(&model);
        println!(
            "train accuracy {:.4} ({} groups), holdout accuracy {:.4} ({} groups)",
            pairwise_accuracy(&model, &tr, opts.margin),
            tr.len(),
            pairwise_accuracy(&model, &ho, opts.margin),
            ho.len(),
        );
    }

    if let Some(path) = check {
        let groups = match load(&path) {
            Ok(g) => g,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        let opts = TrainOptions::default();
        let (tr, ho) = split(&groups);
        let fresh = pairwise_accuracy(&train(&tr, &opts), &ho, opts.margin);
        let shipped = pairwise_accuracy(&LearnedModel::pretrained(), &groups, opts.margin);
        println!("fresh holdout accuracy {fresh:.4} (floor {FRESH_FLOOR})");
        println!("shipped model accuracy {shipped:.4} (floor {SHIPPED_FLOOR})");
        if fresh < FRESH_FLOOR || shipped < SHIPPED_FLOOR {
            eprintln!("learned-analyzer check FAILED");
            return ExitCode::FAILURE;
        }
        println!("learned-analyzer check OK");
    }
    ExitCode::SUCCESS
}
