//! Runs the ten-seed variance study (the paper's repetition methodology).

fn main() -> atmem::Result<()> {
    atmem_bench::experiments::variance::run()?;
    Ok(())
}
