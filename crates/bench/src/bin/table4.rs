//! Regenerates Table 4 (mbind vs multi-stage multi-threaded migration).

fn main() -> atmem::Result<()> {
    atmem_bench::experiments::table4::run()?;
    Ok(())
}
