//! Regenerates Figure 7 (data ratio on DRAM). Shares the NVM-DRAM grid with
//! fig5_table3; running either produces fig7.csv.

fn main() -> atmem::Result<()> {
    atmem_bench::experiments::overall::run_nvm()?;
    Ok(())
}
