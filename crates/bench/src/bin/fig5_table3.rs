//! Regenerates Figure 5, Table 3, and Figure 7 (NVM-DRAM overall results).

fn main() -> atmem::Result<()> {
    atmem_bench::experiments::overall::run_nvm()?;
    Ok(())
}
