//! Regenerates Figure 6 and Figure 8 (MCDRAM-DRAM overall results).

fn main() -> atmem::Result<()> {
    atmem_bench::experiments::overall::run_mcdram()?;
    Ok(())
}
