//! Runs the ablation studies (analyzer variants, granularity, sampling,
//! migration mechanism, profiling overhead).

fn main() -> atmem::Result<()> {
    atmem_bench::experiments::ablation::run()?;
    Ok(())
}
