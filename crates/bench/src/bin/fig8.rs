//! Regenerates Figure 8 (data ratio on MCDRAM). Shares the MCDRAM-DRAM grid
//! with fig6; running either produces fig8.csv.

fn main() -> atmem::Result<()> {
    atmem_bench::experiments::overall::run_mcdram()?;
    Ok(())
}
