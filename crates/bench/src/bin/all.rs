//! Runs every experiment in paper order: Figure 1, Figures 5+7/Table 3,
//! Figures 6+8, Figures 9 and 10, Table 4, then the ablations.

fn main() -> atmem::Result<()> {
    let t0 = std::time::Instant::now();
    atmem_bench::experiments::fig1::run()?;
    atmem_bench::experiments::overall::run_nvm()?;
    atmem_bench::experiments::overall::run_mcdram()?;
    atmem_bench::experiments::sweep::run_fig9()?;
    atmem_bench::experiments::sweep::run_fig10()?;
    atmem_bench::experiments::table4::run()?;
    atmem_bench::experiments::ablation::run()?;
    atmem_bench::experiments::variance::run()?;
    eprintln!("all experiments done in {:.1}s", t0.elapsed().as_secs_f64());
    Ok(())
}
