//! Regenerates Figure 1 (motivating slowdown study). See `experiments::fig1`.

fn main() -> atmem::Result<()> {
    atmem_bench::experiments::fig1::run()?;
    Ok(())
}
