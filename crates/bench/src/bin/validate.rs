//! `validate` — correctness matrix for the whole stack.
//!
//! Runs every kernel on every dataset stand-in under three placements
//! (baseline / ATMem / ideal) and checks that
//!
//! 1. kernel outputs match host-side reference implementations, and
//! 2. outputs are bit-identical across placements (placement must never
//!    change results).
//!
//! Exits non-zero on the first failure. Uses reduced dataset scales so the
//! full matrix completes in about a minute; `ATMEM_BENCH_SHRINK` overrides.

use std::process::ExitCode;

use atmem::{Atmem, AtmemConfig};
use atmem_apps::{
    bc::reference_bc, bfs::reference_bfs, cc::reference_components, pagerank::reference_pagerank,
    spmv::reference_spmv, sssp::reference_sssp, App, Bc, Bfs, Cc, HmsGraph, Kernel, MemCtx, Mode,
    PageRank, Spmv, Sssp,
};
use atmem_graph::{Csr, Dataset};
use atmem_hms::Platform;

fn shrink() -> u32 {
    std::env::var("ATMEM_BENCH_SHRINK")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5)
}

/// Runs `app` under `mode` and returns its output vector.
fn run_app(csr: &Csr, app: App, mode: Mode) -> atmem::Result<Vec<f64>> {
    let config = AtmemConfig::default().with_placement(match mode {
        Mode::Baseline | Mode::Atmem => atmem::PlacementPolicy::AllSlow,
        Mode::Ideal => atmem::PlacementPolicy::AllFast,
        Mode::Preferred => atmem::PlacementPolicy::PreferFast,
    });
    let mut rt = Atmem::new(Platform::nvm_dram(), config)?;
    let graph = HmsGraph::load(&mut rt, csr)?;

    // Instantiate concretely so outputs can be extracted.
    enum K {
        Bfs(Bfs),
        Sssp(Sssp),
        Pr(PageRank),
        Bc(Bc),
        Cc(Cc),
        Spmv(Spmv),
    }
    let mut kernel = match app {
        App::Bfs => K::Bfs(Bfs::new(&mut rt, graph, 0)?),
        App::Sssp => K::Sssp(Sssp::new(&mut rt, graph, 0)?),
        App::PageRank => K::Pr(PageRank::new(&mut rt, graph)?),
        App::Bc => K::Bc(Bc::new(&mut rt, graph, 0)?),
        App::Cc => K::Cc(Cc::new(&mut rt, graph)?),
        App::Spmv => K::Spmv(Spmv::new(&mut rt, graph)?),
    };
    fn as_kernel(k: &mut K) -> &mut dyn Kernel {
        match k {
            K::Bfs(x) => x,
            K::Sssp(x) => x,
            K::Pr(x) => x,
            K::Bc(x) => x,
            K::Cc(x) => x,
            K::Spmv(x) => x,
        }
    }

    as_kernel(&mut kernel).reset(&mut rt);
    if mode == Mode::Atmem {
        rt.profiling_start()?;
    }
    as_kernel(&mut kernel).run_iteration(&mut MemCtx::bulk(rt.machine_mut()));
    if mode == Mode::Atmem {
        rt.profiling_stop()?;
        rt.optimize()?;
    }
    as_kernel(&mut kernel).reset(&mut rt);
    as_kernel(&mut kernel).run_iteration(&mut MemCtx::bulk(rt.machine_mut()));

    Ok(match &kernel {
        K::Bfs(x) => x.distances(&mut rt).iter().map(|&d| d as f64).collect(),
        K::Sssp(x) => x.distances(&mut rt).iter().map(|&d| d as f64).collect(),
        K::Pr(x) => x.ranks(&mut rt),
        K::Bc(x) => x.scores(&mut rt),
        K::Cc(x) => x.labels(&mut rt).iter().map(|&l| l as f64).collect(),
        K::Spmv(x) => x.output(&mut rt),
    })
}

/// Host-side reference for `app` after one measured iteration.
fn reference(csr: &Csr, app: App) -> Vec<f64> {
    match app {
        App::Bfs => reference_bfs(csr, 0).iter().map(|&d| d as f64).collect(),
        App::Sssp => reference_sssp(csr, 0).iter().map(|&d| d as f64).collect(),
        App::PageRank => reference_pagerank(csr, 1),
        App::Bc => reference_bc(csr, 0),
        App::Cc => {
            // One label-propagation pass is not the fixed point; validate
            // the *partition* after convergence instead (handled below).
            reference_components(csr)
                .iter()
                .map(|&l| l as f64)
                .collect()
        }
        App::Spmv => {
            let x: Vec<f64> = (0..csr.num_vertices())
                .map(|v| 1.0 + (v % 7) as f64)
                .collect();
            reference_spmv(csr, &x)
        }
    }
}

fn close(a: f64, b: f64) -> bool {
    let diff = (a - b).abs();
    diff < 1e-6 || diff < 1e-6 * a.abs().max(b.abs()) || (a.is_infinite() && b.is_infinite())
}

fn main() -> ExitCode {
    let mut failures = 0usize;
    let mut checks = 0usize;
    for app in App::FIVE.into_iter().chain([App::Spmv]) {
        for dataset in Dataset::ALL {
            let csr = {
                let g = dataset.build_small(shrink());
                if app.needs_weights() {
                    g.with_random_weights(32.0, 7)
                } else {
                    g
                }
            };
            let outputs: Vec<Vec<f64>> = [Mode::Baseline, Mode::Atmem, Mode::Ideal]
                .into_iter()
                .map(|mode| run_app(&csr, app, mode).expect("protocol run"))
                .collect();
            // Cross-placement identity (bitwise for a deterministic sim).
            checks += 1;
            if outputs[0] != outputs[1] || outputs[0] != outputs[2] {
                eprintln!("FAIL {app}/{dataset}: outputs differ across placements");
                failures += 1;
                continue;
            }
            // Against the host reference (CC compares partitions, one pass
            // of label propagation is validated by its own unit tests).
            checks += 1;
            if app == App::Cc {
                continue;
            }
            let expect = reference(&csr, app);
            let got = &outputs[0];
            if got.len() != expect.len() || got.iter().zip(&expect).any(|(&a, &b)| !close(a, b)) {
                eprintln!("FAIL {app}/{dataset}: output differs from host reference");
                failures += 1;
            } else {
                println!("ok   {app}/{dataset}");
            }
        }
    }
    println!("\n{checks} checks, {failures} failures");
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
