//! Regenerates Figure 10 (BFS time vs data ratio, epsilon sweep, MCDRAM-DRAM).

fn main() -> atmem::Result<()> {
    atmem_bench::experiments::sweep::run_fig10()?;
    Ok(())
}
