//! Regenerates Figure 9 (BFS time vs data ratio, epsilon sweep, NVM-DRAM).

fn main() -> atmem::Result<()> {
    atmem_bench::experiments::sweep::run_fig9()?;
    Ok(())
}
