//! Minimal wall-clock micro-benchmark harness.
//!
//! The workspace builds offline and cannot depend on criterion, so the
//! `benches/*.rs` targets (all `harness = false`) use this instead: each
//! bench is a plain binary that times a routine over fresh per-sample
//! state and prints a one-line summary. The numbers are host wall-clock —
//! simulator throughput — not simulated time (the fig/table binaries
//! report that).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Summary statistics of one benchmark.
#[derive(Debug, Clone, Copy)]
pub struct BenchResult {
    /// Median per-sample wall-clock time.
    pub median: Duration,
    /// Fastest sample.
    pub min: Duration,
    /// Slowest sample.
    pub max: Duration,
    /// Number of timed samples.
    pub samples: usize,
}

impl BenchResult {
    /// Median time in nanoseconds as f64 (for speedup arithmetic).
    pub fn median_ns(&self) -> f64 {
        self.median.as_secs_f64() * 1e9
    }

    /// Fastest sample in nanoseconds as f64. On a contended host the
    /// minimum is the most reproducible estimate of intrinsic cost — every
    /// slower sample is intrinsic cost *plus* interference.
    pub fn min_ns(&self) -> f64 {
        self.min.as_secs_f64() * 1e9
    }
}

/// Times `routine` over `samples` runs, each on a fresh `setup()` value
/// (setup time is excluded), printing and returning the summary.
///
/// # Panics
///
/// Panics if `samples` is zero.
pub fn bench_with_setup<S, R>(
    name: &str,
    samples: usize,
    mut setup: impl FnMut() -> S,
    mut routine: impl FnMut(S) -> R,
) -> BenchResult {
    assert!(samples > 0, "need at least one sample");
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let state = setup();
        let start = Instant::now();
        let result = routine(state);
        // Stop the clock before dropping the result, so routines can return
        // their state to keep teardown out of the measurement.
        times.push(start.elapsed());
        black_box(result);
    }
    times.sort_unstable();
    let result = BenchResult {
        median: times[times.len() / 2],
        min: times[0],
        max: times[times.len() - 1],
        samples,
    };
    println!(
        "{name:<40} median {:>12} (min {}, max {}, {} samples)",
        format_duration(result.median),
        format_duration(result.min),
        format_duration(result.max),
        samples
    );
    result
}

/// Times a self-contained `routine` (no per-sample setup).
pub fn bench<R>(name: &str, samples: usize, mut routine: impl FnMut() -> R) -> BenchResult {
    bench_with_setup(name, samples, || (), |()| routine())
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_secs_f64() * 1e9;
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_sane_statistics() {
        let r = bench("noop", 5, || 1 + 1);
        assert_eq!(r.samples, 5);
        assert!(r.min <= r.median && r.median <= r.max);
    }

    #[test]
    fn setup_time_is_excluded() {
        let r = bench_with_setup(
            "sleepy-setup",
            3,
            || std::thread::sleep(Duration::from_millis(5)),
            |()| (),
        );
        assert!(
            r.median < Duration::from_millis(5),
            "setup leaked into timing: {:?}",
            r.median
        );
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_rejected() {
        let _ = bench("empty", 0, || ());
    }
}
