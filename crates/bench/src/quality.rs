//! Reusable placement-quality harness: fast-data-ratio-at-budget
//! comparisons over an analyzer × kernel × dataset grid.
//!
//! The paper's objective is "maximum performance gain per byte"; with a
//! fixed fast-tier budget that is equivalent to comparing the achieved
//! second-iteration time (and, secondarily, how much of the budget the
//! selection actually fills). This module packages the budget platform and
//! the measurement loop that `tests/placement_quality.rs` pioneered so
//! `tests/analyzer_quality.rs` (and future ablations) can sweep analyzers,
//! kernels, datasets and budgets without re-deriving the setup.

use atmem::{AnalyzerKind, AtmemConfig};
use atmem_apps::{run_protocol, App, Mode};
use atmem_graph::Csr;
use atmem_hms::{CacheConfig, Platform};

/// A testing platform under capacity pressure: the fast tier holds
/// `fast_bytes`, the slow tier is effectively unbounded (32 MiB), and the
/// LLC is tiny relative to any hot set (as on the real testbeds) so the
/// miss profile keeps the workload's skew.
pub fn budget_platform(fast_bytes: usize) -> Platform {
    Platform::testing()
        .with_capacities(fast_bytes, 32 * 1024 * 1024)
        .with_llc(CacheConfig::new(4096, 4, 64))
}

/// One measured protocol run of the quality grid.
#[derive(Debug, Clone)]
pub struct QualityOutcome {
    /// The analyzer that ranked the chunks.
    pub analyzer: AnalyzerKind,
    /// Simulated second-iteration time in nanoseconds (the paper's
    /// reported number).
    pub second_iter_ns: f64,
    /// Fraction of registered data on the fast tier during iteration 2.
    pub data_ratio: f64,
    /// Bytes the optimizer migrated (0 means the analyzer selected
    /// nothing placeable).
    pub bytes_moved: usize,
    /// Kernel output checksum, for cross-analyzer correctness checks.
    pub checksum: f64,
    /// Machine invariant violations (must be empty on a healthy run).
    pub audit: Vec<String>,
}

/// Runs the two-iteration protocol for `app` on `csr` with the given
/// analyzer and config, on a budget platform.
///
/// # Panics
///
/// Panics when the protocol itself fails (allocation or migration error);
/// quality tests treat that as a hard failure, not a data point.
pub fn run_case(
    platform: &Platform,
    mut config: AtmemConfig,
    csr: &Csr,
    app: App,
    analyzer: AnalyzerKind,
) -> QualityOutcome {
    config.analyzer.kind = analyzer;
    let r = run_protocol(platform.clone(), config, csr, app, Mode::Atmem)
        .expect("quality protocol run failed");
    QualityOutcome {
        analyzer,
        second_iter_ns: r.second_iter.as_ns(),
        data_ratio: r.data_ratio,
        bytes_moved: r.optimize.as_ref().map_or(0, |o| o.migration.bytes_moved),
        checksum: r.checksum,
        audit: r.audit,
    }
}

/// The harness config both analyzers run under in comparisons: the
/// permissive end of the ε sweep (so the capacity budget, not the
/// promotion threshold, is the binding constraint — matching how the
/// paper finds its optimal region in Figures 9/10) and small migration
/// regions so the staging reserve cannot eat a tiny budget.
pub fn budget_config() -> AtmemConfig {
    let mut config = AtmemConfig::default().with_epsilon(0.1);
    config.migration.max_region_bytes = 16 * 1024;
    // The learned scorer's own selection cap is opened up the same way ε
    // is for the paper pipeline, so the machine budget does the capping.
    config.analyzer.learned.select_frac = 0.5;
    config
}

/// Runs the paper and learned analyzers head-to-head for `app` on `csr`
/// at a `fast_bytes` budget and returns `(paper, learned)` outcomes.
/// Checks the invariants every comparison owes: both runs are audit-clean
/// and compute the same checksum (placement must never change results).
pub fn compare_at_budget(
    csr: &Csr,
    app: App,
    fast_bytes: usize,
) -> (QualityOutcome, QualityOutcome) {
    let platform = budget_platform(fast_bytes);
    let paper = run_case(&platform, budget_config(), csr, app, AnalyzerKind::Paper);
    let learned = run_case(&platform, budget_config(), csr, app, AnalyzerKind::Learned);
    assert!(paper.audit.is_empty(), "paper audit: {:?}", paper.audit);
    assert!(
        learned.audit.is_empty(),
        "learned audit: {:?}",
        learned.audit
    );
    assert_eq!(
        paper.checksum, learned.checksum,
        "the analyzer choice must not change kernel results"
    );
    (paper, learned)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atmem_graph::Dataset;

    #[test]
    fn harness_produces_comparable_outcomes() {
        let csr = Dataset::Twitter.build_small(6);
        let (paper, learned) = compare_at_budget(&csr, App::PageRank, 64 * 1024);
        for o in [&paper, &learned] {
            assert!(o.bytes_moved > 0, "{:?} moved nothing", o.analyzer);
            assert!(o.second_iter_ns > 0.0);
            assert!(o.data_ratio > 0.0 && o.data_ratio < 1.0);
        }
        assert_eq!(paper.analyzer, AnalyzerKind::Paper);
        assert_eq!(learned.analyzer, AnalyzerKind::Learned);
    }
}
