//! # atmem-bench — experiment harness for the ATMem reproduction
//!
//! Shared plumbing for the per-figure binaries (`fig1`, `fig5_table3`,
//! `fig6`, `fig7`, `fig8`, `fig9`, `fig10`, `table4`, `ablation`): dataset
//! sizing, result tables, CSV emission, and summary statistics.
//!
//! Every binary prints a human-readable table to stdout and writes a CSV
//! with the same series under `results/` (see [`emit`]), so the
//! figures can be re-plotted from the raw rows.

#![warn(missing_docs)]

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use atmem_graph::{Csr, Dataset};

/// How many R-MAT scale levels to shrink the stand-in datasets for a
/// harness run. The default 0 uses the full scaled stand-ins (a complete
/// figure takes minutes); the `ATMEM_BENCH_SHRINK` environment variable
/// overrides (smoke runs set a larger shrink to finish in seconds).
pub fn dataset_shrink() -> u32 {
    std::env::var("ATMEM_BENCH_SHRINK")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Builds a dataset stand-in at harness scale, weighted when `weighted`.
pub fn build_dataset(dataset: Dataset, weighted: bool) -> Csr {
    let csr = dataset.build_small(dataset_shrink());
    if weighted {
        csr.with_random_weights(64.0, dataset.seed() ^ 0x57ED5)
    } else {
        csr
    }
}

/// A rectangular result table: row labels, column labels, f64 cells.
#[derive(Debug, Clone)]
pub struct ResultTable {
    title: String,
    columns: Vec<String>,
    rows: Vec<(String, Vec<f64>)>,
}

impl ResultTable {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        ResultTable {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the column count.
    pub fn push_row(&mut self, label: impl Into<String>, cells: Vec<f64>) {
        assert_eq!(cells.len(), self.columns.len(), "cell/column mismatch");
        self.rows.push((label.into(), cells));
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The rows appended so far.
    pub fn rows(&self) -> &[(String, Vec<f64>)] {
        &self.rows
    }

    /// Renders an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let label_w = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain([5])
            .max()
            .unwrap_or(5)
            + 2;
        let _ = writeln!(out, "# {}", self.title);
        let _ = write!(out, "{:<label_w$}", "");
        for c in &self.columns {
            let _ = write!(out, "{c:>14}");
        }
        let _ = writeln!(out);
        for (label, cells) in &self.rows {
            let _ = write!(out, "{label:<label_w$}");
            for v in cells {
                if v.abs() >= 1000.0 || (*v != 0.0 && v.abs() < 0.01) {
                    let _ = write!(out, "{v:>14.3e}");
                } else {
                    let _ = write!(out, "{v:>14.4}");
                }
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Serialises the table as CSV (header row of column labels).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "label");
        for c in &self.columns {
            let _ = write!(out, ",{c}");
        }
        let _ = writeln!(out);
        for (label, cells) in &self.rows {
            if label.contains(',') || label.contains('"') {
                let _ = write!(out, "\"{}\"", label.replace('"', "\"\""));
            } else {
                let _ = write!(out, "{label}");
            }
            for v in cells {
                let _ = write!(out, ",{v}");
            }
            let _ = writeln!(out);
        }
        out
    }
}

/// The results directory (`results/` beside the workspace root, overridable
/// via `ATMEM_RESULTS_DIR`).
pub fn results_dir() -> PathBuf {
    std::env::var_os("ATMEM_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results"))
}

/// Writes a table to `results/<name>.csv` and prints the text rendering.
///
/// # Errors
///
/// I/O failures creating the directory or writing the file.
pub fn emit(table: &ResultTable, name: &str) -> std::io::Result<()> {
    print!("{}", table.render());
    println!();
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    std::fs::write(dir.join(format!("{name}.csv")), table.to_csv())?;
    Ok(())
}

/// Geometric mean of positive values (ignores non-positive entries).
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let (sum, n) = values
        .into_iter()
        .filter(|v| *v > 0.0)
        .fold((0.0, 0usize), |(s, n), v| (s + v.ln(), n + 1));
    if n == 0 {
        0.0
    } else {
        (sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_and_serialises() {
        let mut t = ResultTable::new("demo", &["a", "b"]);
        t.push_row("r1", vec![1.0, 2.0]);
        t.push_row("r2", vec![3.5, 0.001]);
        let text = t.render();
        assert!(text.contains("demo") && text.contains("r1"));
        let csv = t.to_csv();
        assert!(csv.starts_with("label,a,b\n"));
        assert!(csv.contains("r1,1,2\n"));
    }

    #[test]
    fn csv_quotes_labels_with_commas() {
        let mut t = ResultTable::new("demo", &["a"]);
        t.push_row("x, y", vec![1.0]);
        assert!(t.to_csv().contains("\"x, y\",1"));
    }

    #[test]
    #[should_panic(expected = "cell/column mismatch")]
    fn wrong_arity_rejected() {
        let mut t = ResultTable::new("demo", &["a"]);
        t.push_row("r", vec![1.0, 2.0]);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean([2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean([]), 0.0);
        assert!((geomean([5.0, 0.0, -1.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn dataset_builders_respect_shrink_env() {
        // Do not mutate the env (tests run in parallel); just exercise the
        // builder at the current shrink.
        let g = build_dataset(Dataset::Pokec, false);
        assert!(g.num_vertices() >= 1 << 8);
        let w = build_dataset(Dataset::Pokec, true);
        assert!(w.is_weighted());
    }
}

pub mod experiments;
pub mod harness;
pub mod quality;
