//! Property-based tests of the graph substrate invariants.

use atmem_graph::{degree_stats, erdos_renyi, rmat, GraphBuilder, RmatConfig, SelfLoops};
use atmem_prop::prelude::*;

proptest! {
    /// The builder always produces a structurally valid CSR with sorted
    /// adjacency, whatever edges and options it is given.
    #[test]
    fn builder_output_is_valid_and_sorted(
        n in 1usize..64,
        edges in prop::collection::vec((0u32..64, 0u32..64), 0..200),
        symmetrize in any::<bool>(),
        dedup in any::<bool>(),
        keep_loops in any::<bool>(),
    ) {
        let edges: Vec<(u32, u32)> = edges
            .into_iter()
            .map(|(u, v)| (u % n as u32, v % n as u32))
            .collect();
        let g = GraphBuilder::new(n)
            .edges(edges.clone())
            .symmetrize(symmetrize)
            .deduplicate(dedup)
            .self_loops(if keep_loops { SelfLoops::Keep } else { SelfLoops::Remove })
            .build();
        g.validate();
        for v in 0..n {
            let nbrs = g.neighbors_of(v);
            prop_assert!(nbrs.windows(2).all(|w| w[0] <= w[1]), "unsorted adjacency");
            if dedup {
                prop_assert!(nbrs.windows(2).all(|w| w[0] < w[1]), "duplicate survived dedup");
            }
            if !keep_loops {
                prop_assert!(!nbrs.contains(&(v as u32)), "self loop survived");
            }
        }
        // Every input edge (mod clean-up) is present.
        for (u, v) in edges {
            if u == v && !keep_loops {
                continue;
            }
            prop_assert!(g.neighbors_of(u as usize).contains(&v), "lost edge ({u},{v})");
            if symmetrize {
                prop_assert!(g.neighbors_of(v as usize).contains(&u), "lost mirror ({v},{u})");
            }
        }
    }

    /// Generators are deterministic and respect requested sizes.
    #[test]
    fn generators_are_deterministic(scale in 4u32..10, ef in 1usize..8, seed in any::<u64>()) {
        let config = RmatConfig::graph500(scale, ef);
        let a = rmat(&config, seed);
        let b = rmat(&config, seed);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.num_vertices(), 1 << scale);
        prop_assert!(a.num_edges() <= ef << scale);

        let e = erdos_renyi(1 << scale, ef << scale, seed);
        prop_assert_eq!(&e, &erdos_renyi(1 << scale, ef << scale, seed));
    }

    /// Degree statistics are internally consistent for arbitrary graphs.
    #[test]
    fn degree_stats_consistency(
        n in 1usize..64,
        edges in prop::collection::vec((0u32..64, 0u32..64), 0..200),
    ) {
        let edges: Vec<(u32, u32)> = edges
            .into_iter()
            .map(|(u, v)| (u % n as u32, v % n as u32))
            .collect();
        let g = GraphBuilder::new(n).edges(edges).self_loops(SelfLoops::Keep).build();
        let s = degree_stats(&g);
        prop_assert!((0.0..1.0).contains(&s.gini) || s.gini.abs() < 1e-9);
        prop_assert!((s.mean_degree - g.num_edges() as f64 / n as f64).abs() < 1e-9);
        prop_assert!(s.max_degree <= g.num_edges());
        prop_assert!(s.top10_edge_share <= 1.0 + 1e-9);
        if g.num_edges() > 0 {
            prop_assert!(s.top10_edge_share > 0.0);
        }
    }

    /// Text round trips preserve the graph exactly.
    #[test]
    fn io_round_trip(
        n in 1usize..32,
        edges in prop::collection::vec((0u32..32, 0u32..32), 1..80),
        weighted in any::<bool>(),
    ) {
        let edges: Vec<(u32, u32)> = edges
            .into_iter()
            .map(|(u, v)| (u % n as u32, v % n as u32))
            .collect();
        let builder = GraphBuilder::new(n).self_loops(SelfLoops::Keep);
        let g = if weighted {
            builder
                .weighted_edges(edges.iter().map(|&(u, v)| (u, v, (u + 2 * v) as f32 + 0.5)))
                .build()
        } else {
            builder.edges(edges).build()
        };
        let mut bytes = Vec::new();
        atmem_graph::write_edge_list(&g, &mut bytes).unwrap();
        let parsed = atmem_graph::read_edge_list(std::io::Cursor::new(bytes)).unwrap();
        // Vertex count may shrink if trailing vertices have no edges; the
        // edge multiset must survive exactly.
        let mut a: Vec<_> = g.edges().collect();
        let mut b: Vec<_> = parsed.edges().collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
        if weighted {
            prop_assert!(parsed.is_weighted());
        }
    }
}
