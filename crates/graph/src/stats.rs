//! Degree-distribution statistics.
//!
//! Placement quality in ATMem derives from skew: dense (hot) regions of the
//! vertex space attract most accesses. These statistics quantify the skew
//! of generated inputs so tests can assert the stand-in datasets reproduce
//! the character of the originals.

use crate::csr::Csr;

/// Summary statistics of an out-degree distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Maximum out-degree.
    pub max_degree: usize,
    /// Mean out-degree.
    pub mean_degree: f64,
    /// Gini coefficient of the degree distribution, in `[0, 1)`:
    /// 0 = perfectly uniform, →1 = extremely skewed.
    pub gini: f64,
    /// Fraction of edges owned by the top 10% highest-degree vertices.
    pub top10_edge_share: f64,
}

/// Computes [`DegreeStats`] for a graph.
pub fn degree_stats(g: &Csr) -> DegreeStats {
    let n = g.num_vertices();
    let mut degrees: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
    degrees.sort_unstable();
    let total: usize = degrees.iter().sum();
    let max_degree = degrees.last().copied().unwrap_or(0);
    let mean_degree = if n == 0 { 0.0 } else { total as f64 / n as f64 };

    // Gini over the sorted degrees: G = (2 * sum(i * d_i) / (n * sum d)) -
    // (n + 1) / n, with i starting at 1.
    let gini = if total == 0 || n == 0 {
        0.0
    } else {
        let weighted: f64 = degrees
            .iter()
            .enumerate()
            .map(|(i, &d)| (i as f64 + 1.0) * d as f64)
            .sum();
        (2.0 * weighted / (n as f64 * total as f64)) - (n as f64 + 1.0) / n as f64
    };

    let top = n.div_ceil(10);
    let top_edges: usize = degrees.iter().rev().take(top).sum();
    let top10_edge_share = if total == 0 {
        0.0
    } else {
        top_edges as f64 / total as f64
    };

    DegreeStats {
        max_degree,
        mean_degree,
        gini,
        top10_edge_share,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    #[test]
    fn uniform_graph_has_low_gini() {
        // A ring: every vertex has out-degree 1.
        let n = 100u32;
        let g = GraphBuilder::new(n as usize)
            .edges((0..n).map(|v| (v, (v + 1) % n)))
            .build();
        let s = degree_stats(&g);
        assert_eq!(s.max_degree, 1);
        assert!((s.mean_degree - 1.0).abs() < 1e-12);
        assert!(s.gini.abs() < 1e-9);
        assert!((s.top10_edge_share - 0.1).abs() < 1e-9);
    }

    #[test]
    fn star_graph_has_high_gini() {
        // One hub pointing at everyone.
        let n = 100;
        let g = GraphBuilder::new(n)
            .edges((1..n as u32).map(|v| (0, v)))
            .build();
        let s = degree_stats(&g);
        assert_eq!(s.max_degree, n - 1);
        assert!(s.gini > 0.95);
        assert!((s.top10_edge_share - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_graph_is_zeroes() {
        let g = GraphBuilder::new(10).build();
        let s = degree_stats(&g);
        assert_eq!(s.max_degree, 0);
        assert_eq!(s.gini, 0.0);
        assert_eq!(s.top10_edge_share, 0.0);
    }
}
