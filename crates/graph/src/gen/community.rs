//! Planted-partition (community-structured) graph generator.
//!
//! Degree skew is one source of hot regions; *community structure* is
//! another — a few dense communities attract most of the traffic while
//! edges mostly stay local. This generator plants `communities` groups of
//! equal size and draws each edge within its community with probability
//! `p_in` (otherwise the endpoint is uniform over the graph). Community
//! sizes follow a power-ish activity profile, so low-index communities are
//! both denser and hotter — hot *regions* without extreme hub degrees,
//! the complement of R-MAT for placement-generality experiments.

use atmem_rng::SmallRng;

use crate::builder::GraphBuilder;
use crate::csr::Csr;

/// Parameters of a planted-partition generation run.
#[derive(Debug, Clone, PartialEq)]
pub struct CommunityConfig {
    /// Number of vertices.
    pub vertices: usize,
    /// Directed edges to draw.
    pub edges: usize,
    /// Number of planted communities.
    pub communities: usize,
    /// Probability that an edge stays inside its source's community.
    pub p_in: f64,
    /// Skew of community activity: community `c` sources edges with
    /// weight `(c + 1)^-activity_skew`. Zero = uniform.
    pub activity_skew: f64,
}

impl CommunityConfig {
    /// A reasonable default: 64 communities, 85% internal edges, mild skew.
    pub fn new(vertices: usize, edges: usize) -> Self {
        CommunityConfig {
            vertices,
            edges,
            communities: 64,
            p_in: 0.85,
            activity_skew: 1.0,
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if sizes are zero, there are more communities than vertices,
    /// or `p_in` is outside `[0, 1]`.
    pub fn validate(&self) {
        assert!(self.vertices > 0, "graph must have vertices");
        assert!(self.communities > 0, "need at least one community");
        assert!(
            self.communities <= self.vertices,
            "more communities than vertices"
        );
        assert!((0.0..=1.0).contains(&self.p_in), "p_in must be in [0, 1]");
        assert!(self.activity_skew >= 0.0, "skew must be non-negative");
    }
}

/// Generates a planted-partition graph. Deterministic for a fixed `seed`.
/// Self loops are removed; duplicates kept.
pub fn community(config: &CommunityConfig, seed: u64) -> Csr {
    config.validate();
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = config.vertices;
    let per_community = n / config.communities;

    // Cumulative activity distribution over communities.
    let weights: Vec<f64> = (0..config.communities)
        .map(|c| 1.0 / ((c + 1) as f64).powf(config.activity_skew))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(config.communities);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }

    let community_of_draw = |rng: &mut SmallRng| -> usize {
        let x: f64 = rng.gen();
        cdf.partition_point(|&c| c < x).min(config.communities - 1)
    };
    let vertex_in = |rng: &mut SmallRng, c: usize| -> u32 {
        let lo = c * per_community;
        let hi = if c + 1 == config.communities {
            n
        } else {
            lo + per_community
        };
        rng.gen_range(lo as u32..hi as u32)
    };

    let mut edges = Vec::with_capacity(config.edges);
    for _ in 0..config.edges {
        let c = community_of_draw(&mut rng);
        let src = vertex_in(&mut rng, c);
        let dst = if rng.gen::<f64>() < config.p_in {
            vertex_in(&mut rng, c)
        } else {
            rng.gen_range(0..n as u32)
        };
        edges.push((src, dst));
    }
    GraphBuilder::new(n).edges(edges).build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::degree_stats;

    fn config() -> CommunityConfig {
        CommunityConfig::new(4096, 32768)
    }

    #[test]
    fn size_and_determinism() {
        let g = community(&config(), 5);
        assert_eq!(g.num_vertices(), 4096);
        assert!(g.num_edges() <= 32768 && g.num_edges() > 31000);
        assert_eq!(g, community(&config(), 5));
        assert_ne!(g, community(&config(), 6));
    }

    #[test]
    fn edges_stay_mostly_internal() {
        let cfg = config();
        let g = community(&cfg, 7);
        let per = cfg.vertices / cfg.communities;
        let internal = g
            .edges()
            .filter(|&(u, v)| (u as usize / per) == (v as usize / per))
            .count();
        let frac = internal as f64 / g.num_edges() as f64;
        // p_in plus the chance a uniform endpoint lands home.
        assert!(frac > 0.8, "internal fraction {frac}");
    }

    #[test]
    fn activity_is_skewed_toward_low_communities() {
        let cfg = config();
        let g = community(&cfg, 9);
        let per = cfg.vertices / cfg.communities;
        let first_quarter: usize = (0..cfg.vertices / 4).map(|v| g.degree(v)).sum();
        assert!(
            first_quarter * 2 > g.num_edges(),
            "first quarter of communities should source most edges: {first_quarter}/{}",
            g.num_edges()
        );
        let _ = per;
    }

    #[test]
    fn degree_skew_is_mild_compared_to_rmat() {
        // Communities concentrate *regions*, not individual hubs.
        let g = community(&config(), 11);
        let s = degree_stats(&g);
        assert!(s.max_degree < 200, "no extreme hubs: {}", s.max_degree);
    }

    #[test]
    #[should_panic(expected = "more communities than vertices")]
    fn too_many_communities_rejected() {
        community(
            &CommunityConfig {
                communities: 10,
                ..CommunityConfig::new(5, 10)
            },
            0,
        );
    }
}
