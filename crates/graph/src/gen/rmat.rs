//! R-MAT (recursive matrix) graph generator.
//!
//! R-MAT recursively subdivides the adjacency matrix into quadrants with
//! probabilities `(a, b, c, d)` and drops each edge into one quadrant per
//! level, producing power-law degree distributions. The ATMem paper
//! evaluates on `rMat24` and `rMat27` Graph500-style inputs (`a = 0.57,
//! b = c = 0.19, d = 0.05`); the other datasets are mimicked by varying the
//! skew (see `datasets`).

use atmem_rng::SmallRng;

use crate::builder::GraphBuilder;
use crate::csr::Csr;

/// Parameters of an R-MAT generation run.
#[derive(Debug, Clone, PartialEq)]
pub struct RmatConfig {
    /// log2 of the vertex count.
    pub scale: u32,
    /// Directed edges generated = `edge_factor << scale`.
    pub edge_factor: usize,
    /// Quadrant probabilities; must sum to 1 within 1e-6.
    pub a: f64,
    /// Upper-right quadrant probability.
    pub b: f64,
    /// Lower-left quadrant probability.
    pub c: f64,
    /// Per-level multiplicative noise applied to `a` (Graph500-style
    /// smoothing that avoids exactly repeated bit patterns). Zero disables.
    pub noise: f64,
    /// Whether to add the reverse of every edge.
    pub symmetrize: bool,
}

impl RmatConfig {
    /// Graph500 reference parameters (`a=0.57, b=c=0.19, d=0.05`).
    pub fn graph500(scale: u32, edge_factor: usize) -> Self {
        RmatConfig {
            scale,
            edge_factor,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            noise: 0.05,
            symmetrize: false,
        }
    }

    /// Remaining quadrant probability `d = 1 - a - b - c`.
    pub fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the probabilities are out of range or `scale` exceeds 31.
    pub fn validate(&self) {
        assert!(
            self.scale >= 1 && self.scale <= 31,
            "scale must be in 1..=31"
        );
        assert!(self.edge_factor > 0, "edge factor must be positive");
        let d = self.d();
        assert!(
            self.a > 0.0 && self.b >= 0.0 && self.c >= 0.0 && d >= -1e-9,
            "quadrant probabilities must be non-negative with a > 0"
        );
        assert!((self.a + self.b + self.c + d - 1.0).abs() < 1e-6);
        assert!(
            (0.0..0.5).contains(&self.noise),
            "noise must be in [0, 0.5)"
        );
    }

    /// Number of vertices (`1 << scale`).
    pub fn num_vertices(&self) -> usize {
        1usize << self.scale
    }

    /// Number of generated directed edges before clean-up.
    pub fn num_edges(&self) -> usize {
        self.edge_factor << self.scale
    }
}

/// Generates an R-MAT graph. Self loops are removed and duplicates kept
/// (multi-edges are normal in Graph500 inputs and harmless to the kernels).
/// Deterministic for a fixed `seed`.
pub fn rmat(config: &RmatConfig, seed: u64) -> Csr {
    config.validate();
    let mut rng = SmallRng::seed_from_u64(seed);
    let n_edges = config.num_edges();
    let mut edges = Vec::with_capacity(n_edges);
    for _ in 0..n_edges {
        edges.push(rmat_edge(config, &mut rng));
    }
    GraphBuilder::new(config.num_vertices())
        .edges(edges)
        .symmetrize(config.symmetrize)
        .build()
}

/// Draws one edge by recursive quadrant descent.
fn rmat_edge(config: &RmatConfig, rng: &mut SmallRng) -> (u32, u32) {
    let mut src = 0u32;
    let mut dst = 0u32;
    for level in 0..config.scale {
        let bit = 1u32 << (config.scale - 1 - level);
        // Per-level noise keeps the distribution from being exactly
        // self-similar, like the Graph500 reference implementation.
        let jitter = if config.noise > 0.0 {
            1.0 + config.noise * (rng.gen::<f64>() * 2.0 - 1.0)
        } else {
            1.0
        };
        let a = (config.a * jitter).clamp(0.0, 1.0);
        let ab = a + config.b;
        let abc = ab + config.c;
        let r: f64 = rng.gen();
        if r < a {
            // upper-left: neither bit set
        } else if r < ab {
            dst |= bit;
        } else if r < abc {
            src |= bit;
        } else {
            src |= bit;
            dst |= bit;
        }
    }
    (src, dst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::degree_stats;

    #[test]
    fn generates_requested_sizes() {
        let g = rmat(&RmatConfig::graph500(10, 8), 1);
        assert_eq!(g.num_vertices(), 1024);
        // Self loops removed, so slightly fewer edges than requested.
        assert!(g.num_edges() <= 8 * 1024);
        assert!(g.num_edges() > 7 * 1024);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let c = RmatConfig::graph500(8, 4);
        assert_eq!(rmat(&c, 42), rmat(&c, 42));
    }

    #[test]
    fn different_seeds_differ() {
        let c = RmatConfig::graph500(8, 4);
        assert_ne!(rmat(&c, 1), rmat(&c, 2));
    }

    #[test]
    fn skewed_parameters_give_skewed_degrees() {
        let skewed = rmat(&RmatConfig::graph500(12, 8), 3);
        let uniform = rmat(
            &RmatConfig {
                a: 0.25,
                b: 0.25,
                c: 0.25,
                noise: 0.0,
                ..RmatConfig::graph500(12, 8)
            },
            3,
        );
        let s = degree_stats(&skewed);
        let u = degree_stats(&uniform);
        assert!(
            s.max_degree > 3 * u.max_degree,
            "skewed max {} vs uniform max {}",
            s.max_degree,
            u.max_degree
        );
        assert!(s.gini > u.gini + 0.2, "gini {} vs {}", s.gini, u.gini);
    }

    #[test]
    fn symmetrize_produces_reverse_edges() {
        let mut c = RmatConfig::graph500(6, 2);
        c.symmetrize = true;
        let g = rmat(&c, 5);
        for (u, v) in g.edges() {
            assert!(
                g.neighbors_of(v as usize).contains(&u),
                "missing reverse of ({u}, {v})"
            );
        }
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn zero_scale_rejected() {
        rmat(&RmatConfig::graph500(0, 2), 0);
    }
}
