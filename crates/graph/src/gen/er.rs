//! Erdős–Rényi G(n, m) generator: `m` edges drawn uniformly at random.
//!
//! Serves as the low-skew contrast to R-MAT in ablation experiments — on a
//! uniform graph, fine-grained placement degenerates to coarse-grained
//! placement (paper §9, "Generalization").

use atmem_rng::SmallRng;

use crate::builder::GraphBuilder;
use crate::csr::Csr;

/// Generates a uniform random directed graph with `n` vertices and `m`
/// edges (self loops removed, duplicates kept). Deterministic for a fixed
/// `seed`.
///
/// # Panics
///
/// Panics if `n` is zero or does not fit in `u32`.
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> Csr {
    assert!(n > 0, "graph must have at least one vertex");
    assert!(u32::try_from(n).is_ok(), "vertex count must fit in u32");
    let mut rng = SmallRng::seed_from_u64(seed);
    let edges = (0..m).map(|_| (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)));
    GraphBuilder::new(n).edges(edges).build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::degree_stats;

    #[test]
    fn size_and_determinism() {
        let g = erdos_renyi(100, 500, 9);
        assert_eq!(g.num_vertices(), 100);
        assert!(g.num_edges() <= 500 && g.num_edges() > 450);
        assert_eq!(g, erdos_renyi(100, 500, 9));
    }

    #[test]
    fn degrees_are_roughly_uniform() {
        let g = erdos_renyi(1 << 12, 8 << 12, 11);
        let s = degree_stats(&g);
        // Poisson(8): max degree stays within a small multiple of the mean.
        assert!(s.max_degree < 10 * 8, "max degree {}", s.max_degree);
        assert!(s.gini < 0.35, "gini {}", s.gini);
    }

    #[test]
    #[should_panic(expected = "at least one vertex")]
    fn empty_graph_rejected() {
        let _ = erdos_renyi(0, 10, 0);
    }
}
