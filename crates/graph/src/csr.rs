//! Compressed sparse row (CSR) graph representation.

use std::fmt;

/// A directed graph in CSR form, optionally edge-weighted.
///
/// Invariants (checked by [`Csr::validate`] and maintained by
/// [`GraphBuilder`](crate::builder::GraphBuilder)):
///
/// * `offsets.len() == num_vertices + 1`, `offsets[0] == 0`,
///   and `offsets` is non-decreasing;
/// * `neighbors.len() == offsets[num_vertices]`;
/// * every neighbour id is `< num_vertices`;
/// * `weights`, when present, has the same length as `neighbors`.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    num_vertices: usize,
    offsets: Vec<u64>,
    neighbors: Vec<u32>,
    weights: Option<Vec<f32>>,
}

impl Csr {
    /// Assembles a CSR from raw parts, validating the invariants.
    ///
    /// # Panics
    ///
    /// Panics if any invariant listed on [`Csr`] is violated.
    pub fn from_parts(
        num_vertices: usize,
        offsets: Vec<u64>,
        neighbors: Vec<u32>,
        weights: Option<Vec<f32>>,
    ) -> Self {
        let csr = Csr {
            num_vertices,
            offsets,
            neighbors,
            weights,
        };
        csr.validate();
        csr
    }

    /// Checks all representation invariants.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message on the first violated invariant.
    pub fn validate(&self) {
        assert_eq!(
            self.offsets.len(),
            self.num_vertices + 1,
            "offsets length must be num_vertices + 1"
        );
        assert_eq!(self.offsets[0], 0, "offsets must start at zero");
        assert!(
            self.offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be non-decreasing"
        );
        assert_eq!(
            *self.offsets.last().expect("offsets is non-empty") as usize,
            self.neighbors.len(),
            "final offset must equal edge count"
        );
        assert!(
            self.neighbors
                .iter()
                .all(|&v| (v as usize) < self.num_vertices),
            "neighbour ids must be < num_vertices"
        );
        if let Some(w) = &self.weights {
            assert_eq!(w.len(), self.neighbors.len(), "one weight per edge");
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of (directed) edges.
    pub fn num_edges(&self) -> usize {
        self.neighbors.len()
    }

    /// The offsets array (`num_vertices + 1` entries).
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// The flat neighbour array.
    pub fn neighbors(&self) -> &[u32] {
        &self.neighbors
    }

    /// The edge weights, if present.
    pub fn weights(&self) -> Option<&[f32]> {
        self.weights.as_deref()
    }

    /// Whether the graph carries edge weights.
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// Out-degree of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= num_vertices`.
    pub fn degree(&self, v: usize) -> usize {
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// Neighbours of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= num_vertices`.
    pub fn neighbors_of(&self, v: usize) -> &[u32] {
        &self.neighbors[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Weights of the edges out of `v`.
    ///
    /// # Panics
    ///
    /// Panics if the graph is unweighted or `v >= num_vertices`.
    pub fn weights_of(&self, v: usize) -> &[f32] {
        let w = self.weights.as_ref().expect("graph is unweighted");
        &w[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Iterates `(src, dst)` over all edges.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.num_vertices)
            .flat_map(move |v| self.neighbors_of(v).iter().map(move |&u| (v as u32, u)))
    }

    /// Attaches uniform-random weights in `[1.0, max_weight)`, replacing any
    /// existing weights. Deterministic for a fixed `seed`.
    #[must_use]
    pub fn with_random_weights(mut self, max_weight: f32, seed: u64) -> Self {
        use atmem_rng::SmallRng;
        let mut rng = SmallRng::seed_from_u64(seed);
        self.weights = Some(
            (0..self.neighbors.len())
                .map(|_| rng.gen_range(1.0..max_weight.max(1.0 + f32::EPSILON)))
                .collect(),
        );
        self
    }

    /// Total bytes this graph occupies once loaded into simulated memory as
    /// offsets (`u64`) + neighbours (`u32`) + optional weights (`f32`).
    pub fn simulated_footprint(&self) -> usize {
        self.offsets.len() * 8
            + self.neighbors.len() * 4
            + self.weights.as_ref().map_or(0, |w| w.len() * 4)
    }
}

impl fmt::Display for Csr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Csr({} vertices, {} edges{})",
            self.num_vertices,
            self.num_edges(),
            if self.is_weighted() { ", weighted" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Csr {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        Csr::from_parts(4, vec![0, 2, 3, 4, 4], vec![1, 2, 3, 3], None)
    }

    #[test]
    fn basic_accessors() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(3), 0);
        assert_eq!(g.neighbors_of(0), &[1, 2]);
        assert_eq!(g.edges().count(), 4);
    }

    #[test]
    #[should_panic(expected = "neighbour ids")]
    fn out_of_range_neighbor_rejected() {
        let _ = Csr::from_parts(2, vec![0, 1, 1], vec![5], None);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn decreasing_offsets_rejected() {
        let _ = Csr::from_parts(2, vec![0, 2, 1], vec![0, 1], None);
    }

    #[test]
    #[should_panic(expected = "one weight per edge")]
    fn weight_length_mismatch_rejected() {
        let _ = Csr::from_parts(2, vec![0, 1, 2], vec![1, 0], Some(vec![1.0]));
    }

    #[test]
    fn random_weights_are_deterministic_and_in_range() {
        let a = diamond().with_random_weights(10.0, 7);
        let b = diamond().with_random_weights(10.0, 7);
        assert_eq!(a.weights(), b.weights());
        assert!(a
            .weights()
            .unwrap()
            .iter()
            .all(|&w| (1.0..10.0).contains(&w)));
        assert_eq!(a.weights_of(0).len(), 2);
    }

    #[test]
    fn footprint_counts_all_arrays() {
        let g = diamond();
        assert_eq!(g.simulated_footprint(), 5 * 8 + 4 * 4);
        let w = g.with_random_weights(2.0, 0);
        assert_eq!(w.simulated_footprint(), 5 * 8 + 4 * 4 + 4 * 4);
    }

    #[test]
    fn display_mentions_sizes() {
        assert_eq!(diamond().to_string(), "Csr(4 vertices, 4 edges)");
    }
}
