//! Plain-text edge-list input and output.
//!
//! Format: one edge per line, `src dst` or `src dst weight`, `#` comments
//! and blank lines ignored. This is the common denominator of SNAP and
//! Graph500 tooling and lets examples load user-provided graphs.

use std::error::Error as StdError;
use std::fmt;
use std::io::{BufRead, Write};

use crate::builder::{GraphBuilder, SelfLoops};
use crate::csr::Csr;

/// Errors produced when parsing an edge list.
#[derive(Debug)]
#[non_exhaustive]
pub enum ParseGraphError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line could not be parsed.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// Explanation of the problem.
        reason: String,
    },
}

impl fmt::Display for ParseGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseGraphError::Io(e) => write!(f, "i/o error reading edge list: {e}"),
            ParseGraphError::BadLine { line, reason } => {
                write!(f, "bad edge list line {line}: {reason}")
            }
        }
    }
}

impl StdError for ParseGraphError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            ParseGraphError::Io(e) => Some(e),
            ParseGraphError::BadLine { .. } => None,
        }
    }
}

impl From<std::io::Error> for ParseGraphError {
    fn from(e: std::io::Error) -> Self {
        ParseGraphError::Io(e)
    }
}

/// Reads an edge list into a CSR. The vertex count is one more than the
/// largest id seen (or zero for an empty list). Weighted and unweighted
/// lines must not be mixed.
///
/// # Errors
///
/// Returns [`ParseGraphError`] for I/O failures or malformed lines.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<Csr, ParseGraphError> {
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut weights: Vec<f32> = Vec::new();
    let mut weighted: Option<bool> = None;
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let line_no = i + 1;
        let body = line.split('#').next().unwrap_or("").trim();
        if body.is_empty() {
            continue;
        }
        let mut parts = body.split_whitespace();
        let src = parse_field(parts.next(), "source", line_no)?;
        let dst = parse_field(parts.next(), "destination", line_no)?;
        let w = parts.next();
        let has_w = w.is_some();
        match weighted {
            None => weighted = Some(has_w),
            Some(expected) if expected != has_w => {
                return Err(ParseGraphError::BadLine {
                    line: line_no,
                    reason: "mixed weighted and unweighted lines".to_string(),
                })
            }
            _ => {}
        }
        if let Some(w) = w {
            let w: f32 = w.parse().map_err(|_| ParseGraphError::BadLine {
                line: line_no,
                reason: format!("invalid weight {w:?}"),
            })?;
            weights.push(w);
        }
        if parts.next().is_some() {
            return Err(ParseGraphError::BadLine {
                line: line_no,
                reason: "too many fields".to_string(),
            });
        }
        edges.push((src, dst));
    }
    let n = edges
        .iter()
        .map(|&(u, v)| u.max(v) as usize + 1)
        .max()
        .unwrap_or(0);
    // I/O is faithful: self loops in the input are kept (kernels that
    // cannot handle them clean up at build time, not parse time).
    let builder = GraphBuilder::new(n).self_loops(SelfLoops::Keep);
    let builder = if weighted == Some(true) {
        builder.weighted_edges(edges.into_iter().zip(weights).map(|((u, v), w)| (u, v, w)))
    } else {
        builder.edges(edges)
    };
    Ok(builder.build())
}

fn parse_field(field: Option<&str>, what: &str, line: usize) -> Result<u32, ParseGraphError> {
    let s = field.ok_or_else(|| ParseGraphError::BadLine {
        line,
        reason: format!("missing {what}"),
    })?;
    s.parse().map_err(|_| ParseGraphError::BadLine {
        line,
        reason: format!("invalid {what} {s:?}"),
    })
}

/// Writes the graph as an edge list (with weights when present).
///
/// # Errors
///
/// Propagates I/O failures from `writer`.
pub fn write_edge_list<W: Write>(g: &Csr, mut writer: W) -> std::io::Result<()> {
    for v in 0..g.num_vertices() {
        let nbrs = g.neighbors_of(v);
        if let Some(_w) = g.weights() {
            let ws = g.weights_of(v);
            for (u, w) in nbrs.iter().zip(ws) {
                writeln!(writer, "{v} {u} {w}")?;
            }
        } else {
            for u in nbrs {
                writeln!(writer, "{v} {u}")?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn round_trip_unweighted() {
        let text = "0 1\n1 2\n# comment\n\n2 0\n";
        let g = read_edge_list(Cursor::new(text)).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        let mut out = Vec::new();
        write_edge_list(&g, &mut out).unwrap();
        let g2 = read_edge_list(Cursor::new(out)).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn round_trip_weighted() {
        let text = "0 1 2.5\n1 0 1.5\n";
        let g = read_edge_list(Cursor::new(text)).unwrap();
        assert!(g.is_weighted());
        assert_eq!(g.weights_of(0), &[2.5]);
        let mut out = Vec::new();
        write_edge_list(&g, &mut out).unwrap();
        assert_eq!(g, read_edge_list(Cursor::new(out)).unwrap());
    }

    #[test]
    fn inline_comments_are_stripped() {
        let g = read_edge_list(Cursor::new("0 1 # the only edge\n")).unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn mixed_weighting_rejected() {
        let err = read_edge_list(Cursor::new("0 1\n1 2 3.0\n")).unwrap_err();
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn garbage_rejected_with_line_number() {
        let err = read_edge_list(Cursor::new("0 1\nx y\n")).unwrap_err();
        assert!(matches!(err, ParseGraphError::BadLine { line: 2, .. }));
    }

    #[test]
    fn too_many_fields_rejected() {
        assert!(read_edge_list(Cursor::new("0 1 2.0 9\n")).is_err());
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = read_edge_list(Cursor::new("")).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }
}
