//! Structural graph transformations.
//!
//! Used by the pull-direction kernels (transpose) and by the locality
//! baseline in the ablations (degree-ordered relabelling, the classic
//! alternative to placement: instead of moving hot data to fast memory,
//! pack hot vertices together).

use crate::csr::Csr;

/// Transposes a directed graph: edge `(u, v)` becomes `(v, u)`. Weights
/// follow their edges. Adjacency stays sorted.
pub fn transpose(g: &Csr) -> Csr {
    let n = g.num_vertices();
    let m = g.num_edges();
    let mut offsets = vec![0u64; n + 1];
    for &v in g.neighbors() {
        offsets[v as usize + 1] += 1;
    }
    for i in 0..n {
        offsets[i + 1] += offsets[i];
    }
    let mut cursor = offsets.clone();
    let mut neighbors = vec![0u32; m];
    let mut weights = g.weights().map(|_| vec![0.0f32; m]);
    // Iterate sources in ascending order, so each reversed adjacency list
    // is filled with ascending sources: output stays sorted.
    for u in 0..n {
        let nbrs = g.neighbors_of(u);
        let ws = g.weights().map(|_| g.weights_of(u));
        for (i, &v) in nbrs.iter().enumerate() {
            let slot = cursor[v as usize] as usize;
            neighbors[slot] = u as u32;
            if let (Some(w), Some(ws)) = (&mut weights, &ws) {
                w[slot] = ws[i];
            }
            cursor[v as usize] += 1;
        }
    }
    Csr::from_parts(n, offsets, neighbors, weights)
}

/// Relabels vertices by descending out-degree: vertex 0 of the result is
/// the highest-degree vertex of the input. Returns the relabelled graph
/// and the mapping `old_id -> new_id`.
///
/// This is the classic locality optimisation for skewed graphs (hot
/// vertices become a contiguous prefix), which makes coarse-grained
/// placement competitive — the ablation harness uses it as an alternative
/// baseline to ATMem's fine-grained placement.
pub fn degree_order(g: &Csr) -> (Csr, Vec<u32>) {
    let n = g.num_vertices();
    let mut by_degree: Vec<u32> = (0..n as u32).collect();
    by_degree.sort_by_key(|&v| std::cmp::Reverse(g.degree(v as usize)));
    let mut new_id = vec![0u32; n];
    for (new, &old) in by_degree.iter().enumerate() {
        new_id[old as usize] = new as u32;
    }
    let relabelled = relabel(g, &new_id);
    (relabelled, new_id)
}

/// Applies an arbitrary relabelling `old_id -> new_id` (a permutation).
///
/// # Panics
///
/// Panics if `new_id` is not a permutation of `0..n`.
pub fn relabel(g: &Csr, new_id: &[u32]) -> Csr {
    let n = g.num_vertices();
    assert_eq!(new_id.len(), n, "relabelling must cover every vertex");
    let mut seen = vec![false; n];
    for &id in new_id {
        assert!(
            (id as usize) < n && !std::mem::replace(&mut seen[id as usize], true),
            "relabelling must be a permutation"
        );
    }
    let mut builder_edges = Vec::with_capacity(g.num_edges());
    if g.is_weighted() {
        for u in 0..n {
            let ws = g.weights_of(u);
            for (&v, &w) in g.neighbors_of(u).iter().zip(ws) {
                builder_edges.push((new_id[u], new_id[v as usize], w));
            }
        }
        crate::builder::GraphBuilder::new(n)
            .self_loops(crate::builder::SelfLoops::Keep)
            .weighted_edges(builder_edges)
            .build()
    } else {
        let edges: Vec<(u32, u32)> = g
            .edges()
            .map(|(u, v)| (new_id[u as usize], new_id[v as usize]))
            .collect();
        crate::builder::GraphBuilder::new(n)
            .self_loops(crate::builder::SelfLoops::Keep)
            .edges(edges)
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::datasets::Dataset;

    fn diamond() -> Csr {
        GraphBuilder::new(4)
            .weighted_edges([(0, 1, 1.0), (0, 2, 2.0), (1, 3, 3.0), (2, 3, 4.0)])
            .build()
    }

    #[test]
    fn transpose_reverses_every_edge() {
        let g = diamond();
        let t = transpose(&g);
        assert_eq!(t.num_edges(), g.num_edges());
        for (u, v) in g.edges() {
            assert!(t.neighbors_of(v as usize).contains(&u));
        }
        // Weights follow edges: 1->3 weight 3.0 becomes 3->1.
        let pos = t.neighbors_of(3).iter().position(|&x| x == 1).unwrap();
        assert_eq!(t.weights_of(3)[pos], 3.0);
    }

    #[test]
    fn transpose_twice_is_identity() {
        let g = Dataset::Pokec.build_small(7);
        let tt = transpose(&transpose(&g));
        assert_eq!(g, tt);
    }

    #[test]
    fn transpose_output_is_sorted() {
        let g = Dataset::Rmat24.build_small(9);
        let t = transpose(&g);
        t.validate();
        for v in 0..t.num_vertices() {
            assert!(t.neighbors_of(v).windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn degree_order_puts_hubs_first() {
        let g = Dataset::Twitter.build_small(10);
        let (r, map) = degree_order(&g);
        assert_eq!(r.num_edges(), g.num_edges());
        // Degrees are non-increasing in the new labelling.
        let degrees: Vec<usize> = (0..r.num_vertices()).map(|v| r.degree(v)).collect();
        assert!(degrees.windows(2).all(|w| w[0] >= w[1]));
        // Mapping preserves degrees.
        for (old, &new) in map.iter().enumerate() {
            assert_eq!(g.degree(old), r.degree(new as usize));
        }
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn bad_relabel_rejected() {
        let g = diamond();
        let _ = relabel(&g, &[0, 0, 1, 2]);
    }
}
