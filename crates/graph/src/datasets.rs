//! Scaled stand-ins for the paper's five evaluation graphs.
//!
//! The original datasets (Table 2 of the paper) range from 30.6 M to 2.1 B
//! edges and are either proprietary snapshots (Twitter, Friendster, Pokec)
//! or Graph500 R-MAT instances. We generate synthetic stand-ins from
//! scratch, scaled down ~128–512x so a full figure sweep runs in minutes,
//! with R-MAT skew parameters chosen to mimic each original's degree
//! distribution character:
//!
//! | stand-in    | paper original        | vertices | edges (dir.) | skew    |
//! |-------------|-----------------------|----------|--------------|---------|
//! | pokec       | 1.6 M / 30.6 M        | 32 Ki    | ~256 Ki      | mild    |
//! | rmat24      | 16.8 M / 268.4 M      | 128 Ki   | ~1 Mi        | G500    |
//! | twitter     | 41.7 M / 1.5 B        | 256 Ki   | ~2 Mi        | extreme |
//! | rmat27      | 134.2 M / 2.1 B       | 512 Ki   | ~4 Mi        | G500    |
//! | friendster  | 68.3 M / 2.1 B        | 512 Ki   | ~4 Mi        | social  |
//!
//! What the placement experiments need from an input is (a) its skew — how
//! concentrated accesses are in hot vertex regions — and (b) its footprint
//! relative to the fast-tier capacity (which the platform presets scale by
//! the same factor, so "fits in MCDRAM" is preserved per dataset: pokec and
//! rmat24 fit in the 16 MiB scaled MCDRAM, twitter/rmat27/friendster do
//! not, exactly as in the paper's Figure 10).

use std::fmt;

use crate::csr::Csr;
use crate::gen::rmat::{rmat, RmatConfig};

/// The five evaluation inputs of the paper, as scaled stand-ins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Pokec social network stand-in (mild skew; smallest input).
    Pokec,
    /// Graph500 R-MAT scale-24 stand-in.
    Rmat24,
    /// Twitter follower graph stand-in (extreme skew).
    Twitter,
    /// Graph500 R-MAT scale-27 stand-in (largest R-MAT).
    Rmat27,
    /// Friendster social network stand-in (large, social skew).
    Friendster,
}

impl Dataset {
    /// All datasets in the paper's presentation order.
    pub const ALL: [Dataset; 5] = [
        Dataset::Pokec,
        Dataset::Rmat24,
        Dataset::Twitter,
        Dataset::Rmat27,
        Dataset::Friendster,
    ];

    /// Canonical lowercase name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Pokec => "pokec",
            Dataset::Rmat24 => "rmat24",
            Dataset::Twitter => "twitter",
            Dataset::Rmat27 => "rmat27",
            Dataset::Friendster => "friendster",
        }
    }

    /// Generation recipe for the stand-in.
    pub fn config(self) -> RmatConfig {
        match self {
            // Pokec: a real social network with comparatively mild skew.
            Dataset::Pokec => RmatConfig {
                scale: 15,
                edge_factor: 8,
                a: 0.45,
                b: 0.22,
                c: 0.22,
                noise: 0.05,
                symmetrize: false,
            },
            Dataset::Rmat24 => RmatConfig::graph500(17, 8),
            // Twitter: celebrity hubs concentrate a huge fraction of edges.
            Dataset::Twitter => RmatConfig {
                scale: 18,
                edge_factor: 8,
                a: 0.65,
                b: 0.15,
                c: 0.15,
                noise: 0.05,
                symmetrize: false,
            },
            Dataset::Rmat27 => RmatConfig::graph500(19, 8),
            // Friendster: large social graph, skew between pokec and twitter.
            Dataset::Friendster => RmatConfig {
                scale: 19,
                edge_factor: 8,
                a: 0.55,
                b: 0.19,
                c: 0.19,
                noise: 0.05,
                symmetrize: false,
            },
        }
    }

    /// Deterministic per-dataset generation seed.
    pub fn seed(self) -> u64 {
        match self {
            Dataset::Pokec => 0x9F0C,
            Dataset::Rmat24 => 0x24,
            Dataset::Twitter => 0x7717,
            Dataset::Rmat27 => 0x27,
            Dataset::Friendster => 0xF12D,
        }
    }

    /// Generates the unweighted stand-in graph.
    pub fn build(self) -> Csr {
        rmat(&self.config(), self.seed())
    }

    /// Generates the stand-in with uniform random edge weights in
    /// `[1, 64)` (for SSSP and SpMV).
    pub fn build_weighted(self) -> Csr {
        self.build()
            .with_random_weights(64.0, self.seed() ^ WEIGHT_SEED)
    }

    /// A reduced-size variant (scale shrunk by `shrink` levels) with the
    /// same skew character, for fast tests.
    pub fn build_small(self, shrink: u32) -> Csr {
        let mut c = self.config();
        c.scale = c.scale.saturating_sub(shrink).max(8);
        rmat(&c, self.seed())
    }
}

/// Seed perturbation for weight generation, so weights are independent of
/// the structure RNG stream.
const WEIGHT_SEED: u64 = 0x57ED5;

impl fmt::Display for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::degree_stats;

    #[test]
    fn names_match_paper() {
        let names: Vec<_> = Dataset::ALL.iter().map(|d| d.name()).collect();
        assert_eq!(
            names,
            ["pokec", "rmat24", "twitter", "rmat27", "friendster"]
        );
    }

    #[test]
    fn sizes_are_ordered_like_the_paper() {
        // pokec < rmat24 < twitter < rmat27 ~= friendster (by edges).
        let e: Vec<usize> = Dataset::ALL
            .iter()
            .map(|d| d.config().num_edges())
            .collect();
        assert!(e[0] < e[1] && e[1] < e[2] && e[2] < e[3] && e[3] == e[4]);
    }

    #[test]
    fn twitter_is_most_skewed() {
        let tw = degree_stats(&Dataset::Twitter.build_small(4));
        let pk = degree_stats(&Dataset::Pokec.build_small(1));
        assert!(
            tw.gini > pk.gini + 0.15,
            "twitter {} pokec {}",
            tw.gini,
            pk.gini
        );
    }

    #[test]
    fn weighted_build_has_weights() {
        let g = Dataset::Pokec.build_small(4).with_random_weights(64.0, 1);
        assert!(g.is_weighted());
    }

    #[test]
    fn build_weighted_is_deterministic_and_structured_like_build() {
        // Full-scale generation is slow in debug; verify on the smallest
        // stand-in that the weighted build shares the unweighted structure.
        let mut config = Dataset::Pokec.config();
        config.scale = 9;
        let plain = crate::gen::rmat::rmat(&config, Dataset::Pokec.seed());
        let weighted = plain
            .clone()
            .with_random_weights(64.0, Dataset::Pokec.seed() ^ 0x57ED5);
        assert_eq!(plain.neighbors(), weighted.neighbors());
        assert!(weighted.is_weighted());
        assert!(weighted
            .weights()
            .unwrap()
            .iter()
            .all(|&w| (1.0..64.0).contains(&w)));
    }

    #[test]
    fn build_small_shrinks() {
        let small = Dataset::Rmat24.build_small(5);
        assert_eq!(small.num_vertices(), 1 << 12);
    }
}
