//! # atmem-graph — graph substrate for the ATMem reproduction
//!
//! CSR graphs, an edge-list builder, R-MAT and Erdős–Rényi generators,
//! degree statistics, text I/O, and scaled stand-ins for the five
//! evaluation datasets of the ATMem paper (CGO'20).
//!
//! ## Example
//!
//! ```
//! use atmem_graph::{Dataset, degree_stats};
//!
//! let g = Dataset::Pokec.build_small(5); // tiny variant for doctests
//! assert!(g.num_vertices() >= 1 << 8);
//! let s = degree_stats(&g);
//! assert!(s.gini > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod builder;
pub mod csr;
pub mod datasets;
pub mod gen {
    //! Graph generators.
    pub mod community;
    pub mod er;
    pub mod rmat;
}
pub mod io;
pub mod stats;
pub mod transform;

pub use builder::{GraphBuilder, SelfLoops};
pub use csr::Csr;
pub use datasets::Dataset;
pub use gen::community::{community, CommunityConfig};
pub use gen::er::erdos_renyi;
pub use gen::rmat::{rmat, RmatConfig};
pub use io::{read_edge_list, write_edge_list, ParseGraphError};
pub use stats::{degree_stats, DegreeStats};
pub use transform::{degree_order, relabel, transpose};
