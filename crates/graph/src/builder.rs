//! Edge-list to CSR construction.

use crate::csr::Csr;

/// Policy for self-loop edges (`u -> u`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelfLoops {
    /// Drop self loops (the default; graph kernels assume none).
    #[default]
    Remove,
    /// Keep them.
    Keep,
}

/// Builds a [`Csr`] from an edge list with configurable clean-up.
///
/// ```
/// use atmem_graph::builder::GraphBuilder;
///
/// let g = GraphBuilder::new(4)
///     .edges([(0, 1), (1, 2), (2, 3), (0, 1)]) // duplicate collapsed
///     .deduplicate(true)
///     .symmetrize(true)
///     .build();
/// assert_eq!(g.num_edges(), 6); // three undirected edges
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    num_vertices: usize,
    edges: Vec<(u32, u32)>,
    weights: Option<Vec<f32>>,
    symmetrize: bool,
    deduplicate: bool,
    self_loops: SelfLoops,
}

impl GraphBuilder {
    /// Starts a builder for a graph with `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        GraphBuilder {
            num_vertices,
            edges: Vec::new(),
            weights: None,
            symmetrize: false,
            deduplicate: false,
            self_loops: SelfLoops::default(),
        }
    }

    /// Appends unweighted edges.
    ///
    /// # Panics
    ///
    /// Panics if weighted edges were added before (mixing is not allowed).
    pub fn edges(mut self, edges: impl IntoIterator<Item = (u32, u32)>) -> Self {
        assert!(
            self.weights.is_none(),
            "cannot mix weighted and unweighted edges"
        );
        self.edges.extend(edges);
        self
    }

    /// Appends weighted edges.
    ///
    /// # Panics
    ///
    /// Panics if unweighted edges were added before.
    pub fn weighted_edges(mut self, edges: impl IntoIterator<Item = (u32, u32, f32)>) -> Self {
        let weights = self.weights.get_or_insert_with(Vec::new);
        assert_eq!(
            weights.len(),
            self.edges.len(),
            "cannot mix weighted and unweighted edges"
        );
        for (u, v, w) in edges {
            self.edges.push((u, v));
            weights.push(w);
        }
        self
    }

    /// Adds the reverse of every edge (undirected graph).
    pub fn symmetrize(mut self, yes: bool) -> Self {
        self.symmetrize = yes;
        self
    }

    /// Collapses duplicate `(u, v)` pairs (keeping the first weight).
    pub fn deduplicate(mut self, yes: bool) -> Self {
        self.deduplicate = yes;
        self
    }

    /// Sets the self-loop policy.
    pub fn self_loops(mut self, policy: SelfLoops) -> Self {
        self.self_loops = policy;
        self
    }

    /// Builds the CSR. Neighbour lists are sorted by destination.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= num_vertices`.
    pub fn build(self) -> Csr {
        let n = self.num_vertices;
        let mut triples: Vec<(u32, u32, f32)> = self
            .edges
            .iter()
            .enumerate()
            .map(|(i, &(u, v))| {
                assert!(
                    (u as usize) < n && (v as usize) < n,
                    "edge ({u}, {v}) out of range for {n} vertices"
                );
                let w = self.weights.as_ref().map_or(1.0, |ws| ws[i]);
                (u, v, w)
            })
            .collect();

        if self.self_loops == SelfLoops::Remove {
            triples.retain(|&(u, v, _)| u != v);
        }
        if self.symmetrize {
            let mirrored: Vec<_> = triples.iter().map(|&(u, v, w)| (v, u, w)).collect();
            triples.extend(mirrored);
        }
        triples.sort_by_key(|&(u, v, _)| (u, v));
        if self.deduplicate {
            triples.dedup_by_key(|t| (t.0, t.1));
        }

        let mut offsets = vec![0u64; n + 1];
        for &(u, _, _) in &triples {
            offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let neighbors: Vec<u32> = triples.iter().map(|&(_, v, _)| v).collect();
        let weights = self
            .weights
            .is_some()
            .then(|| triples.iter().map(|&(_, _, w)| w).collect());
        Csr::from_parts(n, offsets, neighbors, weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_sorted_adjacency() {
        let g = GraphBuilder::new(3).edges([(0, 2), (0, 1), (2, 0)]).build();
        assert_eq!(g.neighbors_of(0), &[1, 2]);
        assert_eq!(g.neighbors_of(2), &[0]);
        assert_eq!(g.degree(1), 0);
    }

    #[test]
    fn symmetrize_doubles_edges() {
        let g = GraphBuilder::new(3)
            .edges([(0, 1), (1, 2)])
            .symmetrize(true)
            .build();
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors_of(1), &[0, 2]);
    }

    #[test]
    fn deduplicate_collapses() {
        let g = GraphBuilder::new(2)
            .edges([(0, 1), (0, 1), (0, 1)])
            .deduplicate(true)
            .build();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn self_loops_removed_by_default() {
        let g = GraphBuilder::new(2).edges([(0, 0), (0, 1)]).build();
        assert_eq!(g.num_edges(), 1);
        let g = GraphBuilder::new(2)
            .edges([(0, 0), (0, 1)])
            .self_loops(SelfLoops::Keep)
            .build();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn weights_follow_edges_through_sort() {
        let g = GraphBuilder::new(3)
            .weighted_edges([(0, 2, 2.5), (0, 1, 1.5)])
            .build();
        assert_eq!(g.neighbors_of(0), &[1, 2]);
        assert_eq!(g.weights_of(0), &[1.5, 2.5]);
    }

    #[test]
    fn symmetrized_weights_mirror() {
        let g = GraphBuilder::new(2)
            .weighted_edges([(0, 1, 3.0)])
            .symmetrize(true)
            .build();
        assert_eq!(g.weights_of(1), &[3.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let _ = GraphBuilder::new(2).edges([(0, 5)]).build();
    }

    #[test]
    #[should_panic(expected = "cannot mix")]
    fn mixing_weighted_and_unweighted_panics() {
        let _ = GraphBuilder::new(3)
            .edges([(0, 1)])
            .weighted_edges([(1, 2, 1.0)]);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = GraphBuilder::new(5).build();
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.num_vertices(), 5);
    }
}
