//! Self-contained deterministic pseudo-random number generation.
//!
//! The workspace must build with no network access, so it cannot depend on
//! the `rand` crate. This crate provides the small surface the simulator
//! and generators actually use — a seedable small-state generator with
//! `gen`, `gen_bool` and `gen_range` — behind the same call shapes, so a
//! call site only swaps its `use rand::...` imports for `use
//! atmem_rng::SmallRng`.
//!
//! The generator is xoshiro256++ seeded through splitmix64: fast,
//! well-distributed, and deterministic for a fixed seed (the property every
//! test and experiment relies on). The streams differ from `rand`'s
//! `SmallRng`, which is fine: nothing in the workspace depends on specific
//! draws, only on determinism, range bounds, and rough distribution shape.

use std::ops::{Range, RangeInclusive};

/// A small, fast, seedable generator (xoshiro256++).
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Creates a generator from a 64-bit seed via splitmix64 expansion.
    /// Deterministic: equal seeds produce equal streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        SmallRng { s }
    }

    /// The next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next 32 uniformly distributed bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Draws a value of a [`Standard`]-sampleable type. Floats are uniform
    /// in `[0, 1)`.
    #[inline]
    pub fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.gen::<f64>() < p
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }
}

/// Types drawable by [`SmallRng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample(rng: &mut SmallRng) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample(rng: &mut SmallRng) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample(rng: &mut SmallRng) -> Self {
        // 24 high bits → uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample(rng: &mut SmallRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    #[inline]
    fn sample(rng: &mut SmallRng) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    #[inline]
    fn sample(rng: &mut SmallRng) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    #[inline]
    fn sample(rng: &mut SmallRng) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges drawable by [`SmallRng::gen_range`].
pub trait SampleRange {
    /// Element type of the range.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample(self, rng: &mut SmallRng) -> Self::Output;
}

/// Uniform draw from `[0, span)` without modulo bias (Lemire's method).
#[inline]
fn uniform_below(rng: &mut SmallRng, span: u64) -> u64 {
    debug_assert!(span > 0);
    let threshold = span.wrapping_neg() % span;
    loop {
        let m = (rng.next_u64() as u128).wrapping_mul(span as u128);
        if m as u64 >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut SmallRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut SmallRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64) - (start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

int_range_impls!(u32, u64, usize);

macro_rules! float_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut SmallRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u: $t = rng.gen();
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

float_range_impls!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_and_divergence() {
        let stream = |seed| {
            let mut r = SmallRng::seed_from_u64(seed);
            (0..64).map(|_| r.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(stream(7), stream(7));
        assert_ne!(stream(7), stream(8));
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let a = r.gen_range(3u32..17);
            assert!((3..17).contains(&a));
            let b = r.gen_range(0usize..1);
            assert_eq!(b, 0);
            let c = r.gen_range(5u64..=9);
            assert!((5..=9).contains(&c));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = r.gen_range(1.0f32..4.0);
            assert!((1.0..4.0).contains(&x));
            let y: f64 = r.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_are_roughly_uniform() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        let mut r = SmallRng::seed_from_u64(0);
        let _ = r.gen_range(5u32..5);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "p=0.25 gave {hits}/10000");
    }
}
