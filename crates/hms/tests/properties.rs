//! Property-based tests of the memory-system invariants.

use atmem_hms::addr::PAGE_SIZE;
use atmem_hms::{
    FrameAllocator, FrameRun, Machine, Placement, Platform, TierId, TrackedVec, VirtAddr,
};
use atmem_prop::prelude::*;

proptest! {
    /// The frame allocator never double-allocates, never loses frames, and
    /// frees restore capacity exactly.
    #[test]
    fn frame_allocator_conserves_frames(
        ops in prop::collection::vec((1usize..32, any::<bool>()), 1..60),
    ) {
        let total = 512;
        let mut alloc = FrameAllocator::new(total);
        let mut live: Vec<FrameRun> = Vec::new();
        let mut occupied: Vec<bool> = vec![false; total];
        for (count, free_one) in ops {
            if free_one && !live.is_empty() {
                let run = live.swap_remove(0);
                for i in run.start..run.start + run.count {
                    prop_assert!(occupied[i as usize]);
                    occupied[i as usize] = false;
                }
                alloc.free_run(run);
            } else if let Some(run) = alloc.alloc_run(count) {
                prop_assert_eq!(run.count as usize, count);
                for i in run.start..run.start + run.count {
                    prop_assert!(!occupied[i as usize], "double allocation of {i}");
                    occupied[i as usize] = true;
                }
                live.push(run);
            }
            let used: usize = occupied.iter().filter(|&&b| b).count();
            prop_assert_eq!(alloc.used_frames(), used);
            prop_assert_eq!(alloc.free_frames(), total - used);
        }
    }

    /// Aligned allocations are aligned, whatever came before them.
    #[test]
    fn aligned_runs_are_aligned(
        noise in prop::collection::vec(1usize..7, 0..10),
        align_pow in 1u32..7,
        count_units in 1usize..4,
    ) {
        let align = 1usize << align_pow;
        let mut alloc = FrameAllocator::new(1024);
        for n in noise {
            let _ = alloc.alloc_run(n);
        }
        if let Some(run) = alloc.alloc_run_aligned(count_units * align, align) {
            prop_assert_eq!(run.start as usize % align, 0);
        }
    }

    /// Every byte written through the accounted path reads back through
    /// both the accounted and unaccounted paths, across arbitrary
    /// allocation sizes and placements.
    #[test]
    fn read_your_writes(
        sizes in prop::collection::vec(1usize..64, 1..6),
        fast in any::<bool>(),
        probe in 0usize..32,
    ) {
        let mut machine = Machine::new(Platform::testing());
        let placement = if fast { Placement::Fast } else { Placement::Slow };
        let mut regions = Vec::new();
        for pages in &sizes {
            regions.push(machine.alloc(pages * PAGE_SIZE, placement).unwrap());
        }
        for (ri, r) in regions.iter().enumerate() {
            let words = r.len / 8;
            let idx = probe % words;
            let va = r.start.add((idx * 8) as u64);
            let value = (ri as u64) << 32 | idx as u64;
            machine.write::<u64>(va, value).unwrap();
            prop_assert_eq!(machine.read::<u64>(va).unwrap(), value);
            prop_assert_eq!(machine.peek::<u64>(va).unwrap(), value);
        }
        // Free everything; all reads must fail afterwards.
        for r in &regions {
            machine.free(*r).unwrap();
        }
        for r in &regions {
            prop_assert!(machine.read::<u64>(r.start).is_err());
        }
    }

    /// Translation is stable: repeated reads of untouched data return the
    /// same value regardless of interleaved migrations of other regions.
    #[test]
    fn migration_does_not_disturb_neighbours(
        pages_a in 1usize..32,
        pages_b in 1usize..32,
        migrate_to_fast in any::<bool>(),
    ) {
        let mut machine = Machine::new(Platform::testing());
        let a = machine.alloc(pages_a * PAGE_SIZE, Placement::Slow).unwrap();
        let b = machine.alloc(pages_b * PAGE_SIZE, Placement::Slow).unwrap();
        machine.poke::<u64>(a.start, 0xAAAA).unwrap();
        machine.poke::<u64>(b.start, 0xBBBB).unwrap();
        let dst = if migrate_to_fast { TierId::FAST } else { TierId::SLOW };
        let full_a = atmem_hms::VirtRange::new(a.start, pages_a * PAGE_SIZE);
        machine.migrate_mbind(full_a, dst).unwrap();
        prop_assert_eq!(machine.peek::<u64>(a.start).unwrap(), 0xAAAA);
        prop_assert_eq!(machine.peek::<u64>(b.start).unwrap(), 0xBBBB);
    }

    /// The batched window engine (`gather` / `scatter` / `gather_update`)
    /// leaves all simulated state — counters, clock, PEBS and trace streams
    /// — bit-identical to the per-element loop, for arbitrary index windows
    /// (duplicates, runs and random jumps included) over an array that
    /// spills across the tier boundary.
    #[test]
    fn window_engine_matches_scalar_loop_on_random_windows(
        raw in prop::collection::vec((0u32..5_000, 1usize..5), 1..120),
        ops in prop::collection::vec(0u32..3, 1..6),
        period in 2u64..9,
    ) {
        // Expand (start, run) pairs into a window with natural line runs.
        let n = 5_000usize; // u64 array: 40 000 B, spills a 16 KiB fast tier.
        let window: Vec<u32> = raw
            .iter()
            .flat_map(|&(start, run)| (0..run).map(move |k| (start + k as u32) % n as u32))
            .collect();
        let platform = || Platform::testing().with_capacities(16 * 1024, 4 * 1024 * 1024);
        let mut bulk = Machine::new(platform());
        let mut scalar = Machine::new(platform());
        for m in [&mut bulk, &mut scalar] {
            m.pebs_enable(period, period / 2);
            m.trace_enable();
        }
        let vb = TrackedVec::<u64>::new(&mut bulk, n, Placement::Preferred(TierId::FAST)).unwrap();
        let vs =
            TrackedVec::<u64>::new(&mut scalar, n, Placement::Preferred(TierId::FAST)).unwrap();
        for op in ops {
            match op {
                0 => {
                    let mut out = vec![0u64; window.len()];
                    vb.gather(&mut bulk, &window, &mut out);
                    for (&i, &got) in window.iter().zip(&out) {
                        prop_assert_eq!(vs.get(&mut scalar, i as usize), got);
                    }
                }
                1 => {
                    let vals: Vec<u64> = (0..window.len() as u64).collect();
                    vb.scatter(&mut bulk, &window, &vals);
                    for (&i, &x) in window.iter().zip(&vals) {
                        vs.set(&mut scalar, i as usize, x);
                    }
                }
                _ => {
                    let mut olds = Vec::with_capacity(window.len());
                    vb.gather_update(&mut bulk, &window, |k, x| {
                        olds.push(x);
                        x.wrapping_add(k as u64)
                    });
                    for (k, &i) in window.iter().enumerate() {
                        let old = vs.update(&mut scalar, i as usize, |x| {
                            x.wrapping_add(k as u64)
                        });
                        prop_assert_eq!(olds[k], old);
                    }
                }
            }
            prop_assert_eq!(bulk.stats(), scalar.stats());
            prop_assert_eq!(bulk.now(), scalar.now());
        }
        prop_assert_eq!(bulk.pebs_drain(), scalar.pebs_drain());
        prop_assert_eq!(bulk.trace_drain(), scalar.trace_drain());
    }

    /// Simulated time is monotone under any access sequence.
    #[test]
    fn clock_is_monotone_under_accesses(
        offsets in prop::collection::vec(0u64..(16 * PAGE_SIZE as u64 / 8), 1..200),
        writes in prop::collection::vec(any::<bool>(), 1..200),
    ) {
        let mut machine = Machine::new(Platform::testing());
        let r = machine.alloc(16 * PAGE_SIZE, Placement::Slow).unwrap();
        let mut last = machine.now().as_ns();
        for (off, w) in offsets.iter().zip(writes.iter().cycle()) {
            let va = VirtAddr::new(r.start.raw() + off * 8);
            if *w {
                machine.write::<u64>(va, *off).unwrap();
            } else {
                let _ = machine.read::<u64>(va).unwrap();
            }
            let now = machine.now().as_ns();
            prop_assert!(now > last, "time must strictly advance per access");
            last = now;
        }
    }
}
