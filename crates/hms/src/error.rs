//! Error types for the HMS simulator.

use std::error::Error as StdError;
use std::fmt;

use crate::addr::VirtAddr;
use crate::tier::TierId;

/// Errors produced by the heterogeneous-memory-system simulator.
///
/// Every fallible public operation in this crate returns [`HmsError`] through
/// the [`Result`] alias.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HmsError {
    /// A tier ran out of physical frames while servicing an allocation.
    OutOfMemory {
        /// Tier on which the allocation was attempted.
        tier: TierId,
        /// Display name of the tier, resolved against the platform's tier
        /// set (e.g. `"Optane-NVM"`); positional `tier{i}` when unresolved.
        tier_name: String,
        /// Number of bytes that could not be allocated.
        requested: usize,
    },
    /// No contiguous frame run of the requested length exists, even though
    /// enough total frames are free (external fragmentation).
    Fragmented {
        /// Tier on which the allocation was attempted.
        tier: TierId,
        /// Display name of the tier (see [`HmsError::OutOfMemory`]).
        tier_name: String,
        /// Number of contiguous frames requested.
        frames: usize,
    },
    /// The virtual address is not mapped by any allocation.
    Unmapped(VirtAddr),
    /// The virtual range does not correspond to a live allocation created by
    /// [`Machine::alloc`](crate::Machine::alloc).
    UnknownAllocation(VirtAddr),
    /// An access or migration range is empty or exceeds its allocation.
    InvalidRange {
        /// Start of the offending range.
        start: VirtAddr,
        /// Length of the offending range in bytes.
        len: usize,
    },
    /// The requested tier identifier does not exist on this machine.
    UnknownTier(TierId),
    /// An allocation request of zero bytes was made.
    ZeroSizedAllocation,
    /// A [`FaultPlan`](crate::FaultPlan) injected a failure at this site.
    /// Only produced when a fault plan is installed; models non-capacity
    /// failures (e.g. a copier thread dying mid-move).
    FaultInjected(crate::fault::FaultSite),
}

impl fmt::Display for HmsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HmsError::OutOfMemory {
                tier_name,
                requested,
                ..
            } => {
                write!(
                    f,
                    "tier {tier_name} out of memory allocating {requested} bytes"
                )
            }
            HmsError::Fragmented {
                tier_name, frames, ..
            } => {
                write!(
                    f,
                    "tier {tier_name} has no contiguous run of {frames} frames"
                )
            }
            HmsError::Unmapped(va) => write!(f, "virtual address {va} is not mapped"),
            HmsError::UnknownAllocation(va) => {
                write!(f, "no allocation starts at virtual address {va}")
            }
            HmsError::InvalidRange { start, len } => {
                write!(f, "invalid range: start {start}, length {len} bytes")
            }
            HmsError::UnknownTier(tier) => write!(f, "unknown tier {tier}"),
            HmsError::ZeroSizedAllocation => write!(f, "zero-sized allocation"),
            HmsError::FaultInjected(site) => write!(f, "injected fault at {site}"),
        }
    }
}

impl StdError for HmsError {}

/// Convenience alias used by all fallible operations in this crate.
pub type Result<T> = std::result::Result<T, HmsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = HmsError::OutOfMemory {
            tier: TierId::FAST,
            tier_name: "MCDRAM".to_string(),
            requested: 4096,
        };
        let msg = e.to_string();
        assert!(msg.starts_with("tier"));
        assert!(
            msg.contains("MCDRAM"),
            "uses the tier's display name: {msg}"
        );
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HmsError>();
    }
}
