//! Sharded parallel simulation: per-core state and the core access engine.
//!
//! The simulated machine is split into **shared read-mostly state** (tiers
//! and their byte storage, the frame allocators, the mapping table, the
//! allocation registry, the platform description) and **per-core state**
//! ([`CoreCtx`]: private TLB, private LLC, local clock, local counters,
//! local PEBS sampler, local trace ring). A [`CoreHandle`] bundles one
//! core's mutable context with shared borrows of everything else and owns
//! the *entire* accounted access engine — the scalar path, the batched
//! window engine and the bulk block engine. [`Machine`](crate::Machine)
//! itself keeps one resident `CoreCtx` and routes every access through a
//! handle over it, so the single-core simulator is the n=1 special case of
//! the sharded one by construction.
//!
//! ## The deterministic reduction contract
//!
//! [`Machine::run_cores`](crate::Machine::run_cores) forks `n` cold
//! [`CoreCtx`]s, runs one closure per core under [`std::thread::scope`],
//! and merges in **core order** regardless of OS scheduling:
//!
//! * access counters and TLB/LLC hit/miss totals are **summed**;
//! * per-core PEBS streams are **concatenated in core order** (each core
//!   has an independent jitter RNG derived from the machine seed and its
//!   core id, so the merged stream is a pure function of seed, core count
//!   and partition);
//! * per-core traces are concatenated in core order, bounded by the parent
//!   tracer's capacity;
//! * the machine clock advances by the **maximum** per-core elapsed time
//!   plus one modeled phase-barrier cost
//!   ([`CostModel::barrier_cost`](crate::cost::CostModel::barrier_cost)).
//!
//! With `n = 1`, `run_cores` does not fork at all: the closure runs against
//! the machine's own resident core, no barrier is charged, and every piece
//! of simulated state ends bit-identical to the scalar engine.
//!
//! ## The partition contract
//!
//! Shared tier storage is handed to cores as a [`TiersView`] of raw
//! pointers. Cores may *read* any mapped byte concurrently; a byte
//! **written** by one core during a phase must not be read or written by
//! any other core in the same phase (kernels partition their output ranges
//! to guarantee this, merging cross-core contributions at phase barriers).
//! Violating the contract is a data race on simulated memory — the same
//! bug it would be on real hardware.

use std::marker::PhantomData;

use crate::addr::{
    PhysAddr, VirtAddr, VirtRange, HUGE_PAGE_FRAMES, LINE_SIZE, PAGE_SHIFT, PAGE_SIZE,
};
use crate::cache::Cache;
use crate::cost::{SimClock, SimDuration};
use crate::error::{HmsError, Result};
use crate::machine::Scalar;
use crate::mapping::{Mapping, MappingTable, PageKind};
use crate::pebs::Pebs;
use crate::plan::{SweepPlan, WindowPlan};
use crate::platform::Platform;
use crate::tier::{Tier, TierId, TierSpec};
use crate::tlb::Tlb;
use crate::trace::{AccessKind, Tracer};

/// Maximum number of tiers a machine (and the window engine's cost table,
/// the residency caches, and a [`TiersView`]) can carry. Platform presets
/// range from two (the paper testbeds) to four (HBM-DRAM-CXL-NVM).
pub const MAX_TIERS: usize = 8;

/// What each element of a batched index window does, for
/// [`CoreHandle::access_window`]. Passed as a const generic so each op's
/// loop monomorphizes branch-free. `OP_RMW` is simulated as a read followed
/// by a guaranteed-hit write of the same line, exactly like
/// [`CoreHandle::read_modify_write`].
pub(crate) const OP_READ: u8 = 0;
/// Write each element (see [`OP_READ`]).
pub(crate) const OP_WRITE: u8 = 1;
/// Read-modify-write each element (see [`OP_READ`]).
pub(crate) const OP_RMW: u8 = 2;

/// Access totals local to one simulated core.
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub(crate) accesses: u64,
    pub(crate) reads: u64,
    pub(crate) writes: u64,
    pub(crate) bytes_migrated: u64,
}

/// One physically contiguous piece of a bulk access: `len` bytes starting
/// at byte `offset` of `tier`'s storage. Produced by
/// [`MemPort::access_block`]; consumed by the `TrackedVec` slice APIs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockSegment {
    /// Tier whose storage backs this piece.
    pub tier: TierId,
    /// Byte offset into the tier storage.
    pub offset: usize,
    /// Length in bytes.
    pub len: usize,
}

/// The private state of one simulated core.
///
/// Everything that the access path mutates lives here; everything it only
/// reads (mappings, tier specs, tier storage geometry) stays on the
/// machine and is shared. Forked cores start with **cold** TLB and LLC —
/// real cores do not inherit another core's private cache contents — so
/// multi-core cache state is intentionally not bit-identical to the scalar
/// engine (see the module docs); counters, streams and the clock still
/// merge deterministically.
#[derive(Debug)]
pub struct CoreCtx {
    pub(crate) tlb: Tlb,
    pub(crate) llc: Cache,
    pub(crate) clock: SimClock,
    pub(crate) pebs: Pebs,
    pub(crate) tracer: Tracer,
    pub(crate) counters: Counters,
    /// One-entry memo over the shared mapping table (the per-core analogue
    /// of [`MappingTable`]'s internal lookup cache, which cores cannot
    /// share behind `&self`).
    pub(crate) map_memo: Option<Mapping>,
}

impl CoreCtx {
    /// Builds the machine's resident core: cold TLB/LLC sized from the
    /// platform, clock at zero, a PEBS sampler with the given seed.
    pub(crate) fn resident(platform: &Platform, pebs_seed: u64, trace_capacity: usize) -> Self {
        CoreCtx {
            tlb: Tlb::new(platform.tlb_entries),
            llc: Cache::new(platform.llc),
            clock: SimClock::new(),
            pebs: Pebs::new(pebs_seed),
            tracer: Tracer::new(trace_capacity),
            counters: Counters::default(),
            map_memo: None,
        }
    }

    /// Forks the per-core context for simulated core `core_id`: cold
    /// TLB/LLC, clock at zero (it will measure this core's phase-local
    /// elapsed time), a PEBS sampler with an independent deterministic
    /// stream, and an empty trace ring.
    pub(crate) fn fork(&self, platform: &Platform, core_id: usize) -> CoreCtx {
        CoreCtx {
            tlb: Tlb::new(platform.tlb_entries),
            llc: Cache::new(platform.llc),
            clock: SimClock::new(),
            pebs: self.pebs.fork(core_id),
            tracer: self.tracer.fork(),
            counters: Counters::default(),
            map_memo: None,
        }
    }

    /// This core's phase-local elapsed simulated time.
    pub fn elapsed(&self) -> SimDuration {
        self.clock.now()
    }
}

/// A raw-pointer view of one tier's spec and backing storage.
#[derive(Debug, Clone, Copy)]
struct TierView {
    spec: *const TierSpec,
    base: *mut u8,
    cap: usize,
}

/// A `Copy`, thread-shareable view of the tier array: specs and raw
/// storage pointers, no frame allocators (cores never allocate).
///
/// # Safety
///
/// The view borrows the tiers mutably for `'a`, so no other code can touch
/// tier storage while any copy of the view is live. Concurrent use across
/// cores is governed by the partition contract (module docs): concurrent
/// reads of any byte are fine; bytes written by one core in a phase must
/// not be accessed by another. `bytes`/`bytes_mut` materialise references
/// only over the exact requested range, so disjoint accesses never create
/// aliasing references.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TiersView<'a> {
    views: [TierView; MAX_TIERS],
    count: usize,
    _marker: PhantomData<&'a mut [Tier]>,
}

// SAFETY: see the struct docs — the underlying storage outlives 'a and all
// cross-thread access is restricted by the partition contract.
unsafe impl Send for TiersView<'_> {}
unsafe impl Sync for TiersView<'_> {}

impl<'a> TiersView<'a> {
    pub(crate) fn new(tiers: &'a mut [Tier]) -> Self {
        assert!(tiers.len() <= MAX_TIERS, "more tiers than the view holds");
        let mut views = [TierView {
            spec: std::ptr::null(),
            base: std::ptr::null_mut(),
            cap: 0,
        }; MAX_TIERS];
        let count = tiers.len();
        for (v, t) in views.iter_mut().zip(tiers.iter_mut()) {
            v.spec = &t.spec;
            v.cap = t.storage.capacity();
            v.base = t.storage.base_ptr();
        }
        TiersView {
            views,
            count,
            _marker: PhantomData,
        }
    }

    /// Number of tiers.
    pub(crate) fn len(&self) -> usize {
        self.count
    }

    /// The spec of `tier`.
    #[inline]
    pub(crate) fn spec(&self, tier: TierId) -> &TierSpec {
        self.spec_at(tier.index())
    }

    /// The spec of the tier at `index`.
    #[inline]
    pub(crate) fn spec_at(&self, index: usize) -> &TierSpec {
        debug_assert!(index < self.count);
        // SAFETY: the pointer was taken from a tier borrowed for 'a and the
        // spec is never mutated while mapped (tiers are read-mostly shared
        // state).
        unsafe { &*self.views[index].spec }
    }

    /// Borrows `len` bytes of `tier`'s storage starting at `offset`.
    #[inline]
    pub(crate) fn bytes(&self, tier: TierId, offset: usize, len: usize) -> &[u8] {
        let v = &self.views[tier.index()];
        assert!(offset + len <= v.cap, "tier storage slice out of bounds");
        // SAFETY: in bounds (checked), storage outlives 'a, and the
        // partition contract forbids concurrent writes to these bytes.
        unsafe { std::slice::from_raw_parts(v.base.add(offset), len) }
    }

    /// Mutably borrows `len` bytes of `tier`'s storage starting at
    /// `offset`.
    #[allow(clippy::mut_from_ref)] // the view is a shared window over storage owned elsewhere
    #[inline]
    pub(crate) fn bytes_mut(&self, tier: TierId, offset: usize, len: usize) -> &mut [u8] {
        let v = &self.views[tier.index()];
        assert!(offset + len <= v.cap, "tier storage slice out of bounds");
        // SAFETY: in bounds (checked), storage outlives 'a, and the
        // partition contract guarantees no other core touches bytes this
        // core writes during a phase; the reference covers only the
        // requested range, so disjoint ranges never alias.
        unsafe { std::slice::from_raw_parts_mut(v.base.add(offset), len) }
    }
}

/// One simulated core's access engine: a mutable borrow of that core's
/// [`CoreCtx`] plus shared borrows of the machine's read-mostly state.
///
/// Obtained from [`Machine::run_cores`](crate::Machine::run_cores) (one per
/// core, on its own OS thread) — or implicitly: every access method on
/// [`Machine`](crate::Machine) routes through a handle over the machine's
/// resident core.
#[derive(Debug)]
pub struct CoreHandle<'a> {
    pub(crate) core: &'a mut CoreCtx,
    pub(crate) mappings: &'a MappingTable,
    pub(crate) platform: &'a Platform,
    pub(crate) tiers: TiersView<'a>,
}

impl<'a> CoreHandle<'a> {
    pub(crate) fn new(
        core: &'a mut CoreCtx,
        mappings: &'a MappingTable,
        platform: &'a Platform,
        tiers: TiersView<'a>,
    ) -> Self {
        CoreHandle {
            core,
            mappings,
            platform,
            tiers,
        }
    }

    /// The platform the machine was built from.
    pub fn platform(&self) -> &Platform {
        self.platform
    }

    /// This core's phase-local elapsed simulated time.
    pub fn elapsed(&self) -> SimDuration {
        self.core.clock.now()
    }

    /// Finds the mapping containing `va` through the core-private one-entry
    /// memo, falling back to the shared table.
    #[inline]
    fn lookup(&mut self, va: VirtAddr) -> Result<Mapping> {
        let vpage = va.page_index();
        if let Some(m) = self.core.map_memo {
            if vpage >= m.vpage_start && vpage < m.vpage_start + m.pages as u64 {
                return Ok(m);
            }
        }
        let m = self.mappings.lookup_ro(va)?;
        self.core.map_memo = Some(m);
        Ok(m)
    }

    /// Performs an accounted access of `len` bytes at `va` and returns the
    /// (tier, storage offset) servicing it. The access must not cross a
    /// page boundary (guaranteed for naturally aligned scalars).
    #[inline]
    fn access(&mut self, va: VirtAddr, len: usize, write: bool) -> Result<(TierId, usize)> {
        debug_assert!(len > 0 && va.page_offset() + len <= PAGE_SIZE);
        let mapping = self.lookup(va)?;
        self.core.counters.accesses += 1;
        if write {
            self.core.counters.writes += 1;
        } else {
            self.core.counters.reads += 1;
        }

        let mut cost = SimDuration::ZERO;
        if !self
            .core
            .tlb
            .access(mapping.tlb_key(va, self.platform.tlb_coalesce))
        {
            cost += self.platform.cost.walk_cost();
        }
        let (frame, offset) = mapping.translate(va);
        let pa = frame.phys_addr(offset).line_aligned();
        let hit = self.core.llc.access(pa, write).is_hit();
        if hit {
            cost += self.platform.cost.hit_cost();
        } else {
            let spec = self.tiers.spec(frame.tier);
            cost += self.platform.cost.miss_cost(spec, write);
            if !write && self.core.pebs.on_read_miss(va) {
                cost += self.platform.cost.sample_cost();
            }
        }
        if self.core.tracer.is_enabled() {
            let kind = match (write, hit) {
                (false, true) => AccessKind::ReadHit,
                (false, false) => AccessKind::ReadMiss,
                (true, true) => AccessKind::WriteHit,
                (true, false) => AccessKind::WriteMiss,
            };
            self.core.tracer.record(va, kind);
        }
        self.core.clock.advance(cost);
        Ok((frame.tier, frame.byte_offset() + offset))
    }

    /// Reads a little-endian scalar through the full accounted path (see
    /// [`Machine::read`](crate::Machine::read)).
    ///
    /// # Errors
    ///
    /// [`HmsError::Unmapped`] if `va` is not mapped.
    #[inline]
    pub fn read<T: Scalar>(&mut self, va: VirtAddr) -> Result<T> {
        let (tier, off) = self.access(va, T::SIZE, false)?;
        let bytes = self.tiers.bytes(tier, off, T::SIZE);
        Ok(T::from_le_slice(bytes))
    }

    /// Writes a little-endian scalar through the full accounted path (see
    /// [`Machine::write`](crate::Machine::write)).
    ///
    /// # Errors
    ///
    /// [`HmsError::Unmapped`] if `va` is not mapped.
    #[inline]
    pub fn write<T: Scalar>(&mut self, va: VirtAddr, value: T) -> Result<()> {
        let (tier, off) = self.access(va, T::SIZE, true)?;
        let bytes = self.tiers.bytes_mut(tier, off, T::SIZE);
        value.write_le_slice(bytes);
        Ok(())
    }

    /// Accounted read-modify-write of one scalar: simulated exactly as a
    /// [`read`](CoreHandle::read) followed by a [`write`](CoreHandle::write)
    /// of the same address, but with one address translation and one
    /// storage round-trip on the host. Returns the *old* value.
    ///
    /// The write half is a guaranteed TLB and LLC hit (the read just
    /// touched both), so all counters, the PEBS stream and the clock end
    /// bit-identical to the two-call sequence. This is the fast path for
    /// scatter updates like `next[u] += share`.
    ///
    /// # Errors
    ///
    /// [`HmsError::Unmapped`] if `va` is not mapped.
    #[inline]
    pub fn read_modify_write<T: Scalar>(
        &mut self,
        va: VirtAddr,
        f: impl FnOnce(T) -> T,
    ) -> Result<T> {
        debug_assert!(va.page_offset() + T::SIZE <= PAGE_SIZE);
        let mapping = self.lookup(va)?;
        self.core.counters.accesses += 2;
        self.core.counters.reads += 1;
        self.core.counters.writes += 1;
        let (frame, offset) = mapping.translate(va);
        let pa = frame.phys_addr(offset).line_aligned();

        // Read half: composed exactly as `access(va, _, false)`. The write
        // half's TLB lookup is folded into the run.
        let mut cost = SimDuration::ZERO;
        if !self
            .core
            .tlb
            .access_run(mapping.tlb_key(va, self.platform.tlb_coalesce), 2)
        {
            cost += self.platform.cost.walk_cost();
        }
        let (outcome, slot) = self.core.llc.access_slot(pa, false);
        let hit = outcome.is_hit();
        if hit {
            cost += self.platform.cost.hit_cost();
        } else {
            let spec = self.tiers.spec(frame.tier);
            cost += self.platform.cost.miss_cost(spec, false);
            if self.core.pebs.on_read_miss(va) {
                cost += self.platform.cost.sample_cost();
            }
        }
        self.core.clock.advance(cost);

        // Write half: a guaranteed hit on the just-filled line, so the tag
        // scan is skipped.
        self.core.llc.rehit(slot, true);
        let mut wcost = SimDuration::ZERO;
        wcost += self.platform.cost.hit_cost();
        self.core.clock.advance(wcost);

        if self.core.tracer.is_enabled() {
            self.core.tracer.record(
                va,
                if hit {
                    AccessKind::ReadHit
                } else {
                    AccessKind::ReadMiss
                },
            );
            self.core.tracer.record(va, AccessKind::WriteHit);
        }

        let bytes = self
            .tiers
            .bytes_mut(frame.tier, frame.byte_offset() + offset, T::SIZE);
        let old = T::from_le_slice(bytes);
        f(old).write_le_slice(bytes);
        Ok(old)
    }

    /// Reads a scalar without advancing the clock or touching TLB/cache
    /// (see [`Machine::peek`](crate::Machine::peek)).
    ///
    /// # Errors
    ///
    /// [`HmsError::Unmapped`] if `va` is not mapped.
    pub fn peek<T: Scalar>(&mut self, va: VirtAddr) -> Result<T> {
        let mapping = self.lookup(va)?;
        let (frame, offset) = mapping.translate(va);
        let bytes = self
            .tiers
            .bytes(frame.tier, frame.byte_offset() + offset, T::SIZE);
        Ok(T::from_le_slice(bytes))
    }

    /// Writes a scalar without advancing the clock or touching TLB/cache
    /// (see [`Machine::poke`](crate::Machine::poke)).
    ///
    /// # Errors
    ///
    /// [`HmsError::Unmapped`] if `va` is not mapped.
    pub fn poke<T: Scalar>(&mut self, va: VirtAddr, value: T) -> Result<()> {
        let mapping = self.lookup(va)?;
        let (frame, offset) = mapping.translate(va);
        let bytes = self
            .tiers
            .bytes_mut(frame.tier, frame.byte_offset() + offset, T::SIZE);
        value.write_le_slice(bytes);
        Ok(())
    }

    /// Accounted indexed gather (see
    /// [`MemPort::read_gather`]).
    ///
    /// # Errors
    ///
    /// [`HmsError::Unmapped`] if any accessed address is unmapped. Elements
    /// before the failing one have been charged exactly as the scalar loop
    /// would have charged them; the failing element has not.
    pub(crate) fn read_gather<T: Scalar>(
        &mut self,
        base: VirtAddr,
        elem_count: usize,
        indices: &[u32],
        out: &mut [T],
    ) -> Result<()> {
        assert_eq!(indices.len(), out.len(), "index/output length mismatch");
        check_window_width(elem_count);
        self.access_window::<T, OP_READ>(base, elem_count, indices, |k, bytes| {
            out[k] = T::from_le_slice(bytes);
        })
    }

    /// Accounted indexed scatter (see [`MemPort::write_scatter`]).
    ///
    /// # Errors
    ///
    /// [`HmsError::Unmapped`] if any accessed address is unmapped; partial
    /// state matches the scalar loop.
    pub(crate) fn write_scatter<T: Scalar>(
        &mut self,
        base: VirtAddr,
        elem_count: usize,
        indices: &[u32],
        values: &[T],
    ) -> Result<()> {
        assert_eq!(indices.len(), values.len(), "index/value length mismatch");
        check_window_width(elem_count);
        self.access_window::<T, OP_WRITE>(base, elem_count, indices, |k, bytes| {
            values[k].write_le_slice(bytes);
        })
    }

    /// Accounted indexed read-modify-write window (see
    /// [`MemPort::gather_update`]).
    ///
    /// # Errors
    ///
    /// [`HmsError::Unmapped`] if any accessed address is unmapped; partial
    /// state matches the scalar loop.
    pub(crate) fn gather_update<T: Scalar>(
        &mut self,
        base: VirtAddr,
        elem_count: usize,
        indices: &[u32],
        mut f: impl FnMut(usize, T) -> T,
    ) -> Result<()> {
        check_window_width(elem_count);
        self.access_window::<T, OP_RMW>(base, elem_count, indices, |k, bytes| {
            let old = T::from_le_slice(bytes);
            f(k, old).write_le_slice(bytes);
        })
    }

    /// The batched random-access window engine behind
    /// [`read_gather`](CoreHandle::read_gather),
    /// [`write_scatter`](CoreHandle::write_scatter) and
    /// [`gather_update`](CoreHandle::gather_update).
    ///
    /// Processes `indices` **in window order** (never sorted — reordering
    /// would change LLC replacement decisions and the PEBS stream) and
    /// coalesces maximal *consecutive* runs of elements that land on the
    /// same cache line. Because a line sits inside one page, which sits
    /// inside one TLB translation unit, which sits inside one mapping, a
    /// same-line element is a guaranteed TLB hit and a guaranteed LLC hit
    /// in the scalar loop; the engine therefore defers those bumps (counts
    /// per structure) and flushes them — via [`Tlb::window_settle`] and
    /// [`Cache::window_settle`] — immediately before the next *real* probe
    /// of that structure, before returning an error, and at window end.
    /// Between flush points no other TLB/LLC operation happens, so the
    /// deferred bumps commute with nothing and every replacement / sampling
    /// decision is made on exactly the state the scalar loop would have
    /// had. The TLB run additionally extends across lines while the
    /// translation key is unchanged (keys are location-unique), and key
    /// *changes* probe through the TLB's window side-memo
    /// ([`Tlb::window_access_run`]); line changes probe through the LLC's
    /// window side-memo ([`Cache::window_access_slot`]), which skips the
    /// per-set tag scan for recently probed lines and defers their LRU
    /// re-stamps until the next eviction decision in that set. Clock,
    /// counters, PEBS and trace records are still charged per element, in
    /// order, with the identical f64 cost composition — so all simulated
    /// state ends bit-identical to the scalar loop.
    ///
    /// `data` is invoked once per element, in order, on the element's
    /// backing storage bytes (after accounting).
    fn access_window<T: Scalar, const OP: u8>(
        &mut self,
        base: VirtAddr,
        elem_count: usize,
        indices: &[u32],
        mut data: impl FnMut(usize, &mut [u8]),
    ) -> Result<()> {
        let coalesce = self.platform.tlb_coalesce;
        let walk_cost = self.platform.cost.walk_cost();
        let hit_cost = self.platform.cost.hit_cost();
        let sample_cost = self.platform.cost.sample_cost();
        let write_probe = OP == OP_WRITE;
        // TLB touches per element: the RMW write half folds its lookup into
        // the read's run, exactly like `read_modify_write`.
        let tlb_per_elem = if OP == OP_RMW { 2 } else { 1 };
        // Per-tier miss costs, computed once: `miss_cost` divides by the
        // tier bandwidth, which is too expensive for the per-miss loop. A
        // stack array, not a Vec — small windows are frequent enough that a
        // per-call heap allocation would dominate them.
        let mut tier_miss = [SimDuration::ZERO; MAX_TIERS];
        for (i, slot) in tier_miss.iter_mut().enumerate().take(self.tiers.len()) {
            *slot = self
                .platform
                .cost
                .miss_cost(self.tiers.spec_at(i), write_probe);
        }
        let tracing = self.core.tracer.is_enabled();
        // Guaranteed-hit element cost, composed once exactly as the scalar
        // loop composes it per element (`ZERO + hit_cost`).
        let mut rest_cost = SimDuration::ZERO;
        rest_cost += hit_cost;

        // One-entry mapping memo: windows overwhelmingly stay inside one
        // array, so most iterations skip the mapping-table call entirely.
        let mut cur: Option<Mapping> = None;
        // Current TLB run: deferred guaranteed-hit touches of `run_key`.
        let mut run_key = 0u64;
        let mut run_key_valid = false;
        let mut tlb_pending = 0usize;
        // Current line run: deferred guaranteed-hit touches of `cur_slot`.
        let mut cur_vline = 0u64;
        let mut line_valid = false;
        let mut cur_slot = 0usize;
        let mut pending_reads = 0u64;
        let mut pending_writes = 0u64;

        for (k, &i) in indices.iter().enumerate() {
            let i = i as usize;
            // Hard check, not debug_assert: in release builds an out-of-range
            // index would silently alias a neighboring element of the same
            // mapping (the window engine trusts `i` for address arithmetic).
            assert!(
                i < elem_count,
                "window index {i} out of bounds ({elem_count})"
            );
            let va = VirtAddr::new(base.raw() + (i * T::SIZE) as u64);
            let vline = va.raw() / LINE_SIZE as u64;

            if line_valid && vline == cur_vline {
                // Hot path: the element continues the current line run. Same
                // line means same page, same translation unit, same mapping,
                // so the scalar loop's TLB access and LLC access are both
                // guaranteed hits — defer their bumps and charge everything
                // else exactly as the scalar loop would.
                let mapping = cur.expect("line run without a mapping");
                match OP {
                    OP_READ => {
                        self.core.counters.accesses += 1;
                        self.core.counters.reads += 1;
                        tlb_pending += 1;
                        pending_reads += 1;
                        if tracing {
                            self.core.tracer.record(va, AccessKind::ReadHit);
                        }
                        self.core.clock.advance(rest_cost);
                    }
                    OP_WRITE => {
                        self.core.counters.accesses += 1;
                        self.core.counters.writes += 1;
                        tlb_pending += 1;
                        pending_writes += 1;
                        if tracing {
                            self.core.tracer.record(va, AccessKind::WriteHit);
                        }
                        self.core.clock.advance(rest_cost);
                    }
                    _ => {
                        self.core.counters.accesses += 2;
                        self.core.counters.reads += 1;
                        self.core.counters.writes += 1;
                        tlb_pending += 2;
                        pending_reads += 1;
                        pending_writes += 1;
                        self.core.clock.advance(rest_cost);
                        self.core.clock.advance(rest_cost);
                        if tracing {
                            self.core.tracer.record(va, AccessKind::ReadHit);
                            self.core.tracer.record(va, AccessKind::WriteHit);
                        }
                    }
                }
                let (frame, offset) = mapping.translate(va);
                let bytes = self
                    .tiers
                    .bytes_mut(frame.tier, frame.byte_offset() + offset, T::SIZE);
                data(k, bytes);
                continue;
            }

            // New line: resolve the mapping (memo first), scalar order —
            // lookup precedes the counter charge, so an unmapped element
            // leaves totals exactly where the scalar loop would.
            let vpage = va.page_index();
            let mapping = match cur {
                Some(m) if vpage >= m.vpage_start && vpage < m.vpage_start + m.pages as u64 => m,
                _ => match self.lookup(va) {
                    Ok(m) => {
                        cur = Some(m);
                        m
                    }
                    Err(e) => {
                        // Flush deferred bumps so partial state matches the
                        // scalar loop's at the failing element.
                        if tlb_pending > 0 {
                            self.core.tlb.window_settle(run_key, tlb_pending);
                        }
                        if pending_reads + pending_writes > 0 {
                            self.core
                                .llc
                                .window_settle(cur_slot, pending_reads, pending_writes);
                        }
                        return Err(e);
                    }
                },
            };
            match OP {
                OP_READ => {
                    self.core.counters.accesses += 1;
                    self.core.counters.reads += 1;
                }
                OP_WRITE => {
                    self.core.counters.accesses += 1;
                    self.core.counters.writes += 1;
                }
                _ => {
                    self.core.counters.accesses += 2;
                    self.core.counters.reads += 1;
                    self.core.counters.writes += 1;
                }
            }

            // TLB: extend the key run (guaranteed hit on the just-touched
            // entry, no hash lookup) or flush the pending touches and probe.
            let key = mapping.tlb_key(va, coalesce);
            let pay_walk = if run_key_valid && key == run_key {
                tlb_pending += tlb_per_elem;
                false
            } else {
                if tlb_pending > 0 {
                    self.core.tlb.window_settle(run_key, tlb_pending);
                    tlb_pending = 0;
                }
                let tlb_hit = self.core.tlb.window_access_run(key, tlb_per_elem);
                run_key = key;
                run_key_valid = true;
                !tlb_hit
            };

            // LLC: flush the deferred same-line touches, then probe the new
            // line through the window side-memo on exactly the state the
            // scalar loop would have had.
            if pending_reads + pending_writes > 0 {
                self.core
                    .llc
                    .window_settle(cur_slot, pending_reads, pending_writes);
                pending_reads = 0;
                pending_writes = 0;
            }
            let (frame, offset) = mapping.translate(va);
            let pa = frame.phys_addr(offset).line_aligned();
            let (outcome, slot) = self.core.llc.window_access_slot(pa, write_probe);
            let hit = outcome.is_hit();
            cur_slot = slot;
            cur_vline = vline;
            line_valid = true;

            // Cost composition identical to the scalar path.
            let mut cost = SimDuration::ZERO;
            if pay_walk {
                cost += walk_cost;
            }
            if hit {
                cost += hit_cost;
            } else {
                cost += tier_miss[frame.tier.index()];
                if !write_probe && self.core.pebs.on_read_miss(va) {
                    cost += sample_cost;
                }
            }
            self.core.clock.advance(cost);
            match OP {
                OP_READ => {
                    if tracing {
                        self.core.tracer.record(
                            va,
                            if hit {
                                AccessKind::ReadHit
                            } else {
                                AccessKind::ReadMiss
                            },
                        );
                    }
                }
                OP_WRITE => {
                    if tracing {
                        self.core.tracer.record(
                            va,
                            if hit {
                                AccessKind::WriteHit
                            } else {
                                AccessKind::WriteMiss
                            },
                        );
                    }
                }
                _ => {
                    // Write half: a guaranteed rehit of the just-probed
                    // line — deferred like any other same-line touch.
                    pending_writes += 1;
                    self.core.clock.advance(rest_cost);
                    if tracing {
                        self.core.tracer.record(
                            va,
                            if hit {
                                AccessKind::ReadHit
                            } else {
                                AccessKind::ReadMiss
                            },
                        );
                        self.core.tracer.record(va, AccessKind::WriteHit);
                    }
                }
            }
            let bytes = self
                .tiers
                .bytes_mut(frame.tier, frame.byte_offset() + offset, T::SIZE);
            data(k, bytes);
        }

        // Window end: flush whatever is still deferred. The TLB and LLC
        // memos' re-stamps stay deferred across windows; any non-window
        // operation settles them.
        if tlb_pending > 0 {
            self.core.tlb.window_settle(run_key, tlb_pending);
        }
        if pending_reads + pending_writes > 0 {
            self.core
                .llc
                .window_settle(cur_slot, pending_reads, pending_writes);
        }
        Ok(())
    }

    /// Performs an accounted bulk access over `range` (see
    /// [`MemPort::access_block`]).
    ///
    /// # Errors
    ///
    /// [`HmsError::Unmapped`] if any byte of `range` is unmapped. Chunks
    /// before the first unmapped page have already been charged, exactly
    /// as the per-element loop would have charged them before erroring.
    ///
    /// # Panics
    ///
    /// Panics if `elem` does not divide [`LINE_SIZE`] or `range` is not
    /// `elem`-aligned.
    pub(crate) fn access_block(
        &mut self,
        range: VirtRange,
        elem: usize,
        write: bool,
    ) -> Result<Vec<BlockSegment>> {
        assert!(
            elem > 0 && LINE_SIZE.is_multiple_of(elem),
            "element size must divide a cache line"
        );
        assert!(
            range.start.raw().is_multiple_of(elem as u64) && range.len.is_multiple_of(elem),
            "bulk range must be element-aligned"
        );
        let mut segments = Vec::new();
        if range.len == 0 {
            return Ok(segments);
        }

        let coalesce = self.platform.tlb_coalesce;
        let walk_cost = self.platform.cost.walk_cost();
        let hit_cost = self.platform.cost.hit_cost();
        let sample_cost = self.platform.cost.sample_cost();
        let tracing = self.core.tracer.is_enabled();
        // Non-first elements of a line run each cost exactly one LLC hit;
        // composed once here, identically to the scalar loop's
        // `ZERO + hit_cost` per element.
        let mut rest_cost = SimDuration::ZERO;
        rest_cost += hit_cost;

        let mut va = range.start;
        let end = range.end();
        while va < end {
            let mapping = self.lookup(va)?;
            let chunk_end = mapping.vrange().end().min(end);
            let chunk_len = chunk_end.offset_from(va) as usize;
            let chunk_elems = (chunk_len / elem) as u64;
            self.core.counters.accesses += chunk_elems;
            if write {
                self.core.counters.writes += chunk_elems;
            } else {
                self.core.counters.reads += chunk_elems;
            }

            // Frames are contiguous within a mapping, so both the physical
            // address and the tier-storage offset advance linearly with the
            // virtual address for the rest of the chunk.
            let (frame, offset) = mapping.translate(va);
            let pa_base = frame.phys_addr(offset).raw();
            segments.push(BlockSegment {
                tier: frame.tier,
                offset: frame.byte_offset() + offset,
                len: chunk_len,
            });
            let miss_cost = self
                .platform
                .cost
                .miss_cost(self.tiers.spec(frame.tier), write);

            let mut unit_va = va;
            while unit_va < chunk_end {
                let unit_end = tlb_unit_end(&mapping, unit_va, coalesce).min(chunk_end);
                let unit_elems = unit_end.offset_from(unit_va) as usize / elem;
                let tlb_hit = self
                    .core
                    .tlb
                    .access_run(mapping.tlb_key(unit_va, coalesce), unit_elems);

                let mut line_va = unit_va;
                // Lines advance in lockstep with the virtual address inside
                // a chunk, so the aligned physical address just steps by
                // LINE_SIZE after the first line of the unit.
                let mut pa = PhysAddr::new(pa_base + line_va.offset_from(va)).line_aligned();
                while line_va < unit_end {
                    let line_end = VirtAddr::new(line_va.line_aligned().raw() + LINE_SIZE as u64)
                        .min(unit_end);
                    let count = line_end.offset_from(line_va) as usize / elem;
                    let hit = self.core.llc.access_run(pa, write, count).is_hit();

                    // The first element of the run replicates the scalar
                    // cost composition: only it can pay the walk, the fill
                    // and the PEBS sample.
                    let mut first_cost = SimDuration::ZERO;
                    if line_va == unit_va && !tlb_hit {
                        first_cost += walk_cost;
                    }
                    if hit {
                        first_cost += hit_cost;
                    } else {
                        first_cost += miss_cost;
                        if !write && self.core.pebs.on_read_miss(line_va) {
                            first_cost += sample_cost;
                        }
                    }
                    self.core.clock.advance(first_cost);
                    // The remaining elements are guaranteed hits with a warm
                    // TLB entry: one clock advance each, exactly as the
                    // scalar loop performs them.
                    for _ in 1..count {
                        self.core.clock.advance(rest_cost);
                    }

                    if tracing {
                        let first_kind = match (write, hit) {
                            (false, true) => AccessKind::ReadHit,
                            (false, false) => AccessKind::ReadMiss,
                            (true, true) => AccessKind::WriteHit,
                            (true, false) => AccessKind::WriteMiss,
                        };
                        self.core.tracer.record(line_va, first_kind);
                        let rest_kind = if write {
                            AccessKind::WriteHit
                        } else {
                            AccessKind::ReadHit
                        };
                        for i in 1..count {
                            self.core
                                .tracer
                                .record(line_va.add((i * elem) as u64), rest_kind);
                        }
                    }
                    line_va = line_end;
                    pa = PhysAddr::new(pa.raw() + LINE_SIZE as u64);
                }
                unit_va = unit_end;
            }
            va = chunk_end;
        }
        Ok(segments)
    }

    /// Borrows `len` bytes of `tier`'s backing storage. Bulk data path
    /// only: accounting must already have happened via
    /// [`access_block`](CoreHandle::access_block).
    pub(crate) fn storage_slice(&self, tier: TierId, offset: usize, len: usize) -> &[u8] {
        self.tiers.bytes(tier, offset, len)
    }

    /// Mutably borrows `len` bytes of `tier`'s backing storage. Bulk data
    /// path only: accounting must already have happened via
    /// [`access_block`](CoreHandle::access_block).
    pub(crate) fn storage_slice_mut(
        &mut self,
        tier: TierId,
        offset: usize,
        len: usize,
    ) -> &mut [u8] {
        self.tiers.bytes_mut(tier, offset, len)
    }
}

/// Rejects index windows over objects too large for `u32` indices. The
/// window engine addresses elements through `&[u32]`, so a vec beyond
/// 2^32 elements would silently truncate indices on the billion-edge path;
/// such sweeps must go through the `u64`/range-based plan tier instead
/// (see [`crate::plan`]).
#[inline]
pub(crate) fn check_window_width(elem_count: usize) {
    assert!(
        elem_count <= u32::MAX as usize + 1,
        "window over {elem_count} elements exceeds u32 index range; \
         use the range-based plan tier for large sweeps"
    );
}

/// End of the TLB translation unit containing `va` under `mapping`: the
/// address at which [`Mapping::tlb_key`] first changes. Huge mappings share
/// one key per huge unit; base pages in a fully covered coalescing group
/// share one key per group; everything else is per-page. Mirrors the key
/// logic exactly so `access_block` batches precisely the accesses the
/// per-element loop would send to the same TLB entry.
pub(crate) fn tlb_unit_end(mapping: &Mapping, va: VirtAddr, coalesce: usize) -> VirtAddr {
    let vpage = va.page_index();
    let end_page = match mapping.kind {
        PageKind::Huge2M => (vpage / HUGE_PAGE_FRAMES as u64 + 1) * HUGE_PAGE_FRAMES as u64,
        PageKind::Base4K => {
            if coalesce > 1 {
                let group = vpage / coalesce as u64;
                let group_start = group * coalesce as u64;
                let group_end = group_start + coalesce as u64;
                if mapping.vpage_start <= group_start
                    && group_end <= mapping.vpage_start + mapping.pages as u64
                {
                    group_end
                } else {
                    vpage + 1
                }
            } else {
                vpage + 1
            }
        }
    };
    VirtAddr::new(end_page << PAGE_SHIFT)
}

/// The accounted memory-access surface shared by
/// [`Machine`](crate::Machine) (the resident single core) and
/// [`CoreHandle`] (one forked core of a sharded phase). Kernel-side code —
/// `TrackedVec`, `MemCtx`, the graph kernels — is generic over this trait,
/// so the same kernel body runs unchanged on the scalar engine and inside
/// a core partition.
pub trait MemPort {
    /// Reads a little-endian scalar through the full accounted path.
    ///
    /// # Errors
    ///
    /// [`HmsError::Unmapped`] if `va` is not mapped.
    fn read<T: Scalar>(&mut self, va: VirtAddr) -> Result<T>;

    /// Writes a little-endian scalar through the full accounted path.
    ///
    /// # Errors
    ///
    /// [`HmsError::Unmapped`] if `va` is not mapped.
    fn write<T: Scalar>(&mut self, va: VirtAddr, value: T) -> Result<()>;

    /// Accounted read-modify-write of one scalar, returning the old value.
    ///
    /// # Errors
    ///
    /// [`HmsError::Unmapped`] if `va` is not mapped.
    fn read_modify_write<T: Scalar>(&mut self, va: VirtAddr, f: impl FnOnce(T) -> T) -> Result<T>;

    /// Unaccounted scalar read (setup/verification only).
    ///
    /// # Errors
    ///
    /// [`HmsError::Unmapped`] if `va` is not mapped.
    fn peek<T: Scalar>(&mut self, va: VirtAddr) -> Result<T>;

    /// Unaccounted scalar write (setup/verification only).
    ///
    /// # Errors
    ///
    /// [`HmsError::Unmapped`] if `va` is not mapped.
    fn poke<T: Scalar>(&mut self, va: VirtAddr, value: T) -> Result<()>;

    /// Accounted bulk access over `range`, returning the physically
    /// contiguous storage segments backing it (the `TrackedVec` slice fast
    /// path).
    ///
    /// # Errors
    ///
    /// [`HmsError::Unmapped`] if any byte of `range` is unmapped.
    fn access_block(
        &mut self,
        range: VirtRange,
        elem: usize,
        write: bool,
    ) -> Result<Vec<BlockSegment>>;

    /// Borrows `len` bytes of `tier`'s backing storage (bulk data path;
    /// accounting must already have happened via
    /// [`access_block`](MemPort::access_block)).
    fn storage_slice(&self, tier: TierId, offset: usize, len: usize) -> &[u8];

    /// Mutably borrows `len` bytes of `tier`'s backing storage (bulk data
    /// path; accounting must already have happened).
    fn storage_slice_mut(&mut self, tier: TierId, offset: usize, len: usize) -> &mut [u8];

    /// Accounted indexed gather through the batched window engine.
    ///
    /// # Errors
    ///
    /// [`HmsError::Unmapped`] if any accessed address is unmapped.
    fn read_gather<T: Scalar>(
        &mut self,
        base: VirtAddr,
        elem_count: usize,
        indices: &[u32],
        out: &mut [T],
    ) -> Result<()>;

    /// Accounted indexed scatter through the batched window engine.
    ///
    /// # Errors
    ///
    /// [`HmsError::Unmapped`] if any accessed address is unmapped.
    fn write_scatter<T: Scalar>(
        &mut self,
        base: VirtAddr,
        elem_count: usize,
        indices: &[u32],
        values: &[T],
    ) -> Result<()>;

    /// Accounted indexed read-modify-write window through the batched
    /// window engine.
    ///
    /// # Errors
    ///
    /// [`HmsError::Unmapped`] if any accessed address is unmapped.
    fn gather_update<T: Scalar>(
        &mut self,
        base: VirtAddr,
        elem_count: usize,
        indices: &[u32],
        f: impl FnMut(usize, T) -> T,
    ) -> Result<()>;

    /// The current mapping-table generation; compiled plans are valid only
    /// while it is unchanged (see [`crate::plan`]).
    fn mapping_generation(&self) -> u64;

    /// Whether compiled-plan replay is currently allowed: `false` whenever
    /// per-access detail is observable (PEBS sampling, tracing, or an armed
    /// fault plan), in which case callers must use the window path.
    fn plan_ready(&self) -> bool;

    /// Lowers an indexed window into a reusable [`WindowPlan`] without
    /// touching simulated state (see [`crate::plan`]).
    ///
    /// # Errors
    ///
    /// [`HmsError::Unmapped`] if any element is unmapped; nothing has been
    /// charged.
    fn compile_window<T: Scalar>(
        &mut self,
        base: VirtAddr,
        elem_count: u64,
        indices: &[u32],
    ) -> Result<WindowPlan>;

    /// Replays a compiled window as a gather — bit-identical to
    /// [`read_gather`](MemPort::read_gather) over the plan's indices.
    fn run_plan_gather<T: Scalar>(&mut self, plan: &WindowPlan, out: &mut [T]);

    /// Replays a compiled window as a scatter — bit-identical to
    /// [`write_scatter`](MemPort::write_scatter) over the plan's indices.
    fn run_plan_scatter<T: Scalar>(&mut self, plan: &WindowPlan, values: &[T]);

    /// Replays a compiled window as a read-modify-write sweep —
    /// bit-identical to [`gather_update`](MemPort::gather_update) over the
    /// plan's indices.
    fn run_plan_update<T: Scalar>(&mut self, plan: &WindowPlan, f: impl FnMut(usize, T) -> T);

    /// Lowers a contiguous element sweep into a reusable [`SweepPlan`]
    /// without touching simulated state (see [`crate::plan`]).
    ///
    /// # Errors
    ///
    /// [`HmsError::Unmapped`] if any byte of the range is unmapped; nothing
    /// has been charged.
    fn compile_sweep(&mut self, range: VirtRange, elem: usize) -> Result<SweepPlan>;

    /// Replays a compiled sweep's accounting — bit-identical to
    /// [`access_block`](MemPort::access_block) over the plan's range; data
    /// moves through [`SweepPlan::segments`] and the storage-slice APIs.
    fn run_plan_sweep(&mut self, plan: &SweepPlan, write: bool);
}

impl MemPort for CoreHandle<'_> {
    fn read<T: Scalar>(&mut self, va: VirtAddr) -> Result<T> {
        CoreHandle::read(self, va)
    }

    fn write<T: Scalar>(&mut self, va: VirtAddr, value: T) -> Result<()> {
        CoreHandle::write(self, va, value)
    }

    fn read_modify_write<T: Scalar>(&mut self, va: VirtAddr, f: impl FnOnce(T) -> T) -> Result<T> {
        CoreHandle::read_modify_write(self, va, f)
    }

    fn peek<T: Scalar>(&mut self, va: VirtAddr) -> Result<T> {
        CoreHandle::peek(self, va)
    }

    fn poke<T: Scalar>(&mut self, va: VirtAddr, value: T) -> Result<()> {
        CoreHandle::poke(self, va, value)
    }

    fn access_block(
        &mut self,
        range: VirtRange,
        elem: usize,
        write: bool,
    ) -> Result<Vec<BlockSegment>> {
        CoreHandle::access_block(self, range, elem, write)
    }

    fn storage_slice(&self, tier: TierId, offset: usize, len: usize) -> &[u8] {
        CoreHandle::storage_slice(self, tier, offset, len)
    }

    fn storage_slice_mut(&mut self, tier: TierId, offset: usize, len: usize) -> &mut [u8] {
        CoreHandle::storage_slice_mut(self, tier, offset, len)
    }

    fn read_gather<T: Scalar>(
        &mut self,
        base: VirtAddr,
        elem_count: usize,
        indices: &[u32],
        out: &mut [T],
    ) -> Result<()> {
        CoreHandle::read_gather(self, base, elem_count, indices, out)
    }

    fn write_scatter<T: Scalar>(
        &mut self,
        base: VirtAddr,
        elem_count: usize,
        indices: &[u32],
        values: &[T],
    ) -> Result<()> {
        CoreHandle::write_scatter(self, base, elem_count, indices, values)
    }

    fn gather_update<T: Scalar>(
        &mut self,
        base: VirtAddr,
        elem_count: usize,
        indices: &[u32],
        f: impl FnMut(usize, T) -> T,
    ) -> Result<()> {
        CoreHandle::gather_update(self, base, elem_count, indices, f)
    }

    fn mapping_generation(&self) -> u64 {
        CoreHandle::mapping_generation(self)
    }

    fn plan_ready(&self) -> bool {
        CoreHandle::plan_ready(self)
    }

    fn compile_window<T: Scalar>(
        &mut self,
        base: VirtAddr,
        elem_count: u64,
        indices: &[u32],
    ) -> Result<WindowPlan> {
        CoreHandle::compile_window::<T>(self, base, elem_count, indices)
    }

    fn run_plan_gather<T: Scalar>(&mut self, plan: &WindowPlan, out: &mut [T]) {
        CoreHandle::run_plan_gather(self, plan, out)
    }

    fn run_plan_scatter<T: Scalar>(&mut self, plan: &WindowPlan, values: &[T]) {
        CoreHandle::run_plan_scatter(self, plan, values)
    }

    fn run_plan_update<T: Scalar>(&mut self, plan: &WindowPlan, f: impl FnMut(usize, T) -> T) {
        CoreHandle::run_plan_update(self, plan, f)
    }

    fn compile_sweep(&mut self, range: VirtRange, elem: usize) -> Result<SweepPlan> {
        CoreHandle::compile_sweep(self, range, elem)
    }

    fn run_plan_sweep(&mut self, plan: &SweepPlan, write: bool) {
        CoreHandle::run_plan_sweep(self, plan, write)
    }
}

/// Per-owner routing buckets for owner-routed fan-out phases.
///
/// A sharded expansion phase discovers work items (frontier vertices,
/// relaxation candidates, rank contributions) that belong to other cores'
/// partitions. Each core pushes every item it discovers into its own
/// `OwnerQueues`, keyed by the owning core; items land in **emission
/// order**, which for a core streaming its owned range sequentially is the
/// global traversal order restricted to that range.
///
/// [`merge_owner_queues`] then folds the per-core queues into one queue
/// per owner, concatenating in `(core, emission)` order. Because each
/// core's emissions are a deterministic function of its owned input slice,
/// the merged per-owner queues are deterministic too — the receiving
/// phase can replay them single-writer without any cross-core ordering
/// hazard.
#[derive(Debug)]
pub struct OwnerQueues<T> {
    queues: Vec<Vec<T>>,
}

impl<T> OwnerQueues<T> {
    /// Creates empty queues for `owners` receiving cores.
    pub fn new(owners: usize) -> Self {
        Self {
            queues: (0..owners).map(|_| Vec::new()).collect(),
        }
    }

    /// Appends `item` to the queue bound for `owner`.
    ///
    /// # Panics
    ///
    /// Panics if `owner` is out of range — a misrouted item would be
    /// replayed by the wrong core and silently corrupt the merge.
    pub fn push(&mut self, owner: usize, item: T) {
        self.queues[owner].push(item);
    }

    /// The number of receiving cores.
    pub fn owners(&self) -> usize {
        self.queues.len()
    }

    /// Total items across all queues.
    pub fn len(&self) -> usize {
        self.queues.iter().map(Vec::len).sum()
    }

    /// Whether no items have been routed.
    pub fn is_empty(&self) -> bool {
        self.queues.iter().all(Vec::is_empty)
    }

    /// Consumes the queues, yielding one `Vec` per owner.
    pub fn into_queues(self) -> Vec<Vec<T>> {
        self.queues
    }
}

/// Merges per-core [`OwnerQueues`] into one queue per owner, folding in
/// `(core, emission)` order: owner `o` receives core 0's items for `o`
/// first (in the order core 0 emitted them), then core 1's, and so on.
///
/// The order is a pure function of each core's emissions, so as long as
/// the emitting phase partitions its input deterministically the merged
/// queues are identical run to run.
///
/// # Panics
///
/// Panics if the per-core queue sets disagree on the owner count.
pub fn merge_owner_queues<T>(per_core: Vec<OwnerQueues<T>>) -> Vec<Vec<T>> {
    let owners = per_core.first().map_or(0, OwnerQueues::owners);
    let mut merged: Vec<Vec<T>> = (0..owners).map(|_| Vec::new()).collect();
    for core_queues in per_core {
        assert_eq!(
            core_queues.owners(),
            owners,
            "per-core queue sets must agree on the owner count"
        );
        for (owner, mut queue) in core_queues.into_queues().into_iter().enumerate() {
            merged[owner].append(&mut queue);
        }
    }
    merged
}

// Silence an unused-import false positive when error docs reference it.
const _: fn(HmsError) = |_| {};

#[cfg(test)]
mod owner_queue_tests {
    use super::*;

    #[test]
    fn merge_folds_in_core_then_emission_order() {
        let mut core0 = OwnerQueues::new(2);
        core0.push(0, "c0a");
        core0.push(1, "c0b");
        core0.push(0, "c0c");
        let mut core1 = OwnerQueues::new(2);
        core1.push(1, "c1a");
        core1.push(0, "c1b");
        let merged = merge_owner_queues(vec![core0, core1]);
        assert_eq!(merged[0], vec!["c0a", "c0c", "c1b"]);
        assert_eq!(merged[1], vec!["c0b", "c1a"]);
    }

    #[test]
    fn merge_of_empty_queues_yields_empty_owners() {
        let queues: Vec<OwnerQueues<u32>> = vec![OwnerQueues::new(3), OwnerQueues::new(3)];
        assert!(queues.iter().all(OwnerQueues::is_empty));
        let merged = merge_owner_queues(queues);
        assert_eq!(merged.len(), 3);
        assert!(merged.iter().all(Vec::is_empty));
    }

    #[test]
    fn len_counts_across_owners() {
        let mut q = OwnerQueues::new(4);
        assert!(q.is_empty());
        q.push(0, 1u32);
        q.push(3, 2);
        q.push(3, 3);
        assert_eq!(q.len(), 3);
        assert!(!q.is_empty());
    }

    #[test]
    #[should_panic]
    fn push_to_unknown_owner_panics() {
        let mut q = OwnerQueues::new(2);
        q.push(2, 0u32);
    }

    #[test]
    #[should_panic(expected = "owner count")]
    fn merge_rejects_mismatched_owner_counts() {
        let _ = merge_owner_queues(vec![OwnerQueues::<u32>::new(2), OwnerQueues::new(3)]);
    }
}
