//! Virtual-to-physical mapping table.
//!
//! Every mapped virtual region is described by a [`Mapping`]: a run of
//! virtually contiguous 4 KiB pages backed by *physically contiguous* frames
//! on one tier. A mapping is either a 2 MiB huge mapping (512 pages, one TLB
//! entry) or a base mapping of one or more 4 KiB pages (one TLB entry per
//! page).
//!
//! The `mbind` baseline migration *splinters* huge mappings into per-page
//! base mappings with scattered frames — this is the source of its post-
//! migration TLB blowup (paper §2.3, Table 4). The ATMem optimizer instead
//! *remaps* whole regions to fresh contiguous frames, recreating huge
//! mappings where alignment permits (§4.4).

use std::collections::BTreeMap;

use crate::addr::{Frame, VirtAddr, VirtRange, HUGE_PAGE_FRAMES, PAGE_SHIFT, PAGE_SIZE};
use crate::error::{HmsError, Result};
use crate::tier::TierId;

/// Granularity of one mapping, which determines TLB reach.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageKind {
    /// 4 KiB pages: one TLB entry per page.
    Base4K,
    /// A 2 MiB huge mapping: one TLB entry covers all 512 pages.
    Huge2M,
}

/// One contiguous virtual→physical mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mapping {
    /// First virtual page index covered.
    pub vpage_start: u64,
    /// Number of 4 KiB pages covered.
    pub pages: u32,
    /// Tier holding the backing frames.
    pub tier: TierId,
    /// First frame index; frames are contiguous within a mapping.
    pub frame_start: u32,
    /// Mapping granularity.
    pub kind: PageKind,
}

impl Mapping {
    /// Virtual byte range covered by the mapping.
    pub fn vrange(&self) -> VirtRange {
        VirtRange::new(
            VirtAddr::new(self.vpage_start << PAGE_SHIFT),
            (self.pages as usize) << PAGE_SHIFT,
        )
    }

    /// Translates a virtual address inside this mapping to its frame and
    /// in-frame offset.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `va` is outside the mapping.
    pub fn translate(&self, va: VirtAddr) -> (Frame, usize) {
        let vpage = va.page_index();
        debug_assert!(
            vpage >= self.vpage_start && vpage < self.vpage_start + self.pages as u64,
            "translate outside mapping"
        );
        let frame_index = self.frame_start + (vpage - self.vpage_start) as u32;
        (Frame::new(self.tier, frame_index), va.page_offset())
    }

    /// The TLB key for an access at `va` under this mapping.
    ///
    /// Huge mappings share one key per 2 MiB unit. Base mappings normally
    /// take one key per page, but when the platform models TLB coalescing
    /// (`coalesce > 1`, as KNL-class cores do for physically contiguous
    /// neighbouring pages) a group of `coalesce` pages that is *fully
    /// covered by one mapping* shares a key — contiguous remapped regions
    /// coalesce, `mbind`-splintered per-page mappings do not. Kind and
    /// grouping are tag-encoded so keys never alias across granularities.
    pub fn tlb_key(&self, va: VirtAddr, coalesce: usize) -> u64 {
        let vpage = va.page_index();
        match self.kind {
            PageKind::Huge2M => {
                let unit = vpage / HUGE_PAGE_FRAMES as u64;
                (unit << 2) | 2
            }
            PageKind::Base4K => {
                if coalesce > 1 {
                    let group = vpage / coalesce as u64;
                    let group_start = group * coalesce as u64;
                    let group_end = group_start + coalesce as u64;
                    if self.vpage_start <= group_start
                        && group_end <= self.vpage_start + self.pages as u64
                    {
                        return (group << 2) | 1;
                    }
                }
                vpage << 2
            }
        }
    }

    /// Number of TLB entries required to cover the whole mapping, given the
    /// platform's coalescing factor (1 = none).
    pub fn tlb_entry_count(&self, coalesce: usize) -> usize {
        match self.kind {
            PageKind::Huge2M => (self.pages as usize).div_ceil(HUGE_PAGE_FRAMES),
            PageKind::Base4K => {
                if coalesce > 1 {
                    // Whole groups covered by the mapping coalesce; edge
                    // pages outside full groups take one entry each.
                    let start = self.vpage_start;
                    let end = start + self.pages as u64;
                    let first_full = start.next_multiple_of(coalesce as u64);
                    let last_full = (end / coalesce as u64) * coalesce as u64;
                    if first_full < last_full {
                        let groups = ((last_full - first_full) / coalesce as u64) as usize;
                        let head = (first_full - start) as usize;
                        let tail = (end - last_full) as usize;
                        groups + head + tail
                    } else {
                        self.pages as usize
                    }
                } else {
                    self.pages as usize
                }
            }
        }
    }
}

/// The machine-wide mapping table.
///
/// Keyed by first virtual page; mappings never overlap. A one-entry lookup
/// cache accelerates the hot translation path (graph kernels touch the same
/// object repeatedly).
#[derive(Debug, Default)]
pub struct MappingTable {
    map: BTreeMap<u64, Mapping>,
    /// Last successfully used mapping (by start page), checked first.
    cache: Option<Mapping>,
    /// Bumped on every structural change (insert/remove). Compiled access
    /// plans record the generation they were lowered against and are stale —
    /// and must recompile — whenever it moves.
    generation: u64,
}

impl MappingTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        MappingTable::default()
    }

    /// Number of mappings in the table.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the table has no mappings.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Inserts a mapping.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the mapping overlaps an existing one.
    pub fn insert(&mut self, m: Mapping) {
        debug_assert!(
            self.lookup_page(m.vpage_start).is_none()
                && self
                    .lookup_page(m.vpage_start + m.pages as u64 - 1)
                    .is_none(),
            "overlapping mapping inserted"
        );
        self.map.insert(m.vpage_start, m);
        self.cache = Some(m);
        self.generation += 1;
    }

    /// Removes and returns the mapping starting exactly at `vpage_start`.
    pub fn remove(&mut self, vpage_start: u64) -> Option<Mapping> {
        if let Some(c) = self.cache {
            if c.vpage_start == vpage_start {
                self.cache = None;
            }
        }
        let removed = self.map.remove(&vpage_start);
        if removed.is_some() {
            self.generation += 1;
        }
        removed
    }

    /// Finds the mapping containing virtual page `vpage`.
    pub fn lookup_page(&self, vpage: u64) -> Option<&Mapping> {
        let (_, m) = self.map.range(..=vpage).next_back()?;
        if vpage < m.vpage_start + m.pages as u64 {
            Some(m)
        } else {
            None
        }
    }

    /// Finds the mapping containing `va`, updating the lookup cache.
    pub fn lookup(&mut self, va: VirtAddr) -> Result<Mapping> {
        let vpage = va.page_index();
        if let Some(c) = self.cache {
            if vpage >= c.vpage_start && vpage < c.vpage_start + c.pages as u64 {
                return Ok(c);
            }
        }
        let m = *self.lookup_page(vpage).ok_or(HmsError::Unmapped(va))?;
        self.cache = Some(m);
        Ok(m)
    }

    /// Finds the mapping containing `va` without touching the lookup cache,
    /// so concurrent readers (the per-core access engines) can share the
    /// table behind `&self`. Callers keep their own one-entry memo instead.
    pub fn lookup_ro(&self, va: VirtAddr) -> Result<Mapping> {
        self.lookup_page(va.page_index())
            .copied()
            .ok_or(HmsError::Unmapped(va))
    }

    /// Returns all mappings overlapping the byte range, in address order.
    pub fn overlapping(&self, range: VirtRange) -> Vec<Mapping> {
        if range.len == 0 {
            return Vec::new();
        }
        let first_page = range.start.page_index();
        let last_page = range.end().add(0).raw().wrapping_sub(1) >> PAGE_SHIFT;
        let mut out = Vec::new();
        // A mapping starting before `first_page` may still cover it.
        if let Some(m) = self.lookup_page(first_page) {
            out.push(*m);
        }
        if first_page < last_page {
            for (_, m) in self.map.range(first_page + 1..=last_page) {
                out.push(*m);
            }
        }
        out
    }

    /// Removes every mapping overlapping `range`, returning them.
    ///
    /// Mappings must be fully contained in `range` (the simulator only
    /// migrates page-aligned regions); partial overlap is a logic error.
    ///
    /// # Panics
    ///
    /// Panics if an overlapping mapping extends outside `range`.
    pub fn take_overlapping(&mut self, range: VirtRange) -> Vec<Mapping> {
        let found = self.overlapping(range);
        for m in &found {
            assert!(
                m.vrange().start >= range.start && m.vrange().end() <= range.end(),
                "mapping {:?} partially overlaps migration range {range}",
                m
            );
            self.remove(m.vpage_start);
        }
        found
    }

    /// Iterates over all mappings in address order.
    pub fn iter(&self) -> impl Iterator<Item = &Mapping> {
        self.map.values()
    }

    /// Invalidate the lookup cache (after any remap that may have
    /// changed the cached entry).
    pub fn flush_cache(&mut self) {
        self.cache = None;
    }

    /// Current mapping generation. Moves on every insert or remove, so any
    /// migration, remap, allocation, or free invalidates plans compiled
    /// against an older value.
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

/// Splits `m` at virtual page `at_vpage` (strictly inside the mapping),
/// returning the pieces before and after the split point.
///
/// Base mappings split into two base mappings (frames stay contiguous).
/// Huge mappings keep 2 MiB units that remain whole on either side; the
/// unit containing an unaligned split point is demoted to base pages — the
/// same demotion real transparent-huge-page kernels perform when a partial
/// range is remapped.
///
/// # Panics
///
/// Panics if `at_vpage` is not strictly inside the mapping.
pub fn split_mapping(m: &Mapping, at_vpage: u64) -> (Vec<Mapping>, Vec<Mapping>) {
    assert!(
        at_vpage > m.vpage_start && at_vpage < m.vpage_start + m.pages as u64,
        "split point {at_vpage} not inside mapping"
    );
    let piece = |vpage_start: u64, pages: u64, kind: PageKind| Mapping {
        vpage_start,
        pages: pages as u32,
        tier: m.tier,
        frame_start: m.frame_start + (vpage_start - m.vpage_start) as u32,
        kind,
    };
    let end = m.vpage_start + m.pages as u64;
    match m.kind {
        PageKind::Base4K => (
            vec![piece(
                m.vpage_start,
                at_vpage - m.vpage_start,
                PageKind::Base4K,
            )],
            vec![piece(at_vpage, end - at_vpage, PageKind::Base4K)],
        ),
        PageKind::Huge2M => {
            let unit = HUGE_PAGE_FRAMES as u64;
            debug_assert_eq!(m.vpage_start % unit, 0);
            debug_assert_eq!(m.pages as u64 % unit, 0);
            let unit_lo = (at_vpage / unit) * unit; // unit containing the cut
            let unit_hi = unit_lo + unit;
            let mut left = Vec::new();
            let mut right = Vec::new();
            if unit_lo > m.vpage_start {
                left.push(piece(
                    m.vpage_start,
                    unit_lo - m.vpage_start,
                    PageKind::Huge2M,
                ));
            }
            if at_vpage == unit_lo {
                // Aligned cut: both sides keep whole huge units.
                right.push(piece(at_vpage, end - at_vpage, PageKind::Huge2M));
            } else {
                // The broken unit demotes to base pages on both sides.
                left.push(piece(unit_lo, at_vpage - unit_lo, PageKind::Base4K));
                right.push(piece(at_vpage, unit_hi - at_vpage, PageKind::Base4K));
                if end > unit_hi {
                    right.push(piece(unit_hi, end - unit_hi, PageKind::Huge2M));
                }
            }
            (left, right)
        }
    }
}

/// Splits a page count into the maximal huge-mapping prefix and 4 KiB tail,
/// assuming the first page is 2 MiB-aligned. Returns `(huge_units, tail_pages)`.
pub fn split_huge_tail(pages: usize) -> (usize, usize) {
    (pages / HUGE_PAGE_FRAMES, pages % HUGE_PAGE_FRAMES)
}

/// Returns true when a region of `pages` pages starting at virtual page
/// `vpage_start` can use at least one huge mapping.
pub fn huge_eligible(vpage_start: u64, pages: usize) -> bool {
    vpage_start.is_multiple_of(HUGE_PAGE_FRAMES as u64) && pages >= HUGE_PAGE_FRAMES
}

/// Bytes covered by `pages` 4 KiB pages.
pub fn pages_to_bytes(pages: usize) -> usize {
    pages * PAGE_SIZE
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(vpage: u64, pages: u32, frame: u32, kind: PageKind) -> Mapping {
        Mapping {
            vpage_start: vpage,
            pages,
            tier: TierId::SLOW,
            frame_start: frame,
            kind,
        }
    }

    #[test]
    fn lookup_finds_containing_mapping() {
        let mut t = MappingTable::new();
        t.insert(m(16, 8, 100, PageKind::Base4K));
        t.insert(m(64, 512, 512, PageKind::Huge2M));
        let got = t.lookup(VirtAddr::new(20 << PAGE_SHIFT)).unwrap();
        assert_eq!(got.frame_start, 100);
        let got = t.lookup(VirtAddr::new((64 + 511) << PAGE_SHIFT)).unwrap();
        assert_eq!(got.kind, PageKind::Huge2M);
        assert!(t.lookup(VirtAddr::new(24 << PAGE_SHIFT)).is_err());
    }

    #[test]
    fn translate_is_contiguous_within_mapping() {
        let map = m(16, 8, 100, PageKind::Base4K);
        let (f, off) = map.translate(VirtAddr::new((18 << PAGE_SHIFT) + 7));
        assert_eq!(f.index, 102);
        assert_eq!(off, 7);
    }

    #[test]
    fn tlb_keys_distinguish_kinds() {
        let unit = HUGE_PAGE_FRAMES as u64;
        let huge = m(unit * 8, HUGE_PAGE_FRAMES as u32, 0, PageKind::Huge2M);
        let base = m(unit * 8, HUGE_PAGE_FRAMES as u32, 0, PageKind::Base4K);
        let va = VirtAddr::new((unit * 8) << PAGE_SHIFT);
        assert_ne!(huge.tlb_key(va, 1), base.tlb_key(va, 1));
        // All pages of a huge mapping share one key.
        let va2 = VirtAddr::new((unit * 8 + unit - 1) << PAGE_SHIFT);
        assert_eq!(huge.tlb_key(va, 1), huge.tlb_key(va2, 1));
        assert_ne!(base.tlb_key(va, 1), base.tlb_key(va2, 1));
        // Coalescing groups contiguous pages of one mapping.
        assert_eq!(
            base.tlb_key(va, 8),
            base.tlb_key(VirtAddr::new((unit * 8 + 7) << PAGE_SHIFT), 8)
        );
        assert_ne!(
            base.tlb_key(va, 8),
            base.tlb_key(VirtAddr::new((unit * 8 + 8) << PAGE_SHIFT), 8)
        );
        // A single-page mapping never coalesces.
        let single = m(unit * 8, 1, 0, PageKind::Base4K);
        assert_ne!(single.tlb_key(va, 8), base.tlb_key(va, 8));
    }

    #[test]
    fn tlb_entry_counts() {
        let unit = HUGE_PAGE_FRAMES as u32;
        assert_eq!(m(0, unit, 0, PageKind::Huge2M).tlb_entry_count(1), 1);
        assert_eq!(m(0, 4 * unit, 0, PageKind::Huge2M).tlb_entry_count(1), 4);
        assert_eq!(m(0, 512, 0, PageKind::Base4K).tlb_entry_count(1), 512);
        assert_eq!(m(0, 3, 0, PageKind::Base4K).tlb_entry_count(1), 3);
        // Coalescing: 512 contiguous pages at factor 8 -> 64 entries.
        assert_eq!(m(0, 512, 0, PageKind::Base4K).tlb_entry_count(8), 64);
        // Unaligned head/tail pages count individually: [3, 20) at 8
        // -> head 8-3=5, one full group [8,16), tail 20-16=4 -> 10.
        assert_eq!(m(3, 17, 0, PageKind::Base4K).tlb_entry_count(8), 10);
        // Too short to cover any group.
        assert_eq!(m(1, 4, 0, PageKind::Base4K).tlb_entry_count(8), 4);
    }

    #[test]
    fn overlapping_returns_in_order() {
        let mut t = MappingTable::new();
        t.insert(m(0, 4, 0, PageKind::Base4K));
        t.insert(m(4, 4, 8, PageKind::Base4K));
        t.insert(m(8, 4, 16, PageKind::Base4K));
        let r = VirtRange::new(VirtAddr::new(1 << PAGE_SHIFT), 8 * PAGE_SIZE);
        let got = t.overlapping(r);
        assert_eq!(got.len(), 3);
        assert!(got.windows(2).all(|w| w[0].vpage_start < w[1].vpage_start));
    }

    #[test]
    fn take_overlapping_removes() {
        let mut t = MappingTable::new();
        t.insert(m(0, 4, 0, PageKind::Base4K));
        t.insert(m(4, 4, 8, PageKind::Base4K));
        let r = VirtRange::new(VirtAddr::new(0), 8 * PAGE_SIZE);
        let got = t.take_overlapping(r);
        assert_eq!(got.len(), 2);
        assert!(t.is_empty());
    }

    #[test]
    fn huge_eligibility() {
        let unit = HUGE_PAGE_FRAMES;
        assert!(huge_eligible(0, unit));
        assert!(huge_eligible(unit as u64, 2 * unit));
        assert!(!huge_eligible(1, unit));
        assert!(!huge_eligible(0, unit - 1));
        assert_eq!(split_huge_tail(2 * unit + 6), (2, 6));
        assert_eq!(pages_to_bytes(3), 3 * PAGE_SIZE);
    }

    #[test]
    fn split_base_mapping_keeps_frame_contiguity() {
        let base = m(16, 8, 100, PageKind::Base4K);
        let (l, r) = split_mapping(&base, 19);
        assert_eq!(l.len(), 1);
        assert_eq!(r.len(), 1);
        assert_eq!(
            (l[0].vpage_start, l[0].pages, l[0].frame_start),
            (16, 3, 100)
        );
        assert_eq!(
            (r[0].vpage_start, r[0].pages, r[0].frame_start),
            (19, 5, 103)
        );
        assert_eq!(l[0].kind, PageKind::Base4K);
    }

    #[test]
    fn split_huge_mapping_aligned_keeps_huge() {
        let unit = HUGE_PAGE_FRAMES as u64;
        let huge = m(0, 2 * HUGE_PAGE_FRAMES as u32, 0, PageKind::Huge2M);
        let (l, r) = split_mapping(&huge, unit);
        assert_eq!(l.len(), 1);
        assert_eq!(r.len(), 1);
        assert_eq!(l[0].kind, PageKind::Huge2M);
        assert_eq!(r[0].kind, PageKind::Huge2M);
        assert_eq!(r[0].frame_start, HUGE_PAGE_FRAMES as u32);
    }

    #[test]
    fn split_huge_mapping_unaligned_demotes_broken_unit() {
        let unit = HUGE_PAGE_FRAMES as u64;
        // Three huge units, cut 1.5 units in (inside the middle unit).
        let pages = 3 * HUGE_PAGE_FRAMES as u32;
        let cut = unit + unit / 2 + 3;
        let huge = m(0, pages, 0, PageKind::Huge2M);
        let (l, r) = split_mapping(&huge, cut);
        // Left: huge [0,unit) + base [unit,cut). Right: base [cut,2*unit) +
        // huge [2*unit,3*unit).
        assert_eq!(l.len(), 2);
        assert_eq!(r.len(), 2);
        assert_eq!(l[0].kind, PageKind::Huge2M);
        assert_eq!((l[1].vpage_start, l[1].pages as u64), (unit, cut - unit));
        assert_eq!(l[1].kind, PageKind::Base4K);
        assert_eq!((r[0].vpage_start, r[0].pages as u64), (cut, 2 * unit - cut));
        assert_eq!(r[0].kind, PageKind::Base4K);
        assert_eq!(r[1].kind, PageKind::Huge2M);
        // Pieces tile the original and keep frame offsets.
        let total: u32 = l.iter().chain(&r).map(|p| p.pages).sum();
        assert_eq!(total, pages);
        for p in l.iter().chain(&r) {
            assert_eq!(p.frame_start as u64, p.vpage_start, "identity layout");
        }
    }

    #[test]
    #[should_panic(expected = "not inside")]
    fn split_at_start_panics() {
        let base = m(16, 8, 100, PageKind::Base4K);
        let _ = split_mapping(&base, 16);
    }

    #[test]
    fn cache_invalidation_on_remove() {
        let mut t = MappingTable::new();
        t.insert(m(16, 8, 100, PageKind::Base4K));
        let _ = t.lookup(VirtAddr::new(16 << PAGE_SHIFT)).unwrap();
        t.remove(16);
        assert!(t.lookup(VirtAddr::new(16 << PAGE_SHIFT)).is_err());
    }
}
