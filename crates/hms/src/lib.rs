//! # atmem-hms — heterogeneous memory system simulator
//!
//! This crate is the hardware substrate for the ATMem reproduction (CGO'20,
//! "ATMem: Adaptive Data Placement in Graph Applications on Heterogeneous
//! Memories"). It simulates, from scratch, everything the paper's runtime
//! needs from the machine:
//!
//! * an **ordered set of memory tiers** (hottest first) with distinct
//!   capacity, latency, and read/write bandwidth ([`TierSpec`], two- to
//!   four-tier presets in [`Platform`], per-pair link bandwidth caps);
//! * a **virtual memory system**: 4 KiB frames, 2 MiB huge mappings, a frame
//!   allocator, a mapping table, and an LRU **TLB** ([`Tlb`]);
//! * a set-associative, physically-indexed **last-level cache** ([`Cache`]);
//! * a **cost model** translating every access into simulated nanoseconds
//!   ([`CostModel`], [`SimClock`]);
//! * **PEBS-like precise address sampling** of LLC read misses ([`Pebs`]);
//! * an `mbind`-style **system migration service** baseline
//!   ([`Machine::migrate_mbind`]) plus the low-level primitives the ATMem
//!   optimizer composes into its multi-stage multi-threaded migration
//!   ([`Machine::alloc_frames`], [`Machine::copy_region_to_frames`],
//!   [`Machine::remap_region`], [`Machine::copy_frames_to_region`]).
//!
//! Data written through the simulator actually lives in the tier buffers, so
//! migrations really move bytes and correctness is externally checkable.
//!
//! ## Example
//!
//! ```
//! use atmem_hms::{Machine, Placement, Platform, TierId, TrackedVec};
//!
//! # fn main() -> atmem_hms::Result<()> {
//! let mut machine = Machine::new(Platform::nvm_dram());
//! let v = TrackedVec::<u64>::new(&mut machine, 1024, Placement::Slow)?;
//! v.set(&mut machine, 3, 42);
//! assert_eq!(v.get(&mut machine, 3), 42);
//!
//! // Migrate the array to the fast tier with the system service.
//! let report = machine.migrate_mbind(
//!     atmem_hms::addr::VirtRange::new(v.range().start, v.range().len.next_multiple_of(4096)),
//!     TierId::FAST,
//! )?;
//! assert!(report.time.as_ns() > 0.0);
//! assert_eq!(v.get(&mut machine, 3), 42);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod addr;
pub mod cache;
pub mod cost;
pub mod error;
pub mod fault;
pub mod frame;
pub mod machine;
pub mod mapping;
mod mbind;
pub mod pebs;
pub mod plan;
pub mod platform;
pub mod shard;
pub mod stats;
pub mod tier;
pub mod tlb;
pub mod trace;
pub mod tracked;

pub use addr::{Frame, PhysAddr, VirtAddr, VirtRange};
pub use cache::{Cache, CacheConfig, CacheOutcome};
pub use cost::{CostModel, SimClock, SimDuration};
pub use error::{HmsError, Result};
pub use fault::{FaultPlan, FaultSite, FAULT_SITES};
pub use frame::{FrameAllocator, FrameRun};
pub use machine::{AllocationInfo, Machine, MigrationReport, Placement, Scalar};
pub use mapping::{Mapping, MappingTable, PageKind};
pub use pebs::{Pebs, SampleRecord};
pub use plan::{SweepPlan, WindowPlan};
pub use platform::Platform;
pub use shard::{
    merge_owner_queues, BlockSegment, CoreCtx, CoreHandle, MemPort, OwnerQueues, MAX_TIERS,
};
pub use stats::MachineStats;
pub use tier::{TierId, TierSpec, TierStorage};
pub use tlb::Tlb;
pub use trace::{AccessKind, TraceRecord, Tracer};
pub use tracked::TrackedVec;
