//! Baseline system-service migration (`mbind` / `move_pages` style).
//!
//! The paper's baseline migrates with the Linux NUMA system service, which
//! is single-threaded, blocking, and page-granular (§2.3). Two properties
//! matter for the comparison in Table 4:
//!
//! 1. **Low copy bandwidth** — one kernel thread moves pages one at a time,
//!    paying fixed bookkeeping per page, and cannot saturate the link.
//! 2. **TLB splintering** — pages are moved individually onto whatever
//!    frames are free, so a 2 MiB huge mapping is broken into 512 scattered
//!    base mappings, each needing its own TLB entry (and its own shootdown
//!    during the move). The application's post-migration TLB miss rate
//!    explodes.

use crate::addr::{VirtRange, PAGE_SHIFT, PAGE_SIZE};
use crate::cost::SimDuration;
use crate::error::{HmsError, Result};
use crate::frame::FrameRun;
use crate::machine::{Machine, MigrationReport};
use crate::mapping::{Mapping, PageKind};
use crate::tier::TierId;

/// Fixed cost of one system-service invocation (syscall entry, VMA lookup,
/// policy checks), nanoseconds.
const MBIND_CALL_OVERHEAD_NS: f64 = 5_000.0;

impl Machine {
    /// Migrates the page-aligned `range` to `dst_tier` with the simulated
    /// system service.
    ///
    /// Pages already on `dst_tier` are left in place (but their mappings are
    /// still splintered, as `mbind` revalidates the whole range). Returns a
    /// report with the simulated migration time.
    ///
    /// # Errors
    ///
    /// [`HmsError::InvalidRange`] for unaligned or empty ranges,
    /// [`HmsError::Unmapped`] for holes, and
    /// [`HmsError::OutOfMemory`] when `dst_tier` cannot hold the range
    /// (pages moved so far stay moved, as with the real service).
    pub fn migrate_mbind(&mut self, range: VirtRange, dst_tier: TierId) -> Result<MigrationReport> {
        if range.len == 0 || range.start.page_offset() != 0 || !range.len.is_multiple_of(PAGE_SIZE)
        {
            return Err(HmsError::InvalidRange {
                start: range.start,
                len: range.len,
            });
        }
        self.split_mappings_at(range);
        let maps = self.mappings_in(range);
        let covered: usize = maps.iter().map(|m| m.pages as usize * PAGE_SIZE).sum();
        if covered != range.len {
            return Err(HmsError::Unmapped(range.start));
        }

        let mbind_bw = self.platform().mbind_copy_bw;
        let page_overhead = self.platform().mbind_page_overhead_ns;

        // Fixed syscall entry + VMA walk per invocation.
        let mut total_ns = MBIND_CALL_OVERHEAD_NS;
        let mut moved_pages = 0usize;
        let mut moved_bytes = 0usize;
        let mut mappings_after = 0usize;

        for mapping in maps {
            let src_tier = mapping.tier;
            let mut new_maps: Vec<Mapping> = Vec::with_capacity(mapping.pages as usize);
            for p in 0..mapping.pages {
                let vpage = mapping.vpage_start + p as u64;
                let src_frame = mapping.frame_start + p;
                // Every page crosses the per-page migratability status
                // check (`move_pages` can report a per-page error). A
                // faulted check leaves the page where it is — splintered
                // like every other page — at status-check cost only.
                let status_failed = self.fault_fires(crate::fault::FaultSite::PageStatus);
                if src_tier == dst_tier || status_failed {
                    // Page already resident (or unmovable): revalidated
                    // but not copied.
                    new_maps.push(Mapping {
                        vpage_start: vpage,
                        pages: 1,
                        tier: src_tier,
                        frame_start: src_frame,
                        kind: PageKind::Base4K,
                    });
                    total_ns += page_overhead * 0.25; // status check only
                    continue;
                }
                let dst_frame = match self.alloc_page_frame(dst_tier) {
                    Ok(run) => run.start,
                    Err(e) => {
                        // Out of destination memory mid-stream: commit what
                        // moved, restore the rest as base mappings on src.
                        for q in p..mapping.pages {
                            new_maps.push(Mapping {
                                vpage_start: mapping.vpage_start + q as u64,
                                pages: 1,
                                tier: src_tier,
                                frame_start: mapping.frame_start + q,
                                kind: PageKind::Base4K,
                            });
                        }
                        self.finish_mbind_mapping(&mapping, new_maps, &mut mappings_after);
                        // Earlier mappings were already splintered, so the
                        // error path needs the same range shootdown as the
                        // happy path — stale huge/coalesced TLB entries must
                        // not survive the splinter.
                        self.invalidate_tlb_range(range);
                        self.advance_clock(SimDuration::from_ns(total_ns));
                        self.note_migrated(moved_bytes);
                        return Err(e);
                    }
                };
                self.copy_page(src_tier, src_frame, dst_tier, dst_frame);
                self.free_frames(src_tier, FrameRun::new(src_frame, 1));
                new_maps.push(Mapping {
                    vpage_start: vpage,
                    pages: 1,
                    tier: dst_tier,
                    frame_start: dst_frame,
                    kind: PageKind::Base4K,
                });
                // Copy time: single kernel thread, bounded by the slowest
                // of service bandwidth, source read, destination write, and
                // the per-pair interconnect cap (infinite on two-tier
                // presets).
                let link = self.platform().link_cap(src_tier, dst_tier);
                let src_spec = &self.tier_ref(src_tier).spec;
                let dst_spec = &self.tier_ref(dst_tier).spec;
                let bw = mbind_bw
                    .min(src_spec.read_bw)
                    .min(dst_spec.write_bw)
                    .min(link);
                total_ns += PAGE_SIZE as f64 / bw + page_overhead;
                moved_pages += 1;
                moved_bytes += PAGE_SIZE;
            }
            self.finish_mbind_mapping(&mapping, new_maps, &mut mappings_after);
        }

        // One shootdown per page unit (included in page_overhead) plus the
        // final range invalidation.
        self.invalidate_tlb_range(range);
        self.advance_clock(SimDuration::from_ns(total_ns));
        self.note_migrated(moved_bytes);
        Ok(MigrationReport {
            bytes: moved_bytes,
            pages: moved_pages,
            time: SimDuration::from_ns(total_ns),
            mappings_after,
        })
    }

    fn finish_mbind_mapping(
        &mut self,
        old: &Mapping,
        new_maps: Vec<Mapping>,
        mappings_after: &mut usize,
    ) {
        *mappings_after += new_maps.len();
        self.replace_mapping(old.vpage_start, new_maps);
    }

    /// Copies one 4 KiB page between frames (possibly across tiers),
    /// without simulated-time accounting (the caller accounts it).
    fn copy_page(&mut self, src_tier: TierId, src_frame: u32, dst_tier: TierId, dst_frame: u32) {
        let src_off = (src_frame as usize) << PAGE_SHIFT;
        let dst_off = (dst_frame as usize) << PAGE_SHIFT;
        if src_tier == dst_tier {
            let storage = &mut self.tier_mut(src_tier).storage;
            let (a, b) = (src_off.min(dst_off), src_off.max(dst_off));
            debug_assert!(a + PAGE_SIZE <= b, "page copy overlaps itself");
            // Split to obtain two disjoint mutable views of one buffer.
            let slice = storage.slice_mut(a, b - a + PAGE_SIZE);
            let (first, second) = slice.split_at_mut(b - a);
            if src_off < dst_off {
                second[..PAGE_SIZE].copy_from_slice(&first[..PAGE_SIZE]);
            } else {
                first[..PAGE_SIZE].copy_from_slice(&second[..PAGE_SIZE]);
            }
        } else {
            let mut page = [0u8; PAGE_SIZE];
            page.copy_from_slice(self.tier_ref(src_tier).storage.slice(src_off, PAGE_SIZE));
            self.tier_mut(dst_tier)
                .storage
                .slice_mut(dst_off, PAGE_SIZE)
                .copy_from_slice(&page);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Placement;
    use crate::platform::Platform;

    fn setup(bytes: usize) -> (Machine, VirtRange) {
        let mut m = Machine::new(Platform::testing());
        let r = m.alloc(bytes, Placement::Slow).unwrap();
        for i in 0..(bytes / 8) as u64 {
            m.poke::<u64>(r.start.add(i * 8), i ^ 0x5555).unwrap();
        }
        (m, r)
    }

    #[test]
    fn mbind_moves_data_correctly() {
        let (mut m, r) = setup(2 * 1024 * 1024);
        let full = VirtRange::new(r.start, 2 * 1024 * 1024);
        let report = m.migrate_mbind(full, TierId::FAST).unwrap();
        assert_eq!(report.pages, 512);
        assert_eq!(m.resident_bytes(full, TierId::FAST), 2 * 1024 * 1024);
        for i in 0..(2 * 1024 * 1024 / 8) as u64 {
            assert_eq!(m.peek::<u64>(r.start.add(i * 8)).unwrap(), i ^ 0x5555);
        }
    }

    #[test]
    fn mbind_splinters_huge_mappings() {
        let (mut m, r) = setup(2 * 1024 * 1024);
        let full = VirtRange::new(r.start, 2 * 1024 * 1024);
        assert!(m
            .mappings_in(full)
            .iter()
            .any(|mp| mp.kind == PageKind::Huge2M));
        let report = m.migrate_mbind(full, TierId::FAST).unwrap();
        assert_eq!(report.mappings_after, 512);
        assert!(m
            .mappings_in(full)
            .iter()
            .all(|mp| mp.kind == PageKind::Base4K && mp.pages == 1));
    }

    #[test]
    fn mbind_takes_time_and_counts_bytes() {
        let (mut m, r) = setup(1024 * 1024);
        let before = m.now();
        let full = VirtRange::new(r.start, 1024 * 1024);
        let report = m.migrate_mbind(full, TierId::FAST).unwrap();
        assert!(report.time.as_ns() > 0.0);
        assert!(m.now() > before);
        assert_eq!(m.stats().bytes_migrated, 1024 * 1024);
    }

    #[test]
    fn mbind_unaligned_range_rejected() {
        let (mut m, r) = setup(8192);
        let bad = VirtRange::new(r.start.add(1), 4096);
        assert!(matches!(
            m.migrate_mbind(bad, TierId::FAST),
            Err(HmsError::InvalidRange { .. })
        ));
    }

    #[test]
    fn mbind_oom_moves_prefix_only() {
        let mut m = Machine::new(Platform::testing());
        let fast_cap = m.capacity(TierId::FAST);
        // Allocation larger than the fast tier.
        let r = m.alloc(fast_cap + 8 * PAGE_SIZE, Placement::Slow).unwrap();
        let full = VirtRange::new(r.start, fast_cap + 8 * PAGE_SIZE);
        let err = m.migrate_mbind(full, TierId::FAST).unwrap_err();
        assert!(matches!(err, HmsError::OutOfMemory { .. }));
        // The prefix did move.
        assert!(m.resident_bytes(full, TierId::FAST) > 0);
        // And translation still works everywhere, including the last word.
        let last = full.start.add(full.len as u64 - 8);
        let _ = m.peek::<u64>(last).unwrap();
    }

    #[test]
    fn page_status_fault_leaves_page_on_source() {
        use crate::fault::{FaultPlan, FaultSite};
        let (mut m, r) = setup(64 * 1024); // 16 pages
        let full = VirtRange::new(r.start, 64 * 1024);
        m.set_fault_plan(Some(FaultPlan::new().fail_at(FaultSite::PageStatus, 3)));
        let report = m.migrate_mbind(full, TierId::FAST).unwrap();
        assert_eq!(report.pages, 15, "one page must stay behind");
        assert_eq!(m.resident_bytes(full, TierId::SLOW), PAGE_SIZE);
        assert_eq!(m.resident_bytes(full, TierId::FAST), full.len - PAGE_SIZE);
        // Data intact everywhere, including the unmoved page.
        for i in 0..(full.len / 8) as u64 {
            assert_eq!(m.peek::<u64>(r.start.add(i * 8)).unwrap(), i ^ 0x5555);
        }
        assert_eq!(m.fault_plan().unwrap().injected().len(), 1);
        let violations = m.audit();
        assert!(violations.is_empty(), "audit violations: {violations:#?}");
    }

    #[test]
    fn mbind_same_tier_is_cheap_but_splinters() {
        let (mut m, r) = setup(2 * 1024 * 1024);
        let full = VirtRange::new(r.start, 2 * 1024 * 1024);
        let report = m.migrate_mbind(full, TierId::SLOW).unwrap();
        assert_eq!(report.pages, 0, "no pages should move tier");
        assert_eq!(report.mappings_after, 512, "mappings still splinter");
    }
}
