//! Address newtypes and page-geometry constants.
//!
//! The simulator uses 4 KiB base pages and *scaled* huge mappings of 64
//! base pages (256 KiB). Real x86-64 huge pages cover 512 pages (2 MiB);
//! since every capacity in the simulator is scaled down ~1000x relative to
//! the paper's testbeds (see `platform::CAPACITY_SCALE`), keeping 2 MiB
//! huge pages would make hugeness unreachable for the scaled datasets and
//! hide the TLB economics of Table 4. Scaling the huge unit with the rest
//! of the machine preserves the ratio of huge-page reach to data size. Physical locations are expressed as
//! (tier, frame index) pairs; a synthetic flat physical address is derived
//! for cache indexing so that migrating a page changes its cache footprint,
//! just as on real hardware.

use std::fmt;

use crate::tier::TierId;

/// Size of a base page in bytes (4 KiB).
pub const PAGE_SIZE: usize = 4096;
/// log2 of [`PAGE_SIZE`].
pub const PAGE_SHIFT: u32 = 12;
/// Number of base pages covered by one huge mapping (scaled; see the
/// module docs — real hardware uses 512).
pub const HUGE_PAGE_FRAMES: usize = 64;
/// Size of a huge mapping in bytes (256 KiB scaled; 2 MiB on real x86-64).
pub const HUGE_PAGE_SIZE: usize = PAGE_SIZE * HUGE_PAGE_FRAMES;
/// Cache-line size in bytes, used by the LLC model and the cost model.
pub const LINE_SIZE: usize = 64;

/// A virtual address in the simulated address space.
///
/// ```
/// use atmem_hms::addr::VirtAddr;
/// let va = VirtAddr::new(0x1000_0040);
/// assert_eq!(va.page_index(), 0x1000_0040 >> 12);
/// assert_eq!(va.page_offset(), 0x40);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(u64);

impl VirtAddr {
    /// Creates a virtual address from a raw value.
    pub const fn new(raw: u64) -> Self {
        VirtAddr(raw)
    }

    /// Returns the raw address value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Index of the 4 KiB page containing this address.
    pub const fn page_index(self) -> u64 {
        self.0 >> PAGE_SHIFT
    }

    /// Byte offset within the containing 4 KiB page.
    pub const fn page_offset(self) -> usize {
        (self.0 & (PAGE_SIZE as u64 - 1)) as usize
    }

    /// Address rounded down to the start of its cache line.
    pub const fn line_aligned(self) -> Self {
        VirtAddr(self.0 & !(LINE_SIZE as u64 - 1))
    }

    /// Returns this address advanced by `bytes`.
    #[must_use]
    pub const fn add(self, bytes: u64) -> Self {
        VirtAddr(self.0 + bytes)
    }

    /// Byte distance from `other` to `self`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `other > self`.
    pub fn offset_from(self, other: VirtAddr) -> u64 {
        debug_assert!(other.0 <= self.0, "offset_from would underflow");
        self.0 - other.0
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

impl From<VirtAddr> for u64 {
    fn from(value: VirtAddr) -> Self {
        value.0
    }
}

/// A physical frame: a 4 KiB unit of storage on a particular tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Frame {
    /// Tier holding the frame.
    pub tier: TierId,
    /// Frame index within the tier (frame `i` covers bytes
    /// `i * PAGE_SIZE .. (i + 1) * PAGE_SIZE` of the tier storage).
    pub index: u32,
}

impl Frame {
    /// Creates a frame handle.
    pub const fn new(tier: TierId, index: u32) -> Self {
        Frame { tier, index }
    }

    /// Byte offset of the frame start within its tier's storage.
    pub const fn byte_offset(self) -> usize {
        (self.index as usize) << PAGE_SHIFT
    }

    /// Synthetic flat physical address of byte `offset` within this frame.
    ///
    /// Distinct tiers occupy distinct 1 TiB windows of the synthetic space so
    /// that physical cache indexing never aliases across tiers.
    pub const fn phys_addr(self, offset: usize) -> PhysAddr {
        PhysAddr(
            ((self.tier.index() as u64) << 40)
                | (((self.index as u64) << PAGE_SHIFT) + offset as u64),
        )
    }
}

impl fmt::Display for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.tier, self.index)
    }
}

/// A synthetic flat physical address used for cache indexing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysAddr(u64);

impl PhysAddr {
    /// Creates a physical address from a raw value.
    pub const fn new(raw: u64) -> Self {
        PhysAddr(raw)
    }

    /// Returns the raw address value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Address rounded down to the start of its cache line.
    pub const fn line_aligned(self) -> Self {
        PhysAddr(self.0 & !(LINE_SIZE as u64 - 1))
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p:0x{:x}", self.0)
    }
}

/// A half-open virtual byte range `[start, start + len)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VirtRange {
    /// First byte of the range.
    pub start: VirtAddr,
    /// Length in bytes.
    pub len: usize,
}

impl VirtRange {
    /// Creates a range.
    pub const fn new(start: VirtAddr, len: usize) -> Self {
        VirtRange { start, len }
    }

    /// One past the last byte of the range.
    pub const fn end(self) -> VirtAddr {
        VirtAddr(self.start.raw() + self.len as u64)
    }

    /// Whether the range contains `va`.
    pub fn contains(self, va: VirtAddr) -> bool {
        va >= self.start && va < self.end()
    }

    /// Whether this range overlaps `other` (empty ranges overlap nothing).
    pub fn overlaps(self, other: VirtRange) -> bool {
        self.len > 0 && other.len > 0 && self.start < other.end() && other.start < self.end()
    }

    /// Intersection of two ranges, or `None` if disjoint.
    pub fn intersect(self, other: VirtRange) -> Option<VirtRange> {
        let start = self.start.max(other.start);
        let end = self.end().min(other.end());
        if start < end {
            Some(VirtRange::new(start, end.offset_from(start) as usize))
        } else {
            None
        }
    }

    /// Number of 4 KiB pages spanned by the range (counting partial pages).
    pub fn page_count(self) -> usize {
        if self.len == 0 {
            return 0;
        }
        let first = self.start.page_index();
        let last = (self.end().raw() - 1) >> PAGE_SHIFT;
        (last - first + 1) as usize
    }
}

impl fmt::Display for VirtRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_geometry() {
        assert_eq!(PAGE_SIZE, 1 << PAGE_SHIFT);
        assert_eq!(HUGE_PAGE_SIZE, PAGE_SIZE * HUGE_PAGE_FRAMES);
    }

    #[test]
    fn virt_addr_decomposition() {
        let va = VirtAddr::new(0x2000_1234);
        assert_eq!(va.page_index(), 0x2000_1234u64 >> 12);
        assert_eq!(va.page_offset(), 0x234);
        assert_eq!(va.line_aligned().raw(), 0x2000_1200);
    }

    #[test]
    fn line_alignment_masks_low_bits() {
        let va = VirtAddr::new(0x1007f);
        assert_eq!(va.line_aligned().raw(), 0x10040);
    }

    #[test]
    fn frame_phys_addr_separates_tiers() {
        let a = Frame::new(TierId::FAST, 3).phys_addr(0);
        let b = Frame::new(TierId::SLOW, 3).phys_addr(0);
        assert_ne!(a, b);
        assert_eq!(a.raw() & 0xffff_ffff, b.raw() & 0xffff_ffff);
    }

    #[test]
    fn range_overlap_and_intersection() {
        let a = VirtRange::new(VirtAddr::new(0x1000), 0x1000);
        let b = VirtRange::new(VirtAddr::new(0x1800), 0x1000);
        let c = VirtRange::new(VirtAddr::new(0x3000), 0x1000);
        assert!(a.overlaps(b));
        assert!(!a.overlaps(c));
        let i = a.intersect(b).unwrap();
        assert_eq!(i.start.raw(), 0x1800);
        assert_eq!(i.len, 0x800);
        assert!(a.intersect(c).is_none());
    }

    #[test]
    fn empty_range_overlaps_nothing() {
        let empty = VirtRange::new(VirtAddr::new(0x1000), 0);
        let a = VirtRange::new(VirtAddr::new(0x0), 0x10000);
        assert!(!empty.overlaps(a));
        assert!(!a.overlaps(empty));
    }

    #[test]
    fn page_count_counts_partial_pages() {
        let r = VirtRange::new(VirtAddr::new(0xfff), 2);
        assert_eq!(r.page_count(), 2);
        let r = VirtRange::new(VirtAddr::new(0x1000), PAGE_SIZE);
        assert_eq!(r.page_count(), 1);
        let r = VirtRange::new(VirtAddr::new(0x1000), 0);
        assert_eq!(r.page_count(), 0);
    }
}
