//! Set-associative last-level cache model.
//!
//! The LLC is indexed by *physical* address, so a migrated page starts cold
//! in the cache (its lines had the old physical tags), matching real
//! hardware. ATMem's profiler samples LLC *read misses* (paper Eq. 1), which
//! this model produces as an event stream.

use crate::addr::PhysAddr;

/// Slots in the window side-memo (see [`Cache::window_access_slot`]). A
/// power of two so the memo index is the set index's low bits.
const MEMO_SLOTS: usize = 64;

/// Geometry of the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Line size in bytes.
    pub line: usize,
}

impl CacheConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics unless `size` is divisible by `assoc * line` and the resulting
    /// set count is a power of two.
    pub fn new(size: usize, assoc: usize, line: usize) -> Self {
        assert!(
            size > 0 && assoc > 0 && line > 0,
            "cache geometry must be positive"
        );
        assert_eq!(
            size % (assoc * line),
            0,
            "size must be a multiple of assoc*line"
        );
        let sets = size / (assoc * line);
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        CacheConfig { size, assoc, line }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.size / (self.assoc * self.line)
    }
}

/// Outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The line was present.
    Hit,
    /// The line was absent and has been filled.
    Miss,
}

impl CacheOutcome {
    /// Whether the outcome is a hit.
    pub fn is_hit(self) -> bool {
        matches!(self, CacheOutcome::Hit)
    }
}

/// Set-associative write-allocate LLC with per-set LRU replacement.
///
/// ## The window side-memo
///
/// Mirrors the TLB's deferred-re-stamp memo (see [`crate::tlb::Tlb`]): the
/// batched window engine revisits a small set of hot lines, and for those
/// the full per-set tag scan only serves to re-stamp an age that is already
/// known. The memo is a tiny direct-mapped cache, indexed by the low bits
/// of the *set* index, remembering the line that last probed through each
/// memo slot. A memo hit bumps the tick and the hit counter eagerly and
/// defers the LRU age re-stamp into the memo; deferral is sound because
/// ages are only ever *read* by the victim scan, every deferred stamp for a
/// set necessarily lives in that set's (unique) memo slot, and every real
/// probe applies the aliasing slot's deferred stamp before scanning. All
/// non-window operations flush the whole memo first, so hit/miss outcomes,
/// counters and every future eviction are bit-identical to eager
/// re-stamping.
#[derive(Debug)]
pub struct Cache {
    config: CacheConfig,
    /// `tags[set * assoc + way]`; `u64::MAX` marks an empty way.
    tags: Vec<u64>,
    /// Per-way last-use tick for LRU.
    ages: Vec<u64>,
    tick: u64,
    set_mask: u64,
    line_shift: u32,
    read_hits: u64,
    read_misses: u64,
    write_hits: u64,
    write_misses: u64,
    /// Line id occupying each window-memo slot.
    memo_line: [u64; MEMO_SLOTS],
    /// Cache slot (`set * assoc + way`) that line sits in.
    memo_slot: [u32; MEMO_SLOTS],
    /// The line's deferred LRU age stamp.
    memo_tick: [u64; MEMO_SLOTS],
    /// Occupancy bitmap of the memo slots.
    memo_occ: u64,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        let ways = config.sets() * config.assoc;
        Cache {
            config,
            tags: vec![u64::MAX; ways],
            ages: vec![0; ways],
            tick: 0,
            set_mask: (config.sets() - 1) as u64,
            line_shift: config.line.trailing_zeros(),
            read_hits: 0,
            read_misses: 0,
            write_hits: 0,
            write_misses: 0,
            memo_line: [0; MEMO_SLOTS],
            memo_slot: [0; MEMO_SLOTS],
            memo_tick: [0; MEMO_SLOTS],
            memo_occ: 0,
        }
    }

    /// Applies every deferred LRU re-stamp and empties the memo. Must run
    /// before any age read (the victim scan) outside the window path and
    /// before any non-window mutation of replacement state.
    fn memo_flush(&mut self) {
        let mut occ = self.memo_occ;
        self.memo_occ = 0;
        while occ != 0 {
            let s = occ.trailing_zeros() as usize;
            occ &= occ - 1;
            self.ages[self.memo_slot[s] as usize] = self.memo_tick[s];
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Accesses the line containing `pa`; fills it on a miss.
    pub fn access(&mut self, pa: PhysAddr, write: bool) -> CacheOutcome {
        self.access_slot(pa, write).0
    }

    /// Like [`access`](Cache::access), but also returns the slot index
    /// (`set * assoc + way`) the line occupies afterwards, so follow-up
    /// touches of the same line can skip the tag scan.
    pub(crate) fn access_slot(&mut self, pa: PhysAddr, write: bool) -> (CacheOutcome, usize) {
        if self.memo_occ != 0 {
            self.memo_flush();
        }
        self.tick += 1;
        let line_id = pa.raw() >> self.line_shift;
        let set = (line_id & self.set_mask) as usize;
        let tag = line_id >> self.set_mask.count_ones();
        let base = set * self.config.assoc;
        let ways = &self.tags[base..base + self.config.assoc];

        let mut victim = 0usize;
        let mut victim_age = u64::MAX;
        for (w, &t) in ways.iter().enumerate() {
            if t == tag {
                self.ages[base + w] = self.tick;
                if write {
                    self.write_hits += 1;
                } else {
                    self.read_hits += 1;
                }
                return (CacheOutcome::Hit, base + w);
            }
            let age = self.ages[base + w];
            if age < victim_age {
                victim_age = age;
                victim = w;
            }
        }
        self.tags[base + victim] = tag;
        self.ages[base + victim] = self.tick;
        if write {
            self.write_misses += 1;
        } else {
            self.read_misses += 1;
        }
        (CacheOutcome::Miss, base + victim)
    }

    /// Guaranteed-hit re-touch of the line sitting in `slot` (as returned by
    /// [`access_slot`](Cache::access_slot) with no interleaving accesses):
    /// identical counter and LRU effects to another `access` of the same
    /// line, without the tag scan.
    pub(crate) fn rehit(&mut self, slot: usize, write: bool) {
        if self.memo_occ != 0 {
            self.memo_flush();
        }
        self.tick += 1;
        if write {
            self.write_hits += 1;
        } else {
            self.read_hits += 1;
        }
        self.ages[slot] = self.tick;
    }

    /// Replays `reads + writes` guaranteed-hit re-touches of the line in
    /// `slot` as one batch: counters, tick and the line's age end exactly as
    /// that many interleaved [`rehit`](Cache::rehit) calls would leave them
    /// (the interleaving order does not matter — every touch restamps the
    /// same slot). Used by the window engine to flush deferred same-line
    /// accesses before the next real probe.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `reads + writes` is zero.
    // Retained as the scalar-exact reference for the window settle path; the
    // engine itself now settles through the window memo, so production code
    // no longer calls this outside the equivalence tests.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn rehit_run(&mut self, slot: usize, reads: u64, writes: u64) {
        debug_assert!(reads + writes > 0, "empty rehit run");
        if self.memo_occ != 0 {
            self.memo_flush();
        }
        self.tick += reads + writes;
        self.read_hits += reads;
        self.write_hits += writes;
        self.ages[slot] = self.tick;
    }

    /// Batched window probe: like [`access_slot`](Cache::access_slot) but
    /// through the window side-memo, so a line probed recently on the window
    /// path skips the per-set tag scan entirely and has its LRU re-stamp
    /// deferred. Hit/miss outcomes, counters and all future evictions are
    /// identical to a scalar [`access`](Cache::access) of the same line.
    ///
    /// Only the batched window engine may use this: correctness relies on
    /// every interleaved non-window operation flushing the memo first,
    /// which [`access`]/[`access_slot`]/[`rehit`]/[`rehit_run`]/
    /// [`access_run`] all do.
    ///
    /// [`access`]: Cache::access
    /// [`access_slot`]: Cache::access_slot
    /// [`rehit`]: Cache::rehit
    /// [`rehit_run`]: Cache::rehit_run
    /// [`access_run`]: Cache::access_run
    pub(crate) fn window_access_slot(
        &mut self,
        pa: PhysAddr,
        write: bool,
    ) -> (CacheOutcome, usize) {
        self.tick += 1;
        let line_id = pa.raw() >> self.line_shift;
        let set = (line_id & self.set_mask) as usize;
        let s = set & (MEMO_SLOTS - 1);
        let bit = 1u64 << s;
        if self.memo_occ & bit != 0 && self.memo_line[s] == line_id {
            // Memo hit: the line is guaranteed resident (nothing can have
            // evicted it since its probe without flushing this slot first),
            // so the scalar probe would hit. Counters advance eagerly; the
            // LRU age re-stamp stays deferred in the memo.
            if write {
                self.write_hits += 1;
            } else {
                self.read_hits += 1;
            }
            self.memo_tick[s] = self.tick;
            return (CacheOutcome::Hit, self.memo_slot[s] as usize);
        }
        // Real probe. Any deferred re-stamp for this set lives in this memo
        // slot (sets map to memo slots many-to-one, but a set always maps to
        // the same slot), so applying the aliasing occupant's stamp first
        // makes the victim scan read exactly the ages the scalar loop would
        // have written.
        if self.memo_occ & bit != 0 {
            self.ages[self.memo_slot[s] as usize] = self.memo_tick[s];
        }
        let tag = line_id >> self.set_mask.count_ones();
        let base = set * self.config.assoc;
        let ways = &self.tags[base..base + self.config.assoc];
        let mut found = None;
        let mut victim = 0usize;
        let mut victim_age = u64::MAX;
        for (w, &t) in ways.iter().enumerate() {
            if t == tag {
                found = Some(base + w);
                break;
            }
            let age = self.ages[base + w];
            if age < victim_age {
                victim_age = age;
                victim = w;
            }
        }
        let (outcome, slot) = match found {
            Some(slot) => {
                self.ages[slot] = self.tick;
                if write {
                    self.write_hits += 1;
                } else {
                    self.read_hits += 1;
                }
                (CacheOutcome::Hit, slot)
            }
            None => {
                let slot = base + victim;
                self.tags[slot] = tag;
                self.ages[slot] = self.tick;
                if write {
                    self.write_misses += 1;
                } else {
                    self.read_misses += 1;
                }
                (CacheOutcome::Miss, slot)
            }
        };
        self.memo_line[s] = line_id;
        self.memo_slot[s] = slot as u32;
        self.memo_tick[s] = self.tick;
        self.memo_occ |= bit;
        (outcome, slot)
    }

    /// Settles `reads + writes` deferred guaranteed-hit touches of the line
    /// in `slot` accumulated by the window engine's line-run coalescing.
    /// The line was probed via [`window_access_slot`]
    /// (Cache::window_access_slot) when the run opened and no other cache
    /// operation has intervened, so it is still in the memo; the fallback
    /// is defensive.
    pub(crate) fn window_settle(&mut self, slot: usize, reads: u64, writes: u64) {
        debug_assert!(reads + writes > 0, "empty window settle");
        self.tick += reads + writes;
        self.read_hits += reads;
        self.write_hits += writes;
        let s = (slot / self.config.assoc) & (MEMO_SLOTS - 1);
        if self.memo_occ & (1 << s) != 0 && self.memo_slot[s] as usize == slot {
            self.memo_tick[s] = self.tick;
        } else {
            debug_assert!(false, "settled slot lost from the window memo");
            self.ages[slot] = self.tick;
        }
    }

    /// Adds another cache's hit/miss counters into this one (deterministic
    /// core merge: replacement state is discarded, totals are summed).
    pub(crate) fn absorb_counters(&mut self, other: &Cache) {
        self.read_hits += other.read_hits;
        self.read_misses += other.read_misses;
        self.write_hits += other.write_hits;
        self.write_misses += other.write_misses;
    }

    /// Performs `count` consecutive accesses to the line containing `pa` as
    /// one batch, returning the outcome of the *first*. State and counters
    /// end exactly as `count` calls to [`access`](Cache::access) would leave
    /// them: after the first access fills or touches the line, the remaining
    /// `count - 1` are guaranteed hits that each advance the tick and
    /// refresh the line's age.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `count` is zero.
    pub fn access_run(&mut self, pa: PhysAddr, write: bool, count: usize) -> CacheOutcome {
        debug_assert!(count > 0, "empty cache run");
        let (outcome, slot) = self.access_slot(pa, write);
        if count > 1 {
            let extra = (count - 1) as u64;
            self.tick += extra;
            if write {
                self.write_hits += extra;
            } else {
                self.read_hits += extra;
            }
            self.ages[slot] = self.tick;
        }
        outcome
    }

    /// Drops every line (used when a machine resets between experiments).
    /// Deferred window re-stamps are discarded with the ages they targeted.
    pub fn flush(&mut self) {
        self.memo_occ = 0;
        self.tags.fill(u64::MAX);
        self.ages.fill(0);
    }

    /// Evicts every resident line whose line id satisfies `pred`, as a
    /// back-invalidation for reclaimed physical frames would. The vacated
    /// ways become immediate eviction victims (tag empty, age zero);
    /// counters are untouched.
    pub fn invalidate_where(&mut self, mut pred: impl FnMut(u64) -> bool) {
        if self.memo_occ != 0 {
            self.memo_flush();
        }
        let set_bits = self.set_mask.count_ones();
        for (slot, tag) in self.tags.iter_mut().enumerate() {
            if *tag == u64::MAX {
                continue;
            }
            let set = (slot / self.config.assoc) as u64;
            let line_id = (*tag << set_bits) | set;
            if pred(line_id) {
                *tag = u64::MAX;
                self.ages[slot] = 0;
            }
        }
    }

    /// The line id of every resident line, in unspecified order. Used by the
    /// machine invariant auditor to check that no line references a freed
    /// frame. Flushes the window memo first so audits see settled state.
    pub fn live_lines(&mut self) -> Vec<u64> {
        if self.memo_occ != 0 {
            self.memo_flush();
        }
        let set_bits = self.set_mask.count_ones();
        self.tags
            .iter()
            .enumerate()
            .filter(|(_, &tag)| tag != u64::MAX)
            .map(|(slot, &tag)| (tag << set_bits) | (slot / self.config.assoc) as u64)
            .collect()
    }

    /// Reconstructs the physical byte address of the first byte of a line id
    /// produced by [`Cache::live_lines`].
    pub fn line_base_addr(&self, line_id: u64) -> u64 {
        line_id << self.line_shift
    }

    /// The line id containing physical byte address `raw`.
    pub fn line_id_of(&self, raw: u64) -> u64 {
        raw >> self.line_shift
    }

    /// Read hits since creation or the last counter reset.
    pub fn read_hits(&self) -> u64 {
        self.read_hits
    }

    /// Read misses since creation or the last counter reset.
    pub fn read_misses(&self) -> u64 {
        self.read_misses
    }

    /// Write hits since creation or the last counter reset.
    pub fn write_hits(&self) -> u64 {
        self.write_hits
    }

    /// Write misses since creation or the last counter reset.
    pub fn write_misses(&self) -> u64 {
        self.write_misses
    }

    /// Zeroes all hit/miss counters, keeping contents.
    pub fn reset_counters(&mut self) {
        self.read_hits = 0;
        self.read_misses = 0;
        self.write_hits = 0;
        self.write_misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets x 2 ways x 64B lines = 512 B.
        Cache::new(CacheConfig::new(512, 2, 64))
    }

    #[test]
    fn config_validates_geometry() {
        let c = CacheConfig::new(2 * 1024 * 1024, 16, 64);
        assert_eq!(c.sets(), 2048);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_sets_panics() {
        let _ = CacheConfig::new(3 * 64 * 2, 2, 64);
    }

    #[test]
    fn second_access_hits() {
        let mut c = small();
        let pa = PhysAddr::new(0x1000);
        assert_eq!(c.access(pa, false), CacheOutcome::Miss);
        assert_eq!(c.access(pa, false), CacheOutcome::Hit);
        // Same line, different byte.
        assert_eq!(c.access(PhysAddr::new(0x103f), false), CacheOutcome::Hit);
        assert_eq!(c.read_hits(), 2);
        assert_eq!(c.read_misses(), 1);
    }

    #[test]
    fn conflict_evicts_lru() {
        let mut c = small();
        // Three lines mapping to the same set (stride = sets*line = 256).
        let a = PhysAddr::new(0x0);
        let b = PhysAddr::new(0x100);
        let d = PhysAddr::new(0x200);
        c.access(a, false);
        c.access(b, false);
        c.access(a, false); // b becomes LRU
        c.access(d, false); // evicts b
        assert_eq!(c.access(a, false), CacheOutcome::Hit);
        assert_eq!(c.access(b, false), CacheOutcome::Miss);
    }

    #[test]
    fn writes_are_counted_separately() {
        let mut c = small();
        let pa = PhysAddr::new(0x40);
        c.access(pa, true);
        c.access(pa, true);
        assert_eq!(c.write_misses(), 1);
        assert_eq!(c.write_hits(), 1);
        assert_eq!(c.read_misses(), 0);
    }

    #[test]
    fn rehit_run_matches_the_per_element_rehit_loop() {
        let mut batched = small();
        let mut looped = small();
        for &(addr, reads, writes) in &[
            (0x000u64, 4u64, 2u64),
            (0x100, 0, 3),
            (0x000, 5, 0),
            (0x200, 1, 1),
        ] {
            let pa = PhysAddr::new(addr);
            let (ob, sb) = batched.access_slot(pa, false);
            let (ol, sl) = looped.access_slot(pa, false);
            assert_eq!(ob, ol, "probe outcome at {addr:#x}");
            batched.rehit_run(sb, reads, writes);
            for _ in 0..reads {
                looped.rehit(sl, false);
            }
            for _ in 0..writes {
                looped.rehit(sl, true);
            }
        }
        assert_eq!(batched.read_hits(), looped.read_hits());
        assert_eq!(batched.read_misses(), looped.read_misses());
        assert_eq!(batched.write_hits(), looped.write_hits());
        assert_eq!(batched.write_misses(), looped.write_misses());
        // LRU ages agree: the same victims are chosen afterwards.
        for addr in (0..0x800u64).step_by(0x100) {
            assert_eq!(
                batched.access(PhysAddr::new(addr), false),
                looped.access(PhysAddr::new(addr), false)
            );
        }
    }

    #[test]
    fn access_run_matches_the_per_element_loop() {
        let mut batched = small();
        let mut looped = small();
        // Lines competing in the same set (stride 256), mixed reads/writes.
        for &(addr, write, count) in &[
            (0x000u64, false, 9usize),
            (0x100, false, 3),
            (0x000, true, 2),
            (0x200, false, 5),
            (0x100, true, 1),
            (0x300, false, 4),
            (0x000, false, 6),
        ] {
            let pa = PhysAddr::new(addr);
            let first_batched = batched.access_run(pa, write, count);
            let first_looped = looped.access(pa, write);
            for _ in 1..count {
                assert_eq!(looped.access(pa, write), CacheOutcome::Hit);
            }
            assert_eq!(first_batched, first_looped, "outcome at {addr:#x}");
        }
        assert_eq!(batched.read_hits(), looped.read_hits());
        assert_eq!(batched.read_misses(), looped.read_misses());
        assert_eq!(batched.write_hits(), looped.write_hits());
        assert_eq!(batched.write_misses(), looped.write_misses());
        // LRU ages agree: the same victims are chosen afterwards.
        for addr in (0..0x800u64).step_by(0x100) {
            assert_eq!(
                batched.access(PhysAddr::new(addr), false),
                looped.access(PhysAddr::new(addr), false)
            );
        }
    }

    #[test]
    fn window_api_matches_the_per_element_loop() {
        let mut windowed = small();
        let mut looped = small();
        // Window probes (memo path) interleaved with scalar accesses and
        // settles, with enough same-set lines (stride 256) to force
        // evictions while re-stamps are still deferred. Sets 0 and 1 both
        // appear, and lines 0x000/0x100 share set 0 so its memo slot keeps
        // getting re-probed.
        let script: &[(u64, bool, u64, u64, bool)] = &[
            // (addr, write, settle_reads, settle_writes, window)
            (0x000, false, 3, 0, true), // miss, fills; then settle 3 reads
            (0x040, false, 0, 0, true), // set 1: miss
            (0x000, false, 0, 2, true), // memo hit; settle 2 writes
            (0x100, false, 0, 0, true), // set 0 again: flushes 0x000's stamp
            (0x000, true, 1, 1, true),  // real probe (memo now 0x100), hit
            (0x200, false, 0, 0, true), // set 0 full: eviction under memo
            (0x040, false, 0, 0, false), // scalar access: flushes the memo
            (0x100, false, 4, 0, true),
            (0x300, false, 0, 0, true), // eviction again
            (0x000, false, 0, 0, true),
        ];
        for &(addr, write, sr, sw, window) in script {
            let pa = PhysAddr::new(addr);
            if window {
                let (ow, slot) = windowed.window_access_slot(pa, write);
                let (ol, sl) = looped.access_slot(pa, write);
                assert_eq!(ow, ol, "outcome at {addr:#x}");
                if sr + sw > 0 {
                    windowed.window_settle(slot, sr, sw);
                    looped.rehit_run(sl, sr, sw);
                }
            } else {
                assert_eq!(windowed.access(pa, write), looped.access(pa, write));
            }
            assert_eq!(windowed.read_hits(), looped.read_hits());
            assert_eq!(windowed.write_hits(), looped.write_hits());
            assert_eq!(windowed.read_misses(), looped.read_misses());
            assert_eq!(windowed.write_misses(), looped.write_misses());
        }
        // Replacement state is identical: the same victims are chosen.
        for addr in (0..0x800u64).step_by(0x100) {
            assert_eq!(
                windowed.access(PhysAddr::new(addr), false),
                looped.access(PhysAddr::new(addr), false),
                "probe of {addr:#x}"
            );
        }
    }

    #[test]
    fn deferred_restamps_reach_the_victim_scan() {
        // 4 sets x 2 ways: lines 0x000, 0x100, 0x200 all map to set 0.
        let mut c = small();
        let (o, _) = c.window_access_slot(PhysAddr::new(0x000), false);
        assert_eq!(o, CacheOutcome::Miss); // age 1
        let (o, _) = c.window_access_slot(PhysAddr::new(0x100), false);
        assert_eq!(o, CacheOutcome::Miss); // age 2
        let (o, slot) = c.window_access_slot(PhysAddr::new(0x000), false);
        assert_eq!(o, CacheOutcome::Hit);
        c.window_settle(slot, 3, 0); // 0x000 re-stamped to 6, deferred
                                     // Without the flush-before-scan the victim scan would see 0x000's
                                     // stale age and evict it; the deferred re-stamp makes 0x100 LRU.
        assert_eq!(c.access(PhysAddr::new(0x200), false), CacheOutcome::Miss);
        assert_eq!(c.access(PhysAddr::new(0x000), false), CacheOutcome::Hit);
        assert_eq!(c.access(PhysAddr::new(0x100), false), CacheOutcome::Miss);
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = small();
        let pa = PhysAddr::new(0x40);
        c.access(pa, false);
        c.flush();
        assert_eq!(c.access(pa, false), CacheOutcome::Miss);
    }
}
