//! Set-associative last-level cache model.
//!
//! The LLC is indexed by *physical* address, so a migrated page starts cold
//! in the cache (its lines had the old physical tags), matching real
//! hardware. ATMem's profiler samples LLC *read misses* (paper Eq. 1), which
//! this model produces as an event stream.

use crate::addr::PhysAddr;

/// Geometry of the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Line size in bytes.
    pub line: usize,
}

impl CacheConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics unless `size` is divisible by `assoc * line` and the resulting
    /// set count is a power of two.
    pub fn new(size: usize, assoc: usize, line: usize) -> Self {
        assert!(
            size > 0 && assoc > 0 && line > 0,
            "cache geometry must be positive"
        );
        assert_eq!(
            size % (assoc * line),
            0,
            "size must be a multiple of assoc*line"
        );
        let sets = size / (assoc * line);
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        CacheConfig { size, assoc, line }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.size / (self.assoc * self.line)
    }
}

/// Outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The line was present.
    Hit,
    /// The line was absent and has been filled.
    Miss,
}

impl CacheOutcome {
    /// Whether the outcome is a hit.
    pub fn is_hit(self) -> bool {
        matches!(self, CacheOutcome::Hit)
    }
}

/// Set-associative write-allocate LLC with per-set LRU replacement.
#[derive(Debug)]
pub struct Cache {
    config: CacheConfig,
    /// `tags[set * assoc + way]`; `u64::MAX` marks an empty way.
    tags: Vec<u64>,
    /// Per-way last-use tick for LRU.
    ages: Vec<u64>,
    tick: u64,
    set_mask: u64,
    line_shift: u32,
    read_hits: u64,
    read_misses: u64,
    write_hits: u64,
    write_misses: u64,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        let ways = config.sets() * config.assoc;
        Cache {
            config,
            tags: vec![u64::MAX; ways],
            ages: vec![0; ways],
            tick: 0,
            set_mask: (config.sets() - 1) as u64,
            line_shift: config.line.trailing_zeros(),
            read_hits: 0,
            read_misses: 0,
            write_hits: 0,
            write_misses: 0,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Accesses the line containing `pa`; fills it on a miss.
    pub fn access(&mut self, pa: PhysAddr, write: bool) -> CacheOutcome {
        self.access_slot(pa, write).0
    }

    /// Like [`access`](Cache::access), but also returns the slot index
    /// (`set * assoc + way`) the line occupies afterwards, so follow-up
    /// touches of the same line can skip the tag scan.
    pub(crate) fn access_slot(&mut self, pa: PhysAddr, write: bool) -> (CacheOutcome, usize) {
        self.tick += 1;
        let line_id = pa.raw() >> self.line_shift;
        let set = (line_id & self.set_mask) as usize;
        let tag = line_id >> self.set_mask.count_ones();
        let base = set * self.config.assoc;
        let ways = &self.tags[base..base + self.config.assoc];

        let mut victim = 0usize;
        let mut victim_age = u64::MAX;
        for (w, &t) in ways.iter().enumerate() {
            if t == tag {
                self.ages[base + w] = self.tick;
                if write {
                    self.write_hits += 1;
                } else {
                    self.read_hits += 1;
                }
                return (CacheOutcome::Hit, base + w);
            }
            let age = self.ages[base + w];
            if age < victim_age {
                victim_age = age;
                victim = w;
            }
        }
        self.tags[base + victim] = tag;
        self.ages[base + victim] = self.tick;
        if write {
            self.write_misses += 1;
        } else {
            self.read_misses += 1;
        }
        (CacheOutcome::Miss, base + victim)
    }

    /// Guaranteed-hit re-touch of the line sitting in `slot` (as returned by
    /// [`access_slot`](Cache::access_slot) with no interleaving accesses):
    /// identical counter and LRU effects to another `access` of the same
    /// line, without the tag scan.
    pub(crate) fn rehit(&mut self, slot: usize, write: bool) {
        self.tick += 1;
        if write {
            self.write_hits += 1;
        } else {
            self.read_hits += 1;
        }
        self.ages[slot] = self.tick;
    }

    /// Replays `reads + writes` guaranteed-hit re-touches of the line in
    /// `slot` as one batch: counters, tick and the line's age end exactly as
    /// that many interleaved [`rehit`](Cache::rehit) calls would leave them
    /// (the interleaving order does not matter — every touch restamps the
    /// same slot). Used by the window engine to flush deferred same-line
    /// accesses before the next real probe.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `reads + writes` is zero.
    pub(crate) fn rehit_run(&mut self, slot: usize, reads: u64, writes: u64) {
        debug_assert!(reads + writes > 0, "empty rehit run");
        self.tick += reads + writes;
        self.read_hits += reads;
        self.write_hits += writes;
        self.ages[slot] = self.tick;
    }

    /// Performs `count` consecutive accesses to the line containing `pa` as
    /// one batch, returning the outcome of the *first*. State and counters
    /// end exactly as `count` calls to [`access`](Cache::access) would leave
    /// them: after the first access fills or touches the line, the remaining
    /// `count - 1` are guaranteed hits that each advance the tick and
    /// refresh the line's age.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `count` is zero.
    pub fn access_run(&mut self, pa: PhysAddr, write: bool, count: usize) -> CacheOutcome {
        debug_assert!(count > 0, "empty cache run");
        let (outcome, slot) = self.access_slot(pa, write);
        if count > 1 {
            let extra = (count - 1) as u64;
            self.tick += extra;
            if write {
                self.write_hits += extra;
            } else {
                self.read_hits += extra;
            }
            self.ages[slot] = self.tick;
        }
        outcome
    }

    /// Drops every line (used when a machine resets between experiments).
    pub fn flush(&mut self) {
        self.tags.fill(u64::MAX);
        self.ages.fill(0);
    }

    /// Read hits since creation or the last counter reset.
    pub fn read_hits(&self) -> u64 {
        self.read_hits
    }

    /// Read misses since creation or the last counter reset.
    pub fn read_misses(&self) -> u64 {
        self.read_misses
    }

    /// Write hits since creation or the last counter reset.
    pub fn write_hits(&self) -> u64 {
        self.write_hits
    }

    /// Write misses since creation or the last counter reset.
    pub fn write_misses(&self) -> u64 {
        self.write_misses
    }

    /// Zeroes all hit/miss counters, keeping contents.
    pub fn reset_counters(&mut self) {
        self.read_hits = 0;
        self.read_misses = 0;
        self.write_hits = 0;
        self.write_misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets x 2 ways x 64B lines = 512 B.
        Cache::new(CacheConfig::new(512, 2, 64))
    }

    #[test]
    fn config_validates_geometry() {
        let c = CacheConfig::new(2 * 1024 * 1024, 16, 64);
        assert_eq!(c.sets(), 2048);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_sets_panics() {
        let _ = CacheConfig::new(3 * 64 * 2, 2, 64);
    }

    #[test]
    fn second_access_hits() {
        let mut c = small();
        let pa = PhysAddr::new(0x1000);
        assert_eq!(c.access(pa, false), CacheOutcome::Miss);
        assert_eq!(c.access(pa, false), CacheOutcome::Hit);
        // Same line, different byte.
        assert_eq!(c.access(PhysAddr::new(0x103f), false), CacheOutcome::Hit);
        assert_eq!(c.read_hits(), 2);
        assert_eq!(c.read_misses(), 1);
    }

    #[test]
    fn conflict_evicts_lru() {
        let mut c = small();
        // Three lines mapping to the same set (stride = sets*line = 256).
        let a = PhysAddr::new(0x0);
        let b = PhysAddr::new(0x100);
        let d = PhysAddr::new(0x200);
        c.access(a, false);
        c.access(b, false);
        c.access(a, false); // b becomes LRU
        c.access(d, false); // evicts b
        assert_eq!(c.access(a, false), CacheOutcome::Hit);
        assert_eq!(c.access(b, false), CacheOutcome::Miss);
    }

    #[test]
    fn writes_are_counted_separately() {
        let mut c = small();
        let pa = PhysAddr::new(0x40);
        c.access(pa, true);
        c.access(pa, true);
        assert_eq!(c.write_misses(), 1);
        assert_eq!(c.write_hits(), 1);
        assert_eq!(c.read_misses(), 0);
    }

    #[test]
    fn rehit_run_matches_the_per_element_rehit_loop() {
        let mut batched = small();
        let mut looped = small();
        for &(addr, reads, writes) in &[
            (0x000u64, 4u64, 2u64),
            (0x100, 0, 3),
            (0x000, 5, 0),
            (0x200, 1, 1),
        ] {
            let pa = PhysAddr::new(addr);
            let (ob, sb) = batched.access_slot(pa, false);
            let (ol, sl) = looped.access_slot(pa, false);
            assert_eq!(ob, ol, "probe outcome at {addr:#x}");
            batched.rehit_run(sb, reads, writes);
            for _ in 0..reads {
                looped.rehit(sl, false);
            }
            for _ in 0..writes {
                looped.rehit(sl, true);
            }
        }
        assert_eq!(batched.read_hits(), looped.read_hits());
        assert_eq!(batched.read_misses(), looped.read_misses());
        assert_eq!(batched.write_hits(), looped.write_hits());
        assert_eq!(batched.write_misses(), looped.write_misses());
        // LRU ages agree: the same victims are chosen afterwards.
        for addr in (0..0x800u64).step_by(0x100) {
            assert_eq!(
                batched.access(PhysAddr::new(addr), false),
                looped.access(PhysAddr::new(addr), false)
            );
        }
    }

    #[test]
    fn access_run_matches_the_per_element_loop() {
        let mut batched = small();
        let mut looped = small();
        // Lines competing in the same set (stride 256), mixed reads/writes.
        for &(addr, write, count) in &[
            (0x000u64, false, 9usize),
            (0x100, false, 3),
            (0x000, true, 2),
            (0x200, false, 5),
            (0x100, true, 1),
            (0x300, false, 4),
            (0x000, false, 6),
        ] {
            let pa = PhysAddr::new(addr);
            let first_batched = batched.access_run(pa, write, count);
            let first_looped = looped.access(pa, write);
            for _ in 1..count {
                assert_eq!(looped.access(pa, write), CacheOutcome::Hit);
            }
            assert_eq!(first_batched, first_looped, "outcome at {addr:#x}");
        }
        assert_eq!(batched.read_hits(), looped.read_hits());
        assert_eq!(batched.read_misses(), looped.read_misses());
        assert_eq!(batched.write_hits(), looped.write_hits());
        assert_eq!(batched.write_misses(), looped.write_misses());
        // LRU ages agree: the same victims are chosen afterwards.
        for addr in (0..0x800u64).step_by(0x100) {
            assert_eq!(
                batched.access(PhysAddr::new(addr), false),
                looped.access(PhysAddr::new(addr), false)
            );
        }
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = small();
        let pa = PhysAddr::new(0x40);
        c.access(pa, false);
        c.flush();
        assert_eq!(c.access(pa, false), CacheOutcome::Miss);
    }
}
