//! Deterministic fault injection for the migration primitives.
//!
//! A [`FaultPlan`] is installed on a [`Machine`](crate::Machine) and consulted
//! every time execution crosses one of the [`FaultSite`]s inside the
//! migration path (frame allocation, staging-buffer allocation, region
//! remap, data move, the per-page `mbind` status check) or the profiling
//! path (sample-record loss at drain). Each consultation is numbered per site, so a plan can
//! fail exactly the *n*-th crossing of a site — step-indexed, reproducible
//! fault schedules — or draw failures from a seeded RNG at a per-site rate.
//!
//! The plan records every fault it actually injected, which lets tests
//! distinguish "no fault fired" from "the fault fired and was survived".
//! Recovery code (the staged-migration rollback in `atmem-core`) suspends
//! the plan while it undoes a faulted migration so the rollback itself
//! cannot be re-faulted into an unrecoverable state — mirroring real fault
//! handlers running with faults masked.

use atmem_rng::SmallRng;

/// A point inside [`Machine`](crate::Machine)'s migration path where a
/// [`FaultPlan`] may inject a failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Frame allocation while building mappings: [`Machine::alloc`]
    /// (per placement segment), [`Machine::remap_region`] (destination
    /// mapping build) and the per-page `mbind` frame grab.
    ///
    /// [`Machine::alloc`]: crate::Machine::alloc
    /// [`Machine::remap_region`]: crate::Machine::remap_region
    FrameAlloc,
    /// Staging-buffer allocation in [`Machine::alloc_frames`].
    ///
    /// [`Machine::alloc_frames`]: crate::Machine::alloc_frames
    StagingAlloc,
    /// Region remap in [`Machine::remap_region`], consulted after argument
    /// validation but before any mapping-table mutation.
    ///
    /// [`Machine::remap_region`]: crate::Machine::remap_region
    Remap,
    /// Data movement in [`Machine::copy_region_to_frames`] and
    /// [`Machine::copy_frames_to_region`] (a copier-thread failure, not a
    /// capacity condition).
    ///
    /// [`Machine::copy_region_to_frames`]: crate::Machine::copy_region_to_frames
    /// [`Machine::copy_frames_to_region`]: crate::Machine::copy_frames_to_region
    Move,
    /// The per-page migratability status check inside
    /// [`Machine::migrate_mbind`] (the simulated analogue of
    /// `move_pages(2)` reporting a per-page error). A firing leaves that
    /// page on its source tier as a splintered base mapping; only the
    /// status-check overhead is charged.
    ///
    /// [`Machine::migrate_mbind`]: crate::Machine::migrate_mbind
    PageStatus,
    /// A sampled record crossing [`Machine::pebs_drain`] or
    /// [`Machine::trace_drain`] (the simulated analogue of a PEBS buffer
    /// overwrite or a lost perf event). A firing silently drops that
    /// record, starving the analyzer of one sample.
    ///
    /// [`Machine::pebs_drain`]: crate::Machine::pebs_drain
    /// [`Machine::trace_drain`]: crate::Machine::trace_drain
    SampleLoss,
}

/// All fault sites, in a fixed order (used for per-site tables).
pub const FAULT_SITES: [FaultSite; 6] = [
    FaultSite::FrameAlloc,
    FaultSite::StagingAlloc,
    FaultSite::Remap,
    FaultSite::Move,
    FaultSite::PageStatus,
    FaultSite::SampleLoss,
];

/// Number of distinct fault sites (per-site table width).
const NUM_SITES: usize = FAULT_SITES.len();

impl FaultSite {
    const fn index(self) -> usize {
        match self {
            FaultSite::FrameAlloc => 0,
            FaultSite::StagingAlloc => 1,
            FaultSite::Remap => 2,
            FaultSite::Move => 3,
            FaultSite::PageStatus => 4,
            FaultSite::SampleLoss => 5,
        }
    }
}

impl std::fmt::Display for FaultSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            FaultSite::FrameAlloc => "frame-alloc",
            FaultSite::StagingAlloc => "staging-alloc",
            FaultSite::Remap => "remap",
            FaultSite::Move => "move",
            FaultSite::PageStatus => "page-status",
            FaultSite::SampleLoss => "sample-loss",
        };
        f.write_str(name)
    }
}

/// A deterministic, step-indexed fault schedule.
///
/// Two mechanisms compose (either may fire a given consultation):
///
/// * **scripted faults** — [`FaultPlan::fail_at`] arms the exact *n*-th
///   consultation (0-based) of a site;
/// * **random faults** — [`FaultPlan::seeded`] + [`FaultPlan::with_rate`]
///   draw per-consultation failures from a seeded [`SmallRng`], so a whole
///   fuzzing schedule is reproducible from one `u64`.
///
/// Consultation counters keep counting while the plan is
/// [suspended](FaultPlan::suspend) — suspension masks *injection*, not
/// *numbering* — so a scripted step index refers to the same crossing
/// whether or not a rollback ran in between.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    scripted: Vec<(FaultSite, u64)>,
    rates: [f64; NUM_SITES],
    rng: Option<SmallRng>,
    consults: [u64; NUM_SITES],
    injected: Vec<(FaultSite, u64)>,
    suspended: bool,
}

impl FaultPlan {
    /// An empty plan: never fails anything until armed.
    pub fn new() -> Self {
        FaultPlan {
            scripted: Vec::new(),
            rates: [0.0; NUM_SITES],
            rng: None,
            consults: [0; NUM_SITES],
            injected: Vec::new(),
            suspended: false,
        }
    }

    /// A plan whose random mode draws from `seed` (rates default to 0; arm
    /// sites with [`FaultPlan::with_rate`]).
    pub fn seeded(seed: u64) -> Self {
        let mut plan = FaultPlan::new();
        plan.rng = Some(SmallRng::seed_from_u64(seed));
        plan
    }

    /// Arms a scripted fault: the `nth` (0-based) consultation of `site`
    /// fails.
    pub fn fail_at(mut self, site: FaultSite, nth: u64) -> Self {
        self.scripted.push((site, nth));
        self
    }

    /// Sets the random failure probability for `site` (requires
    /// [`FaultPlan::seeded`]; ignored otherwise).
    pub fn with_rate(mut self, site: FaultSite, rate: f64) -> Self {
        self.rates[site.index()] = rate.clamp(0.0, 1.0);
        self
    }

    /// How many times `site` has been consulted so far.
    pub fn consults(&self, site: FaultSite) -> u64 {
        self.consults[site.index()]
    }

    /// Every fault actually injected, as `(site, consultation index)` in
    /// injection order.
    pub fn injected(&self) -> &[(FaultSite, u64)] {
        &self.injected
    }

    /// Masks injection (consultations still count). Recovery code runs
    /// under suspension so a rollback cannot itself be faulted.
    pub fn suspend(&mut self) {
        self.suspended = true;
    }

    /// Re-enables injection after [`FaultPlan::suspend`].
    pub fn resume(&mut self) {
        self.suspended = false;
    }

    /// Whether injection is currently masked.
    pub fn is_suspended(&self) -> bool {
        self.suspended
    }

    /// Consults the plan at `site`: advances the site's counter and reports
    /// whether this crossing must fail. Called by `Machine` internals.
    pub fn should_fail(&mut self, site: FaultSite) -> bool {
        let idx = self.consults[site.index()];
        self.consults[site.index()] += 1;
        // The RNG must advance on every consultation — suspended or not —
        // so a schedule's random draws stay aligned with the step indices
        // regardless of whether a rollback ran in between.
        let rate = self.rates[site.index()];
        let random_hit = match &mut self.rng {
            Some(rng) if rate > 0.0 => rng.gen_bool(rate),
            _ => false,
        };
        if self.suspended {
            return false;
        }
        let scripted_hit = self.scripted.iter().any(|&(s, n)| s == site && n == idx);
        if scripted_hit || random_hit {
            self.injected.push((site, idx));
            true
        } else {
            false
        }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_fault_fires_exactly_once() {
        let mut plan = FaultPlan::new().fail_at(FaultSite::Remap, 1);
        assert!(!plan.should_fail(FaultSite::Remap)); // consult 0
        assert!(plan.should_fail(FaultSite::Remap)); // consult 1
        assert!(!plan.should_fail(FaultSite::Remap)); // consult 2
        assert_eq!(plan.injected(), &[(FaultSite::Remap, 1)]);
    }

    #[test]
    fn sites_count_independently() {
        let mut plan = FaultPlan::new().fail_at(FaultSite::Move, 0);
        assert!(!plan.should_fail(FaultSite::StagingAlloc));
        assert!(plan.should_fail(FaultSite::Move));
        assert_eq!(plan.consults(FaultSite::StagingAlloc), 1);
        assert_eq!(plan.consults(FaultSite::Move), 1);
        assert_eq!(plan.consults(FaultSite::FrameAlloc), 0);
    }

    #[test]
    fn suspension_masks_injection_but_keeps_counting() {
        let mut plan = FaultPlan::new()
            .fail_at(FaultSite::Remap, 0)
            .fail_at(FaultSite::Remap, 2);
        plan.suspend();
        assert!(!plan.should_fail(FaultSite::Remap)); // 0: armed but masked
        plan.resume();
        assert!(!plan.should_fail(FaultSite::Remap)); // 1: not armed
        assert!(plan.should_fail(FaultSite::Remap)); // 2: armed
        assert_eq!(plan.injected(), &[(FaultSite::Remap, 2)]);
    }

    #[test]
    fn seeded_schedule_is_reproducible() {
        let draws = |seed: u64| {
            let mut plan = FaultPlan::seeded(seed).with_rate(FaultSite::StagingAlloc, 0.5);
            (0..64)
                .map(|_| plan.should_fail(FaultSite::StagingAlloc))
                .collect::<Vec<_>>()
        };
        assert_eq!(draws(7), draws(7));
        assert_ne!(draws(7), draws(8), "distinct seeds should diverge");
        assert!(
            draws(7).iter().any(|&b| b),
            "rate 0.5 must fire in 64 draws"
        );
    }

    #[test]
    fn zero_rate_never_fires() {
        let mut plan = FaultPlan::seeded(3);
        assert!((0..256).all(|_| !plan.should_fail(FaultSite::FrameAlloc)));
        assert!(plan.injected().is_empty());
    }
}
