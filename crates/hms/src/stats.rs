//! Machine-wide counters and snapshots.

use crate::cost::SimDuration;

/// A point-in-time snapshot of every counter a [`Machine`](crate::Machine)
/// maintains. Obtained from [`Machine::stats`](crate::Machine::stats);
/// subtract two snapshots with [`MachineStats::delta`] to scope a
/// measurement to one phase (e.g. the paper's "second iteration").
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MachineStats {
    /// Simulated time, nanoseconds.
    pub time_ns: f64,
    /// Total scalar accesses performed.
    pub accesses: u64,
    /// Scalar reads.
    pub reads: u64,
    /// Scalar writes.
    pub writes: u64,
    /// LLC read hits.
    pub llc_read_hits: u64,
    /// LLC read misses.
    pub llc_read_misses: u64,
    /// LLC write hits.
    pub llc_write_hits: u64,
    /// LLC write misses.
    pub llc_write_misses: u64,
    /// TLB hits.
    pub tlb_hits: u64,
    /// TLB misses.
    pub tlb_misses: u64,
    /// Bytes currently allocated on the fast tier.
    pub fast_bytes_used: u64,
    /// Bytes currently allocated on the slow tier.
    pub slow_bytes_used: u64,
    /// Bytes moved by migrations so far.
    pub bytes_migrated: u64,
}

impl MachineStats {
    /// Component-wise difference `self - earlier` for the monotone counters;
    /// the occupancy gauges (`*_bytes_used`) keep the later value.
    #[must_use]
    pub fn delta(&self, earlier: &MachineStats) -> MachineStats {
        MachineStats {
            time_ns: self.time_ns - earlier.time_ns,
            accesses: self.accesses - earlier.accesses,
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            llc_read_hits: self.llc_read_hits - earlier.llc_read_hits,
            llc_read_misses: self.llc_read_misses - earlier.llc_read_misses,
            llc_write_hits: self.llc_write_hits - earlier.llc_write_hits,
            llc_write_misses: self.llc_write_misses - earlier.llc_write_misses,
            tlb_hits: self.tlb_hits - earlier.tlb_hits,
            tlb_misses: self.tlb_misses - earlier.tlb_misses,
            fast_bytes_used: self.fast_bytes_used,
            slow_bytes_used: self.slow_bytes_used,
            bytes_migrated: self.bytes_migrated - earlier.bytes_migrated,
        }
    }

    /// Simulated time as a [`SimDuration`].
    pub fn time(&self) -> SimDuration {
        SimDuration::from_ns(self.time_ns)
    }

    /// LLC read miss ratio in `[0, 1]`; zero when there were no reads.
    pub fn llc_read_miss_ratio(&self) -> f64 {
        let total = self.llc_read_hits + self.llc_read_misses;
        if total == 0 {
            0.0
        } else {
            self.llc_read_misses as f64 / total as f64
        }
    }

    /// TLB miss ratio in `[0, 1]`; zero when there were no accesses.
    pub fn tlb_miss_ratio(&self) -> f64 {
        let total = self.tlb_hits + self.tlb_misses;
        if total == 0 {
            0.0
        } else {
            self.tlb_misses as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_subtracts_monotone_counters() {
        let earlier = MachineStats {
            time_ns: 10.0,
            accesses: 5,
            tlb_misses: 1,
            fast_bytes_used: 100,
            ..MachineStats::default()
        };
        let later = MachineStats {
            time_ns: 25.0,
            accesses: 9,
            tlb_misses: 4,
            fast_bytes_used: 300,
            ..MachineStats::default()
        };
        let d = later.delta(&earlier);
        assert_eq!(d.accesses, 4);
        assert_eq!(d.tlb_misses, 3);
        assert!((d.time_ns - 15.0).abs() < 1e-12);
        // Gauges keep the later value.
        assert_eq!(d.fast_bytes_used, 300);
    }

    #[test]
    fn ratios_handle_zero_denominators() {
        let s = MachineStats::default();
        assert_eq!(s.llc_read_miss_ratio(), 0.0);
        assert_eq!(s.tlb_miss_ratio(), 0.0);
    }

    #[test]
    fn ratios_compute() {
        let s = MachineStats {
            llc_read_hits: 3,
            llc_read_misses: 1,
            tlb_hits: 9,
            tlb_misses: 1,
            ..MachineStats::default()
        };
        assert!((s.llc_read_miss_ratio() - 0.25).abs() < 1e-12);
        assert!((s.tlb_miss_ratio() - 0.1).abs() < 1e-12);
    }
}
