//! Per-tier physical frame allocator.
//!
//! A bitmap allocator over 4 KiB frames with first-fit search for contiguous
//! (optionally aligned) runs. Contiguous aligned runs are needed for huge
//! mappings and for the staging buffers of the multi-stage migration; single
//! scattered frames are what the `mbind` baseline hands out page by page.

/// Bitmap allocator over the frames of one tier.
#[derive(Debug, Clone)]
pub struct FrameAllocator {
    /// One bit per frame; set = allocated.
    bits: Vec<u64>,
    total: usize,
    free: usize,
    /// Search hint: frame index where the next first-fit scan starts.
    hint: usize,
}

/// A run of contiguous frames `[start, start + count)` on one tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FrameRun {
    /// First frame index of the run.
    pub start: u32,
    /// Number of frames in the run.
    pub count: u32,
}

impl FrameRun {
    /// Creates a run descriptor.
    pub const fn new(start: u32, count: u32) -> Self {
        FrameRun { start, count }
    }

    /// Total bytes covered by the run.
    pub const fn bytes(self) -> usize {
        (self.count as usize) << crate::addr::PAGE_SHIFT
    }
}

impl FrameAllocator {
    /// Creates an allocator managing `total` free frames.
    pub fn new(total: usize) -> Self {
        FrameAllocator {
            bits: vec![0u64; total.div_ceil(64)],
            total,
            free: total,
            hint: 0,
        }
    }

    /// Number of frames managed.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Number of currently free frames.
    pub fn free_frames(&self) -> usize {
        self.free
    }

    /// Number of currently allocated frames.
    pub fn used_frames(&self) -> usize {
        self.total - self.free
    }

    #[inline]
    fn is_set(&self, i: usize) -> bool {
        (self.bits[i / 64] >> (i % 64)) & 1 == 1
    }

    #[inline]
    fn set(&mut self, i: usize) {
        self.bits[i / 64] |= 1 << (i % 64);
    }

    #[inline]
    fn clear(&mut self, i: usize) {
        self.bits[i / 64] &= !(1 << (i % 64));
    }

    /// Allocates one frame anywhere, returning its index.
    pub fn alloc_one(&mut self) -> Option<u32> {
        self.alloc_run_aligned(1, 1).map(|r| r.start)
    }

    /// Allocates `count` contiguous frames with no alignment constraint.
    pub fn alloc_run(&mut self, count: usize) -> Option<FrameRun> {
        self.alloc_run_aligned(count, 1)
    }

    /// Allocates `count` contiguous frames whose start index is a multiple of
    /// `align` frames. Returns `None` if no such run exists.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or `align` is not a power of two.
    pub fn alloc_run_aligned(&mut self, count: usize, align: usize) -> Option<FrameRun> {
        assert!(count > 0, "cannot allocate an empty run");
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        if count > self.free {
            return None;
        }
        // Two scans: from the hint to the end, then from 0 to the hint.
        let found = self
            .scan(self.hint, self.total, count, align)
            .or_else(|| self.scan(0, self.hint.min(self.total), count, align))?;
        for i in found..found + count {
            debug_assert!(!self.is_set(i));
            self.set(i);
        }
        self.free -= count;
        self.hint = found + count;
        if self.hint >= self.total {
            self.hint = 0;
        }
        Some(FrameRun::new(found as u32, count as u32))
    }

    /// First-fit scan over `[from, to)` for `count` free frames aligned to
    /// `align`. Returns the start index of the run.
    fn scan(&self, from: usize, to: usize, count: usize, align: usize) -> Option<usize> {
        let mut start = from.next_multiple_of(align);
        while start + count <= to {
            // Walk forward while frames are free; on the first allocated
            // frame, jump past it (re-aligned).
            let mut i = start;
            let end = start + count;
            while i < end && !self.is_set(i) {
                i += 1;
            }
            if i == end {
                return Some(start);
            }
            start = (i + 1).next_multiple_of(align);
        }
        None
    }

    /// Frees the run `[start, start + count)`.
    ///
    /// # Panics
    ///
    /// Panics if any frame in the run is out of bounds or already free
    /// (double free).
    pub fn free_run(&mut self, run: FrameRun) {
        let start = run.start as usize;
        let count = run.count as usize;
        assert!(start + count <= self.total, "free out of bounds");
        for i in start..start + count {
            assert!(self.is_set(i), "double free of frame {i}");
            self.clear(i);
        }
        self.free += count;
        // Freed space behind the hint becomes findable on the wrap-around
        // scan, so no hint update is required for correctness.
    }

    /// Whether the frame at `index` is currently allocated.
    pub fn is_allocated(&self, index: u32) -> bool {
        let i = index as usize;
        i < self.total && self.is_set(i)
    }

    /// Allocated-frame count recomputed from the bitmap (a popcount), for
    /// auditing the incrementally maintained `free` counter against ground
    /// truth.
    pub fn bitmap_used_frames(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_free_round_trip() {
        let mut a = FrameAllocator::new(128);
        let r = a.alloc_run(10).unwrap();
        assert_eq!(r.count, 10);
        assert_eq!(a.free_frames(), 118);
        a.free_run(r);
        assert_eq!(a.free_frames(), 128);
    }

    #[test]
    fn aligned_allocation_is_aligned() {
        let mut a = FrameAllocator::new(4096);
        let _pad = a.alloc_run(3).unwrap();
        let r = a.alloc_run_aligned(512, 512).unwrap();
        assert_eq!(r.start % 512, 0);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut a = FrameAllocator::new(8);
        assert!(a.alloc_run(8).is_some());
        assert!(a.alloc_one().is_none());
    }

    #[test]
    fn fragmentation_blocks_large_runs() {
        let mut a = FrameAllocator::new(16);
        let runs: Vec<_> = (0..8).map(|_| a.alloc_run(2).unwrap()).collect();
        // Free every other 2-frame run: 8 free frames, max contiguous 2.
        for r in runs.iter().step_by(2) {
            a.free_run(*r);
        }
        assert_eq!(a.free_frames(), 8);
        assert!(a.alloc_run(3).is_none());
        assert!(a.alloc_run(2).is_some());
    }

    #[test]
    fn wraparound_scan_finds_freed_prefix() {
        let mut a = FrameAllocator::new(8);
        let first = a.alloc_run(4).unwrap();
        let _second = a.alloc_run(4).unwrap();
        a.free_run(first);
        // Hint sits at the end; the wrap-around scan must find the prefix.
        let r = a.alloc_run(4).unwrap();
        assert_eq!(r.start, 0);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut a = FrameAllocator::new(8);
        let r = a.alloc_run(2).unwrap();
        a.free_run(r);
        a.free_run(r);
    }

    #[test]
    fn run_bytes() {
        assert_eq!(FrameRun::new(0, 2).bytes(), 8192);
    }
}
