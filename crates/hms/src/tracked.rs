//! Typed views over simulated allocations.
//!
//! [`TrackedVec<T>`] is the array type graph kernels use: every element
//! access goes through the machine's accounted path (TLB, LLC, cost model,
//! PEBS), so access patterns drive both simulated time and the profiler.
//! The vector does not borrow the machine — accessors take any
//! `&mut impl `[`MemPort`] explicitly (the [`Machine`] itself, or one
//! [`CoreHandle`](crate::shard::CoreHandle) of a sharded phase) — so a
//! kernel can interleave accesses to many arrays and the same kernel body
//! runs on the scalar and the sharded engine.

use std::marker::PhantomData;

use crate::addr::{VirtAddr, VirtRange};
use crate::error::Result;
use crate::machine::{Machine, Placement, Scalar};
use crate::plan::{SweepPlan, WindowPlan};
use crate::shard::MemPort;

/// A fixed-length typed array living in simulated memory.
#[derive(Debug)]
pub struct TrackedVec<T> {
    range: VirtRange,
    len: usize,
    name: Option<Box<str>>,
    _marker: PhantomData<T>,
}

impl<T: Scalar> TrackedVec<T> {
    /// Allocates a tracked array of `len` elements with the given placement.
    ///
    /// # Errors
    ///
    /// Propagates allocation failures from [`Machine::alloc`].
    pub fn new(machine: &mut Machine, len: usize, placement: Placement) -> Result<Self> {
        let range = machine.alloc(len.max(1) * T::SIZE, placement)?;
        Ok(TrackedVec {
            range,
            len,
            name: None,
            _marker: PhantomData,
        })
    }

    /// Wraps an existing allocation (used by the ATMem runtime, which
    /// performs registration itself).
    ///
    /// The allocation must be at least `len * T::SIZE` bytes.
    pub fn from_range(range: VirtRange, len: usize) -> Self {
        assert!(
            range.len >= len * T::SIZE,
            "range too small for {len} elements"
        );
        TrackedVec {
            range,
            len,
            name: None,
            _marker: PhantomData,
        }
    }

    /// Attaches a display name, used in panic messages for out-of-bounds
    /// window indices and use-after-free. The ATMem runtime sets this to the
    /// name the array is registered under.
    pub fn set_name(&mut self, name: &str) {
        self.name = Some(name.into());
    }

    /// The display name, if one was set.
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// Name used in diagnostics.
    fn label(&self) -> &str {
        self.name.as_deref().unwrap_or("<unnamed>")
    }

    /// Panics (naming the vec) on any out-of-bounds window index. The window
    /// is validated *before* any simulated state changes.
    fn check_window(&self, what: &str, indices: &[u32]) {
        for &i in indices {
            assert!(
                (i as usize) < self.len,
                "tracked vec `{}`: {what} index {i} out of bounds (len {})",
                self.label(),
                self.len
            );
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the array has zero elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The backing virtual range.
    pub fn range(&self) -> VirtRange {
        self.range
    }

    /// Virtual address of element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len` in debug builds.
    #[inline]
    pub fn addr_of(&self, i: usize) -> VirtAddr {
        debug_assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        self.range.start.add((i * T::SIZE) as u64)
    }

    /// Accounted read of element `i`.
    ///
    /// # Panics
    ///
    /// Panics if the element is unmapped (a tracked array is always fully
    /// mapped while alive, so this indicates use-after-free).
    #[inline]
    pub fn get(&self, machine: &mut impl MemPort, i: usize) -> T {
        machine
            .read::<T>(self.addr_of(i))
            .expect("tracked element unmapped")
    }

    /// Accounted write of element `i`.
    ///
    /// # Panics
    ///
    /// Panics if the element is unmapped.
    #[inline]
    pub fn set(&self, machine: &mut impl MemPort, i: usize, value: T) {
        machine
            .write::<T>(self.addr_of(i), value)
            .expect("tracked element unmapped");
    }

    /// Accounted read-modify-write of element `i`: `x[i] = f(x[i])`,
    /// returning the old value. Simulated bit-identically to
    /// [`get`](TrackedVec::get) followed by [`set`](TrackedVec::set) but
    /// with one address translation on the host — the fast path for scatter
    /// updates like `next[u] += share`.
    ///
    /// # Panics
    ///
    /// Panics if the element is unmapped.
    #[inline]
    pub fn update(&self, machine: &mut impl MemPort, i: usize, f: impl FnOnce(T) -> T) -> T {
        machine
            .read_modify_write::<T>(self.addr_of(i), f)
            .expect("tracked element unmapped")
    }

    /// Accounted bulk read of `out.len()` consecutive elements starting at
    /// element `start`, through [`Machine::access_block`]'s fast path.
    ///
    /// Simulated state (counters, TLB/LLC contents, PEBS stream, clock) ends
    /// bit-identical to the equivalent [`get`](TrackedVec::get) loop; only
    /// host wall-clock time differs.
    ///
    /// # Panics
    ///
    /// Panics if `start + out.len() > self.len()` or if the range is
    /// unmapped (use-after-free).
    pub fn read_slice(&self, machine: &mut impl MemPort, start: usize, out: &mut [T]) {
        assert!(
            start + out.len() <= self.len,
            "slice [{start}, {}) out of bounds (len {})",
            start + out.len(),
            self.len
        );
        if out.is_empty() {
            return;
        }
        let range = VirtRange::new(self.addr_of(start), out.len() * T::SIZE);
        let segments = machine
            .access_block(range, T::SIZE, false)
            .expect("tracked range unmapped");
        let mut rest = &mut out[..];
        for seg in segments {
            let (head, tail) = rest.split_at_mut(seg.len / T::SIZE);
            let bytes = machine.storage_slice(seg.tier, seg.offset, seg.len);
            for (slot, chunk) in head.iter_mut().zip(bytes.chunks_exact(T::SIZE)) {
                *slot = T::from_le_slice(chunk);
            }
            rest = tail;
        }
        debug_assert!(rest.is_empty());
    }

    /// Accounted bulk write of `values` to consecutive elements starting at
    /// element `start`, through [`Machine::access_block`]'s fast path.
    ///
    /// Simulated state ends bit-identical to the equivalent
    /// [`set`](TrackedVec::set) loop; only host wall-clock time differs.
    ///
    /// # Panics
    ///
    /// Panics if `start + values.len() > self.len()` or if the range is
    /// unmapped.
    pub fn write_slice(&self, machine: &mut impl MemPort, start: usize, values: &[T]) {
        assert!(
            start + values.len() <= self.len,
            "slice [{start}, {}) out of bounds (len {})",
            start + values.len(),
            self.len
        );
        if values.is_empty() {
            return;
        }
        let range = VirtRange::new(self.addr_of(start), values.len() * T::SIZE);
        let segments = machine
            .access_block(range, T::SIZE, true)
            .expect("tracked range unmapped");
        let mut rest = values;
        for seg in segments {
            let (head, tail) = rest.split_at(seg.len / T::SIZE);
            let bytes = machine.storage_slice_mut(seg.tier, seg.offset, seg.len);
            for (&value, chunk) in head.iter().zip(bytes.chunks_exact_mut(T::SIZE)) {
                value.write_le_slice(chunk);
            }
            rest = tail;
        }
        debug_assert!(rest.is_empty());
    }

    /// Accounted bulk scan: calls `f(index, value)` for `len` consecutive
    /// elements starting at element `start`, through
    /// [`Machine::access_block`]'s fast path.
    ///
    /// Simulated state ends bit-identical to the equivalent
    /// [`get`](TrackedVec::get) loop; only host wall-clock time differs.
    /// Note that `f` observes values as of the start of the scan — a kernel
    /// whose loop body writes elements it will scan later (e.g. in-place
    /// label propagation) must use the per-element path instead.
    ///
    /// # Panics
    ///
    /// Panics if `start + len > self.len()` or if the range is unmapped.
    pub fn scan(
        &self,
        machine: &mut impl MemPort,
        start: usize,
        len: usize,
        mut f: impl FnMut(usize, T),
    ) {
        assert!(
            start + len <= self.len,
            "scan [{start}, {}) out of bounds (len {})",
            start + len,
            self.len
        );
        if len == 0 {
            return;
        }
        let range = VirtRange::new(self.addr_of(start), len * T::SIZE);
        let segments = machine
            .access_block(range, T::SIZE, false)
            .expect("tracked range unmapped");
        let mut i = start;
        for seg in segments {
            for bytes in machine
                .storage_slice(seg.tier, seg.offset, seg.len)
                .chunks_exact(T::SIZE)
            {
                f(i, T::from_le_slice(bytes));
                i += 1;
            }
        }
        debug_assert_eq!(i, start + len);
    }

    /// Accounted indexed gather: reads element `indices[k]` into `out[k]`
    /// for every `k`, in order, through [`Machine::read_gather`].
    ///
    /// Simulated state ends bit-identical to the equivalent
    /// [`get`](TrackedVec::get) loop; only per-call host overhead is hoisted
    /// out of the loop. This is the companion to the slice fast path for the
    /// *irregular* side of a kernel (e.g. SpMV's `x[col]` stream).
    ///
    /// # Panics
    ///
    /// Panics if `indices` and `out` differ in length, an index is out of
    /// bounds (the message names the vec, and the window is rejected before
    /// any simulated state changes), or the array is unmapped
    /// (use-after-free).
    pub fn gather(&self, machine: &mut impl MemPort, indices: &[u32], out: &mut [T]) {
        self.check_window("gather", indices);
        machine
            .read_gather::<T>(self.range.start, self.len, indices, out)
            .unwrap_or_else(|e| panic!("tracked vec `{}` unmapped: {e}", self.label()));
    }

    /// Accounted indexed scatter: writes `values[k]` to element `indices[k]`
    /// for every `k`, in order, through [`Machine::write_scatter`]'s batched
    /// window engine. Duplicate indices are written in order (the last value
    /// wins), exactly like the per-element loop.
    ///
    /// Simulated state ends bit-identical to the equivalent
    /// [`set`](TrackedVec::set) loop; only host wall-clock time differs.
    ///
    /// # Panics
    ///
    /// Panics if `indices` and `values` differ in length, an index is out of
    /// bounds (the message names the vec, and the window is rejected before
    /// any simulated state changes), or the array is unmapped
    /// (use-after-free).
    pub fn scatter(&self, machine: &mut impl MemPort, indices: &[u32], values: &[T]) {
        self.check_window("scatter", indices);
        machine
            .write_scatter::<T>(self.range.start, self.len, indices, values)
            .unwrap_or_else(|e| panic!("tracked vec `{}` unmapped: {e}", self.label()));
    }

    /// Accounted indexed read-modify-write window: for every `k` in order,
    /// replaces element `indices[k]` with `f(k, old)` where `old` is the
    /// element's current value, through [`Machine::gather_update`]'s batched
    /// window engine. Duplicate indices observe earlier updates from the
    /// same window, exactly like an [`update`](TrackedVec::update) loop.
    ///
    /// Simulated state ends bit-identical to the equivalent
    /// [`update`](TrackedVec::update) loop (itself bit-identical to a
    /// [`get`](TrackedVec::get) + [`set`](TrackedVec::set) pair per
    /// element); only host wall-clock time differs. This is the fast path
    /// for scatter-update phases like PageRank's `next[u] += share`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds (the message names the vec, and
    /// the window is rejected before any simulated state changes) or the
    /// array is unmapped (use-after-free).
    pub fn gather_update(
        &self,
        machine: &mut impl MemPort,
        indices: &[u32],
        f: impl FnMut(usize, T) -> T,
    ) {
        self.check_window("gather_update", indices);
        machine
            .gather_update::<T>(self.range.start, self.len, indices, f)
            .unwrap_or_else(|e| panic!("tracked vec `{}` unmapped: {e}", self.label()));
    }

    /// Ensures `slot` holds a [`WindowPlan`] valid for `(self, indices)`
    /// under the current mapping generation, recompiling if the cached plan
    /// is stale or describes a different window. Returns `false` — meaning
    /// the caller must take the per-access window path — when plan replay is
    /// unavailable (PEBS sampling, tracing, or an armed fault plan) or
    /// compilation fails (the window engine then reproduces the exact
    /// partial-charge error semantics).
    fn ensure_window_plan(
        &self,
        machine: &mut impl MemPort,
        slot: &mut Option<WindowPlan>,
        indices: &[u32],
    ) -> bool {
        if !machine.plan_ready() {
            return false;
        }
        let generation = machine.mapping_generation();
        if let Some(plan) = slot.as_ref() {
            if plan.matches(
                generation,
                self.range.start,
                T::SIZE,
                self.len as u64,
                indices,
            ) {
                return true;
            }
        }
        self.check_window("plan", indices);
        match machine.compile_window::<T>(self.range.start, self.len as u64, indices) {
            Ok(plan) => {
                *slot = Some(plan);
                true
            }
            Err(_) => {
                *slot = None;
                false
            }
        }
    }

    /// [`gather`](TrackedVec::gather) through a cached compiled plan.
    ///
    /// `slot` persists across calls (e.g. one slot per kernel phase):
    /// while the mapping generation and the index window are unchanged the
    /// cached [`WindowPlan`] is replayed directly; otherwise it is
    /// recompiled first. Falls back to the window engine whenever plan
    /// replay is unavailable. Simulated state is bit-identical to
    /// [`gather`](TrackedVec::gather) either way.
    ///
    /// # Panics
    ///
    /// As [`gather`](TrackedVec::gather).
    pub fn gather_planned(
        &self,
        machine: &mut impl MemPort,
        slot: &mut Option<WindowPlan>,
        indices: &[u32],
        out: &mut [T],
    ) {
        if !self.ensure_window_plan(machine, slot, indices) {
            return self.gather(machine, indices, out);
        }
        machine.run_plan_gather::<T>(slot.as_ref().expect("plan just ensured"), out);
    }

    /// [`scatter`](TrackedVec::scatter) through a cached compiled plan
    /// (see [`gather_planned`](TrackedVec::gather_planned) for the caching
    /// and fallback contract).
    ///
    /// # Panics
    ///
    /// As [`scatter`](TrackedVec::scatter).
    pub fn scatter_planned(
        &self,
        machine: &mut impl MemPort,
        slot: &mut Option<WindowPlan>,
        indices: &[u32],
        values: &[T],
    ) {
        if !self.ensure_window_plan(machine, slot, indices) {
            return self.scatter(machine, indices, values);
        }
        machine.run_plan_scatter::<T>(slot.as_ref().expect("plan just ensured"), values);
    }

    /// [`gather_update`](TrackedVec::gather_update) through a cached
    /// compiled plan (see [`gather_planned`](TrackedVec::gather_planned)
    /// for the caching and fallback contract).
    ///
    /// # Panics
    ///
    /// As [`gather_update`](TrackedVec::gather_update).
    pub fn gather_update_planned(
        &self,
        machine: &mut impl MemPort,
        slot: &mut Option<WindowPlan>,
        indices: &[u32],
        f: impl FnMut(usize, T) -> T,
    ) {
        if !self.ensure_window_plan(machine, slot, indices) {
            return self.gather_update(machine, indices, f);
        }
        machine.run_plan_update::<T>(slot.as_ref().expect("plan just ensured"), f);
    }

    /// Ensures `slot` holds a [`SweepPlan`] valid for `len` elements
    /// starting at `start` under the current mapping generation (the sweep
    /// analogue of [`ensure_window_plan`](TrackedVec::ensure_window_plan)).
    fn ensure_sweep_plan(
        &self,
        machine: &mut impl MemPort,
        slot: &mut Option<SweepPlan>,
        start: usize,
        len: usize,
    ) -> bool {
        if !machine.plan_ready() {
            return false;
        }
        assert!(
            start + len <= self.len,
            "slice [{start}, {}) out of bounds (len {})",
            start + len,
            self.len
        );
        let range = VirtRange::new(self.addr_of(start), len * T::SIZE);
        let generation = machine.mapping_generation();
        if let Some(plan) = slot.as_ref() {
            if plan.matches(generation, range, T::SIZE) {
                return true;
            }
        }
        match machine.compile_sweep(range, T::SIZE) {
            Ok(plan) => {
                *slot = Some(plan);
                true
            }
            Err(_) => {
                *slot = None;
                false
            }
        }
    }

    /// [`read_slice`](TrackedVec::read_slice) through a cached compiled
    /// sweep plan (see [`gather_planned`](TrackedVec::gather_planned) for
    /// the caching and fallback contract).
    ///
    /// # Panics
    ///
    /// As [`read_slice`](TrackedVec::read_slice).
    pub fn read_slice_planned(
        &self,
        machine: &mut impl MemPort,
        slot: &mut Option<SweepPlan>,
        start: usize,
        out: &mut [T],
    ) {
        if out.is_empty() {
            return;
        }
        if !self.ensure_sweep_plan(machine, slot, start, out.len()) {
            return self.read_slice(machine, start, out);
        }
        let plan = slot.as_ref().expect("plan just ensured");
        machine.run_plan_sweep(plan, false);
        let mut rest = &mut out[..];
        for seg in plan.segments() {
            let (head, tail) = rest.split_at_mut(seg.len / T::SIZE);
            let bytes = machine.storage_slice(seg.tier, seg.offset, seg.len);
            for (slot, chunk) in head.iter_mut().zip(bytes.chunks_exact(T::SIZE)) {
                *slot = T::from_le_slice(chunk);
            }
            rest = tail;
        }
        debug_assert!(rest.is_empty());
    }

    /// [`write_slice`](TrackedVec::write_slice) through a cached compiled
    /// sweep plan (see [`gather_planned`](TrackedVec::gather_planned) for
    /// the caching and fallback contract).
    ///
    /// # Panics
    ///
    /// As [`write_slice`](TrackedVec::write_slice).
    pub fn write_slice_planned(
        &self,
        machine: &mut impl MemPort,
        slot: &mut Option<SweepPlan>,
        start: usize,
        values: &[T],
    ) {
        if values.is_empty() {
            return;
        }
        if !self.ensure_sweep_plan(machine, slot, start, values.len()) {
            return self.write_slice(machine, start, values);
        }
        let plan = slot.as_ref().expect("plan just ensured");
        machine.run_plan_sweep(plan, true);
        let mut rest = values;
        for seg in plan.segments() {
            let (head, tail) = rest.split_at(seg.len / T::SIZE);
            let bytes = machine.storage_slice_mut(seg.tier, seg.offset, seg.len);
            for (&value, chunk) in head.iter().zip(bytes.chunks_exact_mut(T::SIZE)) {
                value.write_le_slice(chunk);
            }
            rest = tail;
        }
        debug_assert!(rest.is_empty());
    }

    /// **Untracked** read of element `i`: no simulated cost, no TLB/LLC
    /// state change, no PEBS sample — invisible to the profiler and the
    /// clock. For setup, verification and result extraction outside the
    /// measured region; the accounted counterpart is
    /// [`get`](TrackedVec::get).
    #[doc(alias = "get")]
    pub fn peek(&self, machine: &mut impl MemPort, i: usize) -> T {
        machine
            .peek::<T>(self.addr_of(i))
            .expect("tracked element unmapped")
    }

    /// **Untracked** write of element `i`: no simulated cost, no TLB/LLC
    /// state change, no PEBS sample — invisible to the profiler and the
    /// clock. For bulk initialisation outside the timed region; the
    /// accounted counterpart is [`set`](TrackedVec::set).
    #[doc(alias = "set")]
    pub fn poke(&self, machine: &mut impl MemPort, i: usize, value: T) {
        machine
            .poke::<T>(self.addr_of(i), value)
            .expect("tracked element unmapped");
    }

    /// Bulk unaccounted initialisation from a slice.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.len()`.
    pub fn fill_from(&self, machine: &mut impl MemPort, values: &[T]) {
        assert_eq!(values.len(), self.len, "length mismatch in fill_from");
        for (i, v) in values.iter().enumerate() {
            self.poke(machine, i, *v);
        }
    }

    /// Bulk unaccounted fill with one value.
    pub fn fill(&self, machine: &mut impl MemPort, value: T) {
        for i in 0..self.len {
            self.poke(machine, i, value);
        }
    }

    /// Copies the array out of simulated memory (unaccounted).
    pub fn to_vec(&self, machine: &mut impl MemPort) -> Vec<T> {
        (0..self.len).map(|i| self.peek(machine, i)).collect()
    }

    /// Frees the backing allocation. The vector must not be used afterwards.
    ///
    /// # Errors
    ///
    /// Propagates [`Machine::free`] errors (e.g. double free).
    pub fn free(self, machine: &mut Machine) -> Result<()> {
        machine.free(self.range)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;
    use crate::tier::TierId;

    fn machine() -> Machine {
        Machine::new(Platform::testing())
    }

    #[test]
    fn get_set_round_trip() {
        let mut m = machine();
        let v = TrackedVec::<u64>::new(&mut m, 100, Placement::Slow).unwrap();
        for i in 0..100 {
            v.set(&mut m, i, (i * i) as u64);
        }
        for i in 0..100 {
            assert_eq!(v.get(&mut m, i), (i * i) as u64);
        }
    }

    #[test]
    fn fill_from_and_to_vec() {
        let mut m = machine();
        let v = TrackedVec::<f64>::new(&mut m, 8, Placement::Fast).unwrap();
        let data = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        v.fill_from(&mut m, &data);
        assert_eq!(v.to_vec(&mut m), data);
    }

    #[test]
    fn accounted_access_advances_clock_unaccounted_does_not() {
        let mut m = machine();
        let v = TrackedVec::<u32>::new(&mut m, 16, Placement::Slow).unwrap();
        let t0 = m.now();
        v.poke(&mut m, 0, 9);
        let _ = v.peek(&mut m, 0);
        assert_eq!(m.now(), t0, "peek/poke must be free");
        let _ = v.get(&mut m, 0);
        assert!(m.now() > t0, "get must cost simulated time");
    }

    /// The tentpole guarantee: the bulk slice path leaves every piece of
    /// simulated state — counters, clock, PEBS sample stream, trace stream —
    /// bit-identical to the per-element loop it replaces.
    #[test]
    fn bulk_access_is_bit_identical_to_the_scalar_loop() {
        // Fast tier too small for the whole array: Preferred(FAST) spills
        // to SLOW mid-range, so the bulk path crosses mapping (and tier)
        // chunk boundaries.
        let platform = || Platform::testing().with_capacities(64 * 1024, 8 * 1024 * 1024);
        let mut bulk = Machine::new(platform());
        let mut scalar = Machine::new(platform());
        for m in [&mut bulk, &mut scalar] {
            m.pebs_enable(7, 3);
            m.trace_enable();
        }
        let n = 40_000; // 160 000 bytes of u32: spills past the fast tier.
        let vb = TrackedVec::<u32>::new(&mut bulk, n, Placement::Preferred(TierId::FAST)).unwrap();
        let vs =
            TrackedVec::<u32>::new(&mut scalar, n, Placement::Preferred(TierId::FAST)).unwrap();

        let values: Vec<u32> = (0..n as u32).map(|i| i.wrapping_mul(2654435761)).collect();

        // Full write.
        vb.write_slice(&mut bulk, 0, &values);
        for (i, &x) in values.iter().enumerate() {
            vs.set(&mut scalar, i, x);
        }
        // Full read, now with warm TLB/LLC state.
        let mut out = vec![0u32; n];
        vb.read_slice(&mut bulk, 0, &mut out);
        for (i, &x) in values.iter().enumerate() {
            assert_eq!(vs.get(&mut scalar, i), x);
        }
        assert_eq!(out, values, "bulk read returned wrong data");

        // Interior, cache-line-unaligned scan (element 3 = byte 12).
        let (start, len) = (3, 12_345);
        let mut sum_b = 0u64;
        vb.scan(&mut bulk, start, len, |_, x| sum_b += u64::from(x));
        let mut sum_s = 0u64;
        for i in start..start + len {
            sum_s += u64::from(vs.get(&mut scalar, i));
        }
        assert_eq!(sum_b, sum_s);

        // Interior overwrite at an odd offset.
        let patch: Vec<u32> = (0..4_321u32).collect();
        vb.write_slice(&mut bulk, 777, &patch);
        for (k, &x) in patch.iter().enumerate() {
            vs.set(&mut scalar, 777 + k, x);
        }

        // Random scatter via read-modify-write vs get-then-set.
        let mut state = 0x9e3779b97f4a7c15u64;
        for _ in 0..5_000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let i = (state >> 33) as usize % n;
            let old_b = vb.update(&mut bulk, i, |x| x.wrapping_add(7));
            let old_s = vs.get(&mut scalar, i);
            vs.set(&mut scalar, i, old_s.wrapping_add(7));
            assert_eq!(old_b, old_s);
        }

        // Indexed gather vs the per-element read loop.
        let indices: Vec<u32> = (0..8_000)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as u32 % n as u32
            })
            .collect();
        let mut gathered = vec![0u32; indices.len()];
        vb.gather(&mut bulk, &indices, &mut gathered);
        for (&i, &got) in indices.iter().zip(&gathered) {
            assert_eq!(vs.get(&mut scalar, i as usize), got, "gather at {i}");
        }

        assert_eq!(bulk.stats(), scalar.stats(), "machine counters diverge");
        assert_eq!(
            bulk.pebs_drain(),
            scalar.pebs_drain(),
            "PEBS streams diverge"
        );
        assert_eq!(
            bulk.trace_drain(),
            scalar.trace_drain(),
            "trace streams diverge"
        );
    }

    /// Builds an index window that exercises every path of the window
    /// engine: sequential same-line runs, exact duplicates (RMW on the same
    /// element twice in a row), strided jumps that stay in one translation
    /// unit, and random jumps across pages and the tier boundary.
    fn mixed_window(n: usize, len: usize, state: &mut u64) -> Vec<u32> {
        let mut step = || {
            *state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (*state >> 33) as usize % n
        };
        let mut w = Vec::with_capacity(len);
        while w.len() < len {
            let i = step();
            match w.len() % 4 {
                // Consecutive elements: same cache line for a few steps.
                0 => {
                    for k in 0..4.min(n - i) {
                        w.push((i + k) as u32);
                    }
                }
                // Exact duplicates back to back.
                1 => {
                    w.push(i as u32);
                    w.push(i as u32);
                }
                // Line-strided walk within a page.
                2 => {
                    for k in (0..64).step_by(16) {
                        w.push(((i + k) % n) as u32);
                    }
                }
                // Pure random jump.
                _ => w.push(i as u32),
            }
        }
        w.truncate(len);
        w
    }

    /// The PR 2 tentpole guarantee: the batched window engine behind
    /// `scatter` and `gather_update` leaves every piece of simulated state
    /// bit-identical to the per-element loop, across mapping-chunk, tier,
    /// page and huge-mapping boundaries.
    #[test]
    fn window_engine_is_bit_identical_to_the_scalar_loop() {
        // Preferred(FAST) spills to SLOW mid-array: windows cross mapping
        // chunks, the tier boundary, base pages and coalescing groups.
        let platform = || Platform::testing().with_capacities(64 * 1024, 8 * 1024 * 1024);
        let mut bulk = Machine::new(platform());
        let mut scalar = Machine::new(platform());
        for m in [&mut bulk, &mut scalar] {
            m.pebs_enable(5, 2);
            m.trace_enable();
        }
        let n = 40_000;
        let vb = TrackedVec::<u32>::new(&mut bulk, n, Placement::Preferred(TierId::FAST)).unwrap();
        let vs =
            TrackedVec::<u32>::new(&mut scalar, n, Placement::Preferred(TierId::FAST)).unwrap();
        let init: Vec<u32> = (0..n as u32).collect();
        vb.fill_from(&mut bulk, &init);
        vs.fill_from(&mut scalar, &init);

        let mut state = 0xd1b54a32d192ed03u64;
        // Scatter vs the per-element set loop.
        let widx = mixed_window(n, 6_000, &mut state);
        let wvals: Vec<u32> = (0..widx.len() as u32).map(|k| k.wrapping_mul(97)).collect();
        vb.scatter(&mut bulk, &widx, &wvals);
        for (&i, &x) in widx.iter().zip(&wvals) {
            vs.set(&mut scalar, i as usize, x);
        }

        // Gather-update vs the per-element update loop (which PR 1 proved
        // bit-identical to get + set). Duplicate indices must observe the
        // in-window updates before them.
        let uidx = mixed_window(n, 6_000, &mut state);
        let mut olds_b = Vec::with_capacity(uidx.len());
        vb.gather_update(&mut bulk, &uidx, |k, x| {
            olds_b.push(x);
            x.wrapping_add(k as u32)
        });
        for (k, &i) in uidx.iter().enumerate() {
            let old = vs.update(&mut scalar, i as usize, |x| x.wrapping_add(k as u32));
            assert_eq!(olds_b[k], old, "RMW old value diverges at window slot {k}");
        }

        // Gather sees the combined result through the same engine.
        let gidx = mixed_window(n, 6_000, &mut state);
        let mut got_b = vec![0u32; gidx.len()];
        vb.gather(&mut bulk, &gidx, &mut got_b);
        for (&i, &got) in gidx.iter().zip(&got_b) {
            assert_eq!(vs.get(&mut scalar, i as usize), got, "gather at {i}");
        }

        assert_eq!(bulk.stats(), scalar.stats(), "machine counters diverge");
        assert_eq!(bulk.now(), scalar.now(), "simulated clocks diverge");
        assert_eq!(
            bulk.pebs_drain(),
            scalar.pebs_drain(),
            "PEBS streams diverge"
        );
        assert_eq!(
            bulk.trace_drain(),
            scalar.trace_drain(),
            "trace streams diverge"
        );
        assert_eq!(
            vb.to_vec(&mut bulk),
            vs.to_vec(&mut scalar),
            "data diverges"
        );
    }

    /// Same guarantee across a huge-mapping / base-page boundary: a large
    /// slow-tier array gets 2 MiB mappings for its aligned middle and base
    /// pages for the tail, and windows jump across the seam.
    #[test]
    fn window_engine_crosses_huge_mapping_boundaries() {
        let platform = || Platform::testing().with_capacities(64 * 1024, 16 * 1024 * 1024);
        let mut bulk = Machine::new(platform());
        let mut scalar = Machine::new(platform());
        for m in [&mut bulk, &mut scalar] {
            m.pebs_enable(11, 4);
            m.trace_enable();
        }
        // 5 MiB of u64: two full 2 MiB huge units plus a base-page tail.
        let n = (5 * 1024 * 1024) / 8;
        let vb = TrackedVec::<u64>::new(&mut bulk, n, Placement::Slow).unwrap();
        let vs = TrackedVec::<u64>::new(&mut scalar, n, Placement::Slow).unwrap();

        let mut state = 0x2545f4914f6cdd1du64;
        let widx = mixed_window(n, 4_000, &mut state);
        let wvals: Vec<u64> = (0..widx.len() as u64).collect();
        vb.scatter(&mut bulk, &widx, &wvals);
        for (&i, &x) in widx.iter().zip(&wvals) {
            vs.set(&mut scalar, i as usize, x);
        }

        let uidx = mixed_window(n, 4_000, &mut state);
        vb.gather_update(&mut bulk, &uidx, |_, x| x ^ 0x5a5a);
        for &i in &uidx {
            vs.update(&mut scalar, i as usize, |x| x ^ 0x5a5a);
        }

        assert_eq!(bulk.stats(), scalar.stats(), "machine counters diverge");
        assert_eq!(bulk.now(), scalar.now(), "simulated clocks diverge");
        assert_eq!(bulk.pebs_drain(), scalar.pebs_drain());
        assert_eq!(bulk.trace_drain(), scalar.trace_drain());
    }

    /// The error path charges exactly what the scalar loop charges: elements
    /// before the unmapped one in full, nothing for the failing element
    /// (this is the ROADMAP-noted `read_gather` drift fix).
    #[test]
    fn window_error_path_matches_the_scalar_loop() {
        let mut bulk = machine();
        let mut scalar = machine();
        for m in [&mut bulk, &mut scalar] {
            m.pebs_enable(3, 1);
            m.trace_enable();
        }
        // Only `live` elements are mapped; the machine-level call is told
        // the array is `n` elements long, so indices past the mapping hit
        // unmapped memory mid-window.
        let n = 4096;
        let live = 1024;
        let vb = TrackedVec::<u32>::new(&mut bulk, live, Placement::Slow).unwrap();
        let vs = TrackedVec::<u32>::new(&mut scalar, live, Placement::Slow).unwrap();
        let base_b = vb.range().start;
        let base_s = vs.range().start;

        // A window that walks some live lines then steps off the mapping.
        let indices: Vec<u32> = [0u32, 1, 2, 64, 64, 700, 701, 2048, 3].to_vec();
        let mut out = vec![0u32; indices.len()];
        let err_b = bulk.read_gather::<u32>(base_b, n, &indices, &mut out);
        assert!(err_b.is_err(), "gather should hit the unmapped tail");
        let mut scalar_failed = false;
        for &i in &indices {
            match scalar.read::<u32>(base_s.add((i as usize * 4) as u64)) {
                Ok(_) => {}
                Err(_) => {
                    scalar_failed = true;
                    break;
                }
            }
        }
        assert!(scalar_failed);
        assert_eq!(bulk.stats(), scalar.stats(), "error-path totals diverge");
        assert_eq!(bulk.now(), scalar.now(), "error-path clocks diverge");
        assert_eq!(bulk.pebs_drain(), scalar.pebs_drain());
        assert_eq!(bulk.trace_drain(), scalar.trace_drain());
    }

    #[test]
    fn window_panics_name_the_vec() {
        let mut m = machine();
        let mut v = TrackedVec::<u32>::new(&mut m, 8, Placement::Slow).unwrap();
        v.set_name("pr.next");
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            v.gather(&mut m, &[9], &mut [0u32]);
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            msg.contains("pr.next") && msg.contains("out of bounds"),
            "panic message should name the vec: {msg}"
        );
    }

    #[test]
    fn placement_is_respected() {
        let mut m = machine();
        let v = TrackedVec::<u64>::new(&mut m, 1024, Placement::Fast).unwrap();
        assert_eq!(m.resident_bytes(v.range(), TierId::FAST), v.range().len);
    }

    #[test]
    fn free_releases() {
        let mut m = machine();
        let used0 = m.stats().slow_bytes_used;
        let v = TrackedVec::<u64>::new(&mut m, 4096, Placement::Slow).unwrap();
        assert!(m.stats().slow_bytes_used > used0);
        v.free(&mut m).unwrap();
        assert_eq!(m.stats().slow_bytes_used, used0);
    }

    #[test]
    fn zero_len_vec_is_usable() {
        let mut m = machine();
        let v = TrackedVec::<u32>::new(&mut m, 0, Placement::Slow).unwrap();
        assert!(v.is_empty());
        assert_eq!(v.to_vec(&mut m), Vec::<u32>::new());
    }
}
