//! Typed views over simulated allocations.
//!
//! [`TrackedVec<T>`] is the array type graph kernels use: every element
//! access goes through the machine's accounted path (TLB, LLC, cost model,
//! PEBS), so access patterns drive both simulated time and the profiler.
//! The vector does not borrow the machine — methods take `&mut Machine`
//! explicitly — so a kernel can interleave accesses to many arrays.

use std::marker::PhantomData;

use crate::addr::{VirtAddr, VirtRange};
use crate::error::Result;
use crate::machine::{Machine, Placement, Scalar};

/// A fixed-length typed array living in simulated memory.
#[derive(Debug)]
pub struct TrackedVec<T> {
    range: VirtRange,
    len: usize,
    _marker: PhantomData<T>,
}

impl<T: Scalar> TrackedVec<T> {
    /// Allocates a tracked array of `len` elements with the given placement.
    ///
    /// # Errors
    ///
    /// Propagates allocation failures from [`Machine::alloc`].
    pub fn new(machine: &mut Machine, len: usize, placement: Placement) -> Result<Self> {
        let range = machine.alloc(len.max(1) * T::SIZE, placement)?;
        Ok(TrackedVec {
            range,
            len,
            _marker: PhantomData,
        })
    }

    /// Wraps an existing allocation (used by the ATMem runtime, which
    /// performs registration itself).
    ///
    /// The allocation must be at least `len * T::SIZE` bytes.
    pub fn from_range(range: VirtRange, len: usize) -> Self {
        assert!(
            range.len >= len * T::SIZE,
            "range too small for {len} elements"
        );
        TrackedVec {
            range,
            len,
            _marker: PhantomData,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the array has zero elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The backing virtual range.
    pub fn range(&self) -> VirtRange {
        self.range
    }

    /// Virtual address of element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len` in debug builds.
    #[inline]
    pub fn addr_of(&self, i: usize) -> VirtAddr {
        debug_assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        self.range.start.add((i * T::SIZE) as u64)
    }

    /// Accounted read of element `i`.
    ///
    /// # Panics
    ///
    /// Panics if the element is unmapped (a tracked array is always fully
    /// mapped while alive, so this indicates use-after-free).
    #[inline]
    pub fn get(&self, machine: &mut Machine, i: usize) -> T {
        machine
            .read::<T>(self.addr_of(i))
            .expect("tracked element unmapped")
    }

    /// Accounted write of element `i`.
    ///
    /// # Panics
    ///
    /// Panics if the element is unmapped.
    #[inline]
    pub fn set(&self, machine: &mut Machine, i: usize, value: T) {
        machine
            .write::<T>(self.addr_of(i), value)
            .expect("tracked element unmapped");
    }

    /// Unaccounted read (for verification and result extraction).
    pub fn peek(&self, machine: &mut Machine, i: usize) -> T {
        machine
            .peek::<T>(self.addr_of(i))
            .expect("tracked element unmapped")
    }

    /// Unaccounted write (for bulk initialisation outside the timed region).
    pub fn poke(&self, machine: &mut Machine, i: usize, value: T) {
        machine
            .poke::<T>(self.addr_of(i), value)
            .expect("tracked element unmapped");
    }

    /// Bulk unaccounted initialisation from a slice.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.len()`.
    pub fn fill_from(&self, machine: &mut Machine, values: &[T]) {
        assert_eq!(values.len(), self.len, "length mismatch in fill_from");
        for (i, v) in values.iter().enumerate() {
            self.poke(machine, i, *v);
        }
    }

    /// Bulk unaccounted fill with one value.
    pub fn fill(&self, machine: &mut Machine, value: T) {
        for i in 0..self.len {
            self.poke(machine, i, value);
        }
    }

    /// Copies the array out of simulated memory (unaccounted).
    pub fn to_vec(&self, machine: &mut Machine) -> Vec<T> {
        (0..self.len).map(|i| self.peek(machine, i)).collect()
    }

    /// Frees the backing allocation. The vector must not be used afterwards.
    ///
    /// # Errors
    ///
    /// Propagates [`Machine::free`] errors (e.g. double free).
    pub fn free(self, machine: &mut Machine) -> Result<()> {
        machine.free(self.range)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;
    use crate::tier::TierId;

    fn machine() -> Machine {
        Machine::new(Platform::testing())
    }

    #[test]
    fn get_set_round_trip() {
        let mut m = machine();
        let v = TrackedVec::<u64>::new(&mut m, 100, Placement::Slow).unwrap();
        for i in 0..100 {
            v.set(&mut m, i, (i * i) as u64);
        }
        for i in 0..100 {
            assert_eq!(v.get(&mut m, i), (i * i) as u64);
        }
    }

    #[test]
    fn fill_from_and_to_vec() {
        let mut m = machine();
        let v = TrackedVec::<f64>::new(&mut m, 8, Placement::Fast).unwrap();
        let data = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        v.fill_from(&mut m, &data);
        assert_eq!(v.to_vec(&mut m), data);
    }

    #[test]
    fn accounted_access_advances_clock_unaccounted_does_not() {
        let mut m = machine();
        let v = TrackedVec::<u32>::new(&mut m, 16, Placement::Slow).unwrap();
        let t0 = m.now();
        v.poke(&mut m, 0, 9);
        let _ = v.peek(&mut m, 0);
        assert_eq!(m.now(), t0, "peek/poke must be free");
        let _ = v.get(&mut m, 0);
        assert!(m.now() > t0, "get must cost simulated time");
    }

    #[test]
    fn placement_is_respected() {
        let mut m = machine();
        let v = TrackedVec::<u64>::new(&mut m, 1024, Placement::Fast).unwrap();
        assert_eq!(m.resident_bytes(v.range(), TierId::FAST), v.range().len);
    }

    #[test]
    fn free_releases() {
        let mut m = machine();
        let used0 = m.stats().slow_bytes_used;
        let v = TrackedVec::<u64>::new(&mut m, 4096, Placement::Slow).unwrap();
        assert!(m.stats().slow_bytes_used > used0);
        v.free(&mut m).unwrap();
        assert_eq!(m.stats().slow_bytes_used, used0);
    }

    #[test]
    fn zero_len_vec_is_usable() {
        let mut m = machine();
        let v = TrackedVec::<u32>::new(&mut m, 0, Placement::Slow).unwrap();
        assert!(v.is_empty());
        assert_eq!(v.to_vec(&mut m), Vec::<u32>::new());
    }
}
