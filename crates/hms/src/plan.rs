//! Compiled access plans: the "compile" tier above the window engine.
//!
//! The window engine ([`CoreHandle::access_window`], `access_block`) already
//! batches guaranteed hits, but it still pays a per-element price on every
//! execution: mapping memo checks, TLB key derivation, address translation,
//! branchy accounting. Graph kernels replay the *same* iteration space —
//! CSR row sweeps, dense elementwise passes, frontier expansions — many
//! times over an unchanged placement, so almost all of that work is
//! recomputation of a pure function of `(indices, mapping table)`.
//!
//! This module splits the work in two:
//!
//! * **Compile** ([`CoreHandle::compile_window`] /
//!   [`CoreHandle::compile_sweep`]) lowers an iteration space against the
//!   current mapping table into per-tier **run descriptors**: maximal
//!   consecutive same-line element runs ([`WindowPlan`]) or per-TLB-unit
//!   line sequences ([`SweepPlan`]), each carrying the precomputed TLB key,
//!   line-aligned physical address, backing-tier storage offset and element
//!   counts. Compilation touches *no* simulated state — it charges nothing
//!   and can fail (unmapped address) without side effects.
//! * **Replay** ([`CoreHandle::run_plan_gather`] and friends) walks the run
//!   descriptors with tight inner loops, issuing exactly the TLB/LLC
//!   operations, clock advances and counter updates the window engine would
//!   have issued for the same accesses — so every piece of simulated state
//!   ends **bit-identical** to the per-access path.
//!
//! ## Fallback triggers
//!
//! Replay only models the silent fast path. Whenever per-access detail is
//! observable — PEBS sampling enabled, tracing enabled, or a fault plan
//! armed on the machine — [`MemPort::plan_ready`] reports `false` and
//! callers must take the ordinary window path. Replay hard-asserts these
//! conditions rather than silently diverging.
//!
//! ## Generation-based invalidation
//!
//! Every structural change to the mapping table (allocation, free,
//! migration, remap — anything that inserts or removes a [`Mapping`]) bumps
//! [`MappingTable::generation`]. A plan records the generation it was
//! lowered against; [`WindowPlan::matches`] / [`SweepPlan::matches`] reject
//! a stale plan so callers recompile, and replay asserts the generation so
//! a stale plan can never be replayed against moved data.

use crate::addr::{PhysAddr, VirtAddr, VirtRange, LINE_SIZE};
use crate::cost::SimDuration;
use crate::error::Result;
use crate::machine::Scalar;
use crate::mapping::Mapping;
use crate::shard::{tlb_unit_end, BlockSegment, CoreHandle, MAX_TIERS, OP_READ, OP_RMW, OP_WRITE};
use crate::tier::TierId;

/// One maximal run of consecutive window elements landing on the same
/// cache line, with everything replay needs precomputed.
#[derive(Debug, Clone, Copy)]
struct LineRun {
    /// TLB key of the translation unit containing the line.
    key: u64,
    /// Line-aligned physical address.
    pa: u64,
    /// Line-aligned byte offset into the backing tier's storage.
    line_off: usize,
    /// Elements in this run.
    count: u32,
    /// On the run that *opens* a TLB-key group: total elements in the whole
    /// group (used to size the deferred TLB settle). Zero on runs that
    /// continue the previous run's key.
    group_elems: u32,
    /// Index of the backing tier.
    tier: u8,
}

/// A compiled indexed window: the lowering of one `(base, indices)`
/// gather/scatter/update iteration space against a specific mapping-table
/// generation.
///
/// Obtained from [`MemPort::compile_window`]; replayed by
/// [`MemPort::run_plan_gather`], [`MemPort::run_plan_scatter`] and
/// [`MemPort::run_plan_update`]. The plan is operation-agnostic: the same
/// compiled runs serve reads, writes and read-modify-writes.
#[derive(Debug, Clone)]
pub struct WindowPlan {
    base: VirtAddr,
    elem_size: usize,
    elem_count: u64,
    generation: u64,
    runs: Vec<LineRun>,
    /// Per element, in window order: byte offset of the element within its
    /// cache line.
    offs: Vec<u8>,
    /// The indices the plan was compiled from, for [`WindowPlan::matches`].
    indices: Vec<u32>,
    total: u64,
}

impl WindowPlan {
    /// Number of elements the plan covers.
    pub fn len(&self) -> usize {
        self.total as usize
    }

    /// Whether the plan covers no elements.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Whether this plan is still valid for the given mapping generation
    /// and describes exactly the window `(base, elem_size, elem_count,
    /// indices)`. A `false` result means the caller must recompile.
    pub fn matches(
        &self,
        generation: u64,
        base: VirtAddr,
        elem_size: usize,
        elem_count: u64,
        indices: &[u32],
    ) -> bool {
        self.generation == generation
            && self.base == base
            && self.elem_size == elem_size
            && self.elem_count == elem_count
            && self.indices == indices
    }
}

/// One physically contiguous chunk of a compiled sweep (one mapping's
/// worth), mirroring the per-chunk stage of `access_block`.
#[derive(Debug, Clone, Copy)]
struct PlanChunk {
    /// Elements in the chunk.
    elems: u64,
    /// Backing tier index.
    tier: u8,
    /// Number of [`PlanUnit`]s belonging to this chunk.
    units: u32,
    /// Line-aligned physical address of the chunk's first line; lines step
    /// by [`LINE_SIZE`] from here across all units of the chunk.
    pa_first: u64,
}

/// One TLB translation unit of a sweep chunk.
#[derive(Debug, Clone, Copy)]
struct PlanUnit {
    /// TLB key shared by every access in the unit.
    key: u64,
    /// Elements in the unit.
    elems: u64,
    /// Cache lines the unit spans.
    lines: u32,
    /// Elements on the first line (it may start mid-line).
    first_count: u32,
    /// Elements on the last line (it may end mid-line).
    last_count: u32,
}

/// A compiled contiguous sweep: the lowering of one `(range, elem)` bulk
/// pass against a specific mapping-table generation.
///
/// Obtained from [`MemPort::compile_sweep`]; replayed (for reads or
/// writes — the plan is direction-agnostic) by
/// [`MemPort::run_plan_sweep`]. Iteration spaces are `u64`/range-based
/// throughout, so billion-element sweeps never round-trip through `u32`
/// indices.
#[derive(Debug, Clone)]
pub struct SweepPlan {
    start: VirtAddr,
    len: usize,
    elem: usize,
    generation: u64,
    chunks: Vec<PlanChunk>,
    units: Vec<PlanUnit>,
    segments: Vec<BlockSegment>,
    total_elems: u64,
}

impl SweepPlan {
    /// Number of elements the sweep covers.
    pub fn len(&self) -> usize {
        self.total_elems as usize
    }

    /// Whether the sweep covers no elements.
    pub fn is_empty(&self) -> bool {
        self.total_elems == 0
    }

    /// The physically contiguous storage segments backing the sweep, in
    /// address order — the same segments `access_block` would return, for
    /// the bulk data path ([`MemPort::storage_slice`] /
    /// [`MemPort::storage_slice_mut`]).
    pub fn segments(&self) -> &[BlockSegment] {
        &self.segments
    }

    /// Whether this plan is still valid for the given mapping generation
    /// and describes exactly the sweep `(range, elem)`.
    pub fn matches(&self, generation: u64, range: VirtRange, elem: usize) -> bool {
        self.generation == generation
            && self.start == range.start
            && self.len == range.len
            && self.elem == elem
    }
}

impl CoreHandle<'_> {
    /// Whether compiled-plan replay is currently allowed on this core:
    /// plans model only the silent fast path, so PEBS sampling and tracing
    /// force the per-access window engine.
    pub fn plan_ready(&self) -> bool {
        !self.core.pebs.is_enabled() && !self.core.tracer.is_enabled()
    }

    /// The current mapping-table generation (see
    /// [`MappingTable::generation`](crate::MappingTable::generation)).
    pub fn mapping_generation(&self) -> u64 {
        self.mappings.generation()
    }

    /// Lowers an indexed window into a [`WindowPlan`] against the current
    /// mapping table. Charges nothing to simulated state.
    ///
    /// # Errors
    ///
    /// [`HmsError::Unmapped`](crate::HmsError::Unmapped) if any element is
    /// unmapped — with *no* side effects, unlike the window engine, which
    /// charges elements preceding the failure. Callers fall back to the
    /// window path to reproduce the partial-charge error semantics.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds for `elem_count` (the same hard
    /// check the window engine applies per element).
    pub fn compile_window<T: Scalar>(
        &self,
        base: VirtAddr,
        elem_count: u64,
        indices: &[u32],
    ) -> Result<WindowPlan> {
        let coalesce = self.platform.tlb_coalesce;
        let mut runs: Vec<LineRun> = Vec::with_capacity(indices.len() / 2 + 1);
        let mut offs = Vec::with_capacity(indices.len());
        let mut memo: Option<Mapping> = None;
        let mut cur_vline = 0u64;
        let mut line_valid = false;
        let mut cur_key = 0u64;
        let mut key_valid = false;
        let mut group_start = 0usize;

        for &i in indices {
            let i = i as u64;
            assert!(
                i < elem_count,
                "window index {i} out of bounds ({elem_count})"
            );
            let va = VirtAddr::new(base.raw() + i * T::SIZE as u64);
            let off = (va.raw() % LINE_SIZE as u64) as usize;
            debug_assert!(off + T::SIZE <= LINE_SIZE, "element straddles a line");
            let vline = va.raw() / LINE_SIZE as u64;

            if line_valid && vline == cur_vline {
                runs.last_mut().expect("line run exists").count += 1;
            } else {
                let vpage = va.page_index();
                let mapping = match memo {
                    Some(m) if vpage >= m.vpage_start && vpage < m.vpage_start + m.pages as u64 => {
                        m
                    }
                    _ => {
                        let m = self.mappings.lookup_ro(va)?;
                        memo = Some(m);
                        m
                    }
                };
                let key = mapping.tlb_key(va, coalesce);
                let (frame, offset) = mapping.translate(va);
                let pa = frame.phys_addr(offset).line_aligned().raw();
                let line_off = frame.byte_offset() + (offset & !(LINE_SIZE - 1));
                if !(key_valid && key == cur_key) {
                    cur_key = key;
                    key_valid = true;
                    group_start = runs.len();
                }
                runs.push(LineRun {
                    key,
                    pa,
                    line_off,
                    count: 1,
                    group_elems: 0,
                    tier: frame.tier.index() as u8,
                });
                cur_vline = vline;
                line_valid = true;
            }
            runs[group_start].group_elems += 1;
            offs.push(off as u8);
        }

        Ok(WindowPlan {
            base,
            elem_size: T::SIZE,
            elem_count,
            generation: self.mappings.generation(),
            runs,
            offs,
            indices: indices.to_vec(),
            total: indices.len() as u64,
        })
    }

    /// Replays a compiled window as a gather (the plan analogue of
    /// [`MemPort::read_gather`]).
    ///
    /// # Panics
    ///
    /// Panics if the plan is stale (mapping generation moved), PEBS or
    /// tracing is enabled, or `out` does not match the plan's length.
    pub fn run_plan_gather<T: Scalar>(&mut self, plan: &WindowPlan, out: &mut [T]) {
        assert_eq!(out.len(), plan.len(), "plan/output length mismatch");
        self.replay_window::<T, OP_READ>(plan, |k, bytes| {
            out[k] = T::from_le_slice(bytes);
        });
    }

    /// Replays a compiled window as a scatter (the plan analogue of
    /// [`MemPort::write_scatter`]).
    ///
    /// # Panics
    ///
    /// Panics if the plan is stale, PEBS or tracing is enabled, or
    /// `values` does not match the plan's length.
    pub fn run_plan_scatter<T: Scalar>(&mut self, plan: &WindowPlan, values: &[T]) {
        assert_eq!(values.len(), plan.len(), "plan/value length mismatch");
        self.replay_window::<T, OP_WRITE>(plan, |k, bytes| {
            values[k].write_le_slice(bytes);
        });
    }

    /// Replays a compiled window as a read-modify-write sweep (the plan
    /// analogue of [`MemPort::gather_update`]). `f` sees elements in window
    /// order, exactly like the scalar loop.
    ///
    /// # Panics
    ///
    /// Panics if the plan is stale or PEBS or tracing is enabled.
    pub fn run_plan_update<T: Scalar>(
        &mut self,
        plan: &WindowPlan,
        mut f: impl FnMut(usize, T) -> T,
    ) {
        self.replay_window::<T, OP_RMW>(plan, |k, bytes| {
            let old = T::from_le_slice(bytes);
            f(k, old).write_le_slice(bytes);
        });
    }

    /// The replay engine behind the three `run_plan_*` window entry points:
    /// issues exactly the TLB/LLC operations, counter updates and clock
    /// advances `access_window` would issue for the same accesses, in the
    /// same order, so all simulated state ends bit-identical — but with the
    /// per-element mapping/translation/key work already folded into the
    /// compiled runs.
    fn replay_window<T: Scalar, const OP: u8>(
        &mut self,
        plan: &WindowPlan,
        mut data: impl FnMut(usize, &mut [u8]),
    ) {
        assert_eq!(plan.elem_size, T::SIZE, "plan element size mismatch");
        assert_eq!(
            plan.generation,
            self.mappings.generation(),
            "stale plan replayed across a mapping change; recompile"
        );
        assert!(
            self.plan_ready(),
            "plan replay requires PEBS sampling and tracing disabled"
        );

        let write_probe = OP == OP_WRITE;
        let per_elem = if OP == OP_RMW { 2 } else { 1 };
        let walk_cost = self.platform.cost.walk_cost();
        let hit_cost = self.platform.cost.hit_cost();
        // Guaranteed-hit element cost, composed exactly as the scalar loop
        // composes it (`ZERO + hit_cost`).
        let mut rest_cost = SimDuration::ZERO;
        rest_cost += hit_cost;
        let mut tier_miss = [SimDuration::ZERO; MAX_TIERS];
        for (i, slot) in tier_miss.iter_mut().enumerate().take(self.tiers.len()) {
            *slot = self
                .platform
                .cost
                .miss_cost(self.tiers.spec_at(i), write_probe);
        }

        // Counters are per-element u64 bumps in the engine; their totals are
        // order-independent, so one batched charge is bit-identical.
        let n = plan.total;
        match OP {
            OP_READ => {
                self.core.counters.accesses += n;
                self.core.counters.reads += n;
            }
            OP_WRITE => {
                self.core.counters.accesses += n;
                self.core.counters.writes += n;
            }
            _ => {
                self.core.counters.accesses += 2 * n;
                self.core.counters.reads += n;
                self.core.counters.writes += n;
            }
        }

        let mut cur_key = 0u64;
        let mut tlb_pending = 0usize;
        let mut cur_slot = 0usize;
        let mut pending_reads = 0u64;
        let mut pending_writes = 0u64;
        let mut k = 0usize;

        for r in &plan.runs {
            // TLB: a group-opening run settles the previous group's deferred
            // touches and probes; runs continuing the key defer everything
            // (their touches were pre-counted into the opener's
            // `group_elems`).
            let pay_walk = if r.group_elems > 0 {
                if tlb_pending > 0 {
                    self.core.tlb.window_settle(cur_key, tlb_pending);
                }
                let tlb_hit = self.core.tlb.window_access_run(r.key, per_elem);
                tlb_pending = (r.group_elems as usize - 1) * per_elem;
                cur_key = r.key;
                !tlb_hit
            } else {
                false
            };

            // LLC: settle the previous line's deferred touches, probe the
            // new line — the same call sequence as the window engine.
            if pending_reads + pending_writes > 0 {
                self.core
                    .llc
                    .window_settle(cur_slot, pending_reads, pending_writes);
                pending_reads = 0;
                pending_writes = 0;
            }
            let (outcome, slot) = self
                .core
                .llc
                .window_access_slot(PhysAddr::new(r.pa), write_probe);
            cur_slot = slot;

            // First element of the run: scalar cost composition. PEBS is
            // asserted disabled, so the engine's `on_read_miss` would be a
            // pure no-op — skipping it is bit-identical.
            let mut cost = SimDuration::ZERO;
            if pay_walk {
                cost += walk_cost;
            }
            if outcome.is_hit() {
                cost += hit_cost;
            } else {
                cost += tier_miss[r.tier as usize];
            }
            self.core.clock.advance(cost);
            if OP == OP_RMW {
                pending_writes += 1;
                self.core.clock.advance(rest_cost);
            }

            // Remaining elements: guaranteed hits, deferred exactly as the
            // engine defers them, one clock advance each (two for RMW).
            let rest = (r.count - 1) as u64;
            match OP {
                OP_READ => pending_reads += rest,
                OP_WRITE => pending_writes += rest,
                _ => {
                    pending_reads += rest;
                    pending_writes += rest;
                }
            }
            for _ in 0..rest {
                self.core.clock.advance(rest_cost);
                if OP == OP_RMW {
                    self.core.clock.advance(rest_cost);
                }
            }

            // Data: one storage borrow per line, sliced per element in
            // window order.
            let line = self
                .tiers
                .bytes_mut(TierId::new(r.tier as usize), r.line_off, LINE_SIZE);
            let mut off_idx = k;
            for _ in 0..r.count {
                let off = plan.offs[off_idx] as usize;
                data(off_idx, &mut line[off..off + T::SIZE]);
                off_idx += 1;
            }
            k = off_idx;
        }

        if tlb_pending > 0 {
            self.core.tlb.window_settle(cur_key, tlb_pending);
        }
        if pending_reads + pending_writes > 0 {
            self.core
                .llc
                .window_settle(cur_slot, pending_reads, pending_writes);
        }
    }

    /// Lowers a contiguous element sweep into a [`SweepPlan`] against the
    /// current mapping table. Charges nothing to simulated state.
    ///
    /// # Errors
    ///
    /// [`HmsError::Unmapped`](crate::HmsError::Unmapped) if any byte of
    /// `range` is unmapped — with no side effects.
    ///
    /// # Panics
    ///
    /// Panics if `elem` does not divide [`LINE_SIZE`] or `range` is not
    /// `elem`-aligned (the same contract as `access_block`).
    pub fn compile_sweep(&self, range: VirtRange, elem: usize) -> Result<SweepPlan> {
        assert!(
            elem > 0 && LINE_SIZE.is_multiple_of(elem),
            "element size must divide a cache line"
        );
        assert!(
            range.start.raw().is_multiple_of(elem as u64) && range.len.is_multiple_of(elem),
            "bulk range must be element-aligned"
        );
        let coalesce = self.platform.tlb_coalesce;
        let mut chunks = Vec::new();
        let mut units = Vec::new();
        let mut segments = Vec::new();
        let full_line = LINE_SIZE / elem;

        let mut va = range.start;
        let end = range.end();
        while va < end {
            let mapping = self.mappings.lookup_ro(va)?;
            let chunk_end = mapping.vrange().end().min(end);
            let chunk_len = chunk_end.offset_from(va) as usize;
            let (frame, offset) = mapping.translate(va);
            segments.push(BlockSegment {
                tier: frame.tier,
                offset: frame.byte_offset() + offset,
                len: chunk_len,
            });
            let pa_first = frame.phys_addr(offset).line_aligned().raw();

            let mut unit_count = 0u32;
            let mut unit_va = va;
            while unit_va < chunk_end {
                let unit_end = tlb_unit_end(&mapping, unit_va, coalesce).min(chunk_end);
                let unit_elems = unit_end.offset_from(unit_va) / elem as u64;
                let first_line_end =
                    VirtAddr::new(unit_va.line_aligned().raw() + LINE_SIZE as u64).min(unit_end);
                let first_count = (first_line_end.offset_from(unit_va) as usize / elem) as u32;
                let (lines, last_count) = if first_line_end >= unit_end {
                    (1u32, first_count)
                } else {
                    let remaining = unit_end.offset_from(first_line_end) as usize;
                    let full = remaining / LINE_SIZE;
                    let tail = remaining % LINE_SIZE;
                    if tail > 0 {
                        (1 + full as u32 + 1, (tail / elem) as u32)
                    } else {
                        (1 + full as u32, full_line as u32)
                    }
                };
                units.push(PlanUnit {
                    key: mapping.tlb_key(unit_va, coalesce),
                    elems: unit_elems,
                    lines,
                    first_count,
                    last_count,
                });
                unit_count += 1;
                unit_va = unit_end;
            }
            chunks.push(PlanChunk {
                elems: (chunk_len / elem) as u64,
                tier: frame.tier.index() as u8,
                units: unit_count,
                pa_first,
            });
            va = chunk_end;
        }

        Ok(SweepPlan {
            start: range.start,
            len: range.len,
            elem,
            generation: self.mappings.generation(),
            chunks,
            units,
            segments,
            total_elems: (range.len / elem) as u64,
        })
    }

    /// Replays a compiled sweep's accounting (the plan analogue of
    /// [`MemPort::access_block`]); the data path goes through
    /// [`SweepPlan::segments`] and the storage-slice APIs exactly as it
    /// does after `access_block`.
    ///
    /// # Panics
    ///
    /// Panics if the plan is stale or PEBS or tracing is enabled.
    pub fn run_plan_sweep(&mut self, plan: &SweepPlan, write: bool) {
        assert_eq!(
            plan.generation,
            self.mappings.generation(),
            "stale plan replayed across a mapping change; recompile"
        );
        assert!(
            self.plan_ready(),
            "plan replay requires PEBS sampling and tracing disabled"
        );
        let walk_cost = self.platform.cost.walk_cost();
        let hit_cost = self.platform.cost.hit_cost();
        let mut rest_cost = SimDuration::ZERO;
        rest_cost += hit_cost;
        let full_line = (LINE_SIZE / plan.elem) as u32;

        let mut unit_idx = 0usize;
        for chunk in &plan.chunks {
            self.core.counters.accesses += chunk.elems;
            if write {
                self.core.counters.writes += chunk.elems;
            } else {
                self.core.counters.reads += chunk.elems;
            }
            let miss_cost = self
                .platform
                .cost
                .miss_cost(self.tiers.spec_at(chunk.tier as usize), write);

            let mut pa = chunk.pa_first;
            for u in &plan.units[unit_idx..unit_idx + chunk.units as usize] {
                let tlb_hit = self.core.tlb.access_run(u.key, u.elems as usize);
                for l in 0..u.lines {
                    let count = if l == 0 {
                        u.first_count
                    } else if l + 1 == u.lines {
                        u.last_count
                    } else {
                        full_line
                    };
                    let hit = self
                        .core
                        .llc
                        .access_run(PhysAddr::new(pa), write, count as usize)
                        .is_hit();
                    let mut first_cost = SimDuration::ZERO;
                    if l == 0 && !tlb_hit {
                        first_cost += walk_cost;
                    }
                    if hit {
                        first_cost += hit_cost;
                    } else {
                        first_cost += miss_cost;
                    }
                    self.core.clock.advance(first_cost);
                    for _ in 1..count {
                        self.core.clock.advance(rest_cost);
                    }
                    pa += LINE_SIZE as u64;
                }
            }
            unit_idx += chunk.units as usize;
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::addr::{VirtRange, PAGE_SIZE};
    use crate::machine::{Machine, Placement};
    use crate::platform::Platform;
    use crate::tier::TierId;
    use crate::tracked::TrackedVec;

    /// Preferred(FAST) spills to SLOW mid-array: plans cross mapping
    /// chunks, the tier boundary, base pages and coalescing groups.
    fn spill_machine() -> Machine {
        Machine::new(Platform::testing().with_capacities(64 * 1024, 8 * 1024 * 1024))
    }

    /// Same mixed pattern the window-engine model tests use: same-line
    /// runs, exact duplicates, line strides, random jumps.
    fn mixed_window(n: usize, len: usize, state: &mut u64) -> Vec<u32> {
        let mut step = || {
            *state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (*state >> 33) as usize % n
        };
        let mut w = Vec::with_capacity(len);
        while w.len() < len {
            let i = step();
            match w.len() % 4 {
                0 => {
                    for k in 0..4.min(n - i) {
                        w.push((i + k) as u32);
                    }
                }
                1 => {
                    w.push(i as u32);
                    w.push(i as u32);
                }
                2 => {
                    for k in (0..64).step_by(16) {
                        w.push(((i + k) % n) as u32);
                    }
                }
                _ => w.push(i as u32),
            }
        }
        w.truncate(len);
        w
    }

    /// The tentpole guarantee: replaying a compiled window leaves every
    /// piece of simulated state bit-identical to the window engine (which
    /// PR 2 proved bit-identical to the scalar loop) — counters, clock,
    /// TLB/LLC state, and data.
    #[test]
    fn plan_replay_is_bit_identical_to_the_window_engine() {
        let mut pm = spill_machine();
        let mut wm = spill_machine();
        let n = 40_000;
        let vp = TrackedVec::<u32>::new(&mut pm, n, Placement::Preferred(TierId::FAST)).unwrap();
        let vw = TrackedVec::<u32>::new(&mut wm, n, Placement::Preferred(TierId::FAST)).unwrap();
        let init: Vec<u32> = (0..n as u32).collect();
        vp.fill_from(&mut pm, &init);
        vw.fill_from(&mut wm, &init);
        let (bp, bw) = (vp.range().start, vw.range().start);

        let mut state = 0xd1b54a32d192ed03u64;
        // Scatter.
        let widx = mixed_window(n, 6_000, &mut state);
        let wvals: Vec<u32> = (0..widx.len() as u32).map(|k| k.wrapping_mul(97)).collect();
        let plan = pm.compile_window::<u32>(bp, n as u64, &widx).unwrap();
        assert!(plan.matches(pm.mapping_generation(), bp, 4, n as u64, &widx));
        assert_eq!(plan.len(), widx.len());
        pm.run_plan_scatter(&plan, &wvals);
        wm.write_scatter(bw, n, &widx, &wvals).unwrap();

        // Read-modify-write; duplicates must observe in-window updates.
        let uidx = mixed_window(n, 6_000, &mut state);
        let uplan = pm.compile_window::<u32>(bp, n as u64, &uidx).unwrap();
        let mut olds_p = Vec::with_capacity(uidx.len());
        pm.run_plan_update(&uplan, |k, x: u32| {
            olds_p.push(x);
            x.wrapping_add(k as u32)
        });
        let mut olds_w = Vec::with_capacity(uidx.len());
        wm.gather_update(bw, n, &uidx, |k, x: u32| {
            olds_w.push(x);
            x.wrapping_add(k as u32)
        })
        .unwrap();
        assert_eq!(olds_p, olds_w, "RMW old values diverge");

        // Gather sees the combined result.
        let gidx = mixed_window(n, 6_000, &mut state);
        let gplan = pm.compile_window::<u32>(bp, n as u64, &gidx).unwrap();
        let mut got_p = vec![0u32; gidx.len()];
        pm.run_plan_gather(&gplan, &mut got_p);
        let mut got_w = vec![0u32; gidx.len()];
        wm.read_gather(bw, n, &gidx, &mut got_w).unwrap();
        assert_eq!(got_p, got_w, "gathered values diverge");

        assert_eq!(pm.stats(), wm.stats(), "machine counters diverge");
        assert_eq!(pm.now(), wm.now(), "simulated clocks diverge");
        assert_eq!(vp.to_vec(&mut pm), vw.to_vec(&mut wm), "data diverges");
    }

    /// Window plans across the huge-mapping / base-page seam of a large
    /// slow-tier array.
    #[test]
    fn plan_replay_crosses_huge_mapping_boundaries() {
        let platform = || Platform::testing().with_capacities(64 * 1024, 16 * 1024 * 1024);
        let mut pm = Machine::new(platform());
        let mut wm = Machine::new(platform());
        let n = (5 * 1024 * 1024) / 8;
        let vp = TrackedVec::<u64>::new(&mut pm, n, Placement::Slow).unwrap();
        let vw = TrackedVec::<u64>::new(&mut wm, n, Placement::Slow).unwrap();
        let (bp, bw) = (vp.range().start, vw.range().start);

        let mut state = 0x2545f4914f6cdd1du64;
        let widx = mixed_window(n, 4_000, &mut state);
        let wvals: Vec<u64> = (0..widx.len() as u64).collect();
        let plan = pm.compile_window::<u64>(bp, n as u64, &widx).unwrap();
        pm.run_plan_scatter(&plan, &wvals);
        wm.write_scatter(bw, n, &widx, &wvals).unwrap();

        let uidx = mixed_window(n, 4_000, &mut state);
        let uplan = pm.compile_window::<u64>(bp, n as u64, &uidx).unwrap();
        pm.run_plan_update(&uplan, |_, x: u64| x ^ 0x5a5a);
        wm.gather_update(bw, n, &uidx, |_, x: u64| x ^ 0x5a5a)
            .unwrap();

        assert_eq!(pm.stats(), wm.stats(), "machine counters diverge");
        assert_eq!(pm.now(), wm.now(), "simulated clocks diverge");
    }

    /// Sweep plans replay `access_block` bit-identically, for reads and
    /// writes, over both a spilled base-page array and a huge-mapped one —
    /// and one compiled plan serves both directions.
    #[test]
    fn sweep_replay_is_bit_identical_to_access_block() {
        let platform = || Platform::testing().with_capacities(64 * 1024, 16 * 1024 * 1024);
        let mut pm = Machine::new(platform());
        let mut wm = Machine::new(platform());
        let n = 40_000;
        let vp = TrackedVec::<u32>::new(&mut pm, n, Placement::Preferred(TierId::FAST)).unwrap();
        let vw = TrackedVec::<u32>::new(&mut wm, n, Placement::Preferred(TierId::FAST)).unwrap();
        let hn = (5 * 1024 * 1024) / 8;
        let hp = TrackedVec::<u64>::new(&mut pm, hn, Placement::Slow).unwrap();
        let hw = TrackedVec::<u64>::new(&mut wm, hn, Placement::Slow).unwrap();

        let plan = pm.compile_sweep(vp.range(), 4).unwrap();
        assert!(plan.matches(pm.mapping_generation(), vp.range(), 4));
        assert_eq!(plan.len(), n);
        pm.run_plan_sweep(&plan, false);
        let segs = wm.access_block(vw.range(), 4, false).unwrap();
        assert_eq!(plan.segments(), &segs[..], "segments diverge");
        pm.run_plan_sweep(&plan, true);
        wm.access_block(vw.range(), 4, true).unwrap();

        let hplan = pm.compile_sweep(hp.range(), 8).unwrap();
        pm.run_plan_sweep(&hplan, false);
        wm.access_block(hw.range(), 8, false).unwrap();

        assert_eq!(pm.stats(), wm.stats(), "machine counters diverge");
        assert_eq!(pm.now(), wm.now(), "simulated clocks diverge");
    }

    /// Any migration (here the `mbind` baseline) bumps the mapping
    /// generation, so `matches` rejects the compiled plan and callers
    /// recompile.
    #[test]
    fn migration_invalidates_compiled_plans() {
        let mut m = spill_machine();
        let v = TrackedVec::<u32>::new(&mut m, 4096, Placement::Slow).unwrap();
        let base = v.range().start;
        let idx: Vec<u32> = (0..1024).collect();
        let gen0 = m.mapping_generation();
        let wplan = m.compile_window::<u32>(base, 4096, &idx).unwrap();
        let splan = m.compile_sweep(v.range(), 4).unwrap();
        assert!(wplan.matches(gen0, base, 4, 4096, &idx));
        assert!(splan.matches(gen0, v.range(), 4));
        m.migrate_mbind(
            VirtRange::new(base, v.range().len.next_multiple_of(PAGE_SIZE)),
            TierId::FAST,
        )
        .unwrap();
        assert_ne!(
            m.mapping_generation(),
            gen0,
            "migration must bump the generation"
        );
        assert!(!wplan.matches(m.mapping_generation(), base, 4, 4096, &idx));
        assert!(!splan.matches(m.mapping_generation(), v.range(), 4));
        // Recompilation against the new placement succeeds.
        let wplan2 = m.compile_window::<u32>(base, 4096, &idx).unwrap();
        assert!(wplan2.matches(m.mapping_generation(), base, 4, 4096, &idx));
    }

    /// Replaying a stale plan is a hard error, not silent divergence.
    #[test]
    #[should_panic(expected = "stale plan")]
    fn stale_plan_replay_panics() {
        let mut m = spill_machine();
        let v = TrackedVec::<u32>::new(&mut m, 4096, Placement::Slow).unwrap();
        let base = v.range().start;
        let idx: Vec<u32> = (0..64).collect();
        let plan = m.compile_window::<u32>(base, 4096, &idx).unwrap();
        m.migrate_mbind(
            VirtRange::new(base, v.range().len.next_multiple_of(PAGE_SIZE)),
            TierId::FAST,
        )
        .unwrap();
        let mut out = vec![0u32; idx.len()];
        m.run_plan_gather(&plan, &mut out);
    }

    /// PEBS sampling makes per-access detail observable, so replay refuses
    /// to run (callers check `plan_ready` and fall back).
    #[test]
    #[should_panic(expected = "PEBS sampling and tracing disabled")]
    fn replay_with_pebs_enabled_panics() {
        let mut m = spill_machine();
        let v = TrackedVec::<u32>::new(&mut m, 4096, Placement::Slow).unwrap();
        let idx: Vec<u32> = (0..64).collect();
        let plan = m
            .compile_window::<u32>(v.range().start, 4096, &idx)
            .unwrap();
        assert!(m.plan_ready());
        m.pebs_enable(5, 2);
        assert!(!m.plan_ready());
        let mut out = vec![0u32; idx.len()];
        m.run_plan_gather(&plan, &mut out);
    }

    /// Compilation is side-effect free: an unmapped element fails the
    /// compile without charging anything, unlike the window engine's
    /// partial-charge error path.
    #[test]
    fn compile_failure_charges_nothing() {
        let mut m = spill_machine();
        let v = TrackedVec::<u32>::new(&mut m, 1024, Placement::Slow).unwrap();
        let base = v.range().start;
        let before = m.stats();
        assert!(m
            .compile_window::<u32>(base, 1 << 20, &[0, 5, 500_000])
            .is_err());
        assert!(m.compile_sweep(VirtRange::new(base, 1 << 20), 4).is_err());
        assert_eq!(m.stats(), before, "failed compilation must charge nothing");
    }

    /// The release-mode soundness fix: an out-of-range window index is a
    /// hard panic in every profile, never a silent alias of a neighboring
    /// element. (This test is also run under `--release` by ci.sh.)
    #[test]
    #[should_panic(expected = "out of bounds")]
    fn window_bounds_check_is_a_hard_check() {
        let mut m = spill_machine();
        let v = TrackedVec::<u32>::new(&mut m, 1024, Placement::Slow).unwrap();
        // Index 9 is mapped (the vec has 1024 elements) but out of range for
        // the declared window width of 8 — only the hard check can catch it.
        let mut out = [0u32; 1];
        let _ = m.read_gather::<u32>(v.range().start, 8, &[9], &mut out);
    }

    /// Compilation applies the same hard bounds check as the window engine.
    #[test]
    #[should_panic(expected = "out of bounds")]
    fn compile_applies_the_hard_bounds_check() {
        let mut m = spill_machine();
        let v = TrackedVec::<u32>::new(&mut m, 1024, Placement::Slow).unwrap();
        let _ = m.compile_window::<u32>(v.range().start, 8, &[9]);
    }

    /// The u32-truncation fix: a window over an object wider than the u32
    /// index range is rejected at the boundary instead of silently
    /// truncating indices; large sweeps go through the range-based plans.
    #[test]
    #[should_panic(expected = "u32 index range")]
    fn windows_beyond_u32_index_range_are_rejected() {
        let mut m = spill_machine();
        let v = TrackedVec::<u32>::new(&mut m, 1024, Placement::Slow).unwrap();
        let mut out = [0u32; 1];
        let _ = m.read_gather::<u32>(v.range().start, (1usize << 32) + 2, &[0], &mut out);
    }
}
