//! Simulated-time cost model and clock.
//!
//! Application "execution time" in every experiment is the simulated time
//! accumulated by this model, not wall clock. An access costs:
//!
//! * a page-walk penalty when the TLB misses,
//! * the LLC hit latency on a cache hit, or
//! * the tier load latency plus a line-transfer term on a cache miss. The
//!   transfer term is scaled by the configured application thread count: on
//!   the real testbeds dozens of threads queue on the memory controllers, so
//!   per-access service time grows with the demand-to-bandwidth ratio. This
//!   queuing term is what makes the NVM slowdown larger than the raw latency
//!   ratio (paper §2.1, Figure 1a: up to 10x despite a 3x latency gap).

use std::fmt;
use std::ops::{Add, AddAssign};

use crate::addr::LINE_SIZE;
use crate::tier::TierSpec;

/// A duration in simulated nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimDuration(f64);

impl SimDuration {
    /// Zero duration.
    pub const ZERO: SimDuration = SimDuration(0.0);

    /// Creates a duration from nanoseconds.
    pub fn from_ns(ns: f64) -> Self {
        debug_assert!(ns.is_finite() && ns >= 0.0, "durations are non-negative");
        SimDuration(ns)
    }

    /// The duration in nanoseconds.
    pub fn as_ns(self) -> f64 {
        self.0
    }

    /// The duration in milliseconds.
    pub fn as_ms(self) -> f64 {
        self.0 / 1e6
    }

    /// The duration in seconds.
    pub fn as_secs(self) -> f64 {
        self.0 / 1e9
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e9 {
            write!(f, "{:.3}s", self.as_secs())
        } else if self.0 >= 1e6 {
            write!(f, "{:.3}ms", self.as_ms())
        } else if self.0 >= 1e3 {
            write!(f, "{:.3}us", self.0 / 1e3)
        } else {
            write!(f, "{:.1}ns", self.0)
        }
    }
}

/// Monotone simulated clock.
#[derive(Debug, Default)]
pub struct SimClock {
    now_ns: f64,
}

impl SimClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Current simulated time since machine creation.
    pub fn now(&self) -> SimDuration {
        SimDuration(self.now_ns)
    }

    /// Advances the clock.
    pub fn advance(&mut self, d: SimDuration) {
        self.now_ns += d.as_ns();
    }
}

/// Tunable constants of the access cost model.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Latency of an LLC hit, nanoseconds.
    pub llc_hit_ns: f64,
    /// Page-walk penalty on a TLB miss, nanoseconds (walk entries are
    /// assumed cached; the penalty is the extra pipeline stall).
    pub walk_ns: f64,
    /// Number of concurrently running application threads whose aggregate
    /// demand queues on the memory controller (48 on the Optane testbed,
    /// 64 modelled for KNL). The simulation executes kernels sequentially
    /// and folds parallelism into the per-miss service time.
    pub app_threads: usize,
    /// Cost of taking one PEBS sample (PMU interrupt + record drain,
    /// amortised), nanoseconds. This is what makes the paper's §7.4
    /// profiling-overhead claim measurable.
    pub pebs_sample_ns: f64,
    /// Per-rendezvous cost of one stage of a phase barrier between
    /// simulated cores, nanoseconds. A barrier over `n` cores is modelled
    /// as a log2-depth combining tree (see [`CostModel::barrier_cost`]).
    pub barrier_ns: f64,
}

impl CostModel {
    /// Creates a model.
    ///
    /// # Panics
    ///
    /// Panics if any constant is non-positive.
    pub fn new(llc_hit_ns: f64, walk_ns: f64, app_threads: usize) -> Self {
        assert!(
            llc_hit_ns > 0.0 && walk_ns > 0.0,
            "latencies must be positive"
        );
        assert!(app_threads > 0, "thread count must be positive");
        CostModel {
            llc_hit_ns,
            walk_ns,
            app_threads,
            pebs_sample_ns: 300.0,
            barrier_ns: 500.0,
        }
    }

    /// Cost of one phase barrier synchronising `cores` simulated cores:
    /// `ceil(log2(cores))` combining-tree stages of `barrier_ns` each (a
    /// single core still pays one stage — the rendezvous instruction
    /// sequence does not vanish at n=1). Integer-exact: the stage count is
    /// computed on integers, so equal core counts always produce
    /// bit-identical durations.
    pub fn barrier_cost(&self, cores: usize) -> SimDuration {
        debug_assert!(cores > 0, "barrier over zero cores");
        let stages = cores.next_power_of_two().trailing_zeros().max(1);
        SimDuration(stages as f64 * self.barrier_ns)
    }

    /// Cost of depositing one PEBS record.
    pub fn sample_cost(&self) -> SimDuration {
        SimDuration(self.pebs_sample_ns)
    }

    /// Cost of an access that hit in the LLC.
    pub fn hit_cost(&self) -> SimDuration {
        SimDuration(self.llc_hit_ns)
    }

    /// Cost of an access that missed the LLC and is serviced by `tier`.
    ///
    /// `write` selects the write bandwidth (NVM writes are far slower than
    /// reads: 13 vs 39 GB/s on Optane).
    pub fn miss_cost(&self, tier: &TierSpec, write: bool) -> SimDuration {
        let bw = if write { tier.write_bw } else { tier.read_bw };
        // Demand misses are random line-granular traffic; the tier only
        // delivers its random-access fraction of the peak to them.
        let queue = (LINE_SIZE as f64) * (self.app_threads as f64) / (bw * tier.random_bw_factor);
        SimDuration(tier.load_latency_ns + queue)
    }

    /// Page-walk penalty added on a TLB miss.
    pub fn walk_cost(&self) -> SimDuration {
        SimDuration(self.walk_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PAGE_SIZE;

    fn dram() -> TierSpec {
        TierSpec::new("DRAM", 1024 * PAGE_SIZE, 80.0, 104.0, 80.0, 6.0)
    }

    fn nvm() -> TierSpec {
        TierSpec::new("NVM", 1024 * PAGE_SIZE, 240.0, 39.0, 13.0, 6.0)
    }

    #[test]
    fn miss_costs_order_tiers_correctly() {
        let m = CostModel::new(18.0, 60.0, 48);
        let d = m.miss_cost(&dram(), false);
        let n = m.miss_cost(&nvm(), false);
        assert!(n > d, "NVM read miss must cost more than DRAM");
        // Queuing amplifies the gap beyond the raw latency ratio for writes.
        let dw = m.miss_cost(&dram(), true);
        let nw = m.miss_cost(&nvm(), true);
        assert!(nw.as_ns() / dw.as_ns() > 240.0 / 80.0 * 0.9);
    }

    #[test]
    fn write_misses_cost_more_on_nvm() {
        let m = CostModel::new(18.0, 60.0, 48);
        assert!(m.miss_cost(&nvm(), true) > m.miss_cost(&nvm(), false));
    }

    #[test]
    fn clock_is_monotone() {
        let mut c = SimClock::new();
        c.advance(SimDuration::from_ns(5.0));
        c.advance(SimDuration::from_ns(7.0));
        assert!((c.now().as_ns() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn duration_display_scales_units() {
        assert_eq!(SimDuration::from_ns(3.0).to_string(), "3.0ns");
        assert_eq!(SimDuration::from_ns(2_000.0).to_string(), "2.000us");
        assert_eq!(SimDuration::from_ns(4.5e6).to_string(), "4.500ms");
        assert_eq!(SimDuration::from_ns(1.5e9).to_string(), "1.500s");
    }

    #[test]
    fn duration_arithmetic() {
        let mut d = SimDuration::from_ns(1.0) + SimDuration::from_ns(2.0);
        d += SimDuration::from_ns(3.0);
        assert!((d.as_ns() - 6.0).abs() < 1e-12);
        assert!((d.as_secs() - 6e-9).abs() < 1e-18);
    }
}
