//! LRU translation-lookaside buffer model.
//!
//! One entry covers one mapping unit: a 4 KiB page of a base mapping or a
//! whole 2 MiB huge mapping (keys produced by
//! [`Mapping::tlb_key`](crate::mapping::Mapping::tlb_key)). A miss costs a
//! page walk in the cost model; counting misses after migration is how the
//! simulator reproduces Table 4 of the paper.

use std::collections::HashMap;

/// Slots in the window side-memo (see [`Tlb::window_access_run`]). A
/// power of two so the slot index is a multiplicative hash of the key.
const MEMO_SLOTS: usize = 64;

/// LRU TLB with a fixed number of entries.
///
/// Implemented as a hash map from key to a monotonically increasing
/// timestamp, with lazy eviction of the least-recently-used entry once
/// capacity is exceeded. Capacity is small (~1.5 K entries) so the O(n)
/// eviction scan is amortised by the HashMap fast path.
///
/// ## The window side-memo
///
/// The batched window engine probes the TLB once per cache-line run, and
/// irregular windows revisit a small set of hot translation units over and
/// over. For those, the full hash-map probe only serves to re-stamp an
/// entry that is already known to be resident. The memo is a tiny
/// direct-mapped cache of recently probed keys whose re-stamps are
/// *deferred*: a memo hit bumps the tick and hit counter eagerly (so
/// interleaved real probes stamp correct timestamps) and records the
/// entry's final timestamp in the memo instead of the map.
///
/// Deferral is sound because entry timestamps are only ever *read* by the
/// LRU eviction scan: every deferred re-stamp is applied (flushed) before
/// an eviction decision and before any non-window operation touches the
/// table, so observable behaviour — hit/miss outcomes, counters, and every
/// future eviction — is bit-identical to eager per-access re-stamping.
/// This is a window-path optimisation by construction: the scalar access
/// path has no flush contract, so its re-stamps must be eager and gain
/// nothing from the memo.
#[derive(Debug)]
pub struct Tlb {
    entries: HashMap<u64, u64>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    memo_keys: [u64; MEMO_SLOTS],
    memo_ticks: [u64; MEMO_SLOTS],
    memo_occ: u64,
}

impl Tlb {
    /// Creates a TLB with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TLB capacity must be positive");
        Tlb {
            entries: HashMap::with_capacity(capacity + 1),
            capacity,
            tick: 0,
            hits: 0,
            misses: 0,
            memo_keys: [0; MEMO_SLOTS],
            memo_ticks: [0; MEMO_SLOTS],
            memo_occ: 0,
        }
    }

    /// Direct-mapped memo slot for `key` (Fibonacci multiplicative hash,
    /// top bits).
    #[inline]
    fn memo_slot(key: u64) -> usize {
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58) as usize
    }

    /// Applies every deferred re-stamp and empties the memo. Must run
    /// before any timestamp read (the eviction scan) and before any
    /// non-window mutation of the table.
    fn memo_flush(&mut self) {
        let mut occ = self.memo_occ;
        self.memo_occ = 0;
        while occ != 0 {
            let s = occ.trailing_zeros() as usize;
            occ &= occ - 1;
            if let Some(ts) = self.entries.get_mut(&self.memo_keys[s]) {
                *ts = self.memo_ticks[s];
            }
        }
    }

    /// Number of entries the TLB can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the TLB holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total hits recorded since creation or the last [`reset_counters`].
    ///
    /// [`reset_counters`]: Tlb::reset_counters
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses recorded since creation or the last [`reset_counters`].
    ///
    /// [`reset_counters`]: Tlb::reset_counters
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Looks up `key`; returns `true` on a hit. On a miss the entry is
    /// filled (evicting the LRU entry if full).
    pub fn access(&mut self, key: u64) -> bool {
        if self.memo_occ != 0 {
            self.memo_flush();
        }
        self.tick += 1;
        let tick = self.tick;
        if let Some(ts) = self.entries.get_mut(&key) {
            *ts = tick;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if self.entries.len() >= self.capacity {
            self.evict_lru();
        }
        self.entries.insert(key, tick);
        false
    }

    /// Performs `count` consecutive lookups of the same `key` as one batch,
    /// returning the outcome of the *first* (`true` = hit). State and
    /// counters end exactly as `count` calls to [`access`](Tlb::access)
    /// would leave them: after the first lookup fills or refreshes the
    /// entry, the remaining `count - 1` are guaranteed hits that each
    /// advance the tick and re-stamp the entry.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `count` is zero.
    pub fn access_run(&mut self, key: u64, count: usize) -> bool {
        debug_assert!(count > 0, "empty TLB run");
        if self.memo_occ != 0 {
            self.memo_flush();
        }
        let final_tick = self.tick + count as u64;
        if let Some(ts) = self.entries.get_mut(&key) {
            *ts = final_tick;
            self.tick = final_tick;
            self.hits += count as u64;
            return true;
        }
        // Miss on the first lookup; the eviction decision is taken before
        // the new entry is inserted, exactly as `access` would take it.
        self.tick = final_tick;
        self.misses += 1;
        self.hits += (count - 1) as u64;
        if self.entries.len() >= self.capacity {
            self.evict_lru();
        }
        self.entries.insert(key, final_tick);
        false
    }

    /// Batched window lookup: like [`access_run`](Tlb::access_run) but
    /// through the window side-memo, so a key probed earlier on the window
    /// path skips the hash-map probe entirely and has its re-stamp
    /// deferred. Hit/miss outcomes, counters and all future evictions are
    /// identical to `count` scalar [`access`](Tlb::access) calls.
    ///
    /// Only the batched window engine may use this: correctness relies on
    /// every interleaved non-window operation flushing the memo first,
    /// which [`access`]/[`access_run`]/the shootdown paths do.
    ///
    /// [`access`]: Tlb::access
    /// [`access_run`]: Tlb::access_run
    pub(crate) fn window_access_run(&mut self, key: u64, count: usize) -> bool {
        debug_assert!(count > 0, "empty TLB run");
        let s = Self::memo_slot(key);
        let bit = 1u64 << s;
        if self.memo_occ & bit != 0 && self.memo_keys[s] == key {
            // Memo hit: the key is guaranteed resident, so the scalar loop
            // would hit. Tick and hit counter advance eagerly (interleaved
            // real probes must stamp correct timestamps); the entry's
            // re-stamp stays deferred in the memo.
            self.tick += count as u64;
            self.hits += count as u64;
            self.memo_ticks[s] = self.tick;
            return true;
        }
        // Real probe. A hit re-stamps eagerly; a miss that evicts must
        // first apply every deferred re-stamp so the LRU scan sees the
        // timestamps the scalar loop would have written.
        let final_tick = self.tick + count as u64;
        self.tick = final_tick;
        let hit = if let Some(ts) = self.entries.get_mut(&key) {
            *ts = final_tick;
            self.hits += count as u64;
            true
        } else {
            self.misses += 1;
            self.hits += (count - 1) as u64;
            if self.entries.len() >= self.capacity {
                self.memo_flush();
                self.evict_lru();
            }
            self.entries.insert(key, final_tick);
            false
        };
        // Install the key in the memo, settling any colliding occupant's
        // deferred re-stamp first.
        if self.memo_occ & bit != 0 {
            if let Some(ts) = self.entries.get_mut(&self.memo_keys[s]) {
                *ts = self.memo_ticks[s];
            }
        }
        self.memo_keys[s] = key;
        self.memo_ticks[s] = final_tick;
        self.memo_occ |= bit;
        hit
    }

    /// Settles `count` deferred guaranteed hits of `key` accumulated by the
    /// window engine's line-run coalescing. `key` was probed via
    /// [`window_access_run`](Tlb::window_access_run) when the run opened and
    /// no other TLB operation has intervened, so it is still in the memo;
    /// the fallback probe is defensive.
    pub(crate) fn window_settle(&mut self, key: u64, count: usize) {
        debug_assert!(count > 0, "empty TLB settle");
        let s = Self::memo_slot(key);
        if self.memo_occ & (1 << s) != 0 && self.memo_keys[s] == key {
            self.tick += count as u64;
            self.hits += count as u64;
            self.memo_ticks[s] = self.tick;
        } else {
            debug_assert!(false, "settled key lost from the window memo");
            self.access_run(key, count);
        }
    }

    fn evict_lru(&mut self) {
        debug_assert_eq!(self.memo_occ, 0, "eviction with deferred re-stamps");
        if let Some((&victim, _)) = self.entries.iter().min_by_key(|&(_, &ts)| ts) {
            self.entries.remove(&victim);
        }
    }

    /// Invalidates a single entry, as a TLB shootdown for one unit would.
    pub fn invalidate(&mut self, key: u64) {
        if self.memo_occ != 0 {
            self.memo_flush();
        }
        self.entries.remove(&key);
    }

    /// Invalidates every entry whose key satisfies `pred` (range shootdown).
    pub fn invalidate_where(&mut self, mut pred: impl FnMut(u64) -> bool) {
        if self.memo_occ != 0 {
            self.memo_flush();
        }
        self.entries.retain(|&k, _| !pred(k));
    }

    /// The keys of every resident entry, in unspecified order. Used by the
    /// machine invariant auditor; safe without a memo flush because the
    /// window memo only defers LRU timestamp re-stamps, never insertions.
    pub fn keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.entries.keys().copied()
    }

    /// Drops all entries (full flush), keeping the counters.
    pub fn flush(&mut self) {
        self.memo_occ = 0;
        self.entries.clear();
    }

    /// Zeroes the hit/miss counters, keeping the entries. Used to scope the
    /// post-migration TLB-miss measurement to one application iteration.
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Adds another TLB's hit/miss counters into this one (deterministic
    /// core merge: entries are discarded, totals are summed).
    pub(crate) fn absorb_counters(&mut self, other: &Tlb) {
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill() {
        let mut tlb = Tlb::new(4);
        assert!(!tlb.access(1));
        assert!(tlb.access(1));
        assert_eq!(tlb.hits(), 1);
        assert_eq!(tlb.misses(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut tlb = Tlb::new(2);
        tlb.access(1);
        tlb.access(2);
        tlb.access(1); // 2 is now LRU
        tlb.access(3); // evicts 2
        assert!(tlb.access(1));
        assert!(!tlb.access(2));
    }

    #[test]
    fn capacity_is_respected() {
        let mut tlb = Tlb::new(8);
        for k in 0..100 {
            tlb.access(k);
        }
        assert_eq!(tlb.len(), 8);
    }

    #[test]
    fn invalidate_forces_miss() {
        let mut tlb = Tlb::new(4);
        tlb.access(7);
        tlb.invalidate(7);
        assert!(!tlb.access(7));
    }

    #[test]
    fn invalidate_where_is_selective() {
        let mut tlb = Tlb::new(8);
        for k in 0..6 {
            tlb.access(k);
        }
        tlb.invalidate_where(|k| k % 2 == 0);
        assert_eq!(tlb.len(), 3);
        assert!(tlb.access(1));
        assert!(!tlb.access(0));
    }

    #[test]
    fn access_run_matches_the_per_element_loop() {
        let mut batched = Tlb::new(4);
        let mut looped = Tlb::new(4);
        // Runs interleaved with competing keys, enough to force evictions.
        for &(key, count) in &[
            (1u64, 5usize),
            (2, 3),
            (1, 2),
            (3, 1),
            (4, 7),
            (5, 2),
            (1, 4),
            (6, 1),
            (2, 6),
        ] {
            let first_batched = batched.access_run(key, count);
            let first_looped = looped.access(key);
            for _ in 1..count {
                assert!(looped.access(key), "repeat of key {key} must hit");
            }
            assert_eq!(first_batched, first_looped, "outcome for key {key}");
        }
        assert_eq!(batched.hits(), looped.hits());
        assert_eq!(batched.misses(), looped.misses());
        // The LRU state is identical too: future evictions agree.
        for k in 100..120 {
            assert_eq!(batched.access(k), looped.access(k));
        }
    }

    #[test]
    fn window_api_matches_the_per_element_loop() {
        let mut windowed = Tlb::new(3);
        let mut looped = Tlb::new(3);
        // A mix of window probes (memo path), interleaved scalar accesses
        // (which flush the memo) and enough distinct keys to force
        // evictions with re-stamps still deferred. Keys 1 and 56 share a
        // memo slot, exercising the colliding-occupant settle.
        let script: &[(u64, usize, bool)] = &[
            (1, 2, true),  // window probe, miss, fills
            (1, 3, true),  // memo hit
            (56, 1, true), // memo collision with 1: settles 1, installs 56
            (2, 1, true),  // miss, fills
            (1, 2, true),  // real probe (memo slot lost), hit
            (3, 1, true),  // miss, full: eviction flushes deferred stamps
            (1, 1, false), // scalar access: flushes the memo
            (2, 2, true),
            (3, 1, true),
            (4, 2, true), // eviction again
            (1, 4, true),
        ];
        for &(key, count, window) in script {
            let got = if window {
                windowed.window_access_run(key, count)
            } else {
                for _ in 1..count {
                    windowed.access(key);
                }
                windowed.access(key)
            };
            let mut want = false;
            for _ in 0..count {
                want = looped.access(key);
            }
            // `access_run` reports the first outcome, the loop's last — on
            // count > 1 both end resident, so only compare for count == 1.
            if count == 1 {
                assert_eq!(got, want, "outcome for key {key}");
            }
            assert_eq!(windowed.hits(), looped.hits(), "hits after key {key}");
            assert_eq!(windowed.misses(), looped.misses(), "misses after key {key}");
        }
        // Replacement state is identical: future evictions agree.
        for k in 100..130 {
            assert_eq!(windowed.access(k), looped.access(k), "probe of {k}");
        }
        assert_eq!(windowed.hits(), looped.hits());
        assert_eq!(windowed.misses(), looped.misses());
    }

    #[test]
    fn deferred_restamps_reach_the_eviction_scan() {
        let mut tlb = Tlb::new(2);
        assert!(!tlb.window_access_run(1, 1)); // fills 1 (stamp 1)
        assert!(!tlb.window_access_run(2, 1)); // fills 2 (stamp 2)
        assert!(tlb.window_access_run(1, 3)); // memo hit: 1 re-stamped to 5, deferred
                                              // Without the flush-before-evict the scan would see 1's stale
                                              // stamp (1 < 2) and evict 1; the deferred re-stamp makes 2 LRU.
        assert!(!tlb.access(3), "3 must miss");
        assert!(tlb.access(1), "re-stamped 1 must survive the eviction");
        assert!(!tlb.access(2), "2 was LRU and must have been evicted");
        assert_eq!(tlb.hits(), 4);
    }

    #[test]
    fn reset_counters_keeps_entries() {
        let mut tlb = Tlb::new(4);
        tlb.access(1);
        tlb.reset_counters();
        assert_eq!(tlb.misses(), 0);
        assert!(tlb.access(1), "entry should have survived the reset");
    }
}
