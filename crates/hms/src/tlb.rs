//! LRU translation-lookaside buffer model.
//!
//! One entry covers one mapping unit: a 4 KiB page of a base mapping or a
//! whole 2 MiB huge mapping (keys produced by
//! [`Mapping::tlb_key`](crate::mapping::Mapping::tlb_key)). A miss costs a
//! page walk in the cost model; counting misses after migration is how the
//! simulator reproduces Table 4 of the paper.

use std::collections::HashMap;

/// LRU TLB with a fixed number of entries.
///
/// Implemented as a hash map from key to a monotonically increasing
/// timestamp, with lazy eviction of the least-recently-used entry once
/// capacity is exceeded. Capacity is small (~1.5 K entries) so the O(n)
/// eviction scan is amortised by the HashMap fast path.
#[derive(Debug)]
pub struct Tlb {
    entries: HashMap<u64, u64>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates a TLB with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TLB capacity must be positive");
        Tlb {
            entries: HashMap::with_capacity(capacity + 1),
            capacity,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of entries the TLB can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the TLB holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total hits recorded since creation or the last [`reset_counters`].
    ///
    /// [`reset_counters`]: Tlb::reset_counters
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses recorded since creation or the last [`reset_counters`].
    ///
    /// [`reset_counters`]: Tlb::reset_counters
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Looks up `key`; returns `true` on a hit. On a miss the entry is
    /// filled (evicting the LRU entry if full).
    pub fn access(&mut self, key: u64) -> bool {
        self.tick += 1;
        let tick = self.tick;
        if let Some(ts) = self.entries.get_mut(&key) {
            *ts = tick;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if self.entries.len() >= self.capacity {
            self.evict_lru();
        }
        self.entries.insert(key, tick);
        false
    }

    /// Performs `count` consecutive lookups of the same `key` as one batch,
    /// returning the outcome of the *first* (`true` = hit). State and
    /// counters end exactly as `count` calls to [`access`](Tlb::access)
    /// would leave them: after the first lookup fills or refreshes the
    /// entry, the remaining `count - 1` are guaranteed hits that each
    /// advance the tick and re-stamp the entry.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `count` is zero.
    pub fn access_run(&mut self, key: u64, count: usize) -> bool {
        debug_assert!(count > 0, "empty TLB run");
        let final_tick = self.tick + count as u64;
        if let Some(ts) = self.entries.get_mut(&key) {
            *ts = final_tick;
            self.tick = final_tick;
            self.hits += count as u64;
            return true;
        }
        // Miss on the first lookup; the eviction decision is taken before
        // the new entry is inserted, exactly as `access` would take it.
        self.tick = final_tick;
        self.misses += 1;
        self.hits += (count - 1) as u64;
        if self.entries.len() >= self.capacity {
            self.evict_lru();
        }
        self.entries.insert(key, final_tick);
        false
    }

    fn evict_lru(&mut self) {
        if let Some((&victim, _)) = self.entries.iter().min_by_key(|&(_, &ts)| ts) {
            self.entries.remove(&victim);
        }
    }

    /// Invalidates a single entry, as a TLB shootdown for one unit would.
    pub fn invalidate(&mut self, key: u64) {
        self.entries.remove(&key);
    }

    /// Invalidates every entry whose key satisfies `pred` (range shootdown).
    pub fn invalidate_where(&mut self, mut pred: impl FnMut(u64) -> bool) {
        self.entries.retain(|&k, _| !pred(k));
    }

    /// Drops all entries (full flush), keeping the counters.
    pub fn flush(&mut self) {
        self.entries.clear();
    }

    /// Zeroes the hit/miss counters, keeping the entries. Used to scope the
    /// post-migration TLB-miss measurement to one application iteration.
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill() {
        let mut tlb = Tlb::new(4);
        assert!(!tlb.access(1));
        assert!(tlb.access(1));
        assert_eq!(tlb.hits(), 1);
        assert_eq!(tlb.misses(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut tlb = Tlb::new(2);
        tlb.access(1);
        tlb.access(2);
        tlb.access(1); // 2 is now LRU
        tlb.access(3); // evicts 2
        assert!(tlb.access(1));
        assert!(!tlb.access(2));
    }

    #[test]
    fn capacity_is_respected() {
        let mut tlb = Tlb::new(8);
        for k in 0..100 {
            tlb.access(k);
        }
        assert_eq!(tlb.len(), 8);
    }

    #[test]
    fn invalidate_forces_miss() {
        let mut tlb = Tlb::new(4);
        tlb.access(7);
        tlb.invalidate(7);
        assert!(!tlb.access(7));
    }

    #[test]
    fn invalidate_where_is_selective() {
        let mut tlb = Tlb::new(8);
        for k in 0..6 {
            tlb.access(k);
        }
        tlb.invalidate_where(|k| k % 2 == 0);
        assert_eq!(tlb.len(), 3);
        assert!(tlb.access(1));
        assert!(!tlb.access(0));
    }

    #[test]
    fn access_run_matches_the_per_element_loop() {
        let mut batched = Tlb::new(4);
        let mut looped = Tlb::new(4);
        // Runs interleaved with competing keys, enough to force evictions.
        for &(key, count) in &[
            (1u64, 5usize),
            (2, 3),
            (1, 2),
            (3, 1),
            (4, 7),
            (5, 2),
            (1, 4),
            (6, 1),
            (2, 6),
        ] {
            let first_batched = batched.access_run(key, count);
            let first_looped = looped.access(key);
            for _ in 1..count {
                assert!(looped.access(key), "repeat of key {key} must hit");
            }
            assert_eq!(first_batched, first_looped, "outcome for key {key}");
        }
        assert_eq!(batched.hits(), looped.hits());
        assert_eq!(batched.misses(), looped.misses());
        // The LRU state is identical too: future evictions agree.
        for k in 100..120 {
            assert_eq!(batched.access(k), looped.access(k));
        }
    }

    #[test]
    fn reset_counters_keeps_entries() {
        let mut tlb = Tlb::new(4);
        tlb.access(1);
        tlb.reset_counters();
        assert_eq!(tlb.misses(), 0);
        assert!(tlb.access(1), "entry should have survived the reset");
    }
}
